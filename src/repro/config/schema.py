"""The typed scenario-configuration tree.

Every experiment in the paper is "the same stack, one knob turned": device
count for Fig. 6, the app mix for Fig. 5/7, concurrent-IO load for Fig. 8.
:class:`ScenarioConfig` is the one declarative, hashable description of
such a scenario — flash geometry, FTL/ECC tuning, the ISPS CPU model, NVMe
queues, PCIe topology, fleet shape, corpus spec, recovery policy, fault
plan, and observability toggles — shared by the CLI, the parallel runner,
the result cache, and the fault planner.

Design rules:

- every node is a **frozen, slotted dataclass**, so a whole scenario is
  hashable and usable as a dict key;
- reusable component configs (:class:`~repro.ftl.FtlConfig`,
  :class:`~repro.ecc.EccConfig`, :class:`~repro.workloads.CorpusSpec`,
  :class:`~repro.faults.retry.RetryPolicy`,
  :class:`~repro.faults.retry.BreakerConfig`) are embedded directly rather
  than duplicated, so their validation runs exactly once, in one place;
- all leaves are JSON-representable scalars (or tuples of them), so a
  scenario round-trips losslessly through the canonical-JSON codec
  (:mod:`repro.config.codec`) and its sha256 digest identifies the run.

Construction of live systems from a scenario lives in
:mod:`repro.config.factory`; this module is pure description.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.ecc import EccConfig
from repro.faults.retry import BreakerConfig, RetryPolicy
from repro.flash import FlashGeometry
from repro.ftl import FtlConfig
from repro.workloads import CorpusSpec

__all__ = [
    "DEFAULT_PRIORITY_CLASSES",
    "FaultSpec",
    "FaultsConfig",
    "FlashConfig",
    "FleetConfig",
    "IspsConfig",
    "NvmeConfig",
    "ObsConfig",
    "PcieConfig",
    "PriorityClassConfig",
    "ScenarioConfig",
    "ServiceConfig",
    "TrafficConfig",
]


@dataclass(frozen=True, slots=True)
class FlashConfig:
    """Flash geometry by capacity plus parallelism dimensions.

    ``geometry()`` reproduces :func:`repro.ssd.conventional.small_geometry`
    exactly: the base dimensions are scaled to ``capacity_bytes`` via
    ``blocks_per_plane`` (so a config built from an existing
    :class:`~repro.flash.FlashGeometry` round-trips bit-for-bit).
    ``store_data`` selects functional mode (real page payloads) vs analytic
    mode (timing only).
    """

    capacity_bytes: int = 64 * 1024 * 1024
    channels: int = 8
    dies_per_channel: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 8  # pre-scale base; ``geometry()`` rescales
    pages_per_block: int = 16
    page_size: int = 16384
    store_data: bool = True

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1024:
            raise ValueError("capacity_bytes must be at least 1 KiB")

    def geometry(self) -> FlashGeometry:
        base = FlashGeometry(
            channels=self.channels,
            dies_per_channel=self.dies_per_channel,
            planes_per_die=self.planes_per_die,
            blocks_per_plane=self.blocks_per_plane,
            pages_per_block=self.pages_per_block,
            page_size=self.page_size,
        )
        return base.scaled(self.capacity_bytes)

    @classmethod
    def from_geometry(
        cls, geometry: FlashGeometry, store_data: bool = True
    ) -> "FlashConfig":
        """Describe an existing geometry (lossless: ``geometry()`` returns
        an equal instance, because scaling to the exact capacity recovers
        the same ``blocks_per_plane``)."""
        return cls(
            capacity_bytes=geometry.capacity_bytes,
            channels=geometry.channels,
            dies_per_channel=geometry.dies_per_channel,
            planes_per_die=geometry.planes_per_die,
            blocks_per_plane=geometry.blocks_per_plane,
            pages_per_block=geometry.pages_per_block,
            page_size=geometry.page_size,
            store_data=store_data,
        )


@dataclass(frozen=True, slots=True)
class NvmeConfig:
    """NVMe front-end shape; defaults mirror
    :class:`~repro.nvme.NvmeController`."""

    queue_pairs: int = 1
    queue_depth: int = 64
    workers_per_queue: int = 8
    firmware_latency: float = 5e-6
    firmware_cycles: float = 15_000.0

    def __post_init__(self) -> None:
        if self.queue_pairs < 1 or self.queue_depth < 1 or self.workers_per_queue < 1:
            raise ValueError("queue_pairs/queue_depth/workers_per_queue must be >= 1")
        if self.firmware_latency < 0 or self.firmware_cycles < 0:
            raise ValueError("firmware terms must be non-negative")


@dataclass(frozen=True, slots=True)
class PcieConfig:
    """Fabric topology: the paper's x16 Gen3 uplink over x4 endpoints."""

    uplink_lanes: int = 16
    endpoint_lanes: int = 4

    def __post_init__(self) -> None:
        if self.uplink_lanes < 1 or self.endpoint_lanes < 1:
            raise ValueError("lane counts must be >= 1")


@dataclass(frozen=True, slots=True)
class IspsConfig:
    """In-situ processing subsystem: which CPU model runs minions.

    ``cpu`` names an entry in :data:`repro.cpu.models.CPU_MODELS`
    (``"arm-a53-quad"`` is the paper's Table II quad Cortex-A53).
    """

    cpu: str = "arm-a53-quad"

    def __post_init__(self) -> None:
        from repro.cpu.models import CPU_MODELS

        if self.cpu not in CPU_MODELS:
            raise ValueError(
                f"unknown cpu model {self.cpu!r}; use {sorted(CPU_MODELS)}"
            )


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Two-level topology: nodes x devices, plus staging redundancy."""

    nodes: int = 1
    devices_per_node: int = 4
    with_baseline_ssd: bool = False
    replicas: int = 1  # copies of each book staged on the device ring

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.devices_per_node < 1:
            raise ValueError("nodes and devices_per_node must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One declarative fault, addressed by fleet-ring index.

    Times are milliseconds relative to the moment the plan is armed
    (conventionally: staging completion), matching the chaos CLI's
    ``IDX@MS`` grammar.  ``kind`` is a :class:`repro.faults.FaultKind`
    value string.
    """

    kind: str = "device-crash"
    ring_index: int = 0
    at_ms: float = 0.0
    duration_ms: float | None = None
    fraction: float = 0.0  # transient: share of commands failed
    factor: float = 1.0  # limp: firmware-latency multiplier

    def __post_init__(self) -> None:
        from repro.faults.plan import FaultKind

        if self.kind not in {k.value for k in FaultKind}:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"use {sorted(k.value for k in FaultKind)}"
            )
        if self.ring_index < 0:
            raise ValueError("ring_index must be >= 0")
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")


@dataclass(frozen=True, slots=True)
class FaultsConfig:
    """A replayable fault plan: explicit events plus seeded random ones."""

    seed: int = 0
    random: int = 0  # extra faults derived deterministically from ``seed``
    horizon_ms: float = 10.0  # random faults land in [0, horizon_ms)
    events: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.random < 0:
            raise ValueError("random must be >= 0")
        if self.horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")

    @property
    def any(self) -> bool:
        return bool(self.events) or self.random > 0


@dataclass(frozen=True, slots=True)
class PriorityClassConfig:
    """One tenant priority class of the service frontend.

    ``share`` is the fraction of the tenant population hashed into this
    class; ``weight`` is its weighted-fair-queuing share of dispatch
    capacity.  ``rate``/``burst`` parameterise the *per-tenant* token
    bucket (requests per second of simulated time, bucket capacity), and
    ``slo_ms`` is the end-to-end latency objective a completion is graded
    against.
    """

    name: str = "standard"
    weight: float = 1.0
    share: float = 1.0
    rate: float = 200.0
    burst: float = 8.0
    slo_ms: float = 20.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("priority class needs a name")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not 0.0 < self.share <= 1.0:
            raise ValueError("share must be in (0, 1]")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive")


#: The default three-tier tenant population: a small premium class with a
#: large scheduler weight and tight SLO over a broad best-effort base.
DEFAULT_PRIORITY_CLASSES: tuple[PriorityClassConfig, ...] = (
    PriorityClassConfig(name="gold", weight=4.0, share=0.1, rate=400.0,
                        burst=16.0, slo_ms=10.0),
    PriorityClassConfig(name="silver", weight=2.0, share=0.3, rate=200.0,
                        burst=8.0, slo_ms=20.0),
    PriorityClassConfig(name="bronze", weight=1.0, share=0.6, rate=100.0,
                        burst=4.0, slo_ms=50.0),
)


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """The multi-tenant service frontend: admission, scheduling, dispatch.

    ``queue_depth`` bounds the admission queue (arrivals beyond it are
    shed); ``concurrency`` is the number of dispatch slots pulling from
    the weighted fair queue into the fleet.
    """

    queue_depth: int = 64
    concurrency: int = 8
    classes: tuple[PriorityClassConfig, ...] = DEFAULT_PRIORITY_CLASSES

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if not self.classes:
            raise ValueError("need at least one priority class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate priority class names: {names}")
        total = sum(c.share for c in self.classes)
        if total > 1.0 + 1e-9:
            raise ValueError(f"class shares sum to {total}; must be <= 1")


#: Arrival patterns the traffic generator understands.
TRAFFIC_PATTERNS: tuple[str, ...] = ("poisson", "diurnal", "bursty")


@dataclass(frozen=True, slots=True)
class TrafficConfig:
    """A seeded open-loop arrival stream over a large tenant population.

    ``tenants`` is the population size (IDs are drawn per arrival, so
    millions of distinct tenants cost no per-tenant state up front);
    ``skew`` shapes popularity (1.0 = uniform, larger concentrates traffic
    on low tenant IDs).  ``rate`` is the mean arrival rate in requests per
    second of *simulated* time; diurnal/bursty parameters modulate it.
    """

    pattern: str = "poisson"
    requests: int = 200
    rate: float = 4000.0
    tenants: int = 1_000_000
    skew: float = 1.0
    seed: int = 0
    period_ms: float = 50.0  # diurnal: cycle length
    amplitude: float = 0.8  # diurnal: rate swing in [0, 1)
    burst_len: int = 32  # bursty: arrivals per burst
    burst_factor: float = 8.0  # bursty: in-burst rate multiplier

    def __post_init__(self) -> None:
        if self.pattern not in TRAFFIC_PATTERNS:
            raise ValueError(
                f"unknown traffic pattern {self.pattern!r}; "
                f"use {', '.join(TRAFFIC_PATTERNS)}"
            )
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.skew < 1.0:
            raise ValueError("skew must be >= 1 (1 = uniform)")
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.burst_len < 1:
            raise ValueError("burst_len must be >= 1")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")


@dataclass(frozen=True, slots=True)
class ObsConfig:
    """Observability toggles (both default off: zero-overhead scenarios)."""

    metrics: bool = False
    tracing: bool = False
    trace_capacity: int | None = None  # ring-buffer mode when set

    def __post_init__(self) -> None:
        if self.trace_capacity is not None and self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1 (or None)")


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """One complete, declarative experiment scenario.

    The tree is frozen and hashable; derive variants with
    :func:`dataclasses.replace` or dotted-path overrides
    (:func:`repro.config.apply_overrides`).  Canonical JSON and the sha256
    digest come from :mod:`repro.config.codec`; live systems come from
    :mod:`repro.config.factory`.
    """

    name: str = "custom"
    seed: int = 0
    flash: FlashConfig = field(default_factory=FlashConfig)
    ftl: FtlConfig = field(default_factory=FtlConfig)
    ecc: EccConfig = field(default_factory=EccConfig)
    nvme: NvmeConfig = field(default_factory=NvmeConfig)
    pcie: PcieConfig = field(default_factory=PcieConfig)
    isps: IspsConfig = field(default_factory=IspsConfig)
    fleet: FleetConfig = field(default_factory=FleetConfig)
    corpus: CorpusSpec = field(default_factory=CorpusSpec)
    retry: RetryPolicy | None = None
    breaker: BreakerConfig | None = None
    faults: FaultsConfig = field(default_factory=FaultsConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    # Sections added after the digest goldens were pinned carry
    # ``omit_if_none``: the codec leaves them out of the canonical JSON
    # while unset, so every pre-existing scenario keeps its digest and the
    # section only becomes part of a scenario's identity once engaged.
    service: ServiceConfig | None = field(
        default=None, metadata={"omit_if_none": True}
    )
    traffic: TrafficConfig | None = field(
        default=None, metadata={"omit_if_none": True}
    )

    def with_name(self, name: str) -> "ScenarioConfig":
        return replace(self, name=name)

    def section_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in fields(self))
