"""Unit + property tests for flash geometry and addressing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashGeometry, PageAddress
from repro.flash.geometry import BlockAddress

SMALL = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=2, blocks_per_plane=4, pages_per_block=8,
    page_size=4096,
)


def test_derived_sizes():
    assert SMALL.dies == 4
    assert SMALL.planes == 8
    assert SMALL.blocks == 32
    assert SMALL.pages == 256
    assert SMALL.block_size == 8 * 4096
    assert SMALL.capacity_bytes == 256 * 4096


def test_default_geometry_is_16_channels():
    geo = FlashGeometry()
    assert geo.channels == 16  # the paper's per-SSD channel count


def test_page_index_roundtrip_corners():
    first = PageAddress(0, 0, 0, 0, 0)
    last = PageAddress(1, 1, 1, 3, 7)
    assert SMALL.page_index(first) == 0
    assert SMALL.page_index(last) == SMALL.pages - 1
    assert SMALL.page_address(0) == first
    assert SMALL.page_address(SMALL.pages - 1) == last


@given(index=st.integers(min_value=0, max_value=SMALL.pages - 1))
def test_page_roundtrip_property(index):
    assert SMALL.page_index(SMALL.page_address(index)) == index


@given(index=st.integers(min_value=0, max_value=SMALL.blocks - 1))
def test_block_roundtrip_property(index):
    assert SMALL.block_index(SMALL.block_address(index)) == index


@settings(max_examples=50)
@given(
    channels=st.integers(1, 4),
    dies=st.integers(1, 3),
    planes=st.integers(1, 2),
    blocks=st.integers(1, 5),
    pages=st.integers(1, 6),
)
def test_page_indexing_is_bijective(channels, dies, planes, blocks, pages):
    geo = FlashGeometry(
        channels=channels,
        dies_per_channel=dies,
        planes_per_die=planes,
        blocks_per_plane=blocks,
        pages_per_block=pages,
        page_size=512,
    )
    seen = {geo.page_index(geo.page_address(i)) for i in range(geo.pages)}
    assert seen == set(range(geo.pages))


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        SMALL.page_index(PageAddress(2, 0, 0, 0, 0))
    with pytest.raises(ValueError):
        SMALL.page_index(PageAddress(0, 0, 0, 0, 8))
    with pytest.raises(ValueError):
        SMALL.page_address(SMALL.pages)
    with pytest.raises(ValueError):
        SMALL.block_address(-1)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        FlashGeometry(channels=0)
    with pytest.raises(ValueError):
        FlashGeometry(page_size=-1)


def test_block_address_page_helper():
    block = BlockAddress(1, 0, 1, 2)
    page = block.page(5)
    assert page == PageAddress(1, 0, 1, 2, 5)
    assert page.block_addr == block


def test_iter_blocks_covers_all_blocks_once():
    blocks = list(SMALL.iter_blocks())
    assert len(blocks) == SMALL.blocks
    assert len(set(blocks)) == SMALL.blocks


def test_scaled_geometry_hits_target_capacity():
    geo = FlashGeometry()
    target = 4 * geo.capacity_bytes
    scaled = geo.scaled(target)
    assert scaled.channels == geo.channels  # parallelism preserved
    assert abs(scaled.capacity_bytes - target) / target < 0.05


def test_scaled_geometry_minimum_two_blocks():
    geo = FlashGeometry()
    tiny = geo.scaled(1)
    assert tiny.blocks_per_plane == 2
