#!/usr/bin/env python3
"""Traffic drill: a million-tenant serving session against a faulty fleet.

The pinned ``traffic-smoke`` preset stages a replicated 2x2 fleet, then a
:class:`~repro.service.frontend.ServiceFrontend` serves a seeded Poisson
arrival stream drawn from a 1M-tenant population while the fault plan
opens a transient-error window and kills a device mid-traffic.  Arrivals
pass admission (per-tenant token buckets, bounded queue), weighted fair
queuing across gold/silver/bronze priority classes, and dispatch into the
fleet's retry/breaker/failover machinery; the scorecard reports latency
tails, Jain's fairness index, and shed/violation counts, and the same
numbers surface in ``fleet.health()``.

Run:  python examples/traffic_drill.py
      python -m repro traffic --preset traffic-smoke      # CLI twin
"""

from repro.analysis.experiments import format_series_table
from repro.config import (
    build_corpus,
    build_fault_plan,
    build_fleet,
    config_digest,
    preset,
)
from repro.faults import FaultInjector
from repro.obs.health import HealthAggregator
from repro.service import ServiceFrontend


def main() -> None:
    scenario = preset("traffic-smoke")
    print(f"scenario {scenario.name} digest={config_digest(scenario)[:16]}")
    fleet = build_fleet(scenario)
    sim = fleet.sim
    books = build_corpus(scenario)
    sim.run(sim.process(fleet.stage_corpus(books, replicas=scenario.fleet.replicas)))

    # arm the fault plan: a flaky window plus a device kill, mid-traffic
    plan = build_fault_plan(scenario, fleet.device_ring(), base_time=sim.now)
    print(format_series_table(
        f"fault plan (fingerprint={plan.fingerprint()})",
        ["t (ms)", "kind", "target", "detail"], plan.describe_rows(),
    ))
    FaultInjector.for_fleet(fleet, plan).start()

    frontend = ServiceFrontend(fleet, scenario.service, scenario.traffic, books)
    report = sim.run(sim.process(frontend.run()))
    payload = report.to_payload()
    rows = [[k, v] for k, v in sorted(payload.items()) if k != "per_class"]
    for name, stats in sorted(payload["per_class"].items()):
        rows.append([f"class {name}",
                     ", ".join(f"{k}={v}" for k, v in sorted(stats.items()))])
    print(format_series_table("traffic scorecard", ["attribute", "value"], rows))

    def poll():
        aggregator = HealthAggregator()
        aggregator.observe_service(report)
        return (yield from fleet.health(aggregator))

    health = sim.run(sim.process(poll()))
    print(format_series_table("fleet health", ["attribute", "value"], health.rows()))
    shed = report.shed_total
    print(f"\n{report.completed}/{report.requests} served, {shed} shed, "
          f"{report.violations} SLO violations, Jain={report.jain:.4f}")


if __name__ == "__main__":
    main()
