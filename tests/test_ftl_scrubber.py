"""Tests for the background patrol scrubber (retention management)."""

import pytest

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=8, pages_per_block=8,
    page_size=2048,
)


def make_ftl(scrub_interval=0.5, tau=2.0, rber0=1e-7, margin=0.5, capability=40):
    """Aggressively short retention constant so tests run in seconds of
    simulated time instead of months."""
    sim = Simulator()
    flash = FlashArray(
        sim, geometry=GEO,
        error_model=BitErrorModel(rber0=rber0, tau=tau),
    )
    ecc = EccEngine(
        sim, EccConfig(layout=CodewordLayout(data_bytes=2048), capability=capability)
    )
    ftl = FlashTranslationLayer(
        sim, flash, ecc,
        config=FtlConfig(scrub_interval=scrub_interval, scrub_margin=margin),
    )
    return sim, ftl


def drive(sim, gen):
    return sim.run(sim.process(gen))


def fill(sim, ftl, pages=16):
    def flow():
        for lpn in range(pages):
            yield from ftl.write(lpn, b"cold data")
        yield from ftl.flush()

    drive(sim, flow())


def test_scrubber_refreshes_aging_blocks():
    sim, ftl = make_ftl()
    fill(sim, ftl)
    # age the data far beyond the margin: expected errors blow past t/2
    sim.run(until=sim.now + 60.0)
    assert ftl.scrubber.blocks_refreshed > 0
    assert ftl.scrubber.blocks_scanned > 0


def test_refresh_resets_retention_clock():
    sim, ftl = make_ftl()
    fill(sim, ftl, pages=8)
    sim.run(until=sim.now + 30.0)
    # after refreshing, no block holding data should be at risk
    assert ftl.scrubber.at_risk_blocks() == []


def test_scrubbed_data_still_readable():
    sim, ftl = make_ftl()
    fill(sim, ftl, pages=8)
    sim.run(until=sim.now + 30.0)
    assert ftl.scrubber.blocks_refreshed > 0

    def readback():
        out = []
        for lpn in range(8):
            out.append((yield from ftl.read(lpn)))
        return out

    assert drive(sim, readback()) == [b"cold data"] * 8
    ftl.page_map.check_invariants()


def test_scrubber_prevents_uncorrectable_reads():
    """With scrubbing on, very old data survives; with scrubbing off, the
    same read pattern hits uncorrectable errors."""
    from repro.ftl import LogicalIOError

    def age_and_read(scrub_interval):
        sim, ftl = make_ftl(
            scrub_interval=scrub_interval, tau=1.0, rber0=2e-5, capability=60,
        )
        fill(sim, ftl, pages=8)
        sim.run(until=sim.now + 25.0)  # ~25 tau of retention without refresh

        def readback():
            for lpn in range(8):
                yield from ftl.read(lpn)

        try:
            drive(sim, readback())
            return ftl.uncorrectable_reads, None
        except LogicalIOError as exc:
            return ftl.uncorrectable_reads, exc

    failures_without, error = age_and_read(scrub_interval=None)
    assert failures_without > 0 and error is not None

    failures_with, error = age_and_read(scrub_interval=0.5)
    assert failures_with == 0 and error is None


def test_scrubber_disabled_by_none_interval():
    sim, ftl = make_ftl(scrub_interval=None)
    fill(sim, ftl)
    sim.run(until=sim.now + 60.0)
    assert ftl.scrubber.blocks_refreshed == 0
    assert ftl.scrubber.process is None


def test_scrubber_ignores_fully_invalid_blocks():
    sim, ftl = make_ftl()
    fill(sim, ftl, pages=8)

    def invalidate():
        yield from ftl.trim(list(range(8)))

    drive(sim, invalidate())
    sim.run(until=sim.now + 30.0)
    # nothing valid to refresh: GC may erase, the scrubber must not "refresh"
    assert ftl.scrubber.blocks_refreshed == 0


def test_scrubber_and_gc_do_not_double_reclaim():
    """Churn + aggressive scrubbing together must preserve map invariants."""
    sim, ftl = make_ftl(scrub_interval=0.2, tau=1.0)
    logical = min(24, ftl.logical_pages)

    def churn():
        for round_ in range(6):
            for lpn in range(logical):
                yield from ftl.write(lpn, f"r{round_}".encode())
            yield from ftl.flush()
            yield sim.timeout(1.0)

    drive(sim, churn())
    sim.run(until=sim.now + 5.0)
    ftl.page_map.check_invariants()

    def readback():
        out = []
        for lpn in range(logical):
            out.append((yield from ftl.read(lpn)))
        return out

    assert drive(sim, readback()) == [b"r5"] * logical


def test_scrubber_parameter_validation():
    sim, ftl = make_ftl()
    from repro.ftl import PatrolScrubber

    with pytest.raises(ValueError):
        PatrolScrubber(ftl, interval=0)
    with pytest.raises(ValueError):
        PatrolScrubber(ftl, margin=0)
    with pytest.raises(ValueError):
        PatrolScrubber(ftl, margin=1.5)
