"""Parallel experiment runner: shard the evaluation matrix across processes.

The paper's evaluation is a matrix of independent seeded scenarios; this
package runs them N-wide with a bit-identical merge:

- :mod:`repro.parallel.jobs` — named, seeded, self-contained work items;
- :mod:`repro.parallel.cache` — content-addressed result cache (code +
  spec digest keyed; any source change invalidates everything);
- :mod:`repro.parallel.runner` — the ``spawn`` process pool with
  canonical-order merge and :mod:`repro.obs` counters;
- :mod:`repro.parallel.matrix` — the claim/figure/ablation/bench matrix
  enumerated as job lists.

Quick use::

    from repro.parallel import run_jobs, validation_jobs, ResultCache
    report = run_jobs(validation_jobs(quick=True), workers=4,
                      cache=ResultCache())
    claims = report.values()
"""

from repro.parallel.cache import ResultCache, code_digest, default_cache_dir
from repro.parallel.jobs import (
    JobResult,
    JobSpec,
    canonical_json,
    execute_job,
    payload_digest,
)
from repro.parallel.matrix import (
    ablation_jobs,
    backends_jobs,
    bench_jobs,
    drill_jobs,
    fig1_jobs,
    fig6_jobs,
    fig7_jobs,
    fig8_jobs,
    full_matrix,
    objstore_jobs,
    objstore_sweep_jobs,
    shard_jobs,
    traffic_jobs,
    validation_jobs,
)
from repro.parallel.runner import JobError, RunReport, run_jobs

__all__ = [
    "JobError",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "RunReport",
    "ablation_jobs",
    "backends_jobs",
    "bench_jobs",
    "canonical_json",
    "code_digest",
    "default_cache_dir",
    "drill_jobs",
    "execute_job",
    "fig1_jobs",
    "fig6_jobs",
    "fig7_jobs",
    "fig8_jobs",
    "full_matrix",
    "objstore_jobs",
    "objstore_sweep_jobs",
    "payload_digest",
    "run_jobs",
    "shard_jobs",
    "traffic_jobs",
    "validation_jobs",
]
