"""Fault-injection subsystem: plans, fault states, retry/breaker policy,
and the injector's end-to-end behavior against a live node.

The contract under test mirrors the obs subsystem's: everything is
deterministic from the seed, failures are classified (transport faults
retry, real minion outcomes don't), and a device nobody injects faults
into runs a bit-identical schedule.
"""

import pytest

from repro.cluster import StorageNode
from repro.faults import (
    AgentFaultState,
    BreakerConfig,
    CircuitBreaker,
    DeviceFaultState,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
    completion_retryable,
    response_retryable,
)
from repro.host import BreakerOpen, InSituError
from repro.nvme import Status
from repro.obs import MetricsRegistry
from repro.proto import Command, ResponseStatus
from repro.sim import Simulator, Tracer
from repro.workloads import BookCorpus, CorpusSpec


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(-1.0, FaultKind.DEVICE_CRASH, 0, "compstor0")
    with pytest.raises(ValueError):
        FaultEvent(0.0, FaultKind.DEVICE_CRASH, 0, "compstor0", duration=0.0)
    with pytest.raises(ValueError):
        FaultEvent(0.0, FaultKind.TRANSIENT, 0, "compstor0", fraction=1.5)
    with pytest.raises(ValueError):
        FaultEvent(0.0, FaultKind.LIMP, 0, "compstor0", factor=0.5)


def test_plan_orders_by_time_then_insertion():
    plan = (
        FaultPlan()
        .kill_device(0, "compstor0", at=2e-3)
        .crash_agent(1, "compstor1", at=1e-3)
        .limp(0, "compstor1", at=1e-3, factor=2.0)
    )
    kinds = [e.kind for e in plan.events()]
    assert kinds == [FaultKind.AGENT_CRASH, FaultKind.LIMP, FaultKind.DEVICE_CRASH]
    assert len(plan) == 3


def test_plan_fingerprint_is_stable_and_discriminating():
    def build():
        return FaultPlan(seed=9).kill_device(0, "compstor0", at=1e-3)

    assert build().fingerprint() == build().fingerprint()
    other = FaultPlan(seed=9).kill_device(0, "compstor0", at=2e-3)
    assert build().fingerprint() != other.fingerprint()


def test_random_plan_is_a_pure_function_of_its_arguments():
    devices = [(0, "compstor0"), (0, "compstor1"), (1, "compstor0")]
    a = FaultPlan.random(7, devices, horizon=10e-3)
    b = FaultPlan.random(7, devices, horizon=10e-3)
    assert a.fingerprint() == b.fingerprint()
    assert [e.describe() for e in a.events()] == [e.describe() for e in b.events()]
    assert FaultPlan.random(8, devices, horizon=10e-3).fingerprint() != a.fingerprint()
    with pytest.raises(ValueError):
        FaultPlan.random(0, [], horizon=10e-3)


# ---------------------------------------------------------------------------
# Fault states + classification
# ---------------------------------------------------------------------------

def test_device_fault_state_intercept():
    state = DeviceFaultState(rng=Simulator(seed=0).rng("test"))
    assert state.intercept() is None
    assert not state.degraded
    state.crashed = True
    assert state.intercept() == "DEVICE_UNAVAILABLE"
    assert state.commands_refused == 1
    state.crashed = False
    state.transient_fraction = 1.0
    assert state.intercept() == "TRANSIENT"
    assert state.transients_injected == 1
    assert state.degraded


def test_retryability_classification():
    assert completion_retryable(Status.TRANSIENT)
    assert completion_retryable(Status.DEVICE_UNAVAILABLE)
    assert completion_retryable(Status.ISC_AGENT_DOWN)
    assert not completion_retryable(Status.ISC_FAILURE)
    assert not completion_retryable(Status.MEDIA_ERROR)
    # real minion outcomes are final; only infrastructure aborts retry
    assert response_retryable(ResponseStatus.ABORTED)
    assert not response_retryable(ResponseStatus.CRASHED)
    assert not response_retryable(ResponseStatus.TIMEOUT)
    assert not response_retryable(ResponseStatus.OK)


def test_retry_policy_backoff():
    policy = RetryPolicy(base_delay=1e-4, multiplier=2.0, max_delay=3e-4, jitter=0.0)
    assert policy.backoff(1) == pytest.approx(1e-4)
    assert policy.backoff(2) == pytest.approx(2e-4)
    assert policy.backoff(3) == pytest.approx(3e-4)  # capped
    assert policy.backoff(9) == pytest.approx(3e-4)
    with pytest.raises(ValueError):
        policy.backoff(0)


def test_retry_policy_jitter_is_bounded_and_seed_deterministic():
    policy = RetryPolicy(base_delay=1e-3, jitter=0.25, max_delay=1e-3)
    draws_a = [policy.backoff(1, Simulator(seed=4).rng("client.retry")) for _ in range(3)]
    draws_b = [policy.backoff(1, Simulator(seed=4).rng("client.retry")) for _ in range(3)]
    assert draws_a == draws_b  # fresh stream, same seed => same jitter
    for delay in draws_a:
        assert 0.75e-3 <= delay <= 1e-3  # never above the configured cap


def test_retry_policy_jitter_never_exceeds_cap():
    """Regression: upward jitter used to escape ``max_delay``.

    With ``base_delay == max_delay`` every raw backoff sits exactly at the
    cap, so any positive jitter draw used to push the returned delay past
    it.  The post-jitter clamp must hold for every draw without changing
    how many RNG values are consumed.
    """
    policy = RetryPolicy(base_delay=5e-4, multiplier=2.0, max_delay=1e-3, jitter=0.25)
    rng = Simulator(seed=11).rng("client.retry")
    delays = [policy.backoff(attempt, rng) for attempt in range(1, 41)]
    assert all(0.0 <= d <= policy.max_delay for d in delays)
    # some draws must actually hit the clamp, or the regression isn't exercised
    assert any(d == policy.max_delay for d in delays)
    # exactly one RNG draw per backoff call: a fresh stream that skips the
    # same number of draws continues identically
    control = Simulator(seed=11).rng("client.retry")
    for _ in range(40):
        control.random()
    assert rng.random() == control.random()


def test_retry_policy_validation():
    for bad in (
        dict(max_attempts=0),
        dict(base_delay=0.0),
        dict(multiplier=0.5),
        dict(jitter=1.0),
        dict(deadline=0.0),
    ):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)


def test_circuit_breaker_lifecycle():
    seen = []
    breaker = CircuitBreaker(
        BreakerConfig(failure_threshold=2, cooldown=1.0),
        on_transition=lambda prev, state: seen.append((prev, state)),
    )
    assert breaker.allow(0.0)
    breaker.record_failure(0.0)
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure(0.1)
    assert breaker.state == CircuitBreaker.OPEN
    # open: fail fast until the cooldown elapses
    assert not breaker.allow(0.5)
    assert breaker.fast_fails == 1
    # cooldown over: exactly one probe gets through
    assert breaker.allow(1.2)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert not breaker.allow(1.2)
    # probe failure re-opens; probe success closes
    breaker.record_failure(1.3)
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.allow(2.4)
    breaker.record_success(2.5)
    assert breaker.state == CircuitBreaker.CLOSED
    assert [state for _, state in seen] == [
        t[1] for t in breaker.transitions
    ] == ["open", "half-open", "open", "half-open", "closed"]


def test_breaker_config_validation():
    with pytest.raises(ValueError):
        BreakerConfig(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerConfig(cooldown=0.0)


# ---------------------------------------------------------------------------
# Injector against a live node
# ---------------------------------------------------------------------------

def build_node(devices=1, seed=7, **kw):
    """A staged single-node rig: one plain-text book per device."""
    node = StorageNode.build(
        devices=devices, seed=seed, device_capacity=24 * 1024 * 1024, **kw
    )
    books = BookCorpus(
        CorpusSpec(files=devices, mean_file_bytes=16 * 1024, seed=3)
    ).generate()
    node.sim.run(node.sim.process(node.stage_corpus(books, compressed=False)))
    return node, books


def grep(book):
    return Command(command_line=f"grep xylophone {book.name}")


def send_collecting(node, device, command):
    """Run one send_minion to completion; the error is returned, not raised."""

    def go():
        try:
            minion = yield from node.client.send_minion(device, command)
        except InSituError as exc:
            return exc
        return minion

    return node.sim.run(node.sim.process(go()))


def minion_roundtrip():
    """(dispatch time, duration) of one fault-free grep minion."""
    node, books = build_node()
    t0 = node.sim.now
    outcome = send_collecting(node, "compstor0", grep(books[0]))
    assert outcome.response.ok
    return t0, node.sim.now - t0


def test_crashed_device_refuses_commands():
    node, books = build_node()
    plan = FaultPlan().kill_device(0, "compstor0", at=node.sim.now)
    FaultInjector.for_node(node, plan).start()
    outcome = send_collecting(node, "compstor0", grep(books[0]))
    assert isinstance(outcome, InSituError)
    assert "DEVICE_UNAVAILABLE" in str(outcome)
    assert node.compstors[0].controller.faults.commands_refused >= 1


def test_downed_agent_answers_isc_agent_down():
    node, books = build_node()
    plan = FaultPlan().crash_agent(0, "compstor0", at=node.sim.now, restart_after=None)
    FaultInjector.for_node(node, plan).start()
    outcome = send_collecting(node, "compstor0", grep(books[0]))
    assert isinstance(outcome, InSituError)
    assert "ISC_AGENT_DOWN" in str(outcome)


def test_agent_crash_mid_minion_aborts_not_timeout():
    """An infrastructure kill is ABORTED (retryable); it must not be
    confused with the watchdog's TIMEOUT (a final outcome)."""
    t0, roundtrip = minion_roundtrip()
    node, books = build_node()
    plan = FaultPlan().crash_agent(
        0, "compstor0", at=t0 + roundtrip / 2, restart_after=None
    )
    injector = FaultInjector.for_node(node, plan).start()
    outcome = send_collecting(node, "compstor0", grep(books[0]))
    assert isinstance(outcome, InSituError)
    assert "aborted" in str(outcome)
    agent = node.compstors[0].agent
    assert agent.minions_aborted == 1
    assert agent.watchdog_kills == 0
    assert injector.minions_killed == 1


def test_agent_restart_recovers_minion_with_retries():
    t0, roundtrip = minion_roundtrip()
    node, books = build_node(retry_policy=RetryPolicy(max_attempts=10))
    plan = FaultPlan().crash_agent(
        0, "compstor0", at=t0 + roundtrip / 2, restart_after=1e-3
    )
    FaultInjector.for_node(node, plan).start()
    outcome = send_collecting(node, "compstor0", grep(books[0]))
    assert not isinstance(outcome, InSituError)
    assert outcome.response.ok
    assert node.client.retries > 0
    agent = node.compstors[0].agent
    assert agent.faults.restarts == 1
    assert agent.telemetry().agent_restarts == 1


def test_transient_window_is_ridden_out_by_retries():
    node, books = build_node(retry_policy=RetryPolicy(max_attempts=10))
    plan = FaultPlan().transient_window(
        0, "compstor0", at=node.sim.now, duration=1e-3, fraction=1.0
    )
    FaultInjector.for_node(node, plan).start()
    outcome = send_collecting(node, "compstor0", grep(books[0]))
    assert outcome.response.ok
    assert node.client.retries > 0
    faults = node.compstors[0].controller.faults
    assert faults.transients_injected > 0
    assert faults.transient_fraction == 0.0  # window closed on recovery


def test_limping_device_finishes_later():
    _, healthy = minion_roundtrip()
    node, books = build_node()
    plan = FaultPlan().limp(0, "compstor0", at=node.sim.now, factor=16.0)
    FaultInjector.for_node(node, plan).start()
    t0 = node.sim.now
    outcome = send_collecting(node, "compstor0", grep(books[0]))
    assert outcome.response.ok  # limping devices still answer correctly
    assert node.sim.now - t0 > healthy


def test_breaker_fences_off_a_dead_device():
    node, books = build_node(breaker_config=BreakerConfig(failure_threshold=2))
    plan = FaultPlan().kill_device(0, "compstor0", at=node.sim.now)
    FaultInjector.for_node(node, plan).start()
    first = send_collecting(node, "compstor0", grep(books[0]))
    second = send_collecting(node, "compstor0", grep(books[0]))
    assert isinstance(first, InSituError) and isinstance(second, InSituError)
    assert node.client.breaker_state("compstor0") == CircuitBreaker.OPEN
    third = send_collecting(node, "compstor0", grep(books[0]))
    assert isinstance(third, BreakerOpen)  # no wire traffic, failed locally
    assert node.client.breaker_states() == {"compstor0": "open"}


def test_gather_return_exceptions_keeps_slot_alignment():
    node, books = build_node(devices=2)
    plan = FaultPlan().kill_device(0, "compstor1", at=node.sim.now)
    FaultInjector.for_node(node, plan).start()
    shares = node.device_books(books)
    assignments = [
        (device, grep(book)) for device in ("compstor0", "compstor1")
        for book in shares[device]
    ]

    def job():
        return (yield from node.client.gather(assignments, return_exceptions=True))

    outcomes = node.sim.run(node.sim.process(job()))
    assert len(outcomes) == len(assignments)
    assert outcomes[0].ok  # compstor0 survived
    assert isinstance(outcomes[1], InSituError)  # compstor1 slot holds its error


def test_spans_never_leak_on_failed_delivery():
    """Satellite fix: the minion's root span must end even when delivery
    dies — try/finally in send_minion, idempotent Span.end."""
    tracer = Tracer()
    node, books = build_node(tracer=tracer)
    plan = FaultPlan().kill_device(0, "compstor0", at=node.sim.now)
    FaultInjector.for_node(node, plan).start()
    outcome = send_collecting(node, "compstor0", grep(books[0]))
    assert isinstance(outcome, InSituError)
    started = sorted(
        r.detail["span"] for r in tracer.records if r.kind == "span.start"
    )
    ended = sorted(r.detail["span"] for r in tracer.records if r.kind == "span.end")
    assert started and started == ended
    # the failure path annotated the end with its status
    (end_record,) = [r for r in tracer.records if r.kind == "span.end"]
    assert end_record.detail.get("status") == "DEVICE_UNAVAILABLE"


def test_injector_validates_targets_and_single_start():
    node, _ = build_node()
    bad = FaultPlan().kill_device(3, "compstor9", at=1e-3)
    with pytest.raises(KeyError):
        FaultInjector.for_node(node, bad).start()
    injector = FaultInjector.for_node(node, FaultPlan())
    injector.start()
    with pytest.raises(RuntimeError):
        injector.start()


def test_injector_counts_and_metrics():
    metrics = MetricsRegistry()
    node, books = build_node(retry_policy=RetryPolicy(max_attempts=10))
    plan = FaultPlan().kill_device(0, "compstor0", at=node.sim.now, recover_after=1e-3)
    injector = FaultInjector.for_node(node, plan, metrics=metrics).start()
    outcome = send_collecting(node, "compstor0", grep(books[0]))
    assert outcome.response.ok  # device recovered, retries got through
    counts = injector.recovery_counts()
    assert counts["device_crashes"] == 1
    assert counts["device_recoveries"] == 1
    assert counts["commands_refused"] >= 1
    assert [desc for _, desc in injector.applied] == [
        plan.events()[0].describe(),
        f"recovered: {plan.events()[0].describe()}",
    ]
    assert metrics["faults.injected"].total() == 1
    assert metrics["faults.recovered"].total() == 1
