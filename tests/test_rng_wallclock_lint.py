"""Source lint: determinism leaks.

Every run of the simulator must be reproducible from ``(seed, model)``.
Two classes of code break that silently:

* **unseeded randomness** — ``random.random()``, the global numpy RNG
  (``np.random.rand`` etc.), or ``random.seed()`` resetting global state;
  all model randomness must flow through ``Simulator.rng(stream)``;
* **wall-clock reads** — ``time.time()``, ``perf_counter``,
  ``datetime.now``: simulation time is ``sim.now``, never the host clock.

This test greps ``src/`` and the test trees for both.  The perf harness
measures the host *on purpose* and is allowlisted, as are the benchmark
files that time best-of-N loops.  Add to the allowlist only with a comment
saying why the file genuinely needs the host clock or ambient entropy.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

#: (pattern, reason) pairs; patterns are matched per source line.
FORBIDDEN: list[tuple[re.Pattern, str]] = [
    (
        re.compile(
            r"\brandom\.(random|randint|choice|shuffle|uniform|sample|"
            r"randrange|gauss|seed)\s*\("
        ),
        "stdlib global RNG (use Simulator.rng)",
    ),
    (
        re.compile(
            r"\b(np|numpy)\.random\.(rand|randn|randint|random|seed|choice|"
            r"shuffle|uniform|normal)\s*\("
        ),
        "numpy global RNG (use Simulator.rng)",
    ),
    (
        re.compile(r"\btime\.(time|perf_counter|monotonic|process_time)\s*\("),
        "wall clock (use sim.now)",
    ),
    (
        re.compile(r"\bdatetime\.(now|utcnow|today)\s*\("),
        "wall clock (use sim.now)",
    ),
]

#: Files that measure the host deliberately.
ALLOWLIST = {
    "src/repro/analysis/perf.py",  # the wall-clock perf harness itself
    "src/repro/parallel/jobs.py",  # per-job wall timing (host, not model)
    "src/repro/parallel/runner.py",  # run wall timing (host, not model)
    "benchmarks/test_fault_overhead.py",  # best-of-N wall timing
    "benchmarks/test_obs_overhead.py",  # best-of-N wall timing
    "benchmarks/test_perf_guard.py",  # consumes the perf harness
    "benchmarks/perf/ab_compare.py",  # interleaved A/B wall timing
    "benchmarks/perf/ab_shard.py",  # interleaved A/B wall timing (shard)
    "tests/test_rng_wallclock_lint.py",  # this file quotes the patterns
}


def _source_files() -> list[Path]:
    files: list[Path] = []
    for tree in ("src", "tests", "benchmarks"):
        files.extend(sorted((REPO / tree).rglob("*.py")))
    assert files, "lint found no sources — repo layout changed?"
    return files


def test_no_unseeded_rng_or_wallclock():
    violations: list[str] = []
    for path in _source_files():
        rel = path.relative_to(REPO).as_posix()
        if rel in ALLOWLIST:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            stripped = line.split("#", 1)[0]  # ignore commented-out code
            for pattern, reason in FORBIDDEN:
                if pattern.search(stripped):
                    violations.append(f"{rel}:{lineno}: {reason}: {line.strip()}")
    assert not violations, "determinism leaks found:\n" + "\n".join(violations)


def test_allowlist_entries_exist():
    """Stale allowlist entries hide future violations under old names."""
    missing = [rel for rel in sorted(ALLOWLIST) if not (REPO / rel).exists()]
    assert not missing, f"allowlisted files no longer exist: {missing}"
