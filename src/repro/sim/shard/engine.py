"""Sharded scenario runs: partition, synchronize, execute, fingerprint.

:class:`ShardRun` assembles the whole machine — topology, device cells,
host domain, workload driver, conservative engine — in three phases so the
benchmark harness can time exactly the synchronized round loop:

- :meth:`ShardRun.prepare` builds cells, stages the corpus, aligns every
  clock to the staging barrier, arms faults, and primes the engine;
- :meth:`ShardRun.execute` runs the engine to quiescence (the timed
  region);
- :meth:`ShardRun.finish` collects per-cell fingerprints and the workload
  scorecard into a digestable payload, and tears down any workers.

Two backends share the engine unchanged: ``sequential`` loops every cell
in-process (the differential oracle at ``shards=1``, and the fast path on
small machines — per-cell event queues stay tiny, so the per-event cost
does not grow with fleet size the way one monolithic heap does);
``process`` fans shard groups out to spawn workers over pipes, reusing the
``repro.parallel`` spawn-pool conventions.  Because every horizon the
engine computes is a function of global domain state, both backends at any
``--shards`` value produce byte-identical schedules — the property
``tests/test_shard_equivalence.py`` pins.

``run_shard_cell`` wraps it all as a module-path-addressable, JSON-in /
JSON-out job for the matrix/cache/CLI layers, like the drill cells in
:mod:`repro.service.drill`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.config.schema import SHARD_BACKENDS, ScenarioConfig, ShardingConfig
from repro.sim.core import SimulationError, Simulator
from repro.sim.shard.cell import DeviceCell
from repro.sim.shard.host import HostDomain
from repro.sim.shard.protocol import (
    CellStep,
    ConservativeEngine,
    EngineStats,
    ShardMessage,
    plan_shards,
    sequential_stepper,
)
from repro.sim.shard.workload import JobDrill, TrafficDrill, build_topology

__all__ = ["ShardRun", "run_shard_cell", "shard_lookahead"]

#: Default modeled host dispatch window, in microseconds of simulated
#: time, applied when the scenario does not pin one.  Host-issued work
#: (minion submissions) carries this extra latency on top of the link hop;
#: in exchange sync-round counts stay proportional to dispatch bursts
#: rather than simulated time over a raw half-microsecond link latency
#: (DESIGN.md §14).  Traffic runs default wider: arrival streams span much
#: more simulated time than one batch drill.
DEFAULT_WINDOW_US = 20.0
DEFAULT_TRAFFIC_WINDOW_US = 50.0


def shard_lookahead(window_us: float = 0.0) -> float:
    """The host->cell lookahead: one ``pcie.link`` hop plus the window.

    Every cross-boundary interaction traverses at least one fabric link,
    whose propagation+serdes latency (``LinkParams.latency``) is a lower
    bound on delivery time — the classic conservative-sync lookahead.
    With ``window_us == 0`` this is also the cell->host lookahead.
    """
    from repro.pcie.link import LinkParams

    return LinkParams().latency + window_us * 1e-6


# ---------------------------------------------------------------------------
# process backend
# ---------------------------------------------------------------------------


def _shard_worker(
    conn, scenario: dict, indices: list[int], window_us: float, trace: bool
) -> None:
    """One spawn worker owning a contiguous group of device cells.

    Workers regenerate the corpus and topology from the scenario dict
    (deterministically — the dict is the entire input) instead of shipping
    book bytes over the pipe.
    """
    from repro.config.codec import scenario_from_dict
    from repro.config.factory import build_corpus, build_fault_plan
    from repro.sim.shard.workload import build_topology as _build_topology
    from repro.testing import reset_global_ids

    config = scenario_from_dict(scenario)
    reset_global_ids()
    books = build_corpus(config)
    topology = _build_topology(config, books)
    reply = shard_lookahead(0.0) + shard_lookahead(window_us)  # to_host + to_cell
    cells = [
        DeviceCell(config, topology.ring, i, reply, trace=trace) for i in indices
    ]
    try:
        staged = {cell.name: cell.stage(topology.staged[cell.ring_index]) for cell in cells}
        conn.send(("staged", staged))
        while True:
            op, *args = conn.recv()
            if op == "arm":
                (base,) = args
                for cell in cells:
                    cell.align(base)
                plan = build_fault_plan(config, topology.ring, base_time=base)
                if plan is not None:
                    for cell in cells:
                        cell.arm_faults(plan)
                conn.send(("ready", {cell.name: cell.next_action() for cell in cells}))
            elif op == "round":
                bounds, deliveries = args
                steps: dict[str, CellStep] = {}
                for cell in cells:
                    inbox = deliveries.get(cell.name)
                    if inbox is None and cell.can_skip(bounds[cell.name]):
                        steps[cell.name] = CellStep(
                            next_action=cell.next_action(), outbox=[], events=0
                        )
                        continue
                    for message, at in inbox or ():
                        cell.deliver(message, at)
                    events = cell.run_segment(bounds[cell.name])
                    steps[cell.name] = CellStep(
                        next_action=cell.next_action(),
                        outbox=cell.drain_outbox(),
                        events=events,
                    )
                conn.send(("stepped", steps))
            elif op == "finish":
                conn.send(("done", [cell.fingerprint() for cell in cells]))
                return
            else:  # pragma: no cover - protocol guard
                raise ValueError(f"unknown op {op!r}")
    except Exception as exc:  # pragma: no cover - crash relay
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        raise
    finally:
        conn.close()


class _WorkerPool:
    """Spawn workers, one per shard group, speaking the pipe protocol."""

    def __init__(
        self, scenario: dict, groups: list[range], window_us: float, trace: bool
    ):
        import multiprocessing

        from repro.parallel.runner import (
            _ensure_importable_children,
            _restore_pythonpath,
        )

        self._groups = groups
        self._cells_of: list[list[str]] = [
            [f"cell{i}" for i in group] for group in groups
        ]
        context = multiprocessing.get_context("spawn")
        self._conns = []
        self._procs = []
        _src, previous = _ensure_importable_children()
        try:
            for group in groups:
                parent, child = context.Pipe()
                proc = context.Process(
                    target=_shard_worker,
                    args=(child, scenario, list(group), window_us, trace),
                    daemon=True,
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        finally:
            _restore_pythonpath(previous)

    def _recv(self, conn, expect: str):
        tag, value = conn.recv()
        if tag == "error":
            self.close()
            raise SimulationError(f"shard worker failed: {value}")
        if tag != expect:  # pragma: no cover - protocol guard
            raise SimulationError(f"expected {expect!r} from worker, got {tag!r}")
        return value

    def collect_staged(self) -> dict[str, float]:
        staged: dict[str, float] = {}
        for conn in self._conns:
            staged.update(self._recv(conn, "staged"))
        return staged

    def arm(self, base: float) -> dict[str, float]:
        for conn in self._conns:
            conn.send(("arm", base))
        ready: dict[str, float] = {}
        for conn in self._conns:
            ready.update(self._recv(conn, "ready"))
        return ready

    def stepper(self):
        def step(
            bounds: dict[str, float],
            deliveries: dict[str, list[tuple[ShardMessage, float]]],
        ) -> dict[str, CellStep]:
            for conn, cells in zip(self._conns, self._cells_of):
                subset = {name: deliveries[name] for name in cells if name in deliveries}
                group_bounds = {name: bounds[name] for name in cells}
                conn.send(("round", group_bounds, subset))
            steps: dict[str, CellStep] = {}
            for conn in self._conns:
                steps.update(self._recv(conn, "stepped"))
            return steps

        return step

    def finish(self) -> list[dict]:
        for conn in self._conns:
            conn.send(("finish",))
        fingerprints: list[dict] = []
        for conn in self._conns:
            fingerprints.extend(self._recv(conn, "done"))
        self.close()
        return fingerprints

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        for proc in self._procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - teardown best effort
                proc.terminate()
        self._conns = []
        self._procs = []


# ---------------------------------------------------------------------------
# the run
# ---------------------------------------------------------------------------


class ShardRun:
    """One sharded scenario execution, split for benchmarking.

    Call :meth:`prepare`, :meth:`execute`, :meth:`finish` in order; or use
    :func:`run_shard_cell` for the whole sequence.  Keyword overrides win
    over the scenario's ``sharding`` section, so one config can be swept
    across shard counts and backends without re-digesting.
    """

    def __init__(
        self,
        config: ScenarioConfig,
        *,
        shards: int | None = None,
        backend: str | None = None,
        workload: str = "auto",
        apps: tuple[str, ...] = ("grep",),
        window_us: float | None = None,
        trace: bool = True,
    ):
        sharding = config.sharding or ShardingConfig()
        self.config = config
        self.shards = sharding.shards if shards is None else shards
        self.backend = sharding.backend if backend is None else backend
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard backend {self.backend!r}; use {SHARD_BACKENDS}"
            )
        if workload == "auto":
            workload = "traffic" if config.traffic is not None else "jobs"
        if workload not in ("jobs", "traffic"):
            raise ValueError(f"unknown workload {workload!r}; use jobs|traffic")
        self.workload_kind = workload
        window = sharding.window_us if window_us is None else window_us
        if window == 0.0:
            window = (
                DEFAULT_TRAFFIC_WINDOW_US if workload == "traffic" else DEFAULT_WINDOW_US
            )
        self.window_us = window
        self.to_host = shard_lookahead(0.0)
        self.to_cell = shard_lookahead(window)
        self.reply_latency = self.to_host + self.to_cell
        self.apps = tuple(apps)
        self.trace = trace
        self.base = 0.0
        self.stats: EngineStats | None = None
        self._cells: list[DeviceCell] = []
        self._pool: _WorkerPool | None = None

    # -- phase 1 ----------------------------------------------------------------
    def prepare(self) -> None:
        from repro.config.codec import to_dict
        from repro.config.factory import build_corpus, build_fault_plan
        from repro.testing import reset_global_ids

        config = self.config
        reset_global_ids()
        self.books = build_corpus(config)
        self.topology = build_topology(config, self.books)
        ring_size = len(self.topology.ring)
        self.groups = plan_shards(ring_size, self.shards)
        cell_names = [f"cell{i}" for i in range(ring_size)]

        if self.backend == "process":
            scenario = to_dict(config)
            self._pool = _WorkerPool(
                scenario, self.groups, self.window_us, self.trace
            )
            staged = self._pool.collect_staged()
            self.base = max(staged.values())
            primed = self._pool.arm(self.base)
            stepper = self._pool.stepper()
        else:
            self._cells = [
                DeviceCell(
                    config, self.topology.ring, i, self.reply_latency, trace=self.trace
                )
                for i in range(ring_size)
            ]
            staged = {
                cell.name: cell.stage(self.topology.staged[cell.ring_index])
                for cell in self._cells
            }
            self.base = max(staged.values())
            plan = build_fault_plan(config, self.topology.ring, base_time=self.base)
            for cell in self._cells:
                cell.align(self.base)
                if plan is not None:
                    cell.arm_faults(plan)
            primed = {cell.name: cell.next_action() for cell in self._cells}
            stepper = sequential_stepper(self._cells)

        host_sim = Simulator(seed=config.seed)
        self.host = HostDomain(host_sim, self.reply_latency)
        if self.workload_kind == "traffic":
            self.workload = TrafficDrill(
                self.host, self.topology, config, self.books, self.base
            )
        else:
            self.workload = JobDrill(self.host, self.topology, self.apps, self.base)
        self.workload.start()
        self.engine = ConservativeEngine(
            self.host, cell_names, stepper, self.to_cell, self.to_host
        )
        self.engine.prime(primed)

    # -- phase 2 (the timed region) ---------------------------------------------
    def execute(self) -> EngineStats:
        try:
            self.stats = self.engine.run()
        except BaseException:
            self.close()
            raise
        return self.stats

    # -- phase 3 ----------------------------------------------------------------
    def finish(self) -> dict:
        from repro.parallel.jobs import payload_digest

        if self.stats is None:
            raise SimulationError("execute() must run before finish()")
        if self._pool is not None:
            fingerprints = self._pool.finish()
            self._pool = None
        else:
            fingerprints = [cell.fingerprint() for cell in self._cells]
        fingerprints.sort(key=lambda fp: int(fp["cell"][4:]))
        stats = self.stats
        cell_events = sum(fp["events"] for fp in fingerprints)
        result = {
            "scenario": self.config.name,
            "workload": self.workload_kind,
            "cells": len(fingerprints),
            "lookahead_us": {
                "to_cell": round(self.to_cell * 1e6, 9),
                "to_host": round(self.to_host * 1e6, 9),
            },
            "window_us": self.window_us,
            "base_time_us": round(self.base * 1e6, 9),
            "rounds": stats.rounds,
            "events": {
                "host": self.host.sim.events_processed,
                "cells": cell_events,
                "total": self.host.sim.events_processed + cell_events,
            },
            "messages": {
                "sent": stats.sent,
                "delivered": stats.delivered,
                "in_flight": stats.in_flight,
            },
            "scorecard": self.workload.scorecard(),
            "cell_fingerprints": fingerprints,
        }
        result["digest"] = payload_digest(result)
        return {
            "result": result,
            "run": {
                "shards": self.shards,
                "backend": self.backend,
                "groups": [len(group) for group in self.groups],
            },
        }

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None


def run_shard_cell(
    scenario: Mapping[str, Any] | None = None,
    shards: int | None = None,
    backend: str | None = None,
    workload: str = "auto",
    apps: tuple[str, ...] = ("grep",),
    window_us: float | None = None,
    trace: bool = True,
) -> dict:
    """Run one sharded scenario end to end; return the digestable payload.

    Module-path addressable and hermetic (the scenario dict plus keyword
    overrides are the entire input), so the parallel runner can cache it
    and ``--workers N`` replays are byte-identical.
    """
    from repro.config.codec import scenario_from_dict
    from repro.config.presets import preset

    config = (
        scenario_from_dict(scenario) if scenario is not None else preset("smoke")
    )
    run = ShardRun(
        config,
        shards=shards,
        backend=backend,
        workload=workload,
        apps=tuple(apps),
        window_us=window_us,
        trace=trace,
    )
    run.prepare()
    try:
        run.execute()
        return run.finish()
    finally:
        run.close()
