"""A conventional (no in-situ processing) NVMe SSD."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.calibration import DEVICE_CONTROLLER_W
from repro.ecc import EccConfig, EccEngine
from repro.flash import FlashArray, FlashGeometry
from repro.ftl import FtlConfig, create_backend
from repro.nvme import NvmeController
from repro.obs.metrics import MetricsRegistry
from repro.pcie.switch import PciePort
from repro.power import PowerMeter
from repro.sim import Simulator, Tracer

if TYPE_CHECKING:  # pragma: no cover - annotation only (avoids a config cycle)
    from repro.config.schema import DeviceBackendConfig, NvmeConfig

__all__ = ["ConventionalSSD", "small_geometry"]


def small_geometry(capacity_bytes: int = 64 * 1024 * 1024, channels: int = 8) -> FlashGeometry:
    """A simulation-friendly geometry with realistic parallelism."""
    base = FlashGeometry(
        channels=channels,
        dies_per_channel=2,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=16,
        page_size=16384,
    )
    return base.scaled(capacity_bytes)


class ConventionalSSD:
    """Storage-only NVMe drive: flash + ECC + FTL + front-end."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "ssd",
        geometry: FlashGeometry | None = None,
        port: PciePort | None = None,
        meter: PowerMeter | None = None,
        store_data: bool = True,
        ftl_config: FtlConfig | None = None,
        ecc_config: EccConfig | None = None,
        nvme_config: "NvmeConfig | None" = None,
        device_config: "DeviceBackendConfig | None" = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.sim = sim
        self.name = name
        self.meter = meter
        sink = meter.sink if meter is not None else None
        self.flash = FlashArray(
            sim,
            geometry=geometry or small_geometry(),
            name=f"{name}.flash",
            energy_sink=sink,
            store_data=store_data,
            tracer=tracer,
        )
        self.ecc = EccEngine(sim, ecc_config, name=f"{name}.ecc", energy_sink=sink)
        # ``device_config`` selects the translation backend from the
        # registry; None (and an explicit default ``page``) constructs the
        # historical page-mapped FTL with byte-identical arguments, so
        # golden schedules are unchanged for default scenarios.
        backend = "page" if device_config is None else device_config.backend
        knobs = (
            {}
            if device_config is None or backend == "page"
            else {
                "zone_blocks": device_config.zone_blocks,
                "max_open_zones": device_config.max_open_zones,
            }
        )
        self.ftl = create_backend(
            backend, sim, self.flash, self.ecc, config=ftl_config,
            name=f"{name}.ftl", tracer=tracer, metrics=metrics, **knobs,
        )
        # NvmeConfig's defaults mirror the controller's, so None and a
        # default-constructed config build identical front ends
        front = {} if nvme_config is None else {
            "queue_pairs": nvme_config.queue_pairs,
            "queue_depth": nvme_config.queue_depth,
            "workers_per_queue": nvme_config.workers_per_queue,
            "firmware_latency": nvme_config.firmware_latency,
            "firmware_cycles": nvme_config.firmware_cycles,
        }
        self.controller = NvmeController(
            sim, self.ftl, port=port, name=f"{name}.nvme", tracer=tracer,
            metrics=metrics, **front,
        )
        if meter is not None:
            meter.register_static(f"{name}.controller.static", DEVICE_CONTROLLER_W)
            meter.register_static(
                f"{name}.flash.static",
                self.flash.energy.idle_power(self.flash.geometry.dies),
            )

    @property
    def capacity_bytes(self) -> int:
        return self.ftl.logical_capacity_bytes

    def queue(self, index: int = 0):
        return self.controller.queue(index)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "capacity_bytes": self.capacity_bytes,
            "channels": self.flash.geometry.channels,
            "isc": False,
        }
