"""Unit tests for the Command/Response/Minion/Query entities."""

import pytest

from repro.proto import Command, Minion, Query, QueryKind, Response, ResponseStatus


def test_command_requires_exactly_one_body():
    with pytest.raises(ValueError):
        Command()
    with pytest.raises(ValueError):
        Command(command_line="ls", script="ls\nls")
    Command(command_line="ls")
    Command(script="ls\ngrep x f")


def test_command_wire_bytes_scales_with_content():
    small = Command(command_line="ls")
    big = Command(command_line="grep " + "x" * 500 + " file", input_files=("file",))
    assert big.wire_bytes > small.wire_bytes
    assert small.wire_bytes >= 128  # header floor


def test_minion_lifecycle_fields():
    minion = Minion(command=Command(command_line="ls"), created_at=1.0)
    assert not minion.done
    assert minion.round_trip_seconds is None
    minion.response = Response(status=ResponseStatus.OK, stdout=b"ok")
    minion.completed_at = 3.5
    assert minion.done
    assert minion.round_trip_seconds == pytest.approx(2.5)


def test_minion_ids_unique():
    a = Minion(command=Command(command_line="ls"))
    b = Minion(command=Command(command_line="ls"))
    assert a.minion_id != b.minion_id


def test_minion_nbytes_includes_response():
    minion = Minion(command=Command(command_line="ls"))
    bare = minion.nbytes
    minion.response = Response(stdout=b"x" * 1000)
    assert minion.nbytes > bare + 900


def test_response_ok_property():
    assert Response(status=ResponseStatus.OK).ok
    assert not Response(status=ResponseStatus.APP_ERROR).ok
    assert not Response(status=ResponseStatus.CRASHED).ok
    assert not Response(status=ResponseStatus.REJECTED).ok


def test_query_wire_sizes():
    status = Query(kind=QueryKind.STATUS)
    load = Query(kind=QueryKind.LOAD_EXECUTABLE, payload=object())
    assert load.wire_bytes > status.wire_bytes  # executables ship an image
    assert status.nbytes > 0


def test_query_ids_unique():
    a = Query(kind=QueryKind.PING)
    b = Query(kind=QueryKind.PING)
    assert a.query_id != b.query_id
