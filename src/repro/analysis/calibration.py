"""Every magic number in one place, with its derivation.

Timing/energy constants elsewhere in the tree model *hardware* (NAND, PCIe,
CPU specs) from public datasheets.  This module holds the *workload*
calibration: application cycles-per-byte on each ISA, compressibility
ratios, and the paper's published Fig. 8 targets.

Derivation of the cycles-per-byte tables
----------------------------------------

The paper reports energy per gigabyte of input (Fig. 8) for six apps on two
platforms.  Working the attribution model backwards:

* **Xeon runs** measure whole-server wall power.  With all 8 cores busy the
  server draws ~140 W (18 W package idle + 8x8 W active cores + 8 W DRAM +
  ~50 W platform).  Energy/byte = P * cpb / (cores * freq) gives::

      cpb_xeon = E_per_byte * 8 * 2.1e9 / 140

* **CompStor runs** attribute device-only power (~6 W: ISPS ~2 W busy,
  controller ~3 W, device DRAM ~1.5 W, NAND idle) — consistent with the
  paper's note that its per-GB numbers are independent of the number of
  CompStors, which only holds if the (fixed) host idle power is excluded::

      cpb_a53 = E_per_byte * 4 * 1.5e9 / 6

Applying those to the published J/GB values yields the tables below.  Sanity
checks: Xeon bzip2 at 315 cpb is ~6.7 MB/s/core and gzip at 175 cpb is
~12 MB/s/core — textbook numbers for big text; the A53/Xeon cpb ratio lands
between 2.5x and 5.5x, bracketing the 2.2x IPC gap plus cache/memory-system
disadvantages of an in-order core.
"""

from __future__ import annotations

__all__ = [
    "ARM_ISA",
    "XEON_ISA",
    "CYCLES_PER_BYTE",
    "ANALYTIC_COMPRESSION_RATIO",
    "PAPER_FIG8_J_PER_GB",
    "HOST_PLATFORM_IDLE_W",
    "HOST_DRAM_W",
    "DEVICE_CONTROLLER_W",
    "DEVICE_DRAM_W",
    "cycles_for",
]

#: ISA keys used by :class:`repro.isos.loader.ExecContext`.
ARM_ISA = "arm-a53"
XEON_ISA = "xeon"

#: Core clock cycles consumed per byte of *input* processed.
CYCLES_PER_BYTE: dict[str, dict[str, float]] = {
    "gzip": {XEON_ISA: 175.0, ARM_ISA: 880.0},
    "gunzip": {XEON_ISA: 62.0, ARM_ISA: 178.0},
    "bzip2": {XEON_ISA: 315.0, ARM_ISA: 1717.0},
    "bunzip2": {XEON_ISA: 560.0, ARM_ISA: 1908.0},
    "grep": {XEON_ISA: 27.0, ARM_ISA: 68.0},
    "gawk": {XEON_ISA: 35.0, ARM_ISA: 89.0},
    "filter": {XEON_ISA: 28.0, ARM_ISA: 70.0},
    # extras beyond the paper's six (used by examples/extensions)
    "wc": {XEON_ISA: 12.0, ARM_ISA: 34.0},
    "cat": {XEON_ISA: 1.0, ARM_ISA: 3.0},
    "echo": {XEON_ISA: 1.0, ARM_ISA: 3.0},
    "ls": {XEON_ISA: 1.0, ARM_ISA: 3.0},
    "sha1sum": {XEON_ISA: 9.0, ARM_ISA: 28.0},
}

#: Output/input size ratio assumed in analytic mode (no real bytes moved).
#: Functional mode measures the true ratio from zlib/bz2.
ANALYTIC_COMPRESSION_RATIO: dict[str, float] = {
    "gzip": 0.36,
    "bzip2": 0.30,
}

#: Fig. 8 reference values, J/GB, as (CompStor, Xeon E5-2620 v4).
#: Assignment of the figure's bar values chosen so the paper's "up to 3X
#: energy saving" claim holds (see DESIGN.md section 4).
PAPER_FIG8_J_PER_GB: dict[str, tuple[float, float]] = {
    "gzip": (880.9, 1462.0),
    "gunzip": (177.6, 522.0),
    "bzip2": (1717.0, 2621.4),
    "bunzip2": (1908.0, 4666.0),
    "grep": (68.5, 222.7),
    "gawk": (89.17, 295.4),
}

#: Host platform (motherboard, fans, PSU loss, NIC) — drawn whenever the
#: server is on; dominates the Xeon-side wall measurement.
HOST_PLATFORM_IDLE_W = 50.0
#: Host DRAM (32 GB DDR4).
HOST_DRAM_W = 8.0
#: SSD controller logic (front-end + flash controller, FPGA in the
#: prototype; an ASIC would be lower — the paper notes ISPS adds <8% cost).
DEVICE_CONTROLLER_W = 2.5
#: Device DRAM (8 GB DDR4 on the ISPS).
DEVICE_DRAM_W = 1.2


def cycles_for(app: str, isa: str, nbytes: int | float) -> float:
    """Cycle cost of ``app`` processing ``nbytes`` on ``isa``."""
    try:
        per_byte = CYCLES_PER_BYTE[app][isa]
    except KeyError as exc:
        raise KeyError(f"no cycle calibration for app={app!r} isa={isa!r}") from exc
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return per_byte * float(nbytes)
