"""Object-oriented storage layer (extension).

The paper (Section II) discusses Seagate Kinetic drives — object stores
accessed by key rather than block address — and argues in-situ processing
is *orthogonal*: "a storage could be either in-situ processing or
object-oriented or both at the same time".  This package demonstrates the
"both" case, twice over:

- a per-device key-value object interface over the in-storage filesystem
  plus an in-situ object-scan executable (:class:`ObjectStore`,
  :class:`ObjScanApp`) — push computation *to* objects;
- a fleet-level deduplicating object store whose write path *is* in-situ
  computation (:class:`DedupObjectStore`): ``chunksum`` minions compute
  content-defined chunk boundaries and per-chunk digests inside each
  drive, so duplicate data never crosses PCIe twice, with digest-placed
  replica chains and stop-the-world GC carrying the durability story.
"""

from repro.objstore.apps import ChunkSumApp, ObjScanApp
from repro.objstore.chunking import ChunkParams, Chunker, chunk_digests, chunk_spans
from repro.objstore.dedup import BlockEntry, DedupObjectStore, DedupStats
from repro.objstore.store import ObjectMeta, ObjectStore, ObjectStoreError
from repro.objstore.workload import ObjectSpec, generate_objects

__all__ = [
    "BlockEntry",
    "ChunkParams",
    "ChunkSumApp",
    "Chunker",
    "DedupObjectStore",
    "DedupStats",
    "ObjScanApp",
    "ObjectMeta",
    "ObjectSpec",
    "ObjectStore",
    "ObjectStoreError",
    "chunk_digests",
    "chunk_spans",
    "generate_objects",
]
