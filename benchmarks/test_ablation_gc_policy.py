"""Ablation — garbage-collection victim policy (greedy vs cost-benefit).

DESIGN.md decision under test: the FTL ships two victim policies.  Under a
skewed (hot/cold) overwrite workload, cost-benefit's age weighting separates
hot and cold blocks and should not lose to greedy on write amplification;
both must stay well below pathological WA.
"""

from repro.analysis.experiments import format_series_table
from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=10,
    pages_per_block=16, page_size=4096,
)


def run_workload(policy: str, rounds: int = 12) -> dict:
    sim = Simulator(seed=5)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9),
                       store_data=False)
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(
        sim, flash, ecc,
        config=FtlConfig(op_ratio=0.25, gc_policy=policy, write_buffer_pages=8),
    )
    rng = sim.rng("workload")
    logical = ftl.logical_pages
    hot = list(range(0, logical // 5))  # 20% of pages take 80% of writes
    cold = list(range(logical // 5, logical))

    def churn():
        # cold data written once
        for lpn in cold:
            yield from ftl.write(lpn, None)
        # hot data overwritten for many rounds
        for _ in range(rounds):
            for lpn in hot:
                yield from ftl.write(lpn, None)
            # sprinkle of cold rewrites (1%)
            for lpn in rng.choice(cold, size=max(1, len(cold) // 100), replace=False):
                yield from ftl.write(int(lpn), None)
        yield from ftl.flush()

    sim.run(sim.process(churn()))
    return {
        "policy": policy,
        "wa": ftl.write_amplification(),
        "collections": ftl.gc.collections,
        "relocated": ftl.gc.pages_relocated,
    }


def test_ablation_gc_policy(benchmark):
    def experiment():
        return run_workload("greedy"), run_workload("cost-benefit")

    greedy, costbenefit = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n" + format_series_table(
        "Ablation — GC policy under 80/20 skewed overwrites",
        ["policy", "write amplification", "collections", "pages relocated"],
        [[g["policy"], g["wa"], g["collections"], g["relocated"]]
         for g in (greedy, costbenefit)],
    ))

    # both policies must keep the device functional and WA sane
    for result in (greedy, costbenefit):
        assert 1.0 <= result["wa"] < 2.5, result
        assert result["collections"] > 0
    # cost-benefit should not relocate dramatically more than greedy on this
    # skew (age weighting avoids copying hot-but-momentarily-valid pages)
    assert costbenefit["relocated"] <= 1.3 * greedy["relocated"] + 16
