"""Minion placement policies.

With many CompStors per node and many concurrent minions, the client must
decide *where* each task runs.  The paper points at telemetry queries
("ARM cores utilization, or temperature... could be used for load
balancing"); we provide two policies and a dispatcher that measures the
difference (the load-balancing ablation bench):

- :class:`RoundRobinBalancer` — oblivious rotation;
- :class:`LeastLoadedBalancer` — queries STATUS and picks the device with
  the lowest load score.

Data-local tasks (a command scanning a file) must run where the file lives;
balancers only place *placeable* work (generation, aggregation, anything
whose inputs are replicated).
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.host.insitu import InSituClient
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.proto.entities import Command, Response

__all__ = ["LeastLoadedBalancer", "MinionDispatcher", "RoundRobinBalancer"]


class RoundRobinBalancer:
    """Rotate through devices regardless of their load."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, client: InSituClient) -> Generator:
        devices = client.devices()
        if not devices:
            raise ValueError("no devices attached")
        choice = devices[self._next % len(devices)]
        self._next += 1
        return choice
        yield  # pragma: no cover - generator protocol


class LeastLoadedBalancer:
    """Query telemetry and pick the least-loaded device.

    Health-aware: crashed devices (no telemetry answer) and devices fenced
    off by an open circuit breaker are excluded, and the load score itself
    penalises devices with a history of killed/aborted minions — degraded
    hardware stops winning placements.
    """

    name = "least-loaded"

    def pick(self, client: InSituClient) -> Generator:
        statuses = yield from client.status_all(return_exceptions=True)
        if not statuses:
            raise ValueError("no devices attached")
        usable = {
            name: snap
            for name, snap in statuses.items()
            if not isinstance(snap, Exception)
            and client.breaker_state(name) != "open"
        }
        if not usable:
            raise ValueError("no reachable devices (all crashed or fenced off)")
        # Ties on load score break by stable attachment order, not name:
        # lexicographic order would put "compstor10" before "compstor2",
        # making fairness results depend on how devices happen to be named.
        order = {name: i for i, name in enumerate(client.devices())}
        return min(usable, key=lambda name: (usable[name].load_score(), order[name]))


class MinionDispatcher:
    """Runs a stream of commands across devices under a placement policy."""

    def __init__(
        self,
        client: InSituClient,
        balancer,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.client = client
        self.balancer = balancer
        self.placements: list[tuple[str, str]] = []  # (device, command)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_placements = self.metrics.counter(
            "cluster.placements", "placement decisions, by device and policy"
        )

    def submit_all(
        self, commands: Sequence[Command], return_exceptions: bool = False
    ) -> Generator:
        """Place and launch every command concurrently; gather responses.

        Placement decisions are made sequentially (telemetry queries are
        cheap) but execution overlaps.  With ``return_exceptions=True``
        each failed delivery yields its :class:`InSituError` in-slot
        instead of destroying the batch.
        """
        procs = []
        for command in commands:
            device = yield from self.balancer.pick(self.client)
            self.placements.append((device, command.command_line or "<script>"))
            if self.metrics.enabled:
                self._m_placements.inc(device=device, policy=self.balancer.name)
            body = (
                self.client._send_collect(device, command)
                if return_exceptions
                else self.client.send_minion(device, command)
            )
            procs.append(self.client.sim.process(body, name=f"dispatch->{device}"))
        results = yield self.client.sim.all_of(procs)
        if return_exceptions:
            return [results[p] for p in procs]
        minions = [results[p] for p in procs]
        return [m.response for m in minions]

    def device_share(self) -> dict[str, int]:
        """How many commands each device received."""
        counts: dict[str, int] = {}
        for device, _ in self.placements:
            counts[device] = counts.get(device, 0) + 1
        return counts


def all_ok(responses: Sequence[Response]) -> bool:
    """Every response completed successfully."""
    return all(r is not None and r.ok for r in responses)
