"""Unit + property tests for the fast-release write buffer in isolation."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ftl.write_buffer import WriteBuffer
from repro.sim import Simulator


def make_buffer(capacity=4, workers=2, delay=1e-4):
    sim = Simulator()
    destaged = []

    def destage(lpn, data):
        yield sim.timeout(delay)
        destaged.append((lpn, data))

    buf = WriteBuffer(sim, capacity, destage, workers=workers)
    return sim, buf, destaged


def drive(sim, gen):
    return sim.run(sim.process(gen))


def test_put_then_flush_destages():
    sim, buf, destaged = make_buffer()

    def flow():
        yield from buf.put(1, b"a")
        yield from buf.put(2, b"b")
        yield from buf.flush()

    drive(sim, flow())
    assert sorted(destaged) == [(1, b"a"), (2, b"b")]
    assert buf.destaged == 2


def test_rewrite_while_buffered_coalesces():
    sim, buf, destaged = make_buffer(workers=1, delay=1e-3)

    def flow():
        yield from buf.put(7, b"v1")
        yield from buf.put(8, b"block the worker")  # occupies the lone worker
        yield from buf.put(7, b"v2")  # 7 still buffered? depends on timing
        yield from buf.flush()

    drive(sim, flow())
    values_for_7 = [d for l, d in destaged if l == 7]
    assert values_for_7[-1] == b"v2"  # last write wins on the media


def test_capacity_backpressure():
    sim, buf, _ = make_buffer(capacity=2, workers=1, delay=5e-3)
    times = []

    def flow():
        for i in range(4):
            yield from buf.put(i, b"x")
            times.append(sim.now)
        yield from buf.flush()

    drive(sim, flow())
    # the first two inserts are immediate; later ones wait for destage slots
    assert times[1] == pytest.approx(0.0)
    assert times[3] > 0.0


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        WriteBuffer(sim, 0, lambda l, d: iter(()))
    with pytest.raises(ValueError):
        WriteBuffer(sim, 1, lambda l, d: iter(()), workers=0)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.integers(0, 5), st.integers(0, 100)),
            st.tuples(st.just("discard"), st.integers(0, 5), st.just(0)),
        ),
        min_size=1,
        max_size=30,
    ),
    workers=st.integers(1, 4),
)
def test_per_lpn_write_order_is_preserved(ops, workers):
    """For each lpn, destaged values appear in the order they were written,
    and the last destaged value is the final non-discarded write."""
    sim = Simulator()
    destaged = []

    def destage(lpn, data):
        yield sim.timeout(1e-4)
        destaged.append((lpn, data))

    buf = WriteBuffer(sim, 3, destage, workers=workers)
    write_log: dict[int, list[int]] = {}

    def flow():
        for op, lpn, value in ops:
            if op == "put":
                yield from buf.put(lpn, value)
                write_log.setdefault(lpn, []).append(value)
            else:
                buf.discard(lpn)
        yield from buf.flush()

    sim.run(sim.process(flow()))
    # per-lpn: the sequence of destaged values is a subsequence of writes
    for lpn, writes in write_log.items():
        seen = [d for l, d in destaged if l == lpn]
        it = iter(writes)
        for value in seen:
            for candidate in it:
                if candidate == value:
                    break
            else:
                pytest.fail(f"lpn {lpn}: destage order {seen} not a subsequence of {writes}")
    # nothing is left anywhere
    assert len(buf) == 0
    assert buf._inflight == 0
