"""Fleet health aggregation: percentiles, alerts, SMART folding, fleet rollup."""

import pytest

from repro.isps import TelemetrySnapshot
from repro.obs import FleetHealth, HealthAggregator, MetricsRegistry


def snap(device="d0", utilization=0.2, temperature=40.0, minions=0,
         processes=0, free=1000, time=1.0):
    return TelemetrySnapshot(
        device=device, time=time, core_utilization=utilization,
        temperature_c=temperature, running_processes=processes,
        active_minions=minions, uptime=time, free_bytes=free,
    )


def smart(bad_blocks=0, media_errors=0, percentage_used=0, wa=1.0, gc=0):
    return {
        "bad_blocks": bad_blocks,
        "media_errors": media_errors,
        "percentage_used": percentage_used,
        "write_amplification": wa,
        "gc_collections": gc,
    }


def test_summary_requires_observations():
    with pytest.raises(ValueError):
        HealthAggregator().summary()


def test_rollup_across_nodes_and_devices():
    agg = HealthAggregator()
    agg.observe_device(0, "d0", snap("d0", utilization=0.2, minions=1, free=100))
    agg.observe_device(0, "d1", snap("d1", utilization=0.4, minions=2, free=200))
    agg.observe_device(1, "d0", snap("d0", utilization=0.6, temperature=50.0, free=300))
    health = agg.summary()
    assert isinstance(health, FleetHealth)
    assert health.nodes == 2
    assert health.devices == 3
    assert health.active_minions == 3
    assert health.mean_utilization == pytest.approx(0.4)
    assert health.max_utilization == pytest.approx(0.6)
    assert health.per_node_utilization == {0: pytest.approx(0.3), 1: pytest.approx(0.6)}
    assert health.max_temperature_c == 50.0
    assert health.total_free_bytes == 600


def test_reobserving_a_device_replaces_it():
    agg = HealthAggregator()
    agg.observe_device(0, "d0", snap(minions=5))
    agg.observe_device(0, "d0", snap(minions=1, time=2.0))
    health = agg.summary()
    assert health.devices == 1
    assert health.active_minions == 1
    assert health.time == 2.0


def test_latency_percentiles_from_raw_samples():
    agg = HealthAggregator()
    agg.observe_device(0, "d0", snap())
    agg.observe_minion_latencies([i / 1000 for i in range(1, 101)])  # 1..100 ms
    health = agg.summary()
    assert health.minion_latency_samples == 100
    assert health.minion_latency_p50 == pytest.approx(0.0505, rel=0.01)
    assert health.minion_latency_p95 <= health.minion_latency_p99
    assert health.minion_latency_p99 <= 0.100 + 1e-9


def test_latency_percentiles_fall_back_to_histogram():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
    for _ in range(90):
        hist.observe(0.005, device="d0")
    for _ in range(10):
        hist.observe(0.5, device="d1")
    agg = HealthAggregator()
    agg.observe_device(0, "d0", snap())
    agg.observe_latency_histogram(hist)
    health = agg.summary()
    assert health.minion_latency_samples == 100
    assert 0.001 < health.minion_latency_p50 <= 0.01
    assert health.minion_latency_p99 > 0.1


def test_smart_folding_sums_and_maxes():
    agg = HealthAggregator()
    agg.observe_device(0, "d0", snap("d0"), smart=smart(bad_blocks=2, gc=10, wa=1.5))
    agg.observe_device(0, "d1", snap("d1"),
                       smart=smart(bad_blocks=1, media_errors=3, gc=5, wa=2.5,
                                   percentage_used=40))
    health = agg.summary()
    assert health.grown_bad_blocks == 3
    assert health.media_errors == 3
    assert health.gc_collections == 15
    assert health.max_write_amplification == 2.5
    assert health.max_percentage_used == 40


def test_alerts_fire_on_thresholds():
    agg = HealthAggregator(utilization_warn=0.9, temperature_warn_c=80.0,
                           percentage_used_warn=90)
    agg.observe_device(0, "hot", snap("hot", utilization=0.95, temperature=85.0),
                       smart=smart(bad_blocks=4, percentage_used=95))
    agg.observe_device(0, "fine", snap("fine"))
    health = agg.summary()
    joined = " ".join(health.alerts)
    assert "node0/hot: cores saturated" in joined
    assert "hot (85C)" in joined
    assert "wear 95%" in joined
    assert "4 grown bad blocks" in joined
    assert "fine" not in joined


def test_health_rows_render_every_attribute():
    agg = HealthAggregator()
    agg.observe_device(0, "d0", snap())
    rows = agg.summary().rows()
    keys = [r[0] for r in rows]
    assert "minion latency p50/p95/p99" in keys
    assert "grown bad blocks" in keys
    assert all(len(r) == 2 for r in rows)


# -- fleet integration ---------------------------------------------------------

def test_fleet_health_end_to_end():
    from repro.cluster import StorageFleet
    from repro.proto import Command
    from repro.workloads import BookCorpus, CorpusSpec

    metrics = MetricsRegistry()
    fleet = StorageFleet.build(nodes=2, devices_per_node=2,
                               device_capacity=24 * 1024 * 1024, metrics=metrics)
    sim = fleet.sim
    books = BookCorpus(CorpusSpec(files=4, mean_file_bytes=32 * 1024)).generate()
    sim.run(sim.process(fleet.stage_corpus(books)))

    def flow():
        yield from fleet.run_job(
            books, lambda b: Command(command_line=f"grep xylophone {b.name}")
        )
        health = yield from fleet.health()
        return health

    health = sim.run(sim.process(flow()))
    assert health.nodes == 2
    assert health.devices == 4
    # latencies came from the client round-trip histogram automatically
    assert health.minion_latency_samples == 4
    assert health.minion_latency_p50 > 0
    # SMART pages were folded in (staging wrote to every device)
    assert health.max_write_amplification >= 1.0
