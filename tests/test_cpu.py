"""Unit tests for CPU cluster and run-queue models."""

import pytest

from repro.cpu import ARM_A53_QUAD, CpuCluster, CpuSpec, RunQueue, XEON_E5_2620_V4
from repro.sim import Simulator


def test_paper_table2_isps_characteristics():
    """Table II: quad-core A53 @ 1.5 GHz, 32KB L1, 1MB L2, 8GB DDR4."""
    assert ARM_A53_QUAD.cores == 4
    assert ARM_A53_QUAD.freq_hz == 1.5e9
    assert ARM_A53_QUAD.l1_kib == 32
    assert ARM_A53_QUAD.l2_kib == 1024
    assert ARM_A53_QUAD.dram_gib == 8


def test_paper_table4_host_cpu():
    assert "E5-2620" in XEON_E5_2620_V4.name
    assert XEON_E5_2620_V4.cores == 8
    assert XEON_E5_2620_V4.dram_gib == 32


def test_xeon_outperforms_a53_per_core():
    """Single-thread perf = freq x ipc; Xeon must lead by ~3x."""
    xeon = XEON_E5_2620_V4.freq_hz * XEON_E5_2620_V4.ipc
    a53 = ARM_A53_QUAD.freq_hz * ARM_A53_QUAD.ipc
    assert 2.0 < xeon / a53 < 5.0


def test_a53_wins_on_efficiency():
    """Perf per active watt must favour the A53 (the paper's energy story)."""
    xeon = XEON_E5_2620_V4.freq_hz * XEON_E5_2620_V4.ipc / XEON_E5_2620_V4.p_active_core
    a53 = ARM_A53_QUAD.freq_hz * ARM_A53_QUAD.ipc / ARM_A53_QUAD.p_active_core
    assert a53 > 2 * xeon


def test_execute_duration():
    sim = Simulator()
    cpu = CpuCluster(sim, ARM_A53_QUAD)

    def flow():
        return (yield from cpu.execute(1.5e9))  # 1 second of cycles

    assert sim.run(sim.process(flow())) == pytest.approx(1.0)


def test_parallelism_capped_by_cores():
    sim = Simulator()
    spec = CpuSpec(name="duo", cores=2, freq_hz=1e9, ipc=1.0, p_active_core=1.0, p_idle=0.5)
    cpu = CpuCluster(sim, spec)
    for _ in range(4):
        sim.process(cpu.execute(1e9))  # 1s each
    sim.run()
    assert sim.now == pytest.approx(2.0)  # 4 tasks / 2 cores


def test_energy_charged_for_active_time():
    sim = Simulator()
    charged = []
    cpu = CpuCluster(sim, ARM_A53_QUAD, energy_sink=lambda n, j: charged.append(j))
    sim.run(sim.process(cpu.execute(1.5e9)))
    assert charged == [pytest.approx(ARM_A53_QUAD.p_active_core * 1.0)]


def test_utilization_and_temperature():
    sim = Simulator()
    cpu = CpuCluster(sim, ARM_A53_QUAD)
    sim.process(cpu.execute(1.5e9))
    sim.run(until=2.0)
    assert cpu.utilization() == pytest.approx(1 / 8)  # 1 of 4 cores for 1 of 2 s
    idle_temp = 35.0 + 4.0 * ARM_A53_QUAD.p_idle
    assert cpu.temperature_c() > idle_temp


def test_cycles_for_instructions_uses_ipc():
    assert XEON_E5_2620_V4.cycles_for_instructions(2.4e9) == pytest.approx(1e9)


def test_spec_validation():
    with pytest.raises(ValueError):
        CpuSpec(name="bad", cores=0, freq_hz=1e9, ipc=1, p_active_core=1, p_idle=1)
    with pytest.raises(ValueError):
        CpuSpec(name="bad", cores=1, freq_hz=-1, ipc=1, p_active_core=1, p_idle=1)
    with pytest.raises(ValueError):
        ARM_A53_QUAD.seconds_for_cycles(-1)


def test_runqueue_slices_interleave_fairly():
    """Two equal tasks on one core finish together (not one after another)."""
    sim = Simulator()
    spec = CpuSpec(name="uni", cores=1, freq_hz=1e9, ipc=1.0, p_active_core=1.0, p_idle=0.1)
    cpu = CpuCluster(sim, spec)
    runq = RunQueue(sim, cpu, quantum=1e-3)
    finish = []

    def task(tag):
        yield from runq.run_cycles(0.5e9)  # 0.5s of work each
        finish.append((tag, sim.now))

    sim.process(task("a"))
    sim.process(task("b"))
    sim.run()
    (t_a, end_a), (t_b, end_b) = sorted(finish, key=lambda x: x[1])
    assert end_b == pytest.approx(1.0, rel=1e-3)
    # fair sharing: the first finisher ends within ~one quantum of the second
    assert end_b - end_a <= 2e-3


def test_runqueue_priority_favours_low_values():
    sim = Simulator()
    spec = CpuSpec(name="uni", cores=1, freq_hz=1e9, ipc=1.0, p_active_core=1.0, p_idle=0.1)
    cpu = CpuCluster(sim, spec)
    runq = RunQueue(sim, cpu, quantum=10e-3)
    order = []

    def task(tag, prio):
        yield sim.timeout(1e-6)  # let both enqueue behind the first quantum
        yield from runq.run_cycles(20e6, priority=prio)
        order.append(tag)

    def hog():
        yield from runq.run_cycles(30e6)

    sim.process(hog())
    sim.process(task("low-prio", 5))
    sim.process(task("high-prio", 1))
    sim.run()
    assert order.index("high-prio") < order.index("low-prio")


def test_runqueue_validation():
    sim = Simulator()
    cpu = CpuCluster(sim, ARM_A53_QUAD)
    with pytest.raises(ValueError):
        RunQueue(sim, cpu, quantum=0)
    runq = RunQueue(sim, cpu)
    with pytest.raises(ValueError):
        sim.run(sim.process(runq.run_cycles(-5)))
