"""Unit tests for the metrics registry, instruments, and exporters."""

import json

import pytest

from repro.obs import MetricsRegistry, NULL_METRICS, to_json_lines, to_prometheus
from repro.obs.metrics import DEFAULT_BUCKETS


# -- counters -----------------------------------------------------------------

def test_counter_accumulates_per_label_set():
    registry = MetricsRegistry()
    counter = registry.counter("ftl.host_reads", "reads")
    counter.inc(device="d0")
    counter.inc(3, device="d0")
    counter.inc(device="d1")
    assert counter.value(device="d0") == 4
    assert counter.value(device="d1") == 1
    assert counter.total() == 5


def test_counter_rejects_negative():
    counter = MetricsRegistry().counter("c")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_bound_counter_shares_state_with_family():
    registry = MetricsRegistry()
    counter = registry.counter("nvme.commands")
    bound = counter.labels(device="d0", opcode="READ")
    bound.inc()
    bound.inc(2)
    assert counter.value(device="d0", opcode="READ") == 3
    # label order must not matter
    assert counter.value(opcode="READ", device="d0") == 3


# -- gauges -------------------------------------------------------------------

def test_gauge_set_and_add():
    gauge = MetricsRegistry().gauge("queue.depth")
    gauge.set(4, queue=0)
    gauge.add(-1, queue=0)
    assert gauge.value(queue=0) == 3
    bound = gauge.labels(queue=1)
    bound.set(7)
    bound.add(1)
    assert gauge.value(queue=1) == 8


# -- histograms ----------------------------------------------------------------

def test_histogram_count_sum_percentiles():
    hist = MetricsRegistry().histogram("lat", buckets=(0.001, 0.01, 0.1, 1.0))
    for v in (0.0005, 0.002, 0.005, 0.05, 0.5):
        hist.observe(v, device="d0")
    assert hist.count(device="d0") == 5
    assert hist.mean(device="d0") == pytest.approx(0.5575 / 5)
    p50 = hist.percentile(0.50, device="d0")
    assert 0.001 < p50 <= 0.01
    # p100 clamps to the observed maximum, even inside the overflow logic
    assert hist.percentile(1.0, device="d0") <= 0.5 + 1e-9


def test_histogram_overflow_bucket_interpolates_min_to_max():
    """Regression: a distribution living entirely in the ``+Inf`` bucket
    used to collapse every quantile to the observed maximum."""
    hist = MetricsRegistry().histogram("lat", buckets=(0.001,))
    hist.observe(5.0)
    hist.observe(9.0)
    assert hist.percentile(0.0) == pytest.approx(5.0)  # true minimum
    assert hist.percentile(0.5) == pytest.approx(7.0)  # midpoint of [min, max]
    assert hist.percentile(0.99) == pytest.approx(8.96)
    assert hist.percentile(1.0) == pytest.approx(9.0)


def test_histogram_percentile_q0_returns_true_minimum():
    """Regression: ``q=0`` used to report the containing bucket's lower
    bound instead of the smallest observation."""
    hist = MetricsRegistry().histogram("lat", buckets=(0.001, 0.01, 0.1))
    hist.observe(0.002)
    hist.observe(0.005)
    assert hist.percentile(0.0) == pytest.approx(0.002)
    # single-observation histogram: every quantile is that observation
    solo = MetricsRegistry().histogram("solo", buckets=(0.001, 0.01))
    solo.observe(0.004)
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert solo.percentile(q) == pytest.approx(0.004)


def test_histogram_aggregate_percentile_merges_min():
    hist = MetricsRegistry().histogram("lat", buckets=(0.001,))
    hist.observe(5.0, device="d0")
    hist.observe(9.0, device="d1")
    assert hist.aggregate_percentile(0.0) == pytest.approx(5.0)
    assert hist.aggregate_percentile(1.0) == pytest.approx(9.0)


def test_histogram_aggregate_percentile_merges_label_sets():
    hist = MetricsRegistry().histogram("lat", buckets=(0.001, 0.01, 0.1))
    hist.observe(0.002, device="d0")
    hist.observe(0.002, device="d1")
    hist.observe(0.05, device="d1")
    merged = hist.aggregate_percentile(0.5)
    assert 0.001 < merged <= 0.01


def test_histogram_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


# -- registry ------------------------------------------------------------------

def test_disabled_registry_is_noop():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("c")
    gauge = registry.gauge("g")
    hist = registry.histogram("h")
    counter.inc(device="d0")
    counter.labels(device="d0").inc()
    gauge.set(1)
    hist.observe(0.5)
    assert counter.samples() == []
    assert gauge.samples() == []
    assert hist.samples() == []


def test_null_metrics_is_shared_and_disabled():
    assert NULL_METRICS.enabled is False
    NULL_METRICS.counter("anything").inc()
    assert NULL_METRICS.counter("anything").samples() == []


def test_registry_memoizes_and_rejects_kind_mismatch():
    registry = MetricsRegistry()
    a = registry.counter("x")
    assert registry.counter("x") is a
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_registry_names_prefix_filter():
    registry = MetricsRegistry()
    registry.counter("ftl.reads")
    registry.counter("ftl.writes")
    registry.counter("nvme.commands")
    assert registry.names("ftl.") == ["ftl.reads", "ftl.writes"]
    assert "nvme.commands" in registry


def test_registry_clock_stamps_samples():
    t = [0.0]
    registry = MetricsRegistry(clock=lambda: t[0])
    counter = registry.counter("c")
    counter.inc()
    t[0] = 2.5
    counter.inc()
    [(labels, value, updated)] = counter.samples()
    assert updated == 2.5
    assert value == 2


def test_keep_series_records_bounded_history():
    t = [0.0]
    registry = MetricsRegistry(clock=lambda: t[0], keep_series=True, series_limit=3)
    counter = registry.counter("c")
    for i in range(5):
        t[0] = float(i)
        counter.inc()
    points = registry.series("c")
    assert len(points) == 3  # ring-capped
    assert points[-1] == (4.0, 5.0)
    assert points[0] == (2.0, 3.0)  # oldest points evicted


# -- exporters -----------------------------------------------------------------

def build_populated_registry():
    registry = MetricsRegistry(clock=lambda: 1.0)
    registry.counter("ftl.gc.collections", "GC runs").inc(2, device="d0")
    registry.gauge("ftl.write_amplification").set(1.25, device="d0")
    hist = registry.histogram("nvme.command.latency_seconds", buckets=(0.001, 0.01))
    hist.observe(0.0005, device="d0")
    hist.observe(0.5, device="d0")
    return registry


def test_prometheus_export_conventions():
    text = to_prometheus(build_populated_registry())
    assert "# HELP repro_ftl_gc_collections_total GC runs" in text
    assert "# TYPE repro_ftl_gc_collections_total counter" in text
    assert 'repro_ftl_gc_collections_total{device="d0"} 2' in text
    assert 'repro_ftl_write_amplification{device="d0"} 1.25' in text
    # histogram: cumulative buckets + +Inf + sum/count
    assert 'repro_nvme_command_latency_seconds_bucket{device="d0",le="0.001"} 1' in text
    assert 'repro_nvme_command_latency_seconds_bucket{device="d0",le="+Inf"} 2' in text
    assert 'repro_nvme_command_latency_seconds_count{device="d0"} 2' in text


def test_prometheus_label_values_are_escaped():
    """Regression: label values hit the exposition text unescaped, so a
    quote/backslash/newline in a value corrupted every following line."""
    registry = MetricsRegistry()
    registry.counter("jobs.completed").inc(job='say "hi"\\n', path="a\nb")
    text = to_prometheus(registry)
    assert '\\"hi\\"' in text  # " -> \"
    assert "\\\\n" in text  # literal backslash-n -> \\n
    assert "a\\nb" in text  # real newline -> \n escape sequence
    # the exposition stays line-structured: one sample line for the family
    sample_lines = [
        line for line in text.splitlines()
        if line.startswith("repro_jobs_completed_total{")
    ]
    assert len(sample_lines) == 1
    assert sample_lines[0].endswith(" 1")


def test_prometheus_histogram_sum_uses_fmt():
    """Regression: ``_sum`` was rendered with ``repr`` (``3.0`` instead of
    the exporter's canonical integer form ``3``)."""
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(0.5,))
    hist.observe(1.0, device="d0")
    hist.observe(2.0, device="d0")
    text = to_prometheus(registry)
    assert 'repro_lat_sum{device="d0"} 3\n' in text
    assert 'repro_lat_sum{device="d0"} 3.0' not in text


def test_json_lines_roundtrip():
    out = to_json_lines(build_populated_registry())
    records = [json.loads(line) for line in out.strip().splitlines()]
    by_name = {r["name"]: r for r in records}
    assert by_name["ftl.gc.collections"]["value"] == 2
    assert by_name["ftl.gc.collections"]["labels"] == {"device": "d0"}
    assert by_name["ftl.gc.collections"]["time"] == 1.0
    hist = by_name["nvme.command.latency_seconds"]
    assert hist["count"] == 2
    assert hist["min"] == 0.0005
    assert hist["max"] == 0.5
    assert hist["buckets"] == {"0.001": 1, "+Inf": 1}


def test_empty_registry_exports_empty():
    registry = MetricsRegistry()
    assert to_prometheus(registry) == ""
    assert to_json_lines(registry) == ""
