"""Golden-schedule regression tests.

Three pinned scenarios run with tracing on; the full trace schedule (every
record's time, component, kind and detail payload) plus the run's terminal
state is canonicalised and hashed.  The digests below were recorded before
the simulator hot-path optimization work and must never drift: any change
to event ordering, timing, or payloads — however small — flips the hash.

This is the contract the perf PRs rely on: "the optimization kept schedules
bit-identical" is proven here, not asserted in prose.  If a PR changes the
*model* on purpose (new latency, new trace record), re-record with::

    PYTHONPATH=src python tests/test_golden_schedules.py

(which runs ``print_digests``) and explain the drift in the PR body.
"""

from __future__ import annotations

import hashlib
from enum import Enum

from repro.cluster import StorageFleet, StorageNode
from repro.faults import BreakerConfig, FaultInjector, FaultPlan, RetryPolicy
from repro.proto import Command
from repro.sim import Tracer
from repro.testing import reset_global_ids
from repro.workloads import BookCorpus, CorpusSpec

# -- canonical hashing ------------------------------------------------------


def _canon(value) -> str:
    """A stable, type-tagged string for anything a trace detail can hold.

    Floats go through ``repr`` (exact shortest round-trip form, so any bit
    change in a computed time shows up); containers recurse in deterministic
    order.
    """
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, bytes):
        return f"y:{value.hex()}"
    if isinstance(value, Enum):
        return f"e:{value.value}"
    if value is None:
        return "n"
    if isinstance(value, dict):
        items = ",".join(
            f"{_canon(k)}={_canon(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return f"d:{{{items}}}"
    if isinstance(value, (list, tuple)):
        return f"l:[{','.join(_canon(v) for v in value)}]"
    return f"r:{value!r}"


def schedule_digest(tracer: Tracer, extras: dict) -> str:
    """SHA-256 over every trace record in emission order, plus terminal state."""
    h = hashlib.sha256()
    for rec in tracer:
        h.update(
            f"{rec.time!r}|{rec.component}|{rec.kind}|{_canon(rec.detail)}\n".encode()
        )
    h.update(_canon(extras).encode())
    return h.hexdigest()


# -- pinned scenarios -------------------------------------------------------


def scenario_single_gzip() -> tuple[Tracer, dict]:
    """One CompStor, one gzip minion over a staged two-book corpus."""
    reset_global_ids()  # hermetic: digests are pure functions of (seed, model)
    tracer = Tracer()
    books = BookCorpus(CorpusSpec(files=2, mean_file_bytes=24 * 1024, seed=3)).generate()
    node = StorageNode.build(
        devices=1, seed=11, device_capacity=24 * 1024 * 1024, tracer=tracer
    )
    sim = node.sim
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))

    def job():
        responses = []
        for book in books:
            response = yield from node.client.run(
                "compstor0", f"gzip {book.name}"
            )
            responses.append(response)
        return responses

    responses = sim.run(sim.process(job()))
    extras = {
        "finished_at": sim.now,
        "stdout": [r.stdout for r in responses],
        "exec_seconds": [r.execution_seconds for r in responses],
        "flash": [
            node.compstors[0].flash.stats.reads,
            node.compstors[0].flash.stats.programs,
        ],
    }
    return tracer, extras


def scenario_fleet_grep() -> tuple[Tracer, dict]:
    """2 nodes x 2 devices, one replicated ``run_job`` grep sweep."""
    reset_global_ids()
    tracer = Tracer()
    fleet = StorageFleet.build(
        nodes=2, devices_per_node=2, seed=7,
        device_capacity=24 * 1024 * 1024, tracer=tracer,
    )
    sim = fleet.sim
    books = BookCorpus(
        CorpusSpec(files=8, mean_file_bytes=24 * 1024, seed=5)
    ).generate()
    sim.run(sim.process(fleet.stage_corpus(books, replicas=2)))

    def job():
        return (
            yield from fleet.run_job(
                books, lambda b: Command(command_line=f"grep xylophone {b.name}")
            )
        )

    report = sim.run(sim.process(job()))
    extras = {
        "finished_at": sim.now,
        "statuses": [None if r is None else r.status.value for r in report.responses],
        "stdout": [None if r is None else r.stdout for r in report.responses],
        "accounting": [
            report.dispatched, report.completed, report.recovered,
            list(report.lost), report.retries, report.failovers,
            report.host_fallbacks,
        ],
    }
    return tracer, extras


def scenario_chaos_drill() -> tuple[Tracer, dict]:
    """Replicated fleet job under a fixed fault plan (crash + transients)."""
    reset_global_ids()
    tracer = Tracer()
    fleet = StorageFleet.build(
        nodes=2, devices_per_node=2, seed=13,
        device_capacity=24 * 1024 * 1024, tracer=tracer,
        retry_policy=RetryPolicy(), breaker_config=BreakerConfig(),
    )
    sim = fleet.sim
    books = BookCorpus(
        CorpusSpec(files=6, mean_file_bytes=16 * 1024, seed=13)
    ).generate()
    sim.run(sim.process(fleet.stage_corpus(books, replicas=2)))
    ring = fleet.device_ring()
    plan = (
        FaultPlan(seed=13)
        .kill_device(*ring[1], at=sim.now + 2e-4, recover_after=2e-3)
        .transient_window(*ring[2], at=sim.now, duration=1e-3, fraction=0.5)
    )
    injector = FaultInjector.for_fleet(fleet, plan).start()

    def job():
        return (
            yield from fleet.run_job(
                books, lambda b: Command(command_line=f"grep xylophone {b.name}")
            )
        )

    report = sim.run(sim.process(job()))
    extras = {
        "fingerprint": plan.fingerprint(),
        "applied": list(injector.applied),
        "finished_at": sim.now,
        "statuses": [None if r is None else r.status.value for r in report.responses],
        "accounting": [
            report.dispatched, report.completed, report.recovered,
            list(report.lost), report.retries, report.failovers,
            report.host_fallbacks,
        ],
    }
    return tracer, extras


SCENARIOS = {
    "single_gzip": scenario_single_gzip,
    "fleet_grep": scenario_fleet_grep,
    "chaos_drill": scenario_chaos_drill,
}

#: Recorded from the pre-optimization simulator (PR 3 seed state), then
#: re-recorded once when the scenarios became hermetic: ID allocators
#: (minion/query/PID/CID) are now reset per scenario, so digests no longer
#: depend on suite order.  ``single_gzip`` — which always ran first from a
#: fresh process — kept its original pre-optimization digest bit-for-bit,
#: which is the proof that the hot-path optimization changed no schedule;
#: the other two changed only in the ID values embedded in trace payloads.
#: Any schedule drift fails these tests; see the module docstring for the
#: re-record procedure when drift is intentional.
GOLDEN = {
    "single_gzip": "86e73ad59496b2c5a944f82b4659eaceafc40ece73f1454ebcd2cb381a59a56d",
    "fleet_grep": "1cab9350525639bf3c33f13ad9eb1320687657fe5113e87264aac3906d4bb42b",
    "chaos_drill": "469e43a9945d6b7d0b751527d7556ed0411d694097239c64967bc072f3d5100c",
}


def test_single_gzip_schedule_unchanged():
    tracer, extras = scenario_single_gzip()
    assert len(tracer) > 0, "scenario must actually trace"
    assert schedule_digest(tracer, extras) == GOLDEN["single_gzip"]


def test_fleet_grep_schedule_unchanged():
    tracer, extras = scenario_fleet_grep()
    assert len(tracer) > 0
    assert schedule_digest(tracer, extras) == GOLDEN["fleet_grep"]


def test_chaos_drill_schedule_unchanged():
    tracer, extras = scenario_chaos_drill()
    assert len(tracer) > 0
    assert schedule_digest(tracer, extras) == GOLDEN["chaos_drill"]


def print_digests() -> None:  # pragma: no cover - re-record helper
    """Print current digests (run directly to re-record after model changes)."""
    for name, scenario in SCENARIOS.items():
        tracer, extras = scenario()
        print(f'    "{name}": "{schedule_digest(tracer, extras)}",')


if __name__ == "__main__":  # pragma: no cover
    print_digests()
