"""The typed scenario-configuration tree.

Every experiment in the paper is "the same stack, one knob turned": device
count for Fig. 6, the app mix for Fig. 5/7, concurrent-IO load for Fig. 8.
:class:`ScenarioConfig` is the one declarative, hashable description of
such a scenario — flash geometry, FTL/ECC tuning, the ISPS CPU model, NVMe
queues, PCIe topology, fleet shape, corpus spec, recovery policy, fault
plan, and observability toggles — shared by the CLI, the parallel runner,
the result cache, and the fault planner.

Design rules:

- every node is a **frozen, slotted dataclass**, so a whole scenario is
  hashable and usable as a dict key;
- reusable component configs (:class:`~repro.ftl.FtlConfig`,
  :class:`~repro.ecc.EccConfig`, :class:`~repro.workloads.CorpusSpec`,
  :class:`~repro.faults.retry.RetryPolicy`,
  :class:`~repro.faults.retry.BreakerConfig`) are embedded directly rather
  than duplicated, so their validation runs exactly once, in one place;
- all leaves are JSON-representable scalars (or tuples of them), so a
  scenario round-trips losslessly through the canonical-JSON codec
  (:mod:`repro.config.codec`) and its sha256 digest identifies the run.

Construction of live systems from a scenario lives in
:mod:`repro.config.factory`; this module is pure description.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.ecc import EccConfig
from repro.faults.retry import BreakerConfig, RetryPolicy
from repro.flash import FlashGeometry
from repro.ftl import DEVICE_BACKENDS, FtlConfig
from repro.workloads import CorpusSpec

__all__ = [
    "DEFAULT_BURN_WINDOWS",
    "DEFAULT_PRIORITY_CLASSES",
    "DEVICE_BACKENDS",
    "BurnWindowConfig",
    "ClosedLoopConfig",
    "DeviceBackendConfig",
    "FaultSpec",
    "FaultsConfig",
    "FlashConfig",
    "FleetConfig",
    "IspsConfig",
    "NvmeConfig",
    "ObjstoreConfig",
    "ObsConfig",
    "OverloadConfig",
    "PcieConfig",
    "PriorityClassConfig",
    "ScenarioConfig",
    "ServiceConfig",
    "ShardingConfig",
    "TrafficConfig",
]


@dataclass(frozen=True, slots=True)
class FlashConfig:
    """Flash geometry by capacity plus parallelism dimensions.

    ``geometry()`` reproduces :func:`repro.ssd.conventional.small_geometry`
    exactly: the base dimensions are scaled to ``capacity_bytes`` via
    ``blocks_per_plane`` (so a config built from an existing
    :class:`~repro.flash.FlashGeometry` round-trips bit-for-bit).
    ``store_data`` selects functional mode (real page payloads) vs analytic
    mode (timing only).
    """

    capacity_bytes: int = 64 * 1024 * 1024
    channels: int = 8
    dies_per_channel: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 8  # pre-scale base; ``geometry()`` rescales
    pages_per_block: int = 16
    page_size: int = 16384
    store_data: bool = True

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1024:
            raise ValueError("capacity_bytes must be at least 1 KiB")

    def geometry(self) -> FlashGeometry:
        base = FlashGeometry(
            channels=self.channels,
            dies_per_channel=self.dies_per_channel,
            planes_per_die=self.planes_per_die,
            blocks_per_plane=self.blocks_per_plane,
            pages_per_block=self.pages_per_block,
            page_size=self.page_size,
        )
        return base.scaled(self.capacity_bytes)

    @classmethod
    def from_geometry(
        cls, geometry: FlashGeometry, store_data: bool = True
    ) -> "FlashConfig":
        """Describe an existing geometry (lossless: ``geometry()`` returns
        an equal instance, because scaling to the exact capacity recovers
        the same ``blocks_per_plane``)."""
        return cls(
            capacity_bytes=geometry.capacity_bytes,
            channels=geometry.channels,
            dies_per_channel=geometry.dies_per_channel,
            planes_per_die=geometry.planes_per_die,
            blocks_per_plane=geometry.blocks_per_plane,
            pages_per_block=geometry.pages_per_block,
            page_size=geometry.page_size,
            store_data=store_data,
        )


@dataclass(frozen=True, slots=True)
class NvmeConfig:
    """NVMe front-end shape; defaults mirror
    :class:`~repro.nvme.NvmeController`."""

    queue_pairs: int = 1
    queue_depth: int = 64
    workers_per_queue: int = 8
    firmware_latency: float = 5e-6
    firmware_cycles: float = 15_000.0

    def __post_init__(self) -> None:
        if self.queue_pairs < 1 or self.queue_depth < 1 or self.workers_per_queue < 1:
            raise ValueError("queue_pairs/queue_depth/workers_per_queue must be >= 1")
        if self.firmware_latency < 0 or self.firmware_cycles < 0:
            raise ValueError("firmware terms must be non-negative")


@dataclass(frozen=True, slots=True)
class PcieConfig:
    """Fabric topology: the paper's x16 Gen3 uplink over x4 endpoints."""

    uplink_lanes: int = 16
    endpoint_lanes: int = 4

    def __post_init__(self) -> None:
        if self.uplink_lanes < 1 or self.endpoint_lanes < 1:
            raise ValueError("lane counts must be >= 1")


@dataclass(frozen=True, slots=True)
class IspsConfig:
    """In-situ processing subsystem: which CPU model runs minions.

    ``cpu`` names an entry in :data:`repro.cpu.models.CPU_MODELS`
    (``"arm-a53-quad"`` is the paper's Table II quad Cortex-A53).
    """

    cpu: str = "arm-a53-quad"

    def __post_init__(self) -> None:
        from repro.cpu.models import CPU_MODELS

        if self.cpu not in CPU_MODELS:
            raise ValueError(
                f"unknown cpu model {self.cpu!r}; use {sorted(CPU_MODELS)}"
            )


@dataclass(frozen=True, slots=True)
class FleetConfig:
    """Two-level topology: nodes x devices, plus staging redundancy."""

    nodes: int = 1
    devices_per_node: int = 4
    with_baseline_ssd: bool = False
    replicas: int = 1  # copies of each book staged on the device ring

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.devices_per_node < 1:
            raise ValueError("nodes and devices_per_node must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One declarative fault, addressed by fleet-ring index.

    Times are milliseconds relative to the moment the plan is armed
    (conventionally: staging completion), matching the chaos CLI's
    ``IDX@MS`` grammar.  ``kind`` is a :class:`repro.faults.FaultKind`
    value string.
    """

    kind: str = "device-crash"
    ring_index: int = 0
    at_ms: float = 0.0
    duration_ms: float | None = None
    fraction: float = 0.0  # transient: share of commands failed
    factor: float = 1.0  # limp: firmware-latency multiplier

    def __post_init__(self) -> None:
        from repro.faults.plan import FaultKind

        if self.kind not in {k.value for k in FaultKind}:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"use {sorted(k.value for k in FaultKind)}"
            )
        if self.ring_index < 0:
            raise ValueError("ring_index must be >= 0")
        if self.at_ms < 0:
            raise ValueError("at_ms must be non-negative")


@dataclass(frozen=True, slots=True)
class FaultsConfig:
    """A replayable fault plan: explicit events plus seeded random ones."""

    seed: int = 0
    random: int = 0  # extra faults derived deterministically from ``seed``
    horizon_ms: float = 10.0  # random faults land in [0, horizon_ms)
    events: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.random < 0:
            raise ValueError("random must be >= 0")
        if self.horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")

    @property
    def any(self) -> bool:
        return bool(self.events) or self.random > 0


@dataclass(frozen=True, slots=True)
class PriorityClassConfig:
    """One tenant priority class of the service frontend.

    ``share`` is the fraction of the tenant population hashed into this
    class; ``weight`` is its weighted-fair-queuing share of dispatch
    capacity.  ``rate``/``burst`` parameterise the *per-tenant* token
    bucket (requests per second of simulated time, bucket capacity), and
    ``slo_ms`` is the end-to-end latency objective a completion is graded
    against.
    """

    name: str = "standard"
    weight: float = 1.0
    share: float = 1.0
    rate: float = 200.0
    burst: float = 8.0
    slo_ms: float = 20.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("priority class needs a name")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not 0.0 < self.share <= 1.0:
            raise ValueError("share must be in (0, 1]")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive")


#: The default three-tier tenant population: a small premium class with a
#: large scheduler weight and tight SLO over a broad best-effort base.
DEFAULT_PRIORITY_CLASSES: tuple[PriorityClassConfig, ...] = (
    PriorityClassConfig(name="gold", weight=4.0, share=0.1, rate=400.0,
                        burst=16.0, slo_ms=10.0),
    PriorityClassConfig(name="silver", weight=2.0, share=0.3, rate=200.0,
                        burst=8.0, slo_ms=20.0),
    PriorityClassConfig(name="bronze", weight=1.0, share=0.6, rate=100.0,
                        burst=4.0, slo_ms=50.0),
)


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """The multi-tenant service frontend: admission, scheduling, dispatch.

    ``queue_depth`` bounds the admission queue (arrivals beyond it are
    shed); ``concurrency`` is the number of dispatch slots pulling from
    the weighted fair queue into the fleet.
    """

    queue_depth: int = 64
    concurrency: int = 8
    classes: tuple[PriorityClassConfig, ...] = DEFAULT_PRIORITY_CLASSES

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if not self.classes:
            raise ValueError("need at least one priority class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate priority class names: {names}")
        total = sum(c.share for c in self.classes)
        if total > 1.0 + 1e-9:
            raise ValueError(f"class shares sum to {total}; must be <= 1")


#: Arrival patterns the traffic generator understands.
TRAFFIC_PATTERNS: tuple[str, ...] = ("poisson", "diurnal", "bursty")


@dataclass(frozen=True, slots=True)
class TrafficConfig:
    """A seeded open-loop arrival stream over a large tenant population.

    ``tenants`` is the population size (IDs are drawn per arrival, so
    millions of distinct tenants cost no per-tenant state up front);
    ``skew`` shapes popularity (1.0 = uniform, larger concentrates traffic
    on low tenant IDs).  ``rate`` is the mean arrival rate in requests per
    second of *simulated* time; diurnal/bursty parameters modulate it.
    """

    pattern: str = "poisson"
    requests: int = 200
    rate: float = 4000.0
    tenants: int = 1_000_000
    skew: float = 1.0
    seed: int = 0
    period_ms: float = 50.0  # diurnal: cycle length
    amplitude: float = 0.8  # diurnal: rate swing in [0, 1)
    burst_len: int = 32  # bursty: arrivals per burst
    burst_factor: float = 8.0  # bursty: in-burst rate multiplier

    def __post_init__(self) -> None:
        if self.pattern not in TRAFFIC_PATTERNS:
            raise ValueError(
                f"unknown traffic pattern {self.pattern!r}; "
                f"use {', '.join(TRAFFIC_PATTERNS)}"
            )
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.skew < 1.0:
            raise ValueError("skew must be >= 1 (1 = uniform)")
        if self.period_ms <= 0:
            raise ValueError("period_ms must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.burst_len < 1:
            raise ValueError("burst_len must be >= 1")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")


@dataclass(frozen=True, slots=True)
class ClosedLoopConfig:
    """Closed-loop tenant sessions: think time plus retries-on-shed.

    Unlike the open-loop :class:`TrafficConfig` stream, each of the
    ``sessions`` concurrent tenants waits for its previous request to
    resolve (complete, shed, or abandon after ``timeout_ms``) and *thinks*
    before issuing the next one — so shedding and queueing feed back into
    offered load, which is the regime where retry storms and metastable
    failures live.  A shed or abandoned request is retried up to
    ``max_retries`` times with exponential, jittered backoff.
    """

    sessions: int = 32
    duration_ms: float = 50.0  # wall clock each session keeps issuing for
    think_ms: float = 5.0  # mean exponential think time between requests
    timeout_ms: float = 20.0  # client abandons (and may retry) after this
    max_retries: int = 3
    retry_backoff_ms: float = 2.0
    retry_multiplier: float = 2.0
    retry_jitter: float = 0.25  # +/- fraction of the raw backoff
    seed: int = 0
    #: Goodput (completions delivered before the client abandoned) is
    #: bucketed into windows this wide; the metastable drill's recovery
    #: assertion compares post-fault windows against the pre-trigger mean.
    goodput_window_ms: float = 5.0
    recovery_ms: float = 25.0  # drill: recovery deadline after fault clears
    recovery_bar: float = 0.9  # drill: fraction of pre-trigger goodput

    def __post_init__(self) -> None:
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")
        if self.duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        if self.think_ms < 0:
            raise ValueError("think_ms must be non-negative")
        if self.timeout_ms <= 0:
            raise ValueError("timeout_ms must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_ms <= 0:
            raise ValueError("retry_backoff_ms must be positive")
        if self.retry_multiplier < 1.0:
            raise ValueError("retry_multiplier must be >= 1")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        if self.goodput_window_ms <= 0:
            raise ValueError("goodput_window_ms must be positive")
        if self.recovery_ms <= 0:
            raise ValueError("recovery_ms must be positive")
        if not 0.0 < self.recovery_bar <= 1.0:
            raise ValueError("recovery_bar must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class BurnWindowConfig:
    """One long/short window pair for multi-window burn-rate alerting.

    Burn rate is ``bad_fraction / (1 - objective)``: 1.0 spends the error
    budget exactly at the sustainable pace.  An alert fires only when
    *both* windows burn faster than ``threshold`` — the long window proves
    the problem is real, the short window proves it is still happening.
    """

    long_ms: float = 50.0
    short_ms: float = 5.0
    threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.long_ms <= 0 or self.short_ms <= 0:
            raise ValueError("burn windows must be positive")
        if self.short_ms > self.long_ms:
            raise ValueError("short_ms must be <= long_ms")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


#: Default page/fast-burn pair, scaled to simulated-seconds drills.
DEFAULT_BURN_WINDOWS: tuple[BurnWindowConfig, ...] = (
    BurnWindowConfig(long_ms=50.0, short_ms=5.0, threshold=2.0),
    BurnWindowConfig(long_ms=10.0, short_ms=2.0, threshold=10.0),
)


@dataclass(frozen=True, slots=True)
class OverloadConfig:
    """Overload defenses for the service frontend.

    Four cooperating mechanisms, each individually classic:

    - **retry budget** — retried requests are admitted only while the
      budget holds tokens; fresh admissions earn ``retry_budget`` tokens
      each (capped at ``retry_budget_burst``), every retry spends one, so
      retries can never exceed that fraction of fresh traffic;
    - **CoDel** — at dispatch, a request whose queue sojourn exceeded
      ``codel_target_ms`` for a full ``codel_interval_ms`` is dropped, and
      the control interval shrinks by ``1/sqrt(drops)`` while the queue
      stays bad (standing queues drain; bursts pass);
    - **brownout** — admission sheds the lowest-weight classes first as the
      queue fills: with ``brownout_start`` = 0.5 and three classes, bronze
      sheds at >= 50% depth, silver at >= 75%, gold only at the full-queue
      backstop;
    - **AIMD autoscaler** — dispatch concurrency is raised by one worker
      each ``aimd_interval_ms`` the measured queue wait exceeds
      ``aimd_high_ms``, and multiplied by ``aimd_decrease`` when it falls
      below ``aimd_low_ms``, within ``[min_concurrency, max_concurrency]``.

    ``slo_objective`` and ``burn_windows`` parameterise burn-rate alerting
    over the per-window good/bad request series the tracker records.
    """

    retry_budget: float = 0.1  # retries per fresh admission earned
    retry_budget_burst: float = 8.0
    codel_target_ms: float = 2.0
    codel_interval_ms: float = 20.0
    brownout_start: float = 0.5  # queue-depth fraction; >= 1 disables
    aimd_interval_ms: float = 5.0
    aimd_low_ms: float = 1.0
    aimd_high_ms: float = 5.0
    aimd_decrease: float = 0.5
    min_concurrency: int = 1
    max_concurrency: int = 16
    slo_objective: float = 0.999
    burn_windows: tuple[BurnWindowConfig, ...] = DEFAULT_BURN_WINDOWS

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.retry_budget_burst < 1:
            raise ValueError("retry_budget_burst must be >= 1")
        if self.codel_target_ms <= 0 or self.codel_interval_ms <= 0:
            raise ValueError("codel target/interval must be positive")
        if self.brownout_start <= 0:
            raise ValueError("brownout_start must be positive (>= 1 disables)")
        if self.aimd_interval_ms <= 0:
            raise ValueError("aimd_interval_ms must be positive")
        if self.aimd_low_ms < 0 or self.aimd_high_ms <= 0:
            raise ValueError("aimd thresholds must be non-negative/positive")
        if self.aimd_low_ms > self.aimd_high_ms:
            raise ValueError("aimd_low_ms must be <= aimd_high_ms")
        if not 0.0 < self.aimd_decrease < 1.0:
            raise ValueError("aimd_decrease must be in (0, 1)")
        if self.min_concurrency < 1:
            raise ValueError("min_concurrency must be >= 1")
        if self.max_concurrency < self.min_concurrency:
            raise ValueError("max_concurrency must be >= min_concurrency")
        if not 0.0 < self.slo_objective < 1.0:
            raise ValueError("slo_objective must be in (0, 1)")


@dataclass(frozen=True, slots=True)
class ObjstoreConfig:
    """The deduplicating object store and its synthetic write workload.

    ``objects``/``mean_object_bytes``/``dedup_ratio``/``segment_bytes``/
    ``pool_segments``/``seed`` shape the generated payload batch
    (:class:`repro.objstore.workload.ObjectSpec`); ``chunk_min``/``avg``/
    ``max`` are the content-defined chunking bounds shipped to the in-situ
    ``chunksum`` minions; ``replicas`` is the block replica-chain length on
    the device ring.  ``write_fraction`` engages the service-frontend write
    mix: that fraction of tenants (hashed deterministically) issue PUTs
    instead of read commands.
    """

    objects: int = 16
    mean_object_bytes: int = 32 * 1024
    dedup_ratio: float = 0.5
    # duplicate extents must span several chunks for content-defined
    # boundaries to resynchronise inside them — that resync margin (about
    # one chunk per extent edge) is what separates the measured ratio from
    # the workload dial
    segment_bytes: int = 16 * 1024
    pool_segments: int = 8
    chunk_min: int = 512
    chunk_avg: int = 2048
    chunk_max: int = 8192
    replicas: int = 2
    seed: int = 0
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        self.params()  # ChunkParams validates the chunking bounds
        if self.objects < 1:
            raise ValueError("objects must be >= 1")
        if self.mean_object_bytes < 1:
            raise ValueError("mean_object_bytes must be >= 1")
        if not 0.0 <= self.dedup_ratio <= 1.0:
            raise ValueError("dedup_ratio must be in [0, 1]")
        if self.segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        if self.pool_segments < 1:
            raise ValueError("pool_segments must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")

    def params(self):
        """The chunking bounds as a :class:`~repro.objstore.chunking.ChunkParams`."""
        from repro.objstore.chunking import ChunkParams

        return ChunkParams(
            min_size=self.chunk_min, avg_size=self.chunk_avg, max_size=self.chunk_max
        )

    def spec(self):
        """The workload shape as an :class:`~repro.objstore.workload.ObjectSpec`."""
        from repro.objstore.workload import ObjectSpec

        return ObjectSpec(
            objects=self.objects,
            mean_object_bytes=self.mean_object_bytes,
            dedup_ratio=self.dedup_ratio,
            segment_bytes=self.segment_bytes,
            pool_segments=self.pool_segments,
            seed=self.seed,
        )


#: Execution backends the sharded simulation engine understands.
SHARD_BACKENDS: tuple[str, ...] = ("sequential", "process")


@dataclass(frozen=True, slots=True)
class ShardingConfig:
    """Partitioned execution of one scenario (:mod:`repro.sim.shard`).

    ``shards`` is the number of event-loop groups the per-device cells are
    packed into (purely an execution knob: results are byte-identical at any
    value); ``backend`` selects in-process sequential execution (the oracle)
    or one spawn worker per shard.  ``window_us`` adds a modeled cross-shard
    dispatch latency on top of the PCIe link hop: conservative synchronization
    can only run a shard ahead by the minimum cross-boundary latency, so
    widening it trades response-latency fidelity for fewer, fatter windows —
    essential for open-loop traffic, irrelevant for batch jobs.
    """

    shards: int = 1
    backend: str = "sequential"
    window_us: float = 0.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.backend not in SHARD_BACKENDS:
            raise ValueError(
                f"unknown shard backend {self.backend!r}; "
                f"use {', '.join(SHARD_BACKENDS)}"
            )
        if self.window_us < 0:
            raise ValueError("window_us must be non-negative")


@dataclass(frozen=True, slots=True)
class DeviceBackendConfig:
    """The translation backend every device in the scenario is built on.

    ``backend`` names an entry in the :mod:`repro.ftl.backend` registry
    (``page`` is the historical page-mapped FTL, ``zoned`` the ZNS-style
    backend); the remaining knobs only apply to the zoned backend.
    ``zone_blocks`` is the number of whole erase blocks per zone and
    ``max_open_zones`` the host append parallelism.
    """

    backend: str = "page"
    zone_blocks: int = 4
    max_open_zones: int = 4

    def __post_init__(self) -> None:
        if self.backend not in DEVICE_BACKENDS:
            raise ValueError(
                f"unknown device backend {self.backend!r}; "
                f"use {', '.join(DEVICE_BACKENDS)}"
            )
        if self.zone_blocks < 1:
            raise ValueError("zone_blocks must be >= 1")
        if self.max_open_zones < 1:
            raise ValueError("max_open_zones must be >= 1")


@dataclass(frozen=True, slots=True)
class ObsConfig:
    """Observability toggles (both default off: zero-overhead scenarios)."""

    metrics: bool = False
    tracing: bool = False
    trace_capacity: int | None = None  # ring-buffer mode when set

    def __post_init__(self) -> None:
        if self.trace_capacity is not None and self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1 (or None)")


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """One complete, declarative experiment scenario.

    The tree is frozen and hashable; derive variants with
    :func:`dataclasses.replace` or dotted-path overrides
    (:func:`repro.config.apply_overrides`).  Canonical JSON and the sha256
    digest come from :mod:`repro.config.codec`; live systems come from
    :mod:`repro.config.factory`.
    """

    name: str = "custom"
    seed: int = 0
    flash: FlashConfig = field(default_factory=FlashConfig)
    ftl: FtlConfig = field(default_factory=FtlConfig)
    ecc: EccConfig = field(default_factory=EccConfig)
    nvme: NvmeConfig = field(default_factory=NvmeConfig)
    pcie: PcieConfig = field(default_factory=PcieConfig)
    isps: IspsConfig = field(default_factory=IspsConfig)
    fleet: FleetConfig = field(default_factory=FleetConfig)
    corpus: CorpusSpec = field(default_factory=CorpusSpec)
    retry: RetryPolicy | None = None
    breaker: BreakerConfig | None = None
    faults: FaultsConfig = field(default_factory=FaultsConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    # Sections added after the digest goldens were pinned carry
    # ``omit_if_none``: the codec leaves them out of the canonical JSON
    # while unset, so every pre-existing scenario keeps its digest and the
    # section only becomes part of a scenario's identity once engaged.
    service: ServiceConfig | None = field(
        default=None, metadata={"omit_if_none": True}
    )
    traffic: TrafficConfig | None = field(
        default=None, metadata={"omit_if_none": True}
    )
    closed_loop: ClosedLoopConfig | None = field(
        default=None, metadata={"omit_if_none": True}
    )
    overload: OverloadConfig | None = field(
        default=None, metadata={"omit_if_none": True}
    )
    sharding: ShardingConfig | None = field(
        default=None, metadata={"omit_if_none": True}
    )
    objstore: ObjstoreConfig | None = field(
        default=None, metadata={"omit_if_none": True}
    )
    device: DeviceBackendConfig | None = field(
        default=None, metadata={"omit_if_none": True}
    )

    def with_name(self, name: str) -> "ScenarioConfig":
        return replace(self, name=name)

    def section_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in fields(self))
