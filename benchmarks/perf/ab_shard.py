#!/usr/bin/env python
"""Interleaved A/B: monolithic kernel vs the sharded engine, same workload.

Measures the gzip-then-grep job phase on an N-device scenario two ways —
one monolithic ``Simulator`` heap vs per-device shard cells under the
conservative engine — alternating A/B pairs in a single process so both
sides see identical host conditions.  Protocol:

- one warm-up pair runs first and is **discarded** (cold allocator and
  bytecode effects otherwise inflate whichever side runs first by up to
  2x — measured on this repo's history; see BENCH_sim.json notes);
- then ``pairs`` alternating (mono, shard) measurements;
- the reported rate per side is the **median** events/sec, which is
  robust to one-off scheduler stalls that best-of-N would hide
  asymmetrically.

Prints one line per side plus the ratio.  On a single-core host the
sequential shard backend is expected to land below 1.0x (the sync rounds
are pure overhead when there is no parallel hardware); the ratio column
exists so multi-core hosts can record their speedup honestly in
BENCH_sim.json the same way.

Usage::

    PYTHONPATH=src python benchmarks/perf/ab_shard.py [devices] [pairs] [shards]
"""

from __future__ import annotations

import statistics
import sys
import time  # wall-clock on purpose: this measures the host, not the model

from repro.analysis.perf import BenchScenario
from repro.sim.shard import ShardRun

DEVICES = 8
PAIRS = 4
SHARDS = 4


def mono_rate(scenario: BenchScenario) -> float:
    node, books = scenario.build()
    sim = node.sim
    before = sim.events_processed
    t0 = time.perf_counter()
    sim.run(sim.process(scenario.job(node, books)))
    wall = time.perf_counter() - t0
    return (sim.events_processed - before) / wall


def shard_rate(scenario: BenchScenario) -> float:
    run = ShardRun(scenario.config(), workload="jobs", apps=("gzip", "grep"))
    run.prepare()
    try:
        t0 = time.perf_counter()
        stats = run.execute()
        wall = time.perf_counter() - t0
        run.finish()
    finally:
        run.close()
    return (stats.host_events + stats.cell_events) / wall


def main(argv: list[str]) -> int:
    devices = int(argv[1]) if len(argv) > 1 else DEVICES
    pairs = int(argv[2]) if len(argv) > 2 else PAIRS
    shards = int(argv[3]) if len(argv) > 3 else SHARDS
    mono = BenchScenario(f"ab-n{devices}", devices=devices)
    shard = BenchScenario(f"ab-n{devices}-shard", devices=devices, shards=shards)
    mono_rate(mono), shard_rate(shard)  # warm-up pair, discarded
    mono_rates, shard_rates = [], []
    for _ in range(pairs):
        mono_rates.append(mono_rate(mono))
        shard_rates.append(shard_rate(shard))
    mono_med = statistics.median(mono_rates)
    shard_med = statistics.median(shard_rates)
    print(f"mono  n{devices}: {mono_med:>12,.0f} ev/s  "
          f"({', '.join(f'{r/1e3:.0f}k' for r in mono_rates)})")
    print(f"shard n{devices}: {shard_med:>12,.0f} ev/s  "
          f"({', '.join(f'{r/1e3:.0f}k' for r in shard_rates)})  x{shards}")
    print(f"ratio shard/mono: {shard_med / mono_med:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
