"""Sharded scale-out simulation with conservative time synchronization.

Partitions one scenario into per-device event loops (cells) plus a host
domain, synchronized with lookahead-based conservative windows across the
PCIe boundary.  See DESIGN.md §14 for the protocol; the differential
equivalence suite (``tests/test_shard_equivalence.py``) pins schedules
byte-identical across shard counts and backends.
"""

from repro.sim.shard.cell import SEED_STRIDE, DeviceCell
from repro.sim.shard.engine import (
    DEFAULT_TRAFFIC_WINDOW_US,
    ShardRun,
    run_shard_cell,
    shard_lookahead,
)
from repro.sim.shard.host import HostDomain
from repro.sim.shard.protocol import (
    CellStep,
    ConservativeEngine,
    EngineStats,
    ShardMessage,
    SimDomain,
    plan_shards,
    sequential_stepper,
)
from repro.sim.shard.scopes import IdScope
from repro.sim.shard.workload import (
    JobDrill,
    ShardTopology,
    TrafficDrill,
    build_topology,
)

__all__ = [
    "CellStep",
    "ConservativeEngine",
    "DEFAULT_TRAFFIC_WINDOW_US",
    "DeviceCell",
    "EngineStats",
    "HostDomain",
    "IdScope",
    "JobDrill",
    "SEED_STRIDE",
    "ShardMessage",
    "ShardRun",
    "ShardTopology",
    "SimDomain",
    "TrafficDrill",
    "build_topology",
    "plan_shards",
    "run_shard_cell",
    "sequential_stepper",
    "shard_lookahead",
]
