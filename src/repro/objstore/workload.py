"""Deterministic object workloads with a controllable duplicate fraction.

Dedup effectiveness is a property of the *data*, so the sweep experiments
need payloads whose redundancy is a dial: :func:`generate_objects` builds
each object from segments drawn either from a small shared pool (duplicate
content the chunker should collapse) or freshly at random (unique content),
with ``dedup_ratio`` setting the expected duplicate fraction.  Segments are
a few chunks long so the content-defined boundaries can resynchronise
inside them — the store's *measured* dedup ratio tracks the dial without
matching it exactly (boundary chunks mix pooled and fresh bytes).

Everything is driven by one seeded generator; same spec, same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ObjectSpec", "generate_objects"]


@dataclass(frozen=True, slots=True)
class ObjectSpec:
    """Workload shape for one object batch."""

    objects: int = 16
    mean_object_bytes: int = 32 * 1024
    dedup_ratio: float = 0.5  # expected fraction of segments drawn from the pool
    segment_bytes: int = 16 * 1024  # granularity of reuse (several chunks wide)
    pool_segments: int = 8  # distinct duplicate segments in circulation
    seed: int = 0

    def __post_init__(self) -> None:
        if self.objects < 1:
            raise ValueError("objects must be >= 1")
        if self.mean_object_bytes < 1:
            raise ValueError("mean_object_bytes must be >= 1")
        if not 0.0 <= self.dedup_ratio <= 1.0:
            raise ValueError("dedup_ratio must be in [0, 1]")
        if self.segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        if self.pool_segments < 1:
            raise ValueError("pool_segments must be >= 1")


def generate_objects(spec: ObjectSpec) -> list[tuple[str, bytes]]:
    """``(key, payload)`` pairs, a pure function of the spec."""
    rng = np.random.default_rng(spec.seed)
    pool = [
        rng.integers(0, 256, size=spec.segment_bytes, dtype=np.uint8).tobytes()
        for _ in range(spec.pool_segments)
    ]
    out: list[tuple[str, bytes]] = []
    for i in range(spec.objects):
        # lognormal-ish spread around the mean, one segment minimum
        size = max(
            spec.segment_bytes,
            int(rng.normal(spec.mean_object_bytes, spec.mean_object_bytes / 4)),
        )
        segments: list[bytes] = []
        remaining = size
        while remaining > 0:
            take = min(spec.segment_bytes, remaining)
            if rng.random() < spec.dedup_ratio:
                seg = pool[int(rng.integers(0, spec.pool_segments))][:take]
            else:
                seg = rng.integers(0, 256, size=take, dtype=np.uint8).tobytes()
            segments.append(seg)
            remaining -= take
        out.append((f"obj{i:04d}", b"".join(segments)))
    return out
