"""BlueDBM-style fixed-function FPGA in-storage acceleration.

Jun et al.'s BlueDBM attaches FPGA accelerators to flash: extremely fast
and power-efficient for the kernels that have been synthesised, but (per
the paper's Table I critique) "dealing with pure FPGA accelerators ...
lacks in flexibility", and "the extra time it takes to generate RTL design
makes it time-consuming to reconfigure the FPGA frequently".

The model: a :class:`ConventionalSSD` plus a kernel table.  Running a
synthesised kernel streams flash at the accelerator's line rate and low
power; running anything else requires an (expensive, offline) synthesis
step modelled as ``synthesis_seconds`` — the flexibility tax, made
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.ecc import EccConfig
from repro.flash import FlashGeometry
from repro.ftl import FtlConfig
from repro.isos.blockdev import FlashAccessDevice
from repro.isos.filesystem import ExtentFileSystem
from repro.pcie.switch import PciePort
from repro.power import PowerMeter
from repro.sim import Simulator, Tracer
from repro.ssd.conventional import ConventionalSSD, small_geometry

__all__ = ["FpgaAcceleratedSSD", "FpgaKernel", "KernelNotSynthesizedError"]


class KernelNotSynthesizedError(Exception):
    """The requested kernel has no bitstream; synthesis is required first."""


@dataclass(frozen=True, slots=True)
class FpgaKernel:
    """A synthesised accelerator kernel."""

    name: str
    bytes_per_second: float  # streaming line rate through the fabric
    active_power_w: float = 4.0

    def __post_init__(self) -> None:
        if self.bytes_per_second <= 0 or self.active_power_w < 0:
            raise ValueError("invalid kernel parameters")


#: Kernels a realistic deployment would have synthesised up front.
DEFAULT_KERNELS = (
    FpgaKernel("grep", bytes_per_second=2.0e9, active_power_w=4.0),
    FpgaKernel("sha1sum", bytes_per_second=1.5e9, active_power_w=5.0),
)


class FpgaAcceleratedSSD(ConventionalSSD):
    """Flash + fixed-function accelerators (no OS, no dynamic loading)."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "fpga-ssd",
        geometry: FlashGeometry | None = None,
        port: PciePort | None = None,
        meter: PowerMeter | None = None,
        store_data: bool = True,
        ftl_config: FtlConfig | None = None,
        ecc_config: EccConfig | None = None,
        tracer: Tracer | None = None,
        kernels: tuple[FpgaKernel, ...] = DEFAULT_KERNELS,
        reconfigure_seconds: float = 0.15,  # bitstream load (partial reconfig)
        synthesis_seconds: float = 3600.0,  # RTL + place&route for a new kernel
    ):
        super().__init__(
            sim,
            name=name,
            geometry=geometry or small_geometry(),
            port=port,
            meter=meter,
            store_data=store_data,
            ftl_config=ftl_config,
            ecc_config=ecc_config,
            tracer=tracer,
        )
        self.kernels = {k.name: k for k in kernels}
        self.reconfigure_seconds = reconfigure_seconds
        self.synthesis_seconds = synthesis_seconds
        self.loaded_kernel: str | None = None
        self.reconfigurations = 0
        self.syntheses = 0
        self.device = FlashAccessDevice(sim, self.ftl)
        self.fs = ExtentFileSystem(sim, self.device)
        self._sink = meter.sink if meter is not None else None

    # -- kernel management ---------------------------------------------------
    def synthesize_kernel(self, kernel: FpgaKernel) -> Generator:
        """Produce a new bitstream — hours of offline work (the flexibility
        gap versus CompStor's instant dynamic task loading)."""
        yield self.sim.timeout(self.synthesis_seconds)
        self.kernels[kernel.name] = kernel
        self.syntheses += 1
        return kernel.name

    def _load(self, kernel_name: str) -> Generator:
        if kernel_name not in self.kernels:
            raise KernelNotSynthesizedError(
                f"{kernel_name!r} has no bitstream; synthesised: {sorted(self.kernels)}"
            )
        if self.loaded_kernel != kernel_name:
            yield self.sim.timeout(self.reconfigure_seconds)
            self.loaded_kernel = kernel_name
            self.reconfigurations += 1
        return None

    # -- execution ------------------------------------------------------------
    def run_kernel(self, kernel_name: str, file_name: str) -> Generator:
        """Stream ``file_name`` through an accelerator kernel.

        Returns ``(bytes_processed, seconds, result)``; for ``grep`` the
        result is the match count (functional mode).
        """
        yield from self._load(kernel_name)
        kernel = self.kernels[kernel_name]
        inode = self.fs.stat(file_name)
        start = self.sim.now
        matches = 0
        pattern = b"xylophone"  # the corpus needle; fixed function, fixed pattern
        for index in range(self.fs.page_count(file_name)):
            chunk, take = yield from self.fs.read_page_of(file_name, index)
            # accelerator keeps up with flash unless its line rate is lower
            yield self.sim.timeout(take / kernel.bytes_per_second)
            if chunk is not None and kernel_name == "grep":
                matches += chunk.count(pattern)
        seconds = self.sim.now - start
        if self._sink is not None:
            self._sink(f"{self.name}.fabric", kernel.active_power_w * seconds)
        result = matches if kernel_name == "grep" else None
        return inode.size, seconds, result

    def describe(self) -> dict:
        info = super().describe()
        info["isc"] = True
        info["fixed_function"] = sorted(self.kernels)
        return info
