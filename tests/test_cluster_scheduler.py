"""Tests for minion placement policies and the dispatcher."""

from repro.cluster import (
    LeastLoadedBalancer,
    MinionDispatcher,
    RoundRobinBalancer,
    StorageNode,
)
from repro.proto import Command


def build_node(devices=3):
    return StorageNode.build(devices=devices, device_capacity=16 * 1024 * 1024)


def stage_everywhere(node, name, data):
    def flow():
        for ssd in node.compstors:
            yield from ssd.fs.write_file(name, data)

    node.sim.run(node.sim.process(flow()))


def test_round_robin_spreads_evenly():
    node = build_node(devices=3)
    stage_everywhere(node, "f.txt", b"fox\n" * 20)
    dispatcher = MinionDispatcher(node.client, RoundRobinBalancer())

    def flow():
        commands = [Command(command_line="grep fox f.txt") for _ in range(9)]
        return (yield from dispatcher.submit_all(commands))

    responses = node.sim.run(node.sim.process(flow()))
    assert all(r.ok for r in responses)
    assert dispatcher.device_share() == {"compstor0": 3, "compstor1": 3, "compstor2": 3}


def test_least_loaded_avoids_busy_device():
    node = build_node(devices=2)
    stage_everywhere(node, "f.txt", b"fox\n" * 20)
    # occupy compstor0 with a long-running scan
    stage_everywhere(node, "big.txt", b"fox filler line\n" * 20000)

    def flow():
        hog = node.sim.process(node.client.run("compstor0", "grep fox big.txt"))
        yield node.sim.timeout(2e-3)  # let the hog start
        balancer = LeastLoadedBalancer()
        dispatcher = MinionDispatcher(node.client, balancer)
        responses = yield from dispatcher.submit_all(
            [Command(command_line="grep fox f.txt") for _ in range(4)]
        )
        yield hog
        return responses, dispatcher.device_share()

    responses, share = node.sim.run(node.sim.process(flow()))
    assert all(r.ok for r in responses)
    # the idle device should receive the bulk of the work
    assert share.get("compstor1", 0) >= 3


def test_dispatcher_records_placements():
    node = build_node(devices=2)
    stage_everywhere(node, "f.txt", b"fox\n")
    dispatcher = MinionDispatcher(node.client, RoundRobinBalancer())

    def flow():
        return (
            yield from dispatcher.submit_all([Command(command_line="grep fox f.txt")] * 2)
        )

    node.sim.run(node.sim.process(flow()))
    assert len(dispatcher.placements) == 2
    devices = [d for d, _ in dispatcher.placements]
    assert set(devices) == {"compstor0", "compstor1"}
