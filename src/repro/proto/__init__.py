"""The CompStor software-stack entities.

The paper defines four virtual entities that travel through the stack
(Section III.B): **Command**, **Response**, **Minion** (command + response
envelope that triggers in-situ processing) and **Query** (administrative
message: dynamic task loading, telemetry).  They are plain data classes;
the in-situ library serialises them into NVMe vendor commands and the ISPS
agent consumes them.
"""

from repro.proto.entities import (
    Command,
    Minion,
    Query,
    QueryKind,
    Response,
    ResponseStatus,
)

__all__ = ["Command", "Minion", "Query", "QueryKind", "Response", "ResponseStatus"]
