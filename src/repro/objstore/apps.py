"""In-situ executables operating on objects.

``objscan PATTERN KEY...`` greps a set of *objects* (by key) inside the
drive — the "in-situ processing AND object-oriented at the same time"
combination the paper sketches.  The object namespace is just a prefix
convention over the device filesystem, so the standard streaming machinery
applies unchanged.

``chunksum MIN AVG MAX FILE`` is the dedup store's write-path offload:
content-defined chunking plus per-chunk SHA-1 digests computed *inside the
drive*, so a PUT ships the payload to its primary device once and only the
chunk digests — a few dozen bytes per chunk — cross PCIe back to the
coordinator.  Hashing is the textbook compute-intensive offload (In-storage
Processing of I/O Intensive Applications, PAPERS.md); this app is its
write-side twin of ``sha1sum``.
"""

from __future__ import annotations

import hashlib
from typing import Generator

from repro.analysis.calibration import CYCLES_PER_BYTE
from repro.apps.base import StreamingApp, UsageError, charge
from repro.isos.loader import ExecContext, ExitStatus
from repro.objstore.chunking import ChunkParams, Chunker
from repro.objstore.store import OBJECT_PREFIX

__all__ = ["ChunkSumApp", "ObjScanApp"]

# objscan costs what grep costs: it is a pattern scan over object payloads
CYCLES_PER_BYTE.setdefault("objscan", dict(CYCLES_PER_BYTE["grep"]))
# chunksum costs what sha1sum costs: the gear hash is a shift-add per byte,
# dwarfed by the per-chunk SHA-1 that dominates the same way sha1sum's does
CYCLES_PER_BYTE.setdefault("chunksum", dict(CYCLES_PER_BYTE["sha1sum"]))


class ChunkSumApp(StreamingApp):
    """``chunksum MIN AVG MAX FILE`` — CDC boundaries + per-chunk SHA-1.

    Stdout is one ``<sha1hex> <length>`` line per chunk, in payload order —
    the complete dedup recipe for the file, a few dozen bytes per ~4 KiB
    chunk.  The incremental :class:`Chunker` is the same class the host-side
    tooling uses, so boundaries agree by construction even though this app
    sees the payload one flash page at a time.
    """

    name = "chunksum"

    def input_file(self, ctx: ExecContext) -> str:
        if len(ctx.args) != 4:
            raise UsageError("usage: chunksum MIN AVG MAX FILE")
        try:
            self._params = ChunkParams(
                min_size=int(ctx.args[0]),
                avg_size=int(ctx.args[1]),
                max_size=int(ctx.args[2]),
            )
        except ValueError as exc:
            raise UsageError(f"chunksum: {exc}") from exc
        return ctx.args[3]

    def begin(self, ctx: ExecContext) -> None:
        self._chunker = Chunker(self._params)
        self._tail = b""  # bytes since the last boundary (<= max_size)
        self._chunks: list[tuple[str, int]] = []
        self._analytic = False

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        # Completed chunks are prefixes of tail+page; whatever the chunker
        # holds back stays in the tail for the next page (page-seam safety).
        pending = self._tail + chunk
        for length in self._chunker.update(chunk):
            blob, pending = pending[:length], pending[length:]
            self._chunks.append((hashlib.sha1(blob).hexdigest(), length))
        self._tail = pending

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        if self._analytic:
            return ExitStatus(
                code=0, stdout=b"", detail={"analytic": True, "bytes": total_bytes}
            )
        tail_len = self._chunker.finish()
        if tail_len is not None:
            self._chunks.append((hashlib.sha1(self._tail).hexdigest(), tail_len))
        out = "\n".join(f"{digest} {length}" for digest, length in self._chunks)
        return ExitStatus(
            code=0,
            stdout=out.encode(),
            detail={"chunks": len(self._chunks), "bytes": total_bytes},
        )
        yield  # pragma: no cover - generator protocol


class ObjScanApp:
    """``objscan PATTERN KEY [KEY...]`` — match count per object."""

    name = "objscan"

    def run(self, ctx: ExecContext) -> Generator:
        if len(ctx.args) < 2:
            return ExitStatus(code=2, stdout=b"usage: objscan PATTERN KEY...")
        pattern = ctx.args[0].encode()
        results: list[str] = []
        total = 0
        for key in ctx.args[1:]:
            path = OBJECT_PREFIX + key
            if not ctx.fs.exists(path):
                return ExitStatus(code=1, stdout=f"no such object: {key}".encode())
            matches = 0
            carry = b""
            stream = ctx.stream_pages(path)
            while not stream.exhausted:
                chunk, take = yield from stream.next_page()
                yield from charge(ctx, self.name, take)
                if chunk is None:
                    continue
                data = carry + chunk
                matches += data.count(pattern)
                # avoid double counting across the seam: keep a pattern-sized tail
                carry = data[-(len(pattern) - 1):] if len(pattern) > 1 else b""
                matches -= carry.count(pattern)
            results.append(f"{key}:{matches}")
            total += matches
        return ExitStatus(
            code=0 if total else 1,
            stdout=" ".join(results).encode(),
            detail={"total_matches": total, "objects": len(ctx.args) - 1},
        )
