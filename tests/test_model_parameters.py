"""Parameter-level tests for the hardware model presets."""

import pytest

from repro.cpu import ARM_A53_QUAD, CpuCluster, RunQueue, XEON_E5_2620_V4
from repro.flash import FlashEnergy, FlashTiming
from repro.pcie import PcieGen
from repro.pcie.link import LinkParams
from repro.sim import Simulator


def test_flash_timing_presets_ordered():
    slc = FlashTiming.slc_mode()
    tlc = FlashTiming()
    qlc = FlashTiming.qlc()
    assert slc.t_read < tlc.t_read < qlc.t_read
    assert slc.t_prog < tlc.t_prog < qlc.t_prog
    assert slc.t_erase < tlc.t_erase < qlc.t_erase


def test_flash_timing_transfer_time():
    timing = FlashTiming()
    assert timing.transfer_time(0) == pytest.approx(timing.t_cmd)
    one_mb = timing.transfer_time(1_000_000)
    assert one_mb == pytest.approx(timing.t_cmd + 1_000_000 / 533e6)
    with pytest.raises(ValueError):
        timing.transfer_time(-1)


def test_flash_timing_validation():
    with pytest.raises(ValueError):
        FlashTiming(t_read=0)
    with pytest.raises(ValueError):
        FlashTiming(channel_rate=-1)


def test_flash_energy_model():
    energy = FlashEnergy()
    assert energy.transfer_energy(1000) == pytest.approx(1000 * energy.e_transfer_per_byte)
    assert energy.idle_power(64) == pytest.approx(64 * energy.p_idle_per_die)
    with pytest.raises(ValueError):
        energy.transfer_energy(-1)
    with pytest.raises(ValueError):
        energy.idle_power(-1)
    with pytest.raises(ValueError):
        FlashEnergy(e_read=-1)


def test_pcie_generations_double_per_gen():
    assert PcieGen.GEN2.lane_rate == pytest.approx(2 * PcieGen.GEN1.lane_rate)
    assert PcieGen.GEN4.lane_rate == pytest.approx(2 * PcieGen.GEN3.lane_rate, rel=0.01)


def test_pcie_x16_gen3_matches_paper_16gbs():
    """The paper's '16 lanes of PCIe = 16 GB/s' (raw; ~13.7 effective)."""
    raw = PcieGen.GEN3.lane_rate * 16
    assert raw == pytest.approx(15.76e9, rel=0.01)
    effective = LinkParams(gen=PcieGen.GEN3, lanes=16).bandwidth
    assert 13e9 < effective < 14.5e9


def test_run_instructions_uses_ipc():
    sim = Simulator()
    cluster = CpuCluster(sim, XEON_E5_2620_V4)
    runq = RunQueue(sim, cluster)
    instructions = XEON_E5_2620_V4.ipc * XEON_E5_2620_V4.freq_hz  # 1 s of work

    def flow():
        return (yield from runq.run_instructions(instructions))

    assert sim.run(sim.process(flow())) == pytest.approx(1.0, rel=1e-6)


def test_temperature_rises_with_load():
    sim = Simulator()
    cluster = CpuCluster(sim, ARM_A53_QUAD)
    idle_temp = cluster.temperature_c()

    def hog():
        yield from cluster.execute(ARM_A53_QUAD.freq_hz * 4)

    for _ in range(4):
        sim.process(hog())
    sim.run(until=2.0)
    assert cluster.temperature_c() > idle_temp


def test_isps_dram_matches_table2():
    assert ARM_A53_QUAD.dram_gib == 8  # 8 GB DDR4 (Table II)


def test_cluster_busy_accounting():
    sim = Simulator()
    cluster = CpuCluster(sim, ARM_A53_QUAD)
    sim.run(sim.process(cluster.execute(1.5e9)))
    assert cluster.cycles_executed == pytest.approx(1.5e9)
    assert cluster.busy_seconds == pytest.approx(1.0)
