"""Fleet-level health aggregation.

Folds per-device :class:`~repro.isps.telemetry.TelemetrySnapshot`s and SMART
log pages (``NvmeController.smart_log``) into one :class:`FleetHealth`
summary — the report an SRE dashboard would render for a rack of CompStor
nodes: minion-latency percentiles, per-node utilisation, grown-bad-block
totals, wear, thermal headroom.

The aggregator is deliberately pull-based and simulation-agnostic: feed it
snapshots from :meth:`StorageFleet.telemetry`, SMART dicts from each
controller, and minion latencies from responses (or an enabled
:class:`~repro.obs.metrics.Histogram`), then ask for :meth:`summary`.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

__all__ = ["FleetHealth", "HealthAggregator", "burn_rate_alerts"]


def burn_rate_alerts(
    events: Sequence[tuple[float, bool]],
    objective: float,
    windows: Sequence[Any],
) -> tuple[dict[str, Any], ...]:
    """Multi-window burn-rate evaluation over a ``(time, good)`` series.

    Burn rate is ``bad_fraction / (1 - objective)``: 1.0 consumes the error
    budget exactly at the sustainable pace.  For each window pair the alert
    *fires* at the first instant both the long and the short trailing
    window burn faster than the pair's threshold — the long window proves
    the problem is material, the short window proves it is still
    happening (so a recovered system stops alerting immediately).

    ``windows`` holds :class:`repro.config.schema.BurnWindowConfig`-shaped
    objects (``long_ms`` / ``short_ms`` / ``threshold``).  Returns one
    verdict dict per pair; all floats are plain Python floats so verdicts
    serialise into canonical-JSON scorecards.
    """
    if not 0.0 < objective < 1.0:
        raise ValueError("objective must be in (0, 1)")
    budget = 1.0 - objective
    times = [t for t, _ in events]
    bad_prefix = [0]
    for _, good in events:
        bad_prefix.append(bad_prefix[-1] + (0 if good else 1))

    def burn(start_index: int, end_index: int) -> float:
        total = end_index - start_index
        if total <= 0:
            return 0.0
        bad = bad_prefix[end_index] - bad_prefix[start_index]
        return (bad / total) / budget

    verdicts = []
    for window in windows:
        long_s = window.long_ms / 1e3
        short_s = window.short_ms / 1e3
        fired_at: float | None = None
        worst = 0.0
        for index, t in enumerate(times):
            end = index + 1
            long_burn = burn(bisect_left(times, t - long_s, 0, end), end)
            short_burn = burn(bisect_left(times, t - short_s, 0, end), end)
            joint = min(long_burn, short_burn)
            if joint > worst:
                worst = joint
            if fired_at is None and joint >= window.threshold:
                fired_at = t
        verdicts.append({
            "long_ms": float(window.long_ms),
            "short_ms": float(window.short_ms),
            "threshold": float(window.threshold),
            "fired": fired_at is not None,
            "fired_at_ms": None if fired_at is None else fired_at * 1e3,
            "worst": worst,
        })
    return tuple(verdicts)


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile over raw samples."""
    if not sorted_samples:
        return 0.0
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = q * (len(sorted_samples) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_samples) - 1)
    fraction = position - lower
    return sorted_samples[lower] * (1 - fraction) + sorted_samples[upper] * fraction


@dataclass(frozen=True, slots=True)
class FleetHealth:
    """Point-in-time rollup across every device in a fleet."""

    time: float
    nodes: int
    devices: int
    active_minions: int
    running_processes: int
    mean_utilization: float
    max_utilization: float
    per_node_utilization: dict[int, float]
    max_temperature_c: float
    total_free_bytes: int
    minion_latency_p50: float
    minion_latency_p95: float
    minion_latency_p99: float
    minion_latency_samples: int
    grown_bad_blocks: int
    media_errors: int
    max_percentage_used: int
    max_write_amplification: float
    gc_collections: int
    #: Fault/recovery accounting (PR 2): how much trouble the fleet has
    #: absorbed, and where it is still degraded right now.
    watchdog_kills: int = 0
    minions_aborted: int = 0
    agent_restarts: int = 0
    retries: int = 0
    failovers: int = 0
    host_fallbacks: int = 0
    lost_minions: int = 0
    unreachable_devices: tuple[str, ...] = ()
    breakers_open: tuple[str, ...] = ()
    alerts: tuple[str, ...] = ()
    #: Service-frontend rollup (PR 6): only meaningful when a traffic run
    #: fed the aggregator (``service_engaged``).
    service_engaged: bool = False
    service_requests: int = 0
    service_shed: int = 0
    service_violations: int = 0
    service_p999_ms: float = 0.0
    service_jain: float = 1.0
    #: Overload-resilience rollup (PR 7): per-reason shed counts (includes
    #: ``brownout``/``retry_budget`` once defenses are engaged), CoDel
    #: drops, and fired multi-window burn-rate alerts.
    service_shed_reasons: tuple[tuple[str, int], ...] = ()
    service_dropped: int = 0
    service_burn_alerts: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """Is any device currently unreachable or fenced off by a breaker?"""
        return bool(self.unreachable_devices or self.breakers_open)

    def rows(self) -> list[list[Any]]:
        """``[attribute, value]`` rows for table rendering."""
        return [
            ["nodes / devices", f"{self.nodes} / {self.devices}"],
            ["unreachable devices",
             ", ".join(self.unreachable_devices) if self.unreachable_devices else "none"],
            ["breakers open",
             ", ".join(self.breakers_open) if self.breakers_open else "none"],
            ["retries / failovers / host fallbacks",
             f"{self.retries} / {self.failovers} / {self.host_fallbacks}"],
            ["watchdog kills / aborted / agent restarts",
             f"{self.watchdog_kills} / {self.minions_aborted} / {self.agent_restarts}"],
            ["lost minions", self.lost_minions],
            ["active minions", self.active_minions],
            ["running processes", self.running_processes],
            ["utilization mean / max", f"{self.mean_utilization * 100:.1f}% / {self.max_utilization * 100:.1f}%"],
            ["max temperature", f"{self.max_temperature_c:.1f}C"],
            ["free bytes", self.total_free_bytes],
            ["minion latency p50/p95/p99",
             f"{self.minion_latency_p50 * 1e3:.2f} / {self.minion_latency_p95 * 1e3:.2f} / "
             f"{self.minion_latency_p99 * 1e3:.2f} ms (n={self.minion_latency_samples})"],
            ["grown bad blocks", self.grown_bad_blocks],
            ["media errors", self.media_errors],
            ["max % used", self.max_percentage_used],
            ["max write amplification", f"{self.max_write_amplification:.2f}"],
            ["GC collections", self.gc_collections],
            ["alerts", "; ".join(self.alerts) if self.alerts else "none"],
        ] + (
            [
                ["service requests / shed / violations",
                 f"{self.service_requests} / {self.service_shed} / {self.service_violations}"],
                ["service shed by reason",
                 ", ".join(f"{reason}={count}"
                           for reason, count in self.service_shed_reasons)
                 or "none"],
                ["service dropped (codel)", self.service_dropped],
                ["service burn alerts",
                 "; ".join(self.service_burn_alerts)
                 if self.service_burn_alerts else "none"],
                ["service latency p999", f"{self.service_p999_ms:.2f} ms"],
                ["service fairness (Jain)", f"{self.service_jain:.4f}"],
            ]
            if self.service_engaged
            else []
        )


@dataclass
class _DeviceHealth:
    node: int
    device: str
    snapshot: Any
    smart: Mapping[str, Any] | None = None


class HealthAggregator:
    """Accumulates device observations; :meth:`summary` rolls them up.

    Thresholds fire operator alerts (strings, not exceptions): hot devices,
    saturated cores, wear-out, grown bad blocks.
    """

    def __init__(
        self,
        utilization_warn: float = 0.95,
        temperature_warn_c: float = 85.0,
        percentage_used_warn: int = 90,
    ):
        self.utilization_warn = utilization_warn
        self.temperature_warn_c = temperature_warn_c
        self.percentage_used_warn = percentage_used_warn
        self._devices: dict[tuple[int, str], _DeviceHealth] = {}
        self._latencies: list[float] = []
        self._histogram_percentiles: tuple[float, float, float] | None = None
        self._histogram_samples = 0
        self._unreachable: dict[tuple[int, str], None] = {}
        self._recovery: dict[str, int] = {
            "retries": 0, "failovers": 0, "host_fallbacks": 0, "lost_minions": 0
        }
        self._breakers_open: tuple[str, ...] = ()
        self._service: Any = None

    # -- feeding ------------------------------------------------------------
    def observe_device(
        self,
        node: int,
        device: str,
        snapshot: Any,
        smart: Mapping[str, Any] | None = None,
    ) -> None:
        """Record one device's telemetry (+ optional SMART page).

        Re-observing a device replaces its previous observation, so one
        aggregator can be polled across a run.
        """
        self._devices[(node, device)] = _DeviceHealth(node, device, snapshot, smart)
        self._unreachable.pop((node, device), None)

    def observe_unreachable(self, node: int, device: str) -> None:
        """Record a device that did not answer its telemetry query.

        Unreachable devices stay in the report (as alerts and in
        ``unreachable_devices``) instead of poisoning the whole poll —
        a degraded fleet still has health.
        """
        self._unreachable[(node, device)] = None
        self._devices.pop((node, device), None)

    def observe_recovery(
        self,
        retries: int = 0,
        failovers: int = 0,
        host_fallbacks: int = 0,
        lost_minions: int = 0,
        breakers_open: tuple[str, ...] = (),
    ) -> None:
        """Fold fleet-level recovery counters into the next summary."""
        self._recovery["retries"] = retries
        self._recovery["failovers"] = failovers
        self._recovery["host_fallbacks"] = host_fallbacks
        self._recovery["lost_minions"] = lost_minions
        self._breakers_open = tuple(breakers_open)

    def observe_service(self, report: Any) -> None:
        """Fold a service-frontend scorecard
        (:class:`repro.service.slo.SloReport`) into the next summary —
        shed traffic and SLO violations become operator alerts."""
        self._service = report

    @staticmethod
    def _burn_alert_strings(report: Any) -> tuple[str, ...]:
        burn = getattr(report, "burn", None)
        if not burn:
            return ()
        return tuple(
            f"burn-rate {alert['long_ms']:g}ms/{alert['short_ms']:g}ms "
            f">= {alert['threshold']:g}x (worst {alert['worst']:.1f}x)"
            for alert in burn
            if alert.get("fired")
        )

    def _service_fields(self) -> dict[str, Any]:
        if self._service is None:
            return {}
        report = self._service
        return {
            "service_engaged": True,
            "service_requests": report.requests,
            "service_shed": report.shed_total,
            "service_violations": report.violations,
            "service_p999_ms": report.p999_ms,
            "service_jain": report.jain,
            "service_shed_reasons": tuple(sorted(report.shed.items())),
            "service_dropped": getattr(report, "dropped", None) or 0,
            "service_burn_alerts": self._burn_alert_strings(report),
        }

    def _service_alerts(self) -> list[str]:
        if self._service is None:
            return []
        report = self._service
        alerts = []
        if report.shed_total:
            alerts.append(f"service: {report.shed_total} requests shed at admission")
        if report.violations:
            alerts.append(f"service: {report.violations} SLO violations")
        if report.lost:
            alerts.append(f"service: {report.lost} requests lost in dispatch")
        dropped = getattr(report, "dropped", None)
        if dropped:
            alerts.append(f"service: {dropped} stale requests dropped (CoDel)")
        alerts.extend(f"service: {s}" for s in self._burn_alert_strings(report))
        return alerts

    def observe_minion_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def observe_minion_latencies(self, seconds: Iterable[float]) -> None:
        self._latencies.extend(seconds)

    def observe_latency_histogram(self, histogram: Any) -> None:
        """Take percentiles from a :class:`repro.obs.metrics.Histogram`
        (used when raw per-minion latencies were not retained)."""
        self._histogram_percentiles = (
            histogram.aggregate_percentile(0.50),
            histogram.aggregate_percentile(0.95),
            histogram.aggregate_percentile(0.99),
        )
        self._histogram_samples = sum(
            state.count for state in histogram._values.values()
        )

    # -- rollup -------------------------------------------------------------
    def summary(self) -> FleetHealth:
        if not self._devices and not self._unreachable:
            raise ValueError("no device observations to summarise")
        if not self._devices:
            # every device is down: still report, with zeros and loud alerts
            unreachable = tuple(f"node{n}/{d}" for n, d in sorted(self._unreachable))
            return FleetHealth(
                time=0.0,
                nodes=len({n for n, _ in self._unreachable}),
                devices=0,
                active_minions=0,
                running_processes=0,
                mean_utilization=0.0,
                max_utilization=0.0,
                per_node_utilization={},
                max_temperature_c=0.0,
                total_free_bytes=0,
                minion_latency_p50=0.0,
                minion_latency_p95=0.0,
                minion_latency_p99=0.0,
                minion_latency_samples=0,
                grown_bad_blocks=0,
                media_errors=0,
                max_percentage_used=0,
                max_write_amplification=0.0,
                gc_collections=0,
                retries=self._recovery["retries"],
                failovers=self._recovery["failovers"],
                host_fallbacks=self._recovery["host_fallbacks"],
                lost_minions=self._recovery["lost_minions"],
                unreachable_devices=unreachable,
                breakers_open=self._breakers_open,
                alerts=tuple(
                    [f"{tag}: unreachable" for tag in unreachable]
                    + self._service_alerts()
                ),
                **self._service_fields(),
            )
        snaps = list(self._devices.values())
        utilizations = [d.snapshot.core_utilization for d in snaps]
        per_node: dict[int, list[float]] = defaultdict(list)
        for d in snaps:
            per_node[d.node].append(d.snapshot.core_utilization)
        node_util = {n: sum(v) / len(v) for n, v in sorted(per_node.items())}

        smarts = [d.smart for d in snaps if d.smart is not None]
        bad_blocks = sum(int(s.get("bad_blocks", 0)) for s in smarts)
        media_errors = sum(int(s.get("media_errors", 0)) for s in smarts)
        gc_collections = sum(int(s.get("gc_collections", 0)) for s in smarts)
        pct_used = max((int(s.get("percentage_used", 0)) for s in smarts), default=0)
        max_wa = max((float(s.get("write_amplification", 0.0)) for s in smarts), default=0.0)

        if self._latencies:
            ordered = sorted(self._latencies)
            p50 = _percentile(ordered, 0.50)
            p95 = _percentile(ordered, 0.95)
            p99 = _percentile(ordered, 0.99)
            n_samples = len(ordered)
        elif self._histogram_percentiles is not None:
            p50, p95, p99 = self._histogram_percentiles
            n_samples = self._histogram_samples
        else:
            p50 = p95 = p99 = 0.0
            n_samples = 0

        max_temp = max(d.snapshot.temperature_c for d in snaps)
        unreachable = tuple(f"node{n}/{d}" for n, d in sorted(self._unreachable))
        alerts: list[str] = [f"{tag}: unreachable" for tag in unreachable]
        for device in self._breakers_open:
            alerts.append(f"{device}: circuit breaker open")
        if self._recovery["lost_minions"]:
            alerts.append(f"{self._recovery['lost_minions']} minions lost (no surviving replica)")
        for d in snaps:
            tag = f"node{d.node}/{d.device}"
            if d.snapshot.core_utilization >= self.utilization_warn:
                alerts.append(f"{tag}: cores saturated ({d.snapshot.core_utilization * 100:.0f}%)")
            if d.snapshot.temperature_c >= self.temperature_warn_c:
                alerts.append(f"{tag}: hot ({d.snapshot.temperature_c:.0f}C)")
            if d.smart and int(d.smart.get("percentage_used", 0)) >= self.percentage_used_warn:
                alerts.append(f"{tag}: wear {d.smart['percentage_used']}% of rated life")
            if d.smart and int(d.smart.get("bad_blocks", 0)) > 0:
                alerts.append(f"{tag}: {d.smart['bad_blocks']} grown bad blocks")
        alerts.extend(self._service_alerts())

        return FleetHealth(
            time=max(d.snapshot.time for d in snaps),
            nodes=len({d.node for d in snaps}),
            devices=len(snaps),
            active_minions=sum(d.snapshot.active_minions for d in snaps),
            running_processes=sum(d.snapshot.running_processes for d in snaps),
            mean_utilization=sum(utilizations) / len(utilizations),
            max_utilization=max(utilizations),
            per_node_utilization=node_util,
            max_temperature_c=max_temp,
            total_free_bytes=sum(d.snapshot.free_bytes for d in snaps),
            minion_latency_p50=p50,
            minion_latency_p95=p95,
            minion_latency_p99=p99,
            minion_latency_samples=n_samples,
            grown_bad_blocks=bad_blocks,
            media_errors=media_errors,
            max_percentage_used=pct_used,
            max_write_amplification=max_wa,
            gc_collections=gc_collections,
            watchdog_kills=sum(getattr(d.snapshot, "watchdog_kills", 0) for d in snaps),
            minions_aborted=sum(getattr(d.snapshot, "minions_aborted", 0) for d in snaps),
            agent_restarts=sum(getattr(d.snapshot, "agent_restarts", 0) for d in snaps),
            retries=self._recovery["retries"],
            failovers=self._recovery["failovers"],
            host_fallbacks=self._recovery["host_fallbacks"],
            lost_minions=self._recovery["lost_minions"],
            unreachable_devices=unreachable,
            breakers_open=self._breakers_open,
            alerts=tuple(alerts),
            **self._service_fields(),
        )
