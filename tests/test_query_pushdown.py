"""Tests for the selection/aggregation pushdown app and CSV tables."""

import pytest

from repro.cluster import StorageNode
from repro.workloads import CsvTable, TableSpec


def build(table: CsvTable):
    node = StorageNode.build(devices=1, device_capacity=32 * 1024 * 1024)
    sim = node.sim

    def stage():
        yield from node.compstors[0].fs.write_file("table.csv", table.to_csv_bytes())
        yield from node.compstors[0].ftl.flush()

    sim.run(sim.process(stage()))
    return node


def run_query(node, query: str):
    def flow():
        return (yield from node.client.run("compstor0", query))

    return node.sim.run(node.sim.process(flow()))


def test_selectq_matches_ground_truth():
    table = CsvTable(TableSpec(rows=2000, columns=4))
    node = build(table)
    response = run_query(node, "selectq 1 gt 500 2 table.csv")
    truth = table.expected_selection(1, "gt", 500.0, 2)
    assert response.ok
    assert response.detail["rows_selected"] == truth["count"]
    assert response.detail["rows_seen"] == 2000
    assert response.detail["sum"] == pytest.approx(truth["sum"], rel=1e-9)


@pytest.mark.parametrize("op", ["eq", "ne", "lt", "le", "gt", "ge"])
def test_selectq_all_operators(op):
    table = CsvTable(TableSpec(rows=300, columns=3, integer=True,
                               value_range=(0, 10)))
    node = build(table)
    response = run_query(node, f"selectq 0 {op} 5 1 table.csv")
    truth = table.expected_selection(0, op, 5.0, 1)
    assert response.detail["rows_selected"] == truth["count"]


def test_selectq_empty_result():
    table = CsvTable(TableSpec(rows=100, columns=2, value_range=(0, 10)))
    node = build(table)
    response = run_query(node, "selectq 0 gt 99999 1 table.csv")
    assert response.ok
    assert response.stdout == b"count=0"


def test_selectq_result_is_tiny_compared_to_table():
    """The pushdown point: gigabyte-class scan, byte-class result."""
    table = CsvTable(TableSpec(rows=5000, columns=6))
    node = build(table)
    response = run_query(node, "selectq 3 ge 250 4 table.csv")
    assert response.detail["bytes_scanned"] > 100 * len(response.stdout)


def test_selectq_malformed_rows_counted_not_fatal():
    node = StorageNode.build(devices=1, device_capacity=16 * 1024 * 1024)
    data = b"1,2,3\nnot,a,number\n4,5,6\n7,8\n"  # two bad rows
    node.sim.run(node.sim.process(node.compstors[0].fs.write_file("t.csv", data)))
    response = run_query(node, "selectq 0 ge 0 2 t.csv")
    assert response.ok
    assert response.detail["rows_seen"] == 4
    assert response.detail["rows_selected"] == 2
    assert response.detail["malformed"] == 2


def test_selectq_usage_errors():
    node = StorageNode.build(devices=1, device_capacity=16 * 1024 * 1024)
    node.sim.run(node.sim.process(node.compstors[0].fs.write_file("t.csv", b"1,2\n")))
    for bad in (
        "selectq 0 gt 5 t.csv",  # missing agg col
        "selectq 0 zz 5 1 t.csv",  # unknown operator
        "selectq x gt 5 1 t.csv",  # non-integer column
    ):
        response = run_query(node, bad)
        assert response.exit_code == 2, bad


def test_row_spanning_page_boundary_parsed_once():
    node = StorageNode.build(devices=1, device_capacity=16 * 1024 * 1024)
    page = node.compstors[0].fs.page_size
    filler = b"1,1\n" * ((page - 6) // 4)
    data = filler + b"500,9\n" + b"2,2\n"
    node.sim.run(node.sim.process(node.compstors[0].fs.write_file("t.csv", data)))
    response = run_query(node, "selectq 0 eq 500 1 t.csv")
    assert response.detail["rows_selected"] == 1


# -- table generator --------------------------------------------------------------

def test_table_deterministic():
    a = CsvTable(TableSpec(rows=10, seed=5)).to_csv_bytes()
    b = CsvTable(TableSpec(rows=10, seed=5)).to_csv_bytes()
    assert a == b


def test_table_spec_validation():
    with pytest.raises(ValueError):
        TableSpec(rows=0)
    with pytest.raises(ValueError):
        TableSpec(value_range=(5.0, 5.0))


def test_table_integer_mode():
    table = CsvTable(TableSpec(rows=5, columns=2, integer=True))
    blob = table.to_csv_bytes()
    assert b"." not in blob
