"""Sliced execution: a fair run queue over a CPU cluster.

:class:`RunQueue` runs long computations as a sequence of quantum-sized
core acquisitions, so N runnable tasks on C cores each progress at roughly
C/N of a core — the behaviour an OS scheduler (CFS-style) provides, at the
granularity a discrete-event model needs.
"""

from __future__ import annotations

from typing import Generator

from repro.cpu.core import CpuCluster
from repro.sim import Simulator

__all__ = ["RunQueue"]


class RunQueue:
    """Quantum-sliced scheduler facade over a :class:`CpuCluster`."""

    def __init__(self, sim: Simulator, cluster: CpuCluster, quantum: float = 4e-3):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.sim = sim
        self.cluster = cluster
        self.quantum = quantum
        # quantum and spec are fixed after construction
        self._quantum_cycles = quantum * cluster.spec.freq_hz

    @property
    def quantum_cycles(self) -> float:
        return self._quantum_cycles

    def run_cycles(self, cycles: float, priority: int = 0) -> Generator:
        """Execute ``cycles`` in quantum slices; returns elapsed seconds."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        start = self.sim.now
        remaining = float(cycles)
        q = self._quantum_cycles
        while remaining > 0:
            slice_cycles = min(remaining, q)
            yield from self.cluster.execute(slice_cycles, priority=priority)
            remaining -= slice_cycles
        return self.sim.now - start

    def run_instructions(self, instructions: float, priority: int = 0) -> Generator:
        cycles = self.cluster.spec.cycles_for_instructions(instructions)
        result = yield from self.run_cycles(cycles, priority=priority)
        return result
