"""Unit tests for the PCIe fabric model."""

import pytest

from repro.pcie import PcieFabric, PcieGen, PcieLink
from repro.pcie.link import Direction, LinkParams
from repro.sim import Simulator


def run(sim, gen):
    return sim.run(sim.process(gen))


def test_link_bandwidth_math():
    params = LinkParams(gen=PcieGen.GEN3, lanes=16, efficiency=0.87)
    assert params.bandwidth == pytest.approx(985e6 * 16 * 0.87)


def test_transfer_time_matches_bandwidth():
    sim = Simulator()
    link = PcieLink(sim, LinkParams(lanes=4, latency=1e-6))
    nbytes = 1_000_000

    def flow():
        return (yield from link.transfer(nbytes, Direction.RX))

    elapsed = run(sim, flow())
    assert elapsed == pytest.approx(1e-6 + nbytes / link.bandwidth)
    assert link.bytes_moved[Direction.RX] == nbytes


def test_directions_are_independent():
    """TX and RX can proceed simultaneously (full duplex)."""
    sim = Simulator()
    link = PcieLink(sim, LinkParams(lanes=4, latency=0.0))
    nbytes = 4_000_000
    one_way = nbytes / link.bandwidth

    sim.process(link.transfer(nbytes, Direction.TX))
    sim.process(link.transfer(nbytes, Direction.RX))
    sim.run()
    assert sim.now == pytest.approx(one_way)  # not 2x


def test_same_direction_serializes():
    sim = Simulator()
    link = PcieLink(sim, LinkParams(lanes=4, latency=0.0))
    nbytes = 4_000_000
    one_way = nbytes / link.bandwidth

    sim.process(link.transfer(nbytes, Direction.TX))
    sim.process(link.transfer(nbytes, Direction.TX))
    sim.run()
    assert sim.now == pytest.approx(2 * one_way)


def test_negative_transfer_rejected():
    sim = Simulator()
    link = PcieLink(sim)

    def flow():
        yield from link.transfer(-1, Direction.TX)

    with pytest.raises(ValueError):
        run(sim, flow())


def test_link_params_validation():
    with pytest.raises(ValueError):
        LinkParams(lanes=0)
    with pytest.raises(ValueError):
        LinkParams(efficiency=0.0)
    with pytest.raises(ValueError):
        LinkParams(latency=-1.0)


def test_energy_sink_charged_per_byte():
    sim = Simulator()
    charged = []
    link = PcieLink(sim, LinkParams(lanes=4), energy_sink=lambda n, j: charged.append(j))

    def flow():
        yield from link.transfer(1000, Direction.TX)

    run(sim, flow())
    assert charged == [pytest.approx(1000 * link.params.energy_per_byte)]


def test_fabric_topology_counts():
    sim = Simulator()
    fabric = PcieFabric(sim, endpoints=8)
    assert len(fabric) == 8
    assert len(fabric.switch.downlinks) == 8


def test_fabric_port_bandwidth_capped_by_downlink():
    sim = Simulator()
    fabric = PcieFabric(sim, endpoints=4, uplink_lanes=16, endpoint_lanes=4)
    port = fabric.ports[0]
    assert port.bandwidth == pytest.approx(port.downlink.bandwidth)
    assert port.bandwidth < fabric.uplink.bandwidth


def test_fabric_uplink_is_shared_bottleneck():
    """Four endpoints pushing simultaneously are limited by the uplink."""
    sim = Simulator()
    fabric = PcieFabric(sim, endpoints=4, uplink_lanes=4, endpoint_lanes=4)
    nbytes = 2_000_000

    for port in fabric.ports:
        sim.process(port.to_host(nbytes))
    sim.run()
    # all traffic funnels through one x4 uplink: ~4x one transfer time
    floor = 4 * nbytes / fabric.uplink.bandwidth
    assert sim.now >= floor * 0.99


def test_mismatch_factor_reproduces_fig1_scale():
    """Paper Fig. 1: 64 SSDs x ~8.5 GB/s media vs 16 GB/s host PCIe -> ~30-80x."""
    sim = Simulator()
    fabric = PcieFabric(sim, endpoints=64, uplink_lanes=16, endpoint_lanes=4)
    media_bw = 16 * 533e6  # per-SSD flash aggregate
    factor = fabric.mismatch_factor(media_bw)
    assert factor > 30


def test_mismatch_factor_validation():
    sim = Simulator()
    fabric = PcieFabric(sim, endpoints=2)
    with pytest.raises(ValueError):
        fabric.mismatch_factor(0)


def test_fabric_requires_endpoints():
    with pytest.raises(ValueError):
        PcieFabric(Simulator(), endpoints=0)
