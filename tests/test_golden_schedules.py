"""Golden-schedule regression tests.

Three pinned scenarios run with tracing on; the full trace schedule (every
record's time, component, kind and detail payload) plus the run's terminal
state is canonicalised and hashed.  The digests below were recorded before
the simulator hot-path optimization work and must never drift: any change
to event ordering, timing, or payloads — however small — flips the hash.

The scenario builders and the canonical hashing now live in
:mod:`repro.testing` so the parallel experiment runner can execute the
same scenarios in ``spawn`` workers (serial/parallel digest equality is
asserted in ``tests/test_parallel_equivalence.py``); this file keeps the
recorded digests and the drift tests.

This is the contract the perf PRs rely on: "the optimization kept schedules
bit-identical" is proven here, not asserted in prose.  If a PR changes the
*model* on purpose (new latency, new trace record), re-record with::

    PYTHONPATH=src python tests/test_golden_schedules.py

(which runs ``print_digests``) and explain the drift in the PR body.
"""

from __future__ import annotations

from repro.testing import (
    GOLDEN_SCENARIOS as SCENARIOS,
    canonical_value as _canon,  # noqa: F401  (back-compat re-export)
    schedule_digest,
    scenario_chaos_drill,
    scenario_fleet_grep,
    scenario_single_gzip,
)

#: Recorded from the pre-optimization simulator (PR 3 seed state), then
#: re-recorded once when the scenarios became hermetic: ID allocators
#: (minion/query/PID/CID) are now reset per scenario, so digests no longer
#: depend on suite order.  ``single_gzip`` — which always ran first from a
#: fresh process — kept its original pre-optimization digest bit-for-bit,
#: which is the proof that the hot-path optimization changed no schedule;
#: the other two changed only in the ID values embedded in trace payloads.
#: Any schedule drift fails these tests; see the module docstring for the
#: re-record procedure when drift is intentional.
GOLDEN = {
    "single_gzip": "86e73ad59496b2c5a944f82b4659eaceafc40ece73f1454ebcd2cb381a59a56d",
    "fleet_grep": "1cab9350525639bf3c33f13ad9eb1320687657fe5113e87264aac3906d4bb42b",
    "chaos_drill": "469e43a9945d6b7d0b751527d7556ed0411d694097239c64967bc072f3d5100c",
}


def test_single_gzip_schedule_unchanged():
    tracer, extras = scenario_single_gzip()
    assert len(tracer) > 0, "scenario must actually trace"
    assert schedule_digest(tracer, extras) == GOLDEN["single_gzip"]


def test_fleet_grep_schedule_unchanged():
    tracer, extras = scenario_fleet_grep()
    assert len(tracer) > 0
    assert schedule_digest(tracer, extras) == GOLDEN["fleet_grep"]


def test_chaos_drill_schedule_unchanged():
    tracer, extras = scenario_chaos_drill()
    assert len(tracer) > 0
    assert schedule_digest(tracer, extras) == GOLDEN["chaos_drill"]


def print_digests() -> None:  # pragma: no cover - re-record helper
    """Print current digests (run directly to re-record after model changes)."""
    for name, scenario in SCENARIOS.items():
        tracer, extras = scenario()
        print(f'    "{name}": "{schedule_digest(tracer, extras)}",')


if __name__ == "__main__":  # pragma: no cover
    print_digests()
