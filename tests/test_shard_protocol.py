"""Property-based tests for the conservative sync protocol itself.

The engine in :mod:`repro.sim.shard.protocol` is model-agnostic, so these
tests drive it with toy domains — a host that pings cells on a random
schedule, cells that reply after random service delays and also chatter
spontaneously — and check the protocol's load-bearing invariants on every
Hypothesis-generated topology:

- **lookahead safety**: no delivery lands earlier than its send time plus
  the direction's lookahead, and never behind a busy receiver's clock
  (the domain raises on violation; the log is checked independently);
- **conservation**: every message sent is delivered, and nothing is in
  flight at quiescence — including the reply traffic the pings provoke;
- **window monotonicity**: GVT never moves backwards across rounds;
- **grouping independence**: :func:`plan_shards` always yields contiguous
  balanced covers, and the *real* engine's scorecard digest is invariant
  under Hypothesis-chosen shard counts (the oracle golden from
  ``tests/golden_shard_digests.txt``).
"""

from __future__ import annotations

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.core import Simulator
from repro.sim.shard.protocol import (
    ConservativeEngine,
    SimDomain,
    plan_shards,
    sequential_stepper,
)

TO_HOST = 0.5e-6
TO_CELL = 2.5e-6
REPLY = TO_HOST + TO_CELL

US = 1e-6


class ToyHost(SimDomain):
    """Pings cells on a schedule; counts every message delivered back."""

    def __init__(self, sim: Simulator, schedule: list[tuple[float, str]]):
        super().__init__("host", sim, REPLY)
        self.heard = 0
        for at, dst in schedule:
            sim.process(self._ping(at, dst))

    def _ping(self, at: float, dst: str):
        yield self.sim.timeout(at)
        self.send(dst, "ping", {"at": at})

    def _on_message(self, message) -> None:
        self.heard += 1


class ToyCell(SimDomain):
    """Replies to every ping after a service delay; also chatters
    spontaneously on its own schedule."""

    def __init__(
        self,
        name: str,
        sim: Simulator,
        delay: float,
        chatter: list[float],
    ):
        super().__init__(name, sim, REPLY)
        self.delay = delay
        for at in chatter:
            sim.process(self._chat(at))

    def _chat(self, at: float):
        yield self.sim.timeout(at)
        self.send("host", "chatter", {"at": at})

    def _serve(self, message):
        yield self.sim.timeout(self.delay)
        self.send("host", "pong", {"ping": message.payload})

    def _on_message(self, message) -> None:
        self.sim.process(self._serve(message))


def _times(max_size: int = 6):
    return st.lists(
        st.integers(min_value=0, max_value=2000).map(lambda t: t * US),
        max_size=max_size,
    )


@st.composite
def topologies(draw):
    n_cells = draw(st.integers(min_value=1, max_value=4))
    pings = [
        (at, f"cell{draw(st.integers(0, n_cells - 1))}")
        for at in draw(_times())
    ]
    delays = [draw(st.integers(0, 100)) * US for _ in range(n_cells)]
    chatter = [draw(_times(max_size=3)) for _ in range(n_cells)]
    return n_cells, pings, delays, chatter


def _build(topology):
    n_cells, pings, delays, chatter = topology
    host = ToyHost(Simulator(seed=7), pings)
    cells = [
        ToyCell(f"cell{i}", Simulator(seed=11 + i), delays[i], chatter[i])
        for i in range(n_cells)
    ]
    engine = ConservativeEngine(
        host,
        [cell.name for cell in cells],
        sequential_stepper(cells),
        TO_CELL,
        TO_HOST,
    )
    engine.prime({cell.name: cell.next_action() for cell in cells})
    return host, cells, engine


@given(topologies())
def test_conservation_and_every_ping_answered(topology) -> None:
    n_cells, pings, _delays, chatter = topology
    host, cells, engine = _build(topology)
    stats = engine.run()
    assert stats.sent == stats.delivered
    assert stats.in_flight == 0
    # Every ping provokes exactly one pong; every chatter arrives too.
    assert host.heard == len(pings) + sum(len(c) for c in chatter)
    assert host.received == host.heard
    assert sum(cell.received for cell in cells) == len(pings)


@given(topologies())
def test_lookahead_safety_on_every_delivery(topology) -> None:
    """Deliveries respect the per-direction lookahead and never land
    behind the receiver's clock at injection time."""
    host, cells, engine = _build(topology)
    engine.run()
    for message, at, clock in host.delivery_log:
        assert at >= message.send_time + TO_HOST - 1e-15
        assert at >= clock
    for cell in cells:
        for message, at, clock in cell.delivery_log:
            assert at >= message.send_time + TO_CELL - 1e-15
            assert at >= clock


@given(topologies())
def test_window_advance_is_monotone(topology) -> None:
    _host, _cells, engine = _build(topology)
    stats = engine.run()
    gvts = [gvt for gvt, _cell_bound, _host_bound in stats.windows]
    assert all(b >= a for a, b in zip(gvts, gvts[1:]))
    # The final GVT is the quiescence time: nothing can act after it.
    if stats.windows:
        assert stats.gvt == gvts[-1]


@given(topologies())
def test_toy_runs_are_deterministic(topology) -> None:
    """The whole round structure — not just final counts — replays
    byte-identically, the property the process backend relies on."""
    host_a, _cells_a, engine_a = _build(topology)
    host_b, _cells_b, engine_b = _build(topology)
    stats_a, stats_b = engine_a.run(), engine_b.run()
    assert stats_a.windows == stats_b.windows
    assert (stats_a.rounds, stats_a.sent, stats_a.gvt) == (
        stats_b.rounds,
        stats_b.sent,
        stats_b.gvt,
    )
    assert host_a.heard == host_b.heard


@given(
    st.integers(min_value=1, max_value=96),
    st.integers(min_value=1, max_value=16),
)
def test_plan_shards_is_a_contiguous_balanced_cover(n_cells, shards) -> None:
    groups = plan_shards(n_cells, shards)
    assert len(groups) == min(shards, n_cells)
    flat = [i for group in groups for i in group]
    assert flat == list(range(n_cells))  # disjoint, contiguous, complete
    sizes = [len(group) for group in groups]
    assert max(sizes) - min(sizes) <= 1
    assert all(size >= 1 for size in sizes)


@settings(max_examples=8)
@given(st.integers(min_value=1, max_value=8), st.just("sequential"))
def test_real_engine_digest_invariant_under_random_partitions(
    shards, backend
) -> None:
    """The production engine, not the toy: any shard count (including more
    shards than cells, which clamps) reproduces the pinned oracle digest
    for the smoke scenario."""
    from repro.config.codec import to_dict
    from repro.config.presets import preset
    from repro.sim.shard import run_shard_cell
    from repro.testing import reset_global_ids

    golden = dict(
        reversed(line.split())
        for line in (Path(__file__).parent / "golden_shard_digests.txt")
        .read_text()
        .splitlines()
    )["smoke"]
    reset_global_ids()
    payload = run_shard_cell(to_dict(preset("smoke")), shards=shards, backend=backend)
    assert payload["result"]["digest"] == golden
