"""Live systems from declarative scenarios.

The one place where a :class:`~repro.config.schema.ScenarioConfig` becomes
simulator objects.  ``StorageNode.build`` / ``StorageFleet.build`` and the
CLI all funnel through here, so construction order — which determines event
scheduling, and therefore the golden schedule digests — is defined exactly
once.

Runtime-only collaborators (an existing :class:`~repro.sim.Simulator`, a
shared :class:`~repro.obs.metrics.MetricsRegistry`, an executable registry)
are explicit parameters, never config fields: a scenario stays a pure
value, equal to its canonical JSON.

Imports of the device/cluster layers are deliberately deferred into the
function bodies: those layers lazily import :mod:`repro.config` back (thin
build wrappers), and module-level imports in both directions would cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.config.schema import ScenarioConfig

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.cluster.fleet import StorageFleet
    from repro.cluster.node import StorageNode
    from repro.faults.plan import FaultPlan
    from repro.isos.loader import ExecutableRegistry
    from repro.obs.metrics import MetricsRegistry
    from repro.pcie.switch import PciePort
    from repro.power import PowerMeter
    from repro.sim import Simulator, Tracer
    from repro.ssd import CompStorSSD
    from repro.workloads import BookFile

__all__ = [
    "bind_metrics_clock",
    "build_corpus",
    "build_device",
    "build_fault_plan",
    "build_fleet",
    "build_node",
    "build_observability",
]


def bind_metrics_clock(metrics: "MetricsRegistry | None", sim: "Simulator") -> None:
    """Point a registry at simulation time — the single binding site.

    Idempotent: a registry bound by an outer builder (fleet) is left alone
    by inner ones (nodes sharing the simulator).
    """
    if metrics is not None and metrics.clock is None:
        metrics.bind_clock(lambda: sim.now)


def build_observability(
    config: ScenarioConfig,
) -> "tuple[MetricsRegistry | None, Tracer | None]":
    """The scenario's ``obs`` toggles as live (or absent) instruments."""
    metrics = tracer = None
    if config.obs.metrics:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    if config.obs.tracing:
        from repro.sim import Tracer

        tracer = Tracer(capacity=config.obs.trace_capacity)
    return metrics, tracer


def build_device(
    config: ScenarioConfig,
    sim: "Simulator | None" = None,
    *,
    name: str = "compstor",
    port: "PciePort | None" = None,
    meter: "PowerMeter | None" = None,
    registry: "ExecutableRegistry | None" = None,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> "CompStorSSD":
    """One CompStor drive described by ``config`` (flash/ftl/ecc/nvme/isps).

    The fleet sections of the scenario are ignored here; use
    :func:`build_node` / :func:`build_fleet` for full topologies.
    """
    from repro.cpu.models import resolve_cpu
    from repro.sim import Simulator
    from repro.ssd import CompStorSSD

    sim = sim or Simulator(seed=config.seed)
    bind_metrics_clock(metrics, sim)
    return CompStorSSD(
        sim,
        name=name,
        geometry=config.flash.geometry(),
        port=port,
        meter=meter,
        registry=registry,
        store_data=config.flash.store_data,
        ftl_config=config.ftl,
        ecc_config=config.ecc,
        nvme_config=config.nvme,
        device_config=config.device,
        cpu_spec=resolve_cpu(config.isps.cpu),
        tracer=tracer,
        metrics=metrics,
    )


def build_node(
    config: ScenarioConfig,
    sim: "Simulator | None" = None,
    *,
    geometry=None,
    registry: "ExecutableRegistry | None" = None,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    device_names: "tuple[str, ...] | None" = None,
) -> "StorageNode":
    """Host + fabric + ``fleet.devices_per_node`` CompStors, per the scenario.

    Mirrors the historical ``StorageNode.build`` construction sequence
    step-for-step (meter, fabric, devices, baseline, host, client) so
    schedules — and the golden digests over them — are bit-for-bit stable.
    ``geometry`` overrides ``config.flash`` for callers that hold a
    pre-built :class:`~repro.flash.FlashGeometry`.  ``device_names``
    overrides both the device count and the default ``compstor{i}`` naming —
    shard cells use it to build a one-device node whose drive keeps its
    fleet-global name.
    """
    from repro.cluster.node import StorageNode
    from repro.cpu.models import resolve_cpu
    from repro.host import HostServer, InSituClient
    from repro.pcie import PcieFabric
    from repro.power import PowerMeter
    from repro.sim import Simulator
    from repro.ssd import CompStorSSD, ConventionalSSD

    names = (
        tuple(f"compstor{i}" for i in range(config.fleet.devices_per_node))
        if device_names is None
        else tuple(device_names)
    )
    devices = len(names)
    sim = sim or Simulator(seed=config.seed)
    bind_metrics_clock(metrics, sim)
    meter = PowerMeter(sim, metrics=metrics)
    endpoints = devices + (1 if config.fleet.with_baseline_ssd else 0)
    fabric = PcieFabric(
        sim,
        endpoints=endpoints,
        uplink_lanes=config.pcie.uplink_lanes,
        endpoint_lanes=config.pcie.endpoint_lanes,
        energy_sink=meter.sink,
    )
    geometry = geometry if geometry is not None else config.flash.geometry()
    cpu_spec = resolve_cpu(config.isps.cpu)

    compstors = [
        CompStorSSD(
            sim,
            name=names[i],
            geometry=geometry,
            port=fabric.ports[i],
            meter=meter,
            registry=registry.clone() if registry is not None else None,
            store_data=config.flash.store_data,
            ftl_config=config.ftl,
            ecc_config=config.ecc,
            nvme_config=config.nvme,
            device_config=config.device,
            cpu_spec=cpu_spec,
            tracer=tracer,
            metrics=metrics,
        )
        for i in range(devices)
    ]
    baseline = None
    if config.fleet.with_baseline_ssd:
        baseline = ConventionalSSD(
            sim,
            name="baseline-ssd",
            geometry=geometry,
            port=fabric.ports[devices],
            meter=meter,
            store_data=config.flash.store_data,
            ftl_config=config.ftl,
            ecc_config=config.ecc,
            nvme_config=config.nvme,
            device_config=config.device,
            tracer=tracer,
            metrics=metrics,
        )
    host = HostServer(sim, meter=meter, tracer=tracer)
    if baseline is not None:
        host.mount(baseline.controller)
    client = InSituClient(
        sim,
        tracer=tracer,
        metrics=metrics,
        retry_policy=config.retry,
        breaker_config=config.breaker,
    )
    for ssd in compstors:
        client.attach(ssd.controller)
    return StorageNode(sim, host, fabric, compstors, client, meter, baseline_ssd=baseline)


def build_fleet(
    config: ScenarioConfig,
    *,
    registry: "ExecutableRegistry | None" = None,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> "StorageFleet":
    """``fleet.nodes`` storage nodes sharing one simulator and coordinator.

    When ``metrics``/``tracer`` are not supplied they come from the
    scenario's ``obs`` section (:func:`build_observability`).
    """
    from repro.cluster.fleet import StorageFleet
    from repro.sim import Simulator

    auto_metrics, auto_tracer = build_observability(config)
    metrics = metrics if metrics is not None else auto_metrics
    tracer = tracer if tracer is not None else auto_tracer
    sim = Simulator(seed=config.seed)
    bind_metrics_clock(metrics, sim)
    built = [
        build_node(config, sim=sim, registry=registry, tracer=tracer, metrics=metrics)
        for _ in range(config.fleet.nodes)
    ]
    return StorageFleet(sim, built, metrics=metrics)


def build_corpus(config: ScenarioConfig) -> "list[BookFile]":
    """The scenario's dataset; analytic (size-only) when ``store_data`` is off."""
    from repro.workloads import BookCorpus

    return BookCorpus(config.corpus).generate(functional=config.flash.store_data)


def build_fault_plan(
    config: ScenarioConfig,
    ring: "list[tuple[int, str]]",
    base_time: float = 0.0,
) -> "FaultPlan | None":
    """The scenario's fault plan aimed at a concrete device ring, or None.

    ``base_time`` shifts every event (conventionally: the simulation time
    at which staging completed and the plan is armed).
    """
    from repro.faults.plan import FaultPlan

    if not config.faults.any:
        return None
    return FaultPlan.from_config(config.faults, ring, base_time=base_time)


def scenario_for_node(
    *,
    name: str = "custom",
    devices: int,
    seed: int,
    geometry=None,
    device_capacity: int,
    store_data: bool,
    with_baseline_ssd: bool = False,
    ftl_config=None,
    ecc_config=None,
    uplink_lanes: int = 16,
    endpoint_lanes: int = 4,
    retry_policy=None,
    breaker_config=None,
    nodes: int = 1,
) -> ScenarioConfig:
    """The scenario equivalent of the historical kwargs chain.

    Backs the thin ``StorageNode.build`` / ``StorageFleet.build`` wrappers:
    every legacy keyword maps onto exactly one config field, defaults
    filling the rest, so old call sites get a faithful typed description of
    what they always built.
    """
    from repro.config.schema import FlashConfig, FleetConfig, PcieConfig
    from repro.ecc import EccConfig
    from repro.ftl import FtlConfig
    from repro.ssd.conventional import small_geometry

    flash = FlashConfig.from_geometry(
        geometry if geometry is not None else small_geometry(device_capacity),
        store_data=store_data,
    )
    return ScenarioConfig(
        name=name,
        seed=seed,
        flash=flash,
        ftl=ftl_config if ftl_config is not None else FtlConfig(),
        ecc=ecc_config if ecc_config is not None else EccConfig(),
        pcie=PcieConfig(uplink_lanes=uplink_lanes, endpoint_lanes=endpoint_lanes),
        fleet=FleetConfig(
            nodes=nodes,
            devices_per_node=devices,
            with_baseline_ssd=with_baseline_ssd,
        ),
        retry=retry_policy,
        breaker=breaker_config,
    )
