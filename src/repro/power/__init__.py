"""Power and energy accounting."""

from repro.power.meter import EnergyReport, PowerMeter

__all__ = ["EnergyReport", "PowerMeter"]
