"""The host server (paper Table IV).

Xeon E5-2620 v4, 32 GB DDR4, Ubuntu 16.04.  The host's filesystem sits on an
NVMe block device, so every byte a host-side application scans crosses the
drive's NVMe front-end and the PCIe fabric — the data-movement cost that
in-situ processing avoids.
"""

from __future__ import annotations

from repro.analysis.calibration import HOST_DRAM_W, HOST_PLATFORM_IDLE_W, XEON_ISA
from repro.apps import default_registry
from repro.cpu.core import CpuCluster, CpuSpec
from repro.cpu.models import XEON_E5_2620_V4
from repro.isos.blockdev import NvmeBlockDevice
from repro.isos.filesystem import ExtentFileSystem
from repro.isos.loader import ExecutableRegistry
from repro.isos.os import EmbeddedOS
from repro.nvme import NvmeController
from repro.power import PowerMeter
from repro.sim import Simulator, Tracer

__all__ = ["HostServer"]


class HostServer:
    """Xeon host: CPU cluster + OS over an NVMe-attached drive."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "host",
        spec: CpuSpec = XEON_E5_2620_V4,
        meter: PowerMeter | None = None,
        registry: ExecutableRegistry | None = None,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.name = name
        self.spec = spec
        self.meter = meter
        self.tracer = tracer
        sink = meter.sink if meter is not None else None
        self.cluster = CpuCluster(sim, spec, name=f"{name}.cpu", energy_sink=sink)
        self.registry = registry or default_registry()
        self.os: EmbeddedOS | None = None
        self.fs: ExtentFileSystem | None = None
        if meter is not None:
            meter.register_static(f"{name}.cpu.idle", spec.p_idle)
            meter.register_static(f"{name}.dram", HOST_DRAM_W)
            meter.register_static(f"{name}.platform", HOST_PLATFORM_IDLE_W)

    def mount(self, controller: NvmeController, queue_index: int = 0) -> EmbeddedOS:
        """Attach a drive and boot the host OS over it."""
        ident = controller.identify()
        device = NvmeBlockDevice(
            self.sim,
            controller.queue(queue_index),
            page_size=ident["page_size"],
            pages=ident["logical_pages"],
        )
        self.fs = ExtentFileSystem(self.sim, device)
        self.os = EmbeddedOS(
            self.sim,
            self.cluster,
            self.fs,
            self.registry,
            isa=XEON_ISA,
            name=f"{self.name}.os",
            tracer=self.tracer,
        )
        return self.os

    def require_os(self) -> EmbeddedOS:
        if self.os is None:
            raise RuntimeError("host has no mounted drive; call mount() first")
        return self.os

    def describe(self) -> dict:
        """Table IV in data form."""
        return {
            "cpu": self.spec.name,
            "memory_gib": self.spec.dram_gib,
            "operating_system": "Ubuntu 16.04 (modelled)",
            "mounted": self.os is not None,
        }
