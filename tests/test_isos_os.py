"""Unit tests for the embedded OS: spawn/wait, pipelines, scripts, loading."""

import pytest

from repro.cpu import ARM_A53_QUAD, CpuCluster
from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer
from repro.isos import (
    EmbeddedOS,
    ExecutableRegistry,
    ExtentFileSystem,
    FlashAccessDevice,
    ProcessState,
    ShellError,
    parse_command_line,
    split_pipeline,
)
from repro.isos.loader import ExitStatus
from repro.isos.shell import split_script
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=8, pages_per_block=8,
    page_size=2048,
)


class EchoApp:
    """Writes its args to stdout; costs a fixed cycle budget."""

    name = "echo"

    def run(self, ctx):
        yield from ctx.compute(1e6)
        return ExitStatus(code=0, stdout=" ".join(ctx.args).encode())


class UpperApp:
    """Uppercases stdin (pipeline stage)."""

    name = "upper"

    def run(self, ctx):
        yield from ctx.compute(1e5)
        return ExitStatus(code=0, stdout=(ctx.stdin or b"").upper())


class FailApp:
    name = "fail"

    def run(self, ctx):
        yield from ctx.compute(1e3)
        return ExitStatus(code=1, stdout=b"")


class CrashApp:
    name = "crash"

    def run(self, ctx):
        yield from ctx.compute(1e3)
        raise RuntimeError("segfault")


class CatApp:
    """Reads a file to stdout."""

    name = "cat"

    def run(self, ctx):
        data = yield from ctx.read_file(ctx.args[0])
        return ExitStatus(code=0, stdout=data or b"")


def make_os(sim=None):
    sim = sim or Simulator()
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(sim, flash, ecc)
    fs = ExtentFileSystem(sim, FlashAccessDevice(sim, ftl))
    registry = ExecutableRegistry(
        {app.name: app for app in (EchoApp(), UpperApp(), FailApp(), CrashApp(), CatApp())}
    )
    cluster = CpuCluster(sim, ARM_A53_QUAD)
    return sim, EmbeddedOS(sim, cluster, fs, registry, isa="arm-a53")


def drive(sim, gen):
    return sim.run(sim.process(gen))


# -- shell parsing ------------------------------------------------------------

def test_parse_command_line_quoting():
    assert parse_command_line('grep "two words" file.txt') == ["grep", "two words", "file.txt"]


def test_parse_empty_rejected():
    with pytest.raises(ShellError):
        parse_command_line("   ")


def test_split_pipeline():
    stages = split_pipeline("cat f.txt | upper")
    assert stages == [["cat", "f.txt"], ["upper"]]


def test_split_pipeline_respects_quotes():
    stages = split_pipeline("echo 'a|b' | upper")
    assert stages == [["echo", "a|b"], ["upper"]]


def test_split_pipeline_unterminated_quote():
    with pytest.raises(ShellError, match="unterminated"):
        split_pipeline("echo 'oops")


def test_split_script_lines_and_semicolons():
    lines = split_script("echo a; echo b\n# comment\necho c")
    assert lines == ["echo a", "echo b", "echo c"]


# -- process lifecycle ---------------------------------------------------------

def test_run_echo():
    sim, os_ = make_os()
    status, process = drive(sim, os_.run("echo hello world"))
    assert status.code == 0
    assert status.stdout == b"hello world"
    assert process.state == ProcessState.EXITED
    assert process.runtime > 0


def test_pipeline_feeds_stdin():
    sim, os_ = make_os()
    status, _ = drive(sim, os_.run("echo shout | upper"))
    assert status.stdout == b"SHOUT"


def test_pipeline_aborts_on_failure():
    sim, os_ = make_os()
    status, _ = drive(sim, os_.run("fail | upper"))
    assert status.code == 1


def test_unknown_binary_fails_fast():
    _, os_ = make_os()
    with pytest.raises(KeyError, match="not found"):
        os_.spawn("doesnotexist --flag")


def test_crash_marks_process_failed():
    sim, os_ = make_os()
    process = os_.spawn("crash")
    with pytest.raises(RuntimeError, match="segfault"):
        drive(sim, os_.wait(process))
    assert process.state == ProcessState.FAILED
    assert isinstance(process.error, RuntimeError)


def test_cat_reads_filesystem():
    sim, os_ = make_os()
    drive(sim, os_.fs.write_file("notes.txt", b"file content"))
    status, _ = drive(sim, os_.run("cat notes.txt"))
    assert status.stdout == b"file content"


def test_script_runs_sequentially_and_stops_on_failure():
    sim, os_ = make_os()
    results = drive(sim, os_.run_script("echo one\nfail\necho never"))
    assert [line for line, _, _ in results] == ["echo one", "fail"]
    assert results[-1][1].code == 1


def test_ps_and_process_table():
    sim, os_ = make_os()
    drive(sim, os_.run("echo a"))
    drive(sim, os_.run("echo b"))
    table = os_.ps()
    assert len(table) == 2
    assert all(row["state"] == "exited" for row in table)
    assert os_.running_processes() == 0


def test_concurrent_processes_share_cores():
    sim, os_ = make_os()
    procs = [os_.spawn("echo x") for _ in range(8)]

    def waiter():
        for p in procs:
            yield from os_.wait(p)

    drive(sim, waiter())
    assert all(p.state == ProcessState.EXITED for p in procs)


def test_dynamic_task_loading():
    sim, os_ = make_os()

    class NewApp:
        name = "brandnew"

        def run(self, ctx):
            yield from ctx.compute(1e3)
            return ExitStatus(code=0, stdout=b"loaded at runtime")

    assert "brandnew" not in os_.registry
    os_.install_executable(NewApp())
    assert "brandnew" in os_.registry
    assert os_.registry.loads == 1
    status, _ = drive(sim, os_.run("brandnew"))
    assert status.stdout == b"loaded at runtime"


def test_telemetry_surface():
    sim, os_ = make_os()
    drive(sim, os_.run("echo warm"))
    assert os_.uptime() == sim.now
    assert 0.0 <= os_.utilization() <= 1.0
    assert os_.temperature_c() > 35.0


def test_bad_exit_type_raises():
    sim, os_ = make_os()

    class BadApp:
        name = "bad"

        def run(self, ctx):
            yield from ctx.compute(1e3)
            return 42  # not an ExitStatus

    os_.install_executable(BadApp())
    process = os_.spawn("bad")
    with pytest.raises(TypeError, match="expected ExitStatus"):
        drive(sim, os_.wait(process))


def test_kill_running_process():
    from repro.sim.core import Interrupt

    sim, os_ = make_os()

    class SlowApp:
        name = "slow"

        def run(self, ctx):
            yield from ctx.compute(1e12)  # ~11 minutes on the A53 cluster
            return ExitStatus(code=0)

    os_.install_executable(SlowApp())
    process = os_.spawn("slow")

    def killer():
        yield sim.timeout(1e-3)
        assert os_.kill(process.pid, reason="test") is True

    sim.process(killer())
    with pytest.raises(Interrupt):
        drive(sim, os_.wait(process))
    assert process.state == ProcessState.FAILED


def test_kill_unknown_or_dead_pid():
    sim, os_ = make_os()
    assert os_.kill(999999) is False
    status, process = drive(sim, os_.run("echo done"))
    assert os_.kill(process.pid) is False  # already exited
