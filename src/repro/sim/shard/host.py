"""The host domain: the workload side of the sharded PCIe boundary.

:class:`HostDomain` runs the coordinator/frontend logic on its own
:class:`~repro.sim.Simulator` and talks to device cells exclusively through
request/response envelopes.  :meth:`call` is the yield-from primitive model
code builds on: allocate a request id, send the envelope, park on an event
the response delivery will succeed.  Because a parked request holds no
scheduled event, a host that is *only* waiting on cells reads as idle to
the engine — which is precisely what lets cells free-run through batch
phases.
"""

from __future__ import annotations

import itertools
from typing import Generator

from repro.sim.core import Event, Simulator
from repro.sim.shard.protocol import ShardMessage, SimDomain

__all__ = ["HostDomain"]


class HostDomain(SimDomain):
    """Request/response client over the shard boundary."""

    def __init__(self, sim: Simulator, reply_latency: float):
        super().__init__("host", sim, reply_latency)
        self._request_ids = itertools.count(1)
        self._waiting: dict[int, Event] = {}

    def call(self, cell: str, kind: str, payload: dict) -> Generator:
        """Ship one request to ``cell`` and wait for its result payload."""
        event = self.sim.event(name=f"{kind}->{cell}")
        request_id = next(self._request_ids)
        self._waiting[request_id] = event
        self.send(cell, kind, dict(payload, request_id=request_id))
        result = yield event
        return result

    @property
    def outstanding(self) -> int:
        return len(self._waiting)

    def _on_message(self, message: ShardMessage) -> None:
        if message.kind != "response":  # pragma: no cover - protocol guard
            raise ValueError(f"host cannot handle {message.kind!r} messages")
        request_id = message.payload["request_id"]
        self._waiting.pop(request_id).succeed(message.payload["result"])
