"""Garbage collection: victim policies and the background collector.

Two classic policies are provided (and compared in the GC ablation bench):

- **Greedy** — pick the closed block with the fewest valid pages; optimal
  for uniform workloads, oblivious to block age.
- **Cost-benefit** — maximise ``(1 - u) / (2u) * age`` (Kawaguchi et al.);
  favours old, mostly-invalid blocks, separating hot and cold data.

The collector also performs threshold-based **static wear leveling**: when
the P/E spread across blocks exceeds ``wl_delta``, the coldest (lowest-P/E)
closed block is forcibly collected so its cold data moves and the block
rejoins the hot rotation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Protocol, Sequence

from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ftl.ftl import FlashTranslationLayer

__all__ = ["CostBenefitPolicy", "GarbageCollector", "GcPolicy", "GreedyPolicy"]


class GcPolicy(Protocol):
    """Victim-selection strategy."""

    name: str

    def select(self, candidates: Sequence[int], ftl: "FlashTranslationLayer") -> int:
        """Pick one block index from ``candidates`` (non-empty)."""
        ...


class GreedyPolicy:
    """Minimum-valid-pages victim selection."""

    name = "greedy"

    def select(self, candidates: Sequence[int], ftl: "FlashTranslationLayer") -> int:
        return min(candidates, key=lambda b: (ftl.page_map.valid_pages_in_block(b), b))


class CostBenefitPolicy:
    """Kawaguchi-style cost-benefit victim selection."""

    name = "cost-benefit"

    def select(self, candidates: Sequence[int], ftl: "FlashTranslationLayer") -> int:
        per_block = ftl.flash.geometry.pages_per_block
        now = ftl.sim.now

        def benefit(block: int) -> float:
            u = ftl.page_map.valid_pages_in_block(block) / per_block
            age = max(now - float(ftl.flash.program_time[block]), 1e-9)
            if u <= 0.0:
                return float("inf")  # free win: no relocation cost
            return (1.0 - u) / (2.0 * u) * age

        return max(candidates, key=lambda b: (benefit(b), -b))


class GarbageCollector:
    """Background collector driven by free-block watermarks.

    The FTL calls :meth:`kick` after consuming space; the collector runs
    until the free pool recovers to the high watermark.  Erase waits for
    in-flight reads on the victim to drain (quiesce) so no read ever
    observes an erased page.
    """

    def __init__(
        self,
        ftl: "FlashTranslationLayer",
        policy: GcPolicy,
        low_watermark: int,
        high_watermark: int,
        wl_delta: int = 0,
    ):
        if high_watermark < low_watermark:
            raise ValueError("high_watermark must be >= low_watermark")
        self.ftl = ftl
        self.policy = policy
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self.wl_delta = wl_delta
        self.collections = 0
        self.pages_relocated = 0
        self.wl_migrations = 0
        self.relocation_failures = 0  # uncorrectable reads during GC (data loss)
        self.blocks_retired = 0  # erase failures (grown bad blocks)
        self._kick: Event | None = None
        self._idle = True
        self.process = ftl.sim.process(self._run(), name=f"{ftl.name}.gc")

    # -- control ----------------------------------------------------------
    def kick(self) -> None:
        """Wake the collector if the free pool is at/below the low mark."""
        if self._kick is not None and not self._kick.triggered:
            self._kick.succeed()

    @property
    def idle(self) -> bool:
        return self._idle

    # -- main loop ----------------------------------------------------------
    def _run(self) -> Generator:
        ftl = self.ftl
        while True:
            if ftl.allocator.free_blocks > self.low_watermark and not self._needs_wl():
                yield from self._wait_for_kick()
            self._idle = False
            progressed = False
            while ftl.allocator.free_blocks < self.high_watermark or self._needs_wl():
                victim = self._choose_victim()
                if victim is None:
                    break  # nothing reclaimable right now
                yield from self._collect(victim)
                progressed = True
            if not progressed:
                # Below the watermark but no victim (e.g. every closed block
                # is fully valid): sleep until a trim/write changes things.
                yield from self._wait_for_kick()

    def _wait_for_kick(self) -> Generator:
        self._kick = self.ftl.sim.event(name="gc.kick")
        self._idle = True
        yield self._kick
        self._kick = None

    def _needs_wl(self) -> bool:
        if self.wl_delta <= 0:
            return False
        low, high, _ = self.ftl.allocator.wear_spread()
        return high - low > self.wl_delta

    def _choose_victim(self) -> int | None:
        ftl = self.ftl
        candidates = ftl.allocator.closed_blocks()
        if not candidates:
            return None
        if self._needs_wl():
            pe = ftl.flash.pe_cycles
            coldest = min(candidates, key=lambda b: (int(pe[b]), b))
            low, high, _ = ftl.allocator.wear_spread()
            if high - int(pe[coldest]) > self.wl_delta:
                self.wl_migrations += 1
                return coldest
        # A victim is only worth starting if (a) it has reclaimable space
        # (collecting a fully valid block wastes a P/E cycle) and (b) its
        # valid pages fit in the space we can write to right now — starting
        # an uncompletable collection would livelock the device.
        # Only count space the GC stream alone controls (its frontiers plus
        # the free pool, which includes the GC reserve): host-visible space
        # could be consumed concurrently and must not enter the feasibility
        # decision.
        per_block = ftl.flash.geometry.pages_per_block
        available = (
            ftl.allocator.free_blocks * per_block
            + ftl.allocator.frontier_space(ftl.GC)
        )
        reclaimable = [
            b
            for b in candidates
            if ftl.page_map.valid_pages_in_block(b) < per_block
            and ftl.page_map.valid_pages_in_block(b) <= available
            and ftl.block_writers(b) == 0
            and b not in ftl._reclaiming
        ]
        if not reclaimable:
            return None
        return self.policy.select(reclaimable, ftl)

    def _collect(self, block_index: int) -> Generator:
        """Relocate valid pages out of ``block_index`` and erase it."""
        ftl = self.ftl
        if block_index in ftl._reclaiming:
            return  # the scrubber got there first
        ftl._reclaiming.add(block_index)
        try:
            yield from self._collect_inner(block_index)
        finally:
            ftl._reclaiming.discard(block_index)

    def _relocate_or_drop(self, lpn: int, old_ppn: int) -> Generator:
        """Relocate one page; an uncorrectable source read loses the data
        (the mapping is dropped and the loss recorded) rather than killing
        the collector."""
        from repro.ftl.ftl import LogicalIOError

        ftl = self.ftl
        try:
            yield from ftl.relocate(lpn, old_ppn)
            self.pages_relocated += 1
            ftl._m_gc_moves.inc()
        except LogicalIOError:
            self.relocation_failures += 1
            if ftl.page_map.lookup(lpn) == old_ppn:
                ftl.page_map.unbind(lpn)
            ftl.tracer.emit(ftl.sim.now, ftl.name, "gc.data-loss", lpn=lpn)
        return None

    def _collect_inner(self, block_index: int) -> Generator:
        from repro.flash.package import EraseFailure

        ftl = self.ftl
        for lpn in ftl.page_map.valid_lpns_in_block(block_index):
            old_ppn = ftl.page_map.lookup(lpn)
            if old_ppn // ftl.flash.geometry.pages_per_block != block_index:
                continue  # host overwrote while we were collecting
            yield from self._relocate_or_drop(lpn, old_ppn)
        # quiesce in-flight readers and writers before the erase; any writer
        # that binds late re-validates a page, which we then relocate too
        while ftl.block_readers(block_index) > 0 or ftl.block_writers(block_index) > 0:
            yield ftl.sim.timeout(ftl.reader_quiesce_delay)
            for lpn in ftl.page_map.valid_lpns_in_block(block_index):
                yield from self._relocate_or_drop(lpn, ftl.page_map.lookup(lpn))
        ftl.page_map.release_block(block_index)
        try:
            yield from ftl.flash.erase_block(ftl.flash.geometry.block_address(block_index))
        except EraseFailure:
            # grown bad block: take it out of service instead of reusing it
            ftl.allocator.retire_block(block_index)
            self.blocks_retired += 1
            ftl.tracer.emit(ftl.sim.now, ftl.name, "gc.block-retired", block=block_index)
            return
        ftl.allocator.release_block(block_index)
        self.collections += 1
        if ftl.metrics.enabled:
            ftl._m_gc_collections.inc()
            ftl._m_free_blocks.set(ftl.allocator.free_blocks)
        ftl.tracer.emit(ftl.sim.now, ftl.name, "gc.collect", block=block_index)
