"""Fleet-level deduplicating object store with in-storage chunk+hash.

The write path is the in-situ pitch applied to storage itself: a PUT ships
the payload to one device, a ``chunksum`` minion computes content-defined
boundaries and per-chunk SHA-1 digests *inside the drive*, and only the
digest recipe crosses PCIe back to the coordinator.  The coordinator then
writes just the *novel* chunks — each replicated on ``replicas`` consecutive
devices of a digest-placed ring chain — and commits the object manifest.
Duplicate chunks cost one index lookup and a refcount bump; their bytes are
never written again.

Crash-safety ordering (the invariant the GC drill checks):

1. temp upload (``put.<key>`` on the object's primary device);
2. in-situ ``chunksum`` (host-side fallback if every chain device is dead);
3. novel block writes (``blk.<digest>`` on the digest's chain);
4. manifest commit — *last*, and only if every chunk landed somewhere;
5. temp delete.

An interrupted PUT therefore leaves only uncommitted garbage (a stale temp,
orphan blocks no manifest references), never a committed object with a
missing chunk.  :meth:`DedupObjectStore.gc` is a stop-the-world
mark-and-sweep that deletes *only* unreferenced files, so a device crash
mid-GC can at worst postpone reclamation — it can never lose a referenced
block.  :meth:`DedupObjectStore.check_integrity` is the oracle: every chunk
of every committed object must be present on at least one chain device.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Generator

from repro.cluster.fleet import StorageFleet
from repro.host.insitu import InSituError
from repro.isos.filesystem import FsError
from repro.objstore.apps import ChunkSumApp
from repro.objstore.chunking import ChunkParams, chunk_digests
from repro.objstore.store import ObjectStoreError
from repro.proto.entities import Command

__all__ = ["BLOCK_PREFIX", "TEMP_PREFIX", "BlockEntry", "DedupObjectStore", "DedupStats"]

#: Immutable chunk payloads, content-addressed: ``blk.<sha1hex>``.
BLOCK_PREFIX = "blk."
#: In-flight PUT uploads: ``put.<key>``; stale ones are GC fodder.
TEMP_PREFIX = "put."


def _place(token: str, n: int) -> int:
    """Deterministic ring position for a key or digest (crc32, like
    :func:`repro.service.traffic.assign_class`)."""
    return zlib.crc32(token.encode()) % n


@dataclass(slots=True)
class BlockEntry:
    """Index record for one unique chunk."""

    size: int
    refcount: int
    chain: tuple[tuple[int, str], ...]  # replica targets, primary first


@dataclass(slots=True)
class DedupStats:
    """Byte accounting across committed PUTs.

    The identity ``stored_bytes + deduped_bytes == offered_bytes`` holds
    after every committed PUT (pinned by a Hypothesis property):
    every offered byte is either the first occurrence of its chunk (stored)
    or a repeat (deduped).  ``physical_bytes`` additionally counts replica
    copies actually written.
    """

    offered_bytes: int = 0  # payload bytes of committed PUTs
    stored_bytes: int = 0  # unique chunk bytes (one logical copy)
    deduped_bytes: int = 0  # repeat chunk bytes never rewritten
    physical_bytes: int = 0  # block bytes written incl. replicas
    puts: int = 0
    failed_puts: int = 0
    gets: int = 0
    deletes: int = 0
    chunks_offered: int = 0
    chunks_deduped: int = 0
    host_chunk_fallbacks: int = 0  # PUTs chunked host-side (no device answered)
    gc_passes: int = 0
    gc_blocks_reclaimed: int = 0
    gc_temps_reclaimed: int = 0
    gc_bytes_reclaimed: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Offered over stored (>= 1.0; higher is better)."""
        return self.offered_bytes / self.stored_bytes if self.stored_bytes else 1.0

    def to_payload(self) -> dict:
        return {
            "offered_bytes": self.offered_bytes,
            "stored_bytes": self.stored_bytes,
            "deduped_bytes": self.deduped_bytes,
            "physical_bytes": self.physical_bytes,
            "dedup_ratio": round(self.dedup_ratio, 6),
            "puts": self.puts,
            "failed_puts": self.failed_puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "chunks_offered": self.chunks_offered,
            "chunks_deduped": self.chunks_deduped,
            "host_chunk_fallbacks": self.host_chunk_fallbacks,
            "gc_passes": self.gc_passes,
            "gc_blocks_reclaimed": self.gc_blocks_reclaimed,
            "gc_temps_reclaimed": self.gc_temps_reclaimed,
            "gc_bytes_reclaimed": self.gc_bytes_reclaimed,
        }


@dataclass(slots=True)
class _Manifest:
    """One committed object: its chunk recipe, in payload order."""

    key: str
    recipe: tuple[tuple[str, int], ...]  # (sha1hex, length)
    size: int = field(init=False)

    def __post_init__(self) -> None:
        self.size = sum(length for _, length in self.recipe)


class DedupObjectStore:
    """Content-addressed, replicated object layer over a storage fleet."""

    def __init__(
        self,
        fleet: StorageFleet,
        params: ChunkParams | None = None,
        replicas: int = 2,
    ):
        self.fleet = fleet
        self.params = params if params is not None else ChunkParams()
        self.ring = fleet.device_ring()
        if not 1 <= replicas <= len(self.ring):
            raise ValueError(f"replicas must be in [1, {len(self.ring)}]")
        self.replicas = replicas
        self.index: dict[str, BlockEntry] = {}
        self.manifests: dict[str, _Manifest] = {}
        self.stats = DedupStats()
        # dynamic task loading: every device gets the chunksum executable
        for node_index, device in self.ring:
            self._ssd(node_index, device).isps.os.install_executable(ChunkSumApp())

    # -- topology helpers ----------------------------------------------------
    def _ssd(self, node_index: int, device: str):
        return self.fleet._ssd(node_index, device)

    def _crashed(self, node_index: int, device: str) -> bool:
        faults = self._ssd(node_index, device).controller.faults
        return faults is not None and faults.crashed

    def _chain(self, token: str) -> tuple[tuple[int, str], ...]:
        base = _place(token, len(self.ring))
        return tuple(self.ring[(base + j) % len(self.ring)] for j in range(self.replicas))

    def block_chain(self, digest: str) -> tuple[tuple[int, str], ...]:
        """Digest-placed replica chain a chunk lives on (primary first)."""
        return self._chain(digest)

    # -- write path ----------------------------------------------------------
    def put(self, key: str, payload: bytes) -> Generator:
        """Store ``payload`` under ``key``; returns the chunk recipe.

        Raises :class:`ObjectStoreError` when no device chain can hold some
        novel chunk (every replica target crashed) — in which case nothing
        was committed and GC will reclaim any partial writes.
        """
        recipe = yield from self._chunksum(key, payload)
        # which chunks are novel right now (first occurrence in this payload
        # counts as novel; later repeats within the same payload dedup)
        novel: dict[str, bytes] = {}
        offset = 0
        for digest, length in recipe:
            blob = payload[offset:offset + length]
            offset += length
            if digest not in self.index and digest not in novel:
                novel[digest] = blob
        written: dict[str, tuple[tuple[int, str], ...]] = {}
        touched: set[tuple[int, str]] = set()
        for digest, blob in novel.items():
            placed = []
            for node_index, device in self._chain(digest):
                if self._crashed(node_index, device):
                    continue
                fs = self._ssd(node_index, device).fs
                try:
                    yield from fs.write_file(BLOCK_PREFIX + digest, blob)
                except FsError:
                    continue  # that replica is full; the rest may fit
                placed.append((node_index, device))
                touched.add((node_index, device))
                self.stats.physical_bytes += len(blob)
            if not placed:
                # abort *before* commit: orphan blocks written so far stay
                # unreferenced and the next GC pass reclaims them
                self.stats.failed_puts += 1
                raise ObjectStoreError(
                    f"put {key!r}: no surviving replica target for chunk {digest[:12]}"
                )
            written[digest] = tuple(placed)
        for node_index, device in sorted(touched):
            yield from self._ssd(node_index, device).fs.device.flush()
        # -- commit point: manifest + index updates happen together ---------
        # (incref the new recipe *before* releasing an overwritten version,
        # so chunks shared between the two never hit refcount zero)
        previous = self.manifests.get(key)
        for digest, length in recipe:
            entry = self.index.get(digest)
            if entry is None:
                # `written` covers chunks novel at write time; a chunk whose
                # index entry vanished between chunking and commit (a racing
                # delete) still has its file on the digest-placed chain
                self.index[digest] = BlockEntry(
                    size=length,
                    refcount=1,
                    chain=written.get(digest, self._chain(digest)),
                )
                self.stats.stored_bytes += length
            else:
                entry.refcount += 1
                self.stats.deduped_bytes += length
                self.stats.chunks_deduped += 1
        if previous is not None:
            yield from self._decref(previous.recipe)
        self.manifests[key] = _Manifest(key=key, recipe=tuple(recipe))
        self.stats.offered_bytes += len(payload)
        self.stats.chunks_offered += len(recipe)
        self.stats.puts += 1
        yield from self._drop_temp(key)
        return list(recipe)

    def _chunksum(self, key: str, payload: bytes) -> Generator:
        """Upload the payload once and chunk+hash it in-situ.

        Tries each device of the key-placed chain in turn; if none answers
        (all crashed mid-burst), falls back to host-side chunking — the same
        degraded path :meth:`StorageFleet.run_job` takes for reads.
        """
        p = self.params
        temp = TEMP_PREFIX + key
        for node_index, device in self._chain(key):
            if self._crashed(node_index, device):
                continue
            ssd = self._ssd(node_index, device)
            try:
                yield from ssd.fs.write_file(temp, payload)
            except FsError:
                continue  # no room for the staging copy on this device
            client = self.fleet.nodes[node_index].client
            command = Command(
                command_line=(
                    f"chunksum {p.min_size} {p.avg_size} {p.max_size} {temp}"
                )
            )
            try:
                minion = yield from client.send_minion(device, command)
            except InSituError:
                continue  # device died under us; try the next chain link
            response = minion.response
            if response.exit_code != 0:
                raise ObjectStoreError(
                    f"chunksum failed on {device}: {response.stdout!r}"
                )
            return self._parse_recipe(response.stdout)
        self.stats.host_chunk_fallbacks += 1
        return chunk_digests(payload, p)

    @staticmethod
    def _parse_recipe(stdout: bytes) -> list[tuple[str, int]]:
        recipe: list[tuple[str, int]] = []
        for line in stdout.decode().splitlines():
            digest, length = line.split()
            recipe.append((digest, int(length)))
        return recipe

    def _drop_temp(self, key: str) -> Generator:
        temp = TEMP_PREFIX + key
        for node_index, device in self._chain(key):
            if self._crashed(node_index, device):
                continue  # stale temp on a dead device: next GC's problem
            fs = self._ssd(node_index, device).fs
            if fs.exists(temp):
                yield from fs.delete(temp)
        return None

    # -- read path -----------------------------------------------------------
    def get(self, key: str) -> Generator:
        """Reassemble ``key`` from its chunks; verifies digests when the
        devices store payloads (functional mode)."""
        manifest = self.manifests.get(key)
        if manifest is None:
            raise ObjectStoreError(f"no such object: {key!r}")
        parts: list[bytes] = []
        analytic = False
        for digest, length in manifest.recipe:
            entry = self.index[digest]
            blob = None
            for node_index, device in entry.chain:
                if self._crashed(node_index, device):
                    continue
                fs = self._ssd(node_index, device).fs
                if not fs.exists(BLOCK_PREFIX + digest):
                    continue
                blob = yield from fs.read_file(BLOCK_PREFIX + digest)
                break
            else:
                raise ObjectStoreError(
                    f"get {key!r}: chunk {digest[:12]} unavailable "
                    "(all replicas crashed or missing)"
                )
            if blob is None:
                analytic = True
                continue
            if hashlib.sha1(blob).hexdigest() != digest:
                raise ObjectStoreError(f"get {key!r}: chunk {digest[:12]} corrupt")
            parts.append(blob)
        self.stats.gets += 1
        return None if analytic else b"".join(parts)

    # -- delete + GC ---------------------------------------------------------
    def delete(self, key: str) -> Generator:
        """Drop the manifest and release its chunk references.

        Zero-ref block files stay on the devices until :meth:`gc` sweeps
        them — deletion is a metadata operation, reclamation is batched.
        """
        manifest = self.manifests.pop(key, None)
        if manifest is None:
            raise ObjectStoreError(f"no such object: {key!r}")
        yield from self._decref(manifest.recipe)
        self.stats.deletes += 1
        return None

    def _decref(self, recipe: tuple[tuple[str, int], ...]) -> Generator:
        for digest, _ in recipe:
            entry = self.index.get(digest)
            if entry is None:
                continue
            entry.refcount -= 1
            if entry.refcount <= 0:
                # stats stay cumulative (stored + deduped == offered holds
                # across deletes); the block file itself waits for gc()
                del self.index[digest]
        return None
        yield  # pragma: no cover - generator protocol

    def gc(self) -> Generator:
        """Stop-the-world mark-and-sweep reclamation.

        Mark: every digest referenced by a committed manifest (== the live
        index).  Sweep: on every *reachable* device, delete block files not
        in the mark set and every stale temp.  Crashed devices are skipped —
        their garbage survives until a later pass, which only delays
        reclamation.  Referenced blocks are never deletion candidates, so an
        interruption at any point cannot lose committed data.

        Returns ``{"blocks": n, "temps": n, "bytes": n}`` reclaimed.
        """
        marked = set(self.index)
        blocks = temps = nbytes = 0
        for node_index, device in self.ring:
            if self._crashed(node_index, device):
                continue
            fs = self._ssd(node_index, device).fs
            for name in fs.listdir():
                if name.startswith(BLOCK_PREFIX):
                    if name[len(BLOCK_PREFIX):] in marked:
                        continue
                    nbytes += fs.stat(name).size
                    yield from fs.delete(name)
                    blocks += 1
                elif name.startswith(TEMP_PREFIX):
                    nbytes += fs.stat(name).size
                    yield from fs.delete(name)
                    temps += 1
        self.stats.gc_passes += 1
        self.stats.gc_blocks_reclaimed += blocks
        self.stats.gc_temps_reclaimed += temps
        self.stats.gc_bytes_reclaimed += nbytes
        return {"blocks": blocks, "temps": temps, "bytes": nbytes}

    # -- invariants ----------------------------------------------------------
    def check_integrity(self) -> dict:
        """Oracle for the crash drill: no committed chunk may be lost.

        A chunk counts as *lost* only when no device in the whole ring holds
        its block file — crashed devices keep their flash contents and come
        back, so unavailability is not loss.  Also re-derives refcounts from
        the manifests and reports any index drift.
        """
        lost: list[str] = []
        present: set[str] = set()
        for node_index, device in self.ring:
            fs = self._ssd(node_index, device).fs
            for name in fs.listdir():
                if name.startswith(BLOCK_PREFIX):
                    present.add(name[len(BLOCK_PREFIX):])
        want: dict[str, int] = {}
        for manifest in self.manifests.values():
            for digest, _ in manifest.recipe:
                want[digest] = want.get(digest, 0) + 1
                if digest not in present and digest not in lost:
                    lost.append(digest)
        drift = sorted(
            digest
            for digest in set(want) | set(self.index)
            if want.get(digest, 0) != (
                self.index[digest].refcount if digest in self.index else 0
            )
        )
        accounted = (
            self.stats.stored_bytes + self.stats.deduped_bytes
            == self.stats.offered_bytes
        )
        return {
            "objects": len(self.manifests),
            "unique_blocks": len(self.index),
            "lost_blocks": sorted(lost),
            "refcount_drift": drift,
            "accounting_ok": accounted,
            "ok": not lost and not drift and accounted,
        }
