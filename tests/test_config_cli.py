"""The ``config`` CLI verb and the scenario flags on experiment verbs.

The contract under test: every scorecard header digest is *reproducible* —
``python -m repro config show <preset> --set ...`` prints the exact
configuration (and digest) behind any run's header line, so a pasted
scorecard identifies its experiment completely.
"""

import json

import pytest

from repro.cli import main
from repro.config import config_digest, preset, preset_names


def _header_digest(out: str) -> str:
    line = next(l for l in out.splitlines() if l.startswith("# scenario "))
    return line.split("digest=")[1].strip()


def test_config_show_prints_json_and_digest(capsys):
    assert main(["config", "show", "smoke"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[: out.rindex("# scenario")])
    assert payload["name"] == "smoke"
    assert _header_digest(out) == config_digest(preset("smoke"))


def test_config_show_canonical_is_one_line(capsys):
    assert main(["config", "show", "smoke", "--canonical"]) == 0
    out = capsys.readouterr().out
    canonical = out.splitlines()[0]
    assert json.loads(canonical)["name"] == "smoke"
    assert " " not in canonical.split('"corpus"')[0].replace('", "', "")


def test_config_show_flat_lists_dotted_paths(capsys):
    assert main(["config", "show", "fig6", "--flat"]) == 0
    out = capsys.readouterr().out
    assert "fleet.devices_per_node = 4" in out
    assert "flash.capacity_bytes = 50331648" in out


def test_config_digest_golden_format(capsys):
    assert main(["config", "digest", "smoke", "fig6"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines == [
        f"{config_digest(preset('smoke'))}  smoke",
        f"{config_digest(preset('fig6'))}  fig6",
    ]


def test_config_digest_rejects_unknown_preset():
    with pytest.raises(SystemExit):
        main(["config", "digest", "not-a-preset"])


def test_config_diff_identical_and_changed(capsys):
    assert main(["config", "diff", "fig6", "fig6"]) == 0
    assert "no differences" in capsys.readouterr().out
    assert main(["config", "diff", "fig6", "fig6", "--set", "fleet.nodes=3"]) == 0
    out = capsys.readouterr().out
    assert "fleet.nodes: 1 -> 3" in out


def test_config_presets_lists_whole_registry(capsys):
    assert main(["config", "presets"]) == 0
    out = capsys.readouterr().out
    for name in preset_names():
        assert name in out


def test_set_without_preset_starts_from_paper_prototype(capsys):
    assert main(["config", "show", "--flat"]) == 0
    out = capsys.readouterr().out
    assert _header_digest(out) == config_digest(preset("paper-prototype"))


# -- scenario headers on experiment verbs ------------------------------------


def test_fig6_header_digest_reproduces_via_config_show(capsys):
    overrides = ["--set", "corpus.files=2", "--set", "corpus.mean_file_bytes=16384"]
    assert main(["fig6", "--devices", "1", "2", *overrides]) == 0
    run_digest = _header_digest(capsys.readouterr().out)
    assert main(["config", "show", "fig6", *overrides]) == 0
    assert _header_digest(capsys.readouterr().out) == run_digest


def test_fig6_scenario_matches_legacy_default_output(capsys):
    """The default ``fig6`` preset IS the legacy kwargs chain: numbers in
    the table must be identical to the pre-scenario output."""
    assert main(["fig6", "--devices", "1", "2", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# scenario fig6 digest=")
    assert "slope=74.49 MB/s/device" in out


def test_chaos_preset_runs_declarative_fault_plan(capsys):
    assert main(["chaos", "--preset", "chaos-drill"]) == 0
    out = capsys.readouterr().out
    assert _header_digest(out) == config_digest(preset("chaos-drill"))
    assert "device-crash" in out and "transient" in out
    assert "lost" in out


def test_chaos_legacy_flags_unchanged_without_preset(capsys):
    assert main(["chaos", "--nodes", "1", "--devices", "2", "--books", "4",
                 "--kill", "0@0.2", "--recover-after", "2"]) == 0
    out = capsys.readouterr().out
    assert "# scenario" not in out
    assert "device-crash" in out
