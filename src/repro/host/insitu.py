"""The in-situ library + client.

"A C/C++ library that provides high-level APIs for the client...  the
CompStor in-situ library is only intended to be used in the client, not in
the off-loadable executable, which does not need any modification."

:class:`InSituClient` is that library's API surface: it configures minions
and queries, tunnels them through NVMe vendor commands, and (because a
client may drive *several* CompStors concurrently) provides gather/map
helpers for parallel dispatch — the paper's "thousands of concurrent
minions" pattern in miniature.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.nvme import IscPayload, NvmeCommand, NvmeController, Opcode
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.spans import start_trace
from repro.proto.entities import Command, Minion, Query, QueryKind
from repro.sim import Simulator, Tracer
from repro.sim.trace import NULL_TRACER

__all__ = ["InSituClient", "InSituError"]


class InSituError(Exception):
    """Transport-level failure delivering a minion or query."""


class InSituClient:
    """Host-side controller of the in-situ processing flow (master side)."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "client",
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.sim = sim
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_minions = self.metrics.counter(
            "client.minions", "minions dispatched by the in-situ client"
        )
        self._m_round_trip = self.metrics.histogram(
            "client.minion.round_trip_seconds", "client-observed minion round trip"
        )
        self._devices: dict[str, NvmeController] = {}
        self.minions_sent = 0
        self.queries_sent = 0

    # -- topology ------------------------------------------------------------
    def attach(self, controller: NvmeController) -> str:
        """Register a CompStor; returns its device name."""
        ident = controller.identify()
        device_name = ident["model"].removesuffix(".nvme")
        if device_name in self._devices:
            raise ValueError(f"device {device_name!r} already attached")
        if not ident["isc_capable"]:
            raise InSituError(f"device {device_name!r} has no in-situ capability")
        self._devices[device_name] = controller
        return device_name

    def devices(self) -> list[str]:
        return sorted(self._devices)

    def _controller(self, device: str) -> NvmeController:
        try:
            return self._devices[device]
        except KeyError as exc:
            raise InSituError(f"unknown device {device!r} (attached: {self.devices()})") from exc

    # -- minions -----------------------------------------------------------
    def send_minion(self, device: str, command: Command) -> Generator:
        """Ship a command; blocks until the response returns.

        Returns the completed :class:`Minion` (response populated by the
        device, per Fig. 3).
        """
        controller = self._controller(device)
        minion = Minion(command=command, client=self.name, created_at=self.sim.now)
        # Table III step 1: the client configures a minion and ships it.
        # With tracing on, this opens the root span of the minion's life.
        root_span = None
        if self.tracer.enabled:
            root_span = start_trace(self.tracer, self.sim, "minion.lifetime", self.name)
            root_span.event("client.minion.sent", minion=minion.minion_id, device=device)
            minion.span = root_span.context
        self.tracer.emit(
            self.sim.now, self.name, "client.minion.sent",
            minion=minion.minion_id, device=device,
        )
        self.minions_sent += 1
        payload = IscPayload(body=minion, nbytes=command.wire_bytes)
        completion = yield from controller.queue(0).call(
            NvmeCommand(opcode=Opcode.ISC_MINION, payload=payload)
        )
        if not completion.ok:
            if root_span is not None:
                root_span.end(status=completion.status.name)
            raise InSituError(f"minion {minion.minion_id} failed: {completion.status.name}")
        returned: Minion = completion.result
        self.tracer.emit(
            self.sim.now, self.name, "client.minion.returned",
            minion=returned.minion_id, device=device,
            status=returned.response.status.value if returned.response else "?",
        )
        if root_span is not None:
            root_span.event(
                "client.minion.returned", minion=returned.minion_id, device=device
            )
            root_span.end()
        self._m_minions.inc(device=device)
        self._m_round_trip.observe(self.sim.now - minion.created_at, device=device)
        return returned

    def run(self, device: str, command_line: str = "", script: str = "", **kw) -> Generator:
        """Convenience: build the Command, send the minion, return the Response."""
        minion = yield from self.send_minion(
            device, Command(command_line=command_line, script=script, **kw)
        )
        assert minion.response is not None
        return minion.response

    def gather(self, assignments: Sequence[tuple[str, Command]]) -> Generator:
        """Dispatch many minions concurrently; returns responses in order.

        This is the client fan-out the paper's Fig. 6/7 experiments rely on:
        one host client driving N CompStors in parallel.
        """
        procs = [
            self.sim.process(self.send_minion(device, command), name=f"minion->{device}")
            for device, command in assignments
        ]
        results = yield self.sim.all_of(procs)
        minions: list[Minion] = [results[p] for p in procs]
        return [m.response for m in minions]

    # -- queries -----------------------------------------------------------
    def query(self, device: str, kind: QueryKind, payload: Any = None) -> Generator:
        """Administrative round trip; returns the reply."""
        controller = self._controller(device)
        query = Query(kind=kind, payload=payload)
        self.queries_sent += 1
        completion = yield from controller.queue(0).call(
            NvmeCommand(
                opcode=Opcode.ISC_QUERY,
                payload=IscPayload(body=query, nbytes=query.wire_bytes),
            )
        )
        if not completion.ok:
            raise InSituError(f"query {query.query_id} failed: {completion.status.name}")
        return completion.result.reply

    def status(self, device: str) -> Generator:
        reply = yield from self.query(device, QueryKind.STATUS)
        return reply

    def status_all(self) -> Generator:
        """Telemetry from every attached device, concurrently."""
        names = self.devices()
        procs = [self.sim.process(self.status(name)) for name in names]
        results = yield self.sim.all_of(procs)
        return {name: results[proc] for name, proc in zip(names, procs)}

    def load_executable(self, device: str, executable: Any) -> Generator:
        """Dynamic task loading: install a new binary on a running device."""
        controller = self._controller(device)
        completion = yield from controller.queue(0).call(
            NvmeCommand(
                opcode=Opcode.ISC_LOAD,
                payload=IscPayload(body=executable, nbytes=512 * 1024),
            )
        )
        if not completion.ok:
            raise InSituError(f"load of {executable.name!r} failed")
        return completion.result

    def load_executable_everywhere(self, executable: Any) -> Generator:
        procs = [
            self.sim.process(self.load_executable(name, executable))
            for name in self.devices()
        ]
        yield self.sim.all_of(procs)
        return None
