"""Tests for the device assemblies (CompStor / conventional / prototype)."""

import pytest

from repro.power import PowerMeter
from repro.sim import Simulator
from repro.ssd import CompStorSSD, ConventionalSSD, PROTOTYPE_CAPACITY_BYTES, prototype_geometry
from repro.ssd.conventional import small_geometry

CAPACITY = 16 * 1024 * 1024


def test_compstor_describe():
    sim = Simulator()
    ssd = CompStorSSD(sim, geometry=small_geometry(CAPACITY))
    info = ssd.describe()
    assert info["isc"] is True
    assert info["isps"]["cores"] == 4
    assert info["capacity_bytes"] == ssd.ftl.logical_capacity_bytes


def test_conventional_describe():
    sim = Simulator()
    ssd = ConventionalSSD(sim, geometry=small_geometry(CAPACITY))
    assert ssd.describe()["isc"] is False


def test_prototype_geometry_is_24tb_16_channels():
    geo = prototype_geometry()
    assert geo.channels == 16
    assert abs(geo.capacity_bytes - PROTOTYPE_CAPACITY_BYTES) / PROTOTYPE_CAPACITY_BYTES < 0.01


def test_small_geometry_scales_capacity():
    geo = small_geometry(128 * 1024 * 1024)
    assert abs(geo.capacity_bytes - 128 * 1024 * 1024) / (128 * 1024 * 1024) < 0.1
    assert geo.channels == 8


def test_meter_registration_covers_device_components():
    sim = Simulator()
    meter = PowerMeter(sim)
    CompStorSSD(sim, name="dev", geometry=small_geometry(CAPACITY), meter=meter)
    static = meter.static_components()
    assert "dev.controller.static" in static
    assert "dev.flash.static" in static
    assert "dev.isps.static" in static
    assert "dev.isps.dram" in static
    # device static power lands in the calibrated ~5-7 W band
    assert 4.0 < sum(static.values()) < 8.0


def test_two_devices_one_meter_no_name_collision():
    sim = Simulator()
    meter = PowerMeter(sim)
    CompStorSSD(sim, name="d0", geometry=small_geometry(CAPACITY), meter=meter)
    CompStorSSD(sim, name="d1", geometry=small_geometry(CAPACITY), meter=meter)
    assert len(meter.static_components()) == 8


def test_compstor_isps_and_host_share_the_ftl():
    """The ISPS path and the NVMe path address the same logical space."""
    from repro.nvme import NvmeCommand, Opcode

    sim = Simulator()
    ssd = CompStorSSD(sim, geometry=small_geometry(CAPACITY))

    def flow():
        # write via the in-storage filesystem
        yield from ssd.fs.write_file("x.txt", b"written inside")
        yield from ssd.ftl.flush()
        lpn = ssd.fs.stat("x.txt").pages[0]
        # read the same logical page via NVMe
        completion = yield from ssd.queue(0).call(
            NvmeCommand(opcode=Opcode.READ, slba=lpn)
        )
        return completion.result[0]

    data = sim.run(sim.process(flow()))
    assert data == b"written inside"


def test_isps_direct_path_faster_than_nvme_path():
    from repro.nvme import NvmeCommand, Opcode
    from repro.pcie import PcieFabric

    sim = Simulator()
    fabric = PcieFabric(sim, endpoints=1)
    ssd = CompStorSSD(sim, geometry=small_geometry(CAPACITY), port=fabric.ports[0])

    def flow():
        yield from ssd.ftl.write(0, b"x")
        yield from ssd.ftl.flush()
        t0 = sim.now
        yield from ssd.isps.device.read(0)
        direct = sim.now - t0
        t0 = sim.now
        yield from ssd.queue(0).call(NvmeCommand(opcode=Opcode.READ, slba=0))
        external = sim.now - t0
        return direct, external

    direct, external = sim.run(sim.process(flow()))
    assert direct < external  # the paper's "more efficient than the host CPU"
