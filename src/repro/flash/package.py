"""Behavioural flash array model.

:class:`FlashArray` exposes the three NAND primitives — page read, page
program, block erase — as simulation processes.  Contention is physical:

- each **die** is a capacity-1 resource (one array operation at a time);
- each **channel bus** is a capacity-1 resource shared by the dies on it
  (command + data transfer occupy it);

so aggregate bandwidth grows with channels and per-channel parallelism is
limited by the bus — exactly the structure behind the paper's Fig. 1.

NAND protocol rules are enforced: pages within a block must be programmed
sequentially, a programmed page cannot be re-programmed before the block is
erased, and reading an erased page is a model bug (raises).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Callable, Generator

import numpy as np

from repro.flash.energy import FlashEnergy
from repro.flash.errors import BitErrorModel
from repro.flash.geometry import BlockAddress, FlashGeometry, PageAddress
from repro.flash.timing import FlashTiming
from repro.sim import Resource, Simulator, Tracer
from repro.sim.trace import NULL_TRACER

__all__ = [
    "EraseFailure",
    "FlashArray",
    "FlashOpError",
    "FlashStats",
    "PageState",
    "ReadResult",
]


class FlashOpError(Exception):
    """NAND protocol violation (program out of order, read erased page, ...)."""


class EraseFailure(Exception):
    """The block failed to erase — it has worn out (grown bad block)."""

    def __init__(self, block_index: int):
        super().__init__(f"erase failed on block {block_index}; block is bad")
        self.block_index = block_index


class PageState(IntEnum):
    ERASED = 0
    PROGRAMMED = 1


@dataclass(frozen=True, slots=True)
class ReadResult:
    """Outcome of a page read.

    ``data`` is the stored payload in functional mode (``None`` in analytic
    mode); ``raw_bit_errors`` feeds the ECC engine.
    """

    address: PageAddress
    data: bytes | None
    raw_bit_errors: int


@dataclass(slots=True)
class FlashStats:
    """Operation counters for write-amplification and bandwidth reporting."""

    reads: int = 0
    programs: int = 0
    erases: int = 0
    bytes_read: int = 0
    bytes_programmed: int = 0
    energy_j: float = 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "reads": self.reads,
            "programs": self.programs,
            "erases": self.erases,
            "bytes_read": self.bytes_read,
            "bytes_programmed": self.bytes_programmed,
            "energy_j": self.energy_j,
        }


class FlashArray:
    """A multi-channel NAND array under one controller.

    Parameters
    ----------
    sim:
        The simulator this array lives in.
    geometry, timing, energy, error_model:
        Component models; defaults model a 16-channel enterprise drive.
    energy_sink:
        Optional callback ``(component_name, joules)`` — wired to the power
        meter by the SSD assembly.
    store_data:
        Functional mode: keep page payloads in memory.  Analytic mode
        (``False``) tracks only states/wear/timing, for large sweeps.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: FlashGeometry | None = None,
        timing: FlashTiming | None = None,
        energy: FlashEnergy | None = None,
        error_model: BitErrorModel | None = None,
        name: str = "flash",
        tracer: Tracer | None = None,
        energy_sink: Callable[[str, float], None] | None = None,
        store_data: bool = True,
    ):
        self.sim = sim
        self.geometry = geometry or FlashGeometry()
        self.timing = timing or FlashTiming()
        self.energy = energy or FlashEnergy()
        self.error_model = error_model or BitErrorModel()
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.energy_sink = energy_sink
        self.store_data = store_data

        geo = self.geometry
        self.channel_bus = [
            Resource(sim, capacity=1, name=f"{name}.ch{c}") for c in range(geo.channels)
        ]
        self.die_units = [
            Resource(sim, capacity=1, name=f"{name}.die{d}") for d in range(geo.dies)
        ]
        self.page_state = np.zeros(geo.pages, dtype=np.uint8)
        self.write_pointer = np.zeros(geo.blocks, dtype=np.int32)
        self.pe_cycles = np.zeros(geo.blocks, dtype=np.int32)
        self.program_time = np.zeros(geo.blocks, dtype=np.float64)
        # grown bad blocks: erase on a failed block raises EraseFailure
        self.failed_blocks: set[int] = set()
        self._data: dict[int, bytes] = {}
        # Out-of-band (spare-area) metadata per page.  Real NAND pages carry
        # a spare region where the FTL stamps the logical address and a
        # sequence number; it is what makes power-off recovery possible.
        # Kept even in analytic mode — it is metadata, not payload.
        self._oob: dict[int, Any] = {}
        self.stats = FlashStats()
        self._rng = sim.rng(f"{name}.ber")
        # Per-geometry constants, hoisted out of the per-page operations:
        # transfer time, energy and bit count depend only on the page size.
        self._t_page_xfer = self.timing.transfer_time(geo.page_size)
        self._page_bits = geo.page_size * 8
        self._e_read_page = self.energy.e_read + self.energy.transfer_energy(geo.page_size)
        self._e_prog_page = self.energy.e_prog + self.energy.transfer_energy(geo.page_size)

    # -- helpers ----------------------------------------------------------
    def _die_id(self, addr: PageAddress | BlockAddress) -> int:
        return addr.channel * self.geometry.dies_per_channel + addr.die

    def _charge(self, joules: float) -> None:
        self.stats.energy_j += joules
        if self.energy_sink is not None:
            self.energy_sink(self.name, joules)

    def page_state_of(self, addr: PageAddress) -> PageState:
        return PageState(int(self.page_state[self.geometry.page_index(addr)]))

    def pe_count(self, block: BlockAddress) -> int:
        return int(self.pe_cycles[self.geometry.block_index(block)])

    @property
    def aggregate_bandwidth(self) -> float:
        """Peak media bandwidth: channels x channel rate (bytes/s)."""
        return self.geometry.channels * self.timing.channel_rate

    # -- operations (simulation processes) ---------------------------------
    def read_page(self, addr: PageAddress, retention_s: float | None = None) -> Generator:
        """Read one page: die array-read, then bus transfer.

        Yields inside a process; returns a :class:`ReadResult`.
        """
        geo = self.geometry
        idx = geo.page_index(addr)
        if self.page_state[idx] != PageState.PROGRAMMED:
            raise FlashOpError(f"read of erased page {addr}")
        die = self.die_units[self._die_id(addr)]
        bus = self.channel_bus[addr.channel]

        with die.request() as dreq:
            yield dreq
            yield self.sim.timeout(self.timing.t_read)
        with bus.request() as breq:
            yield breq
            yield self.sim.timeout(self._t_page_xfer)

        block_idx = geo.block_index(addr.block_addr)
        if retention_s is None:
            retention_s = max(0.0, self.sim.now - float(self.program_time[block_idx]))
        errors = self.error_model.sample_errors(
            self._rng,
            nbits=self._page_bits,
            pe_cycles=int(self.pe_cycles[block_idx]),
            retention_s=retention_s,
        )
        stats = self.stats
        stats.reads += 1
        stats.bytes_read += geo.page_size
        self._charge(self._e_read_page)
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, self.name, "flash.read", addr=addr, errors=errors)
        return ReadResult(addr, self._data.get(idx), errors)

    def page_oob(self, addr: PageAddress) -> Any:
        """Spare-area metadata of a page (``None`` if absent)."""
        return self._oob.get(self.geometry.page_index(addr))

    def program_page(
        self, addr: PageAddress, data: bytes | None = None, oob: Any = None
    ) -> Generator:
        """Program one page: bus transfer in, then die program.

        Enforces in-order programming within the block.
        """
        geo = self.geometry
        idx = geo.page_index(addr)
        block_idx = geo.block_index(addr.block_addr)
        if self.page_state[idx] == PageState.PROGRAMMED:
            raise FlashOpError(f"program of already-programmed page {addr}")
        expected = int(self.write_pointer[block_idx])
        if addr.page != expected:
            raise FlashOpError(
                f"out-of-order program: block {addr.block_addr} expects page "
                f"{expected}, got {addr.page}"
            )
        if data is not None and len(data) > geo.page_size:
            raise FlashOpError(
                f"payload of {len(data)} bytes exceeds page size {geo.page_size}"
            )
        die = self.die_units[self._die_id(addr)]
        bus = self.channel_bus[addr.channel]

        with bus.request() as breq:
            yield breq
            yield self.sim.timeout(self._t_page_xfer)
        with die.request() as dreq:
            yield dreq
            yield self.sim.timeout(self.timing.t_prog)

        self.page_state[idx] = PageState.PROGRAMMED
        self.write_pointer[block_idx] = addr.page + 1
        self.program_time[block_idx] = self.sim.now
        if self.store_data and data is not None:
            self._data[idx] = data
        if oob is not None:
            self._oob[idx] = oob
        stats = self.stats
        stats.programs += 1
        stats.bytes_programmed += geo.page_size
        self._charge(self._e_prog_page)
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, self.name, "flash.program", addr=addr)
        return addr

    def mark_block_failed(self, block_index: int) -> None:
        """Failure injection: the next erase of this block raises
        :class:`EraseFailure` (a grown bad block)."""
        if not 0 <= block_index < self.geometry.blocks:
            raise ValueError(f"no such block {block_index}")
        self.failed_blocks.add(block_index)

    def erase_block(self, block: BlockAddress) -> Generator:
        """Erase one block, resetting its pages and incrementing wear.

        Raises :class:`EraseFailure` for blocks marked bad — pages that were
        already programmed stay readable (real NAND erase failures leave the
        array contents intact), but the block can never be reused.
        """
        geo = self.geometry
        geo.validate(block)
        block_idx = geo.block_index(block)
        die = self.die_units[self._die_id(block)]

        with die.request() as dreq:
            yield dreq
            yield self.sim.timeout(self.timing.t_erase)
        if block_idx in self.failed_blocks:
            self.tracer.emit(self.sim.now, self.name, "flash.erase-failure", block=block)
            raise EraseFailure(block_idx)

        start = block_idx * geo.pages_per_block
        stop = start + geo.pages_per_block
        self.page_state[start:stop] = PageState.ERASED
        self.write_pointer[block_idx] = 0
        self.pe_cycles[block_idx] += 1
        if self.store_data:
            for idx in range(start, stop):
                self._data.pop(idx, None)
        for idx in range(start, stop):
            self._oob.pop(idx, None)
        self.stats.erases += 1
        self._charge(self.energy.e_erase)
        self.tracer.emit(self.sim.now, self.name, "flash.erase", block=block)
        return block

    # -- introspection -------------------------------------------------------
    def erased_pages_in(self, block: BlockAddress) -> int:
        geo = self.geometry
        start = geo.block_index(block) * geo.pages_per_block
        return int(
            np.count_nonzero(
                self.page_state[start : start + geo.pages_per_block] == PageState.ERASED
            )
        )

    def describe(self) -> dict[str, Any]:
        geo = self.geometry
        return {
            "channels": geo.channels,
            "dies": geo.dies,
            "capacity_bytes": geo.capacity_bytes,
            "page_size": geo.page_size,
            "aggregate_bandwidth_bps": self.aggregate_bandwidth,
            "stats": self.stats.snapshot(),
        }
