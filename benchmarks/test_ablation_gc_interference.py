"""Ablation — read tail latency under garbage collection (the write cliff).

Not a paper figure, but the FTL behaviour every SSD evaluation implicitly
depends on: on a quiet device reads are flat; under sustained random
overwrites the collector competes for dies and channels and the read tail
stretches.  This bench quantifies the model's cliff.
"""

import numpy as np

from repro.analysis.experiments import format_series_table
from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=10,
    pages_per_block=16, page_size=2048,
)
PROBES = 200


def measure(read_while_writing: bool) -> dict:
    sim = Simulator(seed=21)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9),
                       store_data=False)
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(
        sim, flash, ecc, config=FtlConfig(op_ratio=0.2, write_buffer_pages=16)
    )
    rng = sim.rng("workload")
    logical = ftl.logical_pages

    def fill():
        for lpn in range(logical):
            yield from ftl.write(lpn, None)
        yield from ftl.flush()

    sim.run(sim.process(fill()))

    latencies: list[float] = []
    writer_done = []

    def writer():
        for lpn in rng.integers(0, logical, size=2500):
            yield from ftl.write(int(lpn), None)
        yield from ftl.flush()
        writer_done.append(True)

    def reader():
        probes = rng.integers(0, logical, size=PROBES)
        for lpn in probes:
            start = sim.now
            yield from ftl.read(int(lpn))
            latencies.append(sim.now - start)
            yield sim.timeout(50e-6)

    if read_while_writing:
        sim.process(writer())
    sim.run(sim.process(reader()))
    sim.run()
    return {
        "mode": "under GC churn" if read_while_writing else "idle",
        "p50_us": float(np.percentile(latencies, 50)) * 1e6,
        "p99_us": float(np.percentile(latencies, 99)) * 1e6,
        "gc_collections": ftl.gc.collections,
    }


def test_ablation_gc_interference(benchmark):
    def experiment():
        return measure(False), measure(True)

    idle, busy = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n" + format_series_table(
        "Ablation — read latency percentiles, idle vs sustained overwrites",
        ["mode", "p50 (us)", "p99 (us)", "GC collections"],
        [[r["mode"], r["p50_us"], r["p99_us"], r["gc_collections"]]
         for r in (idle, busy)],
    ))

    # GC really ran in the churn case and not in the idle case
    assert idle["gc_collections"] == 0
    assert busy["gc_collections"] > 0
    # the cliff: the busy tail stretches well beyond the idle tail
    assert busy["p99_us"] > 1.5 * idle["p99_us"]
    # but medians stay in the same decade (GC steals dies, not everything)
    assert busy["p50_us"] < 10 * idle["p50_us"]
