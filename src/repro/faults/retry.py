"""Host-side recovery policy: retries with backoff and circuit breakers.

Classification first: a failure is worth retrying only when the *transport*
failed (device crash window, transient NVMe error, agent restarting, minion
aborted by an infrastructure kill).  A minion whose executable ``CRASHED``
or was ``TIMEOUT``-killed by the watchdog produced a real outcome —
retrying would reproduce it, so those are final.

Statuses are matched by name so this module stays import-light (the NVMe
and proto layers are below the fault layer in the dependency order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "BreakerConfig",
    "CircuitBreaker",
    "RetryPolicy",
    "completion_retryable",
    "response_retryable",
]

#: NVMe completion statuses that mean "the transport hiccuped, try again".
RETRYABLE_COMPLETION_STATUSES = frozenset(
    {"TRANSIENT", "DEVICE_UNAVAILABLE", "ISC_AGENT_DOWN"}
)

#: Response statuses that mean "infrastructure killed the minion, not its code".
RETRYABLE_RESPONSE_STATUSES = frozenset({"aborted"})


def completion_retryable(status: Any) -> bool:
    """Is this NVMe completion status a retryable transport fault?"""
    return getattr(status, "name", str(status)) in RETRYABLE_COMPLETION_STATUSES


def response_retryable(status: Any) -> bool:
    """Is this minion response status a retryable infrastructure abort?

    ``CRASHED``/``TIMEOUT``/``REJECTED``/``APP_ERROR`` are deliberate
    non-members: the minion ran and its outcome is the answer.
    """
    return getattr(status, "value", str(status)) in RETRYABLE_RESPONSE_STATUSES


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a per-minion deadline.

    ``backoff`` draws jitter from the caller-supplied RNG (a named
    ``Simulator.rng`` stream), so retry timing is reproducible from the
    simulation seed and is only consumed when a retry actually happens —
    fault-free schedules stay bit-identical.
    """

    max_attempts: int = 4
    base_delay: float = 200e-6
    multiplier: float = 2.0
    max_delay: float = 10e-3
    jitter: float = 0.25  # +/- fraction of the raw backoff
    deadline: float = 1.0  # per-minion budget in simulated seconds

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay <= 0 or self.max_delay <= 0:
            raise ValueError("backoff delays must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def backoff(self, attempt: int, rng: Any = None) -> float:
        """Delay before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt counts from 1")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
            # Jitter widens the delay both ways; the cap is a contract on the
            # *final* delay, so re-clamp after the multiply.  (jitter < 1
            # keeps the multiplier positive, hence raw stays >= 0.)
            raw = min(raw, self.max_delay)
        assert raw >= 0.0
        return raw


@dataclass(frozen=True, slots=True)
class BreakerConfig:
    """Tuning for per-device circuit breakers.

    ``probe_timeout`` bounds how long the single half-open probe slot stays
    claimed with no recorded outcome before it re-arms; ``None`` (the
    default, omitted from canonical JSON so pre-existing scenario digests
    are unchanged) falls back to ``cooldown``.
    """

    failure_threshold: int = 5  # consecutive failures before opening
    cooldown: float = 10e-3  # open -> half-open delay (simulated seconds)
    probe_timeout: float | None = field(
        default=None, metadata={"omit_if_none": True}
    )

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown <= 0:
            raise ValueError("cooldown must be positive")
        if self.probe_timeout is not None and self.probe_timeout <= 0:
            raise ValueError("probe_timeout must be positive (or None)")


class CircuitBreaker:
    """Classic closed -> open -> half-open breaker on simulation time.

    Open means fail-fast: the client stops putting commands on the wire to
    a device that keeps failing, so fan-outs stop paying per-attempt
    latency for a dead drive.  After ``cooldown`` one probe is let through
    (half-open); its outcome closes or re-opens the breaker.

    The probe slot carries a deadline: a probe whose outcome is never
    recorded (the caller shed the request, was cancelled, or died with its
    device) would otherwise leave ``_probing`` latched and the breaker
    fast-failing forever.  Once ``probe_timeout`` (default: the cooldown)
    elapses with no recorded outcome, the slot re-arms and the next
    ``allow`` admits a fresh probe.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        config: BreakerConfig | None = None,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        self.config = config if config is not None else BreakerConfig()
        self.on_transition = on_transition
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self._probing = False
        self._probe_started = 0.0
        self.transitions: list[tuple[float, str]] = []
        self.fast_fails = 0

    @property
    def _probe_deadline(self) -> float:
        timeout = self.config.probe_timeout
        return timeout if timeout is not None else self.config.cooldown

    def _move(self, now: float, state: str) -> None:
        if state == self.state:
            return
        previous, self.state = self.state, state
        self.transitions.append((now, state))
        if self.on_transition is not None:
            self.on_transition(previous, state)

    def allow(self, now: float) -> bool:
        """May a command be sent now?  (Half-open admits one probe.)"""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if now - self.opened_at >= self.config.cooldown:
                self._move(now, self.HALF_OPEN)
                self._probing = True
                self._probe_started = now
                return True
            self.fast_fails += 1
            return False
        if self._probing and now - self._probe_started >= self._probe_deadline:
            self._probing = False  # probe outcome never recorded: re-arm
        if not self._probing:
            self._probing = True
            self._probe_started = now
            return True
        self.fast_fails += 1
        return False

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self._probing = False
        if self.state != self.CLOSED:
            self._move(now, self.CLOSED)

    def record_failure(self, now: float) -> None:
        self._probing = False
        if self.state == self.HALF_OPEN:
            self.opened_at = now
            self._move(now, self.OPEN)
            return
        self.consecutive_failures += 1
        if self.state == self.CLOSED and (
            self.consecutive_failures >= self.config.failure_threshold
        ):
            self.opened_at = now
            self._move(now, self.OPEN)
