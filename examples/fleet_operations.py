#!/usr/bin/env python3
"""Fleet operations: telemetry, SMART health, and balanced job placement.

The operator's view of a CompStor deployment: a rack of storage nodes runs
a mixed in-situ workload while the coordinator polls per-device telemetry
(ARM-core utilisation, temperature — the paper's load-balancing signals)
and drive SMART logs (wear, write amplification, GC activity), then prints
the fleet health report an SRE dashboard would render.

Run:  python examples/fleet_operations.py
"""

from repro.analysis.experiments import format_series_table
from repro.config import (
    FlashConfig,
    FleetConfig,
    ScenarioConfig,
    build_corpus,
    build_fleet,
    config_digest,
)
from repro.obs import HealthAggregator
from repro.proto import Command
from repro.workloads import CorpusSpec

#: A 2x2 rack and its workload, declared once; the corpus and the fleet
#: both derive from it so they can never drift apart.
SCENARIO = ScenarioConfig(
    name="fleet-ops",
    flash=FlashConfig(capacity_bytes=32 * 1024 * 1024),
    fleet=FleetConfig(nodes=2, devices_per_node=2),
    corpus=CorpusSpec(files=12, mean_file_bytes=64 * 1024),
)


def main() -> None:
    print(f"scenario {SCENARIO.name} digest={config_digest(SCENARIO)[:16]}")
    fleet = build_fleet(SCENARIO)
    sim = fleet.sim
    books = build_corpus(SCENARIO)
    sim.run(sim.process(fleet.stage_corpus(books)))

    aggregator = HealthAggregator()

    def workload():
        # mixed job: compress odd shards, scan even shards
        def command_for(book):
            index = int(book.name[4:8])
            if index % 2:
                return Command(command_line=f"bzip2 {book.name}")
            return Command(command_line=f"grep xylophone {book.name}")

        responses, wall = yield from fleet.run_job(books, command_for)
        ok = sum(1 for r in responses if r.exit_code in (0, 1))
        print(f"job: {len(responses)} minions over {fleet.total_devices} devices "
              f"in {wall * 1e3:.1f} ms simulated ({ok} completed)\n")
        aggregator.observe_minion_latencies(r.execution_seconds for r in responses)

        # telemetry sweep (the query path)
        snaps = yield from fleet.telemetry()
        rows = [
            [f"node{n}/{dev}", f"{s.core_utilization * 100:.1f}%",
             f"{s.temperature_c:.1f}C", s.running_processes]
            for (n, dev), s in sorted(snaps.items())
        ]
        print(format_series_table(
            "fleet telemetry (STATUS queries)",
            ["device", "cores busy", "temp", "procs"],
            rows,
        ))

    sim.run(sim.process(workload()))

    # SMART sweep (the admin path — what a monitoring agent scrapes)
    rows = []
    for n, node in enumerate(fleet.nodes):
        for ssd in node.compstors:
            smart = ssd.controller.smart_log()
            rows.append([
                f"node{n}/{ssd.name}",
                smart["host_writes"],
                smart["percentage_used"],
                f"{smart['write_amplification']:.2f}",
                smart["gc_collections"],
                smart["bad_blocks"],
            ])
    print("\n" + format_series_table(
        "fleet SMART health",
        ["device", "host writes", "% used", "WA", "GC runs", "bad blocks"],
        rows,
    ))
    print(f"\ntotal minions served: {fleet.total_minions_served()}")

    # fleet health rollup: telemetry + SMART + minion latencies in one report
    def rollup():
        health = yield from fleet.health(aggregator)
        return health

    health = sim.run(sim.process(rollup()))
    print("\n" + format_series_table(
        "fleet health (HealthAggregator)", ["attribute", "value"], health.rows()
    ))


if __name__ == "__main__":
    main()
