"""SSD device assemblies.

- :class:`CompStorSSD` — the paper's device: enterprise SSD controller
  (flash + ECC + FTL + NVMe front-end) plus the dedicated ISPS and agent;
- :class:`ConventionalSSD` — the same storage stack without in-situ
  processing (the off-the-shelf comparison drive of Table IV).
"""

from repro.ssd.compstor import CompStorSSD, PROTOTYPE_CAPACITY_BYTES, prototype_geometry
from repro.ssd.conventional import ConventionalSSD

__all__ = [
    "CompStorSSD",
    "ConventionalSSD",
    "PROTOTYPE_CAPACITY_BYTES",
    "prototype_geometry",
]
