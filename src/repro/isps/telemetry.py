"""Device status telemetry.

Returned by STATUS queries; the paper: "get information about the current
status of CompStor such as ARM cores utilization, or temperature of the
cores.  This information could be used for load balancing."
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TelemetrySnapshot"]


@dataclass(frozen=True, slots=True)
class TelemetrySnapshot:
    """Point-in-time device health/status."""

    device: str
    time: float
    core_utilization: float
    temperature_c: float
    running_processes: int
    active_minions: int
    uptime: float
    free_bytes: int

    def load_score(self) -> float:
        """Scalar used by load balancers (higher = busier).

        Active minions dominate; utilisation breaks ties between devices
        with equal queue depth.
        """
        return self.active_minions + self.core_utilization
