#!/usr/bin/env python3
"""Rack-scale what-if in analytic mode.

Functional byte movement is wonderful for correctness but too slow for a
64-drive, multi-terabyte what-if.  Analytic mode keeps every timing and
energy model live while skipping payloads, so this example can answer the
paper's *motivating* question at realistic scale:

    a storage server full of CompStors scans a multi-GB shard per drive —
    how do wall time and the data-over-PCIe compare with hauling everything
    to the host?

Run:  python examples/rack_scale_analytic.py
"""

from repro.analysis.experiments import format_series_table, throughput_mb_s
from repro.cluster import StorageNode
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec

DEVICES = 8
BOOKS_PER_DEVICE = 2
BOOK_BYTES = 24 * 1024 * 1024  # 24 MB shards; scale up as patience allows


def main() -> None:
    spec = CorpusSpec(
        files=DEVICES * BOOKS_PER_DEVICE,
        mean_file_bytes=BOOK_BYTES,
        size_spread=0.05,
    )
    books = BookCorpus(spec).generate(functional=False)  # analytic: no payloads
    total_bytes = sum(b.plain_size for b in books)

    node = StorageNode.build(
        devices=DEVICES,
        device_capacity=4 * BOOKS_PER_DEVICE * BOOK_BYTES,
        store_data=False,
    )
    sim = node.sim
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))
    placement = node.device_books(books)

    def in_situ_scan():
        assignments = [
            (device, Command(command_line=f"grep {spec.needle} {book.name}"))
            for device, part in placement.items()
            for book in part
        ]
        mark = node.meter.snapshot()
        start = sim.now
        responses = yield from node.client.gather(assignments)
        seconds = sim.now - start
        report = node.meter.window(mark)
        assert all(r is not None for r in responses)
        wire_bytes = sum(r.wire_bytes for r in responses) + sum(
            c.wire_bytes for _, c in assignments
        )
        device_j = report.subset([f"compstor{i}" for i in range(DEVICES)])
        return seconds, wire_bytes, device_j

    seconds, wire_bytes, device_j = sim.run(sim.process(in_situ_scan()))

    # the conventional alternative: every byte crosses a device link and the
    # shared uplink before the Xeon sees it — bandwidth accounting
    uplink = node.fabric.host_ingest_bandwidth
    per_link = node.fabric.ports[0].bandwidth
    pull_seconds = max(
        total_bytes / uplink,  # the funnel
        (total_bytes / DEVICES) / per_link,  # per-device link
    )

    print(format_series_table(
        f"rack-scale analytic scan: {DEVICES} CompStors, "
        f"{total_bytes / 1e9:.1f} GB of text",
        ["metric", "in-situ", "host-pull (bandwidth floor)"],
        [
            ["wall time (s)", seconds, pull_seconds],
            ["data over PCIe (MB)", wire_bytes / 1e6, total_bytes / 1e6],
            ["scan throughput (MB/s)", throughput_mb_s(total_bytes, seconds),
             throughput_mb_s(total_bytes, pull_seconds)],
        ],
    ))
    print(f"\nPCIe traffic reduction: {total_bytes / wire_bytes:,.0f}x")
    print(f"device-attributed energy: {device_j:.1f} J "
          f"({device_j / (total_bytes / 1e9):.0f} J/GB)")
    print("\nnote: the host-pull column is a pure bandwidth floor (no host CPU");
    print("cost included) — the in-situ side still ships only counts.")


if __name__ == "__main__":
    main()
