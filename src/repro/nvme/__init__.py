"""NVMe front-end.

Submission/completion queue pairs, the IO + admin command set, and the
vendor-specific in-storage-computation (ISC) opcodes that carry CompStor
minions and queries.  The controller executes IO against the FTL and routes
ISC commands to a pluggable handler (the ISPS agent's transport), so storage
traffic and computation traffic share the wire but *not* the processing
resources — the paper's isolation claim.
"""

from repro.nvme.commands import (
    IscPayload,
    NvmeCommand,
    NvmeCompletion,
    NvmeError,
    Opcode,
    Status,
)
from repro.nvme.controller import NvmeController
from repro.nvme.queues import QueuePair

__all__ = [
    "IscPayload",
    "NvmeCommand",
    "NvmeCompletion",
    "NvmeController",
    "NvmeError",
    "Opcode",
    "QueuePair",
    "Status",
]
