"""Dedup object store: chunk+hash offload, block sharing, GC crash safety.

Three layers:

* unit tests of :class:`DedupObjectStore` over a small fleet — round trips,
  duplicate suppression, refcount sharing across keys, GC reclamation;
* a Hypothesis property pinning the byte-accounting identity
  ``stored_bytes + deduped_bytes == offered_bytes`` over arbitrary
  put/overwrite/delete sequences;
* the drill cells as oracles — deterministic in-process, matching the
  pinned ``objstore-smoke`` golden, and holding the crash-recovery
  invariant (no referenced block lost, no orphan outliving recovery).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import StorageFleet
from repro.objstore import (
    ChunkParams,
    ChunkSumApp,
    DedupObjectStore,
    ObjectStoreError,
    chunk_digests,
)
from repro.objstore.dedup import BLOCK_PREFIX, TEMP_PREFIX
from repro.objstore.drill import (
    run_gc_drill_cell,
    run_objstore_cell,
    run_objstore_sweep_cell,
)
from repro.parallel import payload_digest

GOLDEN_FILE = Path(__file__).with_name("golden_objstore_digest.txt")

PARAMS = ChunkParams(min_size=64, avg_size=256, max_size=1024)


def make_store(replicas=2):
    fleet = StorageFleet.build(
        nodes=2, devices_per_node=2, device_capacity=24 * 1024 * 1024
    )
    store = DedupObjectStore(fleet, params=PARAMS, replicas=replicas)
    return fleet, store


def drive(fleet, gen):
    return fleet.sim.run(fleet.sim.process(gen))


def blob(seed: int, size: int = 6 * 1024) -> bytes:
    import random

    return random.Random(seed).randbytes(size)


def block_files(store) -> dict[tuple[int, str], set[str]]:
    return {
        target: {
            name
            for name in store._ssd(*target).fs.listdir()
            if name.startswith(BLOCK_PREFIX)
        }
        for target in store.ring
    }


# -- unit: write/read/delete -------------------------------------------------

def test_put_get_round_trip():
    fleet, store = make_store()
    payload = blob(1)
    recipe = drive(fleet, store.put("cat", payload))
    assert sum(length for _, length in recipe) == len(payload)
    assert drive(fleet, store.get("cat")) == payload
    assert store.stats.puts == 1 and store.stats.gets == 1
    assert store.stats.offered_bytes == len(payload)


def test_recipe_matches_host_side_chunking():
    """The in-situ chunksum minion and the host chunker agree exactly —
    the digests shipped over PCIe are the ones the payload hashes to."""
    fleet, store = make_store()
    payload = blob(2)
    recipe = drive(fleet, store.put("k", payload))
    assert list(recipe) == chunk_digests(payload, PARAMS)
    assert store.stats.host_chunk_fallbacks == 0


def test_duplicate_payload_is_never_rewritten():
    fleet, store = make_store()
    payload = blob(3)
    drive(fleet, store.put("a", payload))
    stored_after_first = store.stats.stored_bytes
    physical_after_first = store.stats.physical_bytes
    drive(fleet, store.put("b", payload))
    # second copy: all chunks known, zero novel bytes, zero block writes
    assert store.stats.stored_bytes == stored_after_first
    assert store.stats.physical_bytes == physical_after_first
    assert store.stats.deduped_bytes == len(payload)
    assert all(entry.refcount == 2 for entry in store.index.values())
    assert drive(fleet, store.get("b")) == payload


def test_blocks_replicated_along_digest_chain():
    fleet, store = make_store(replicas=2)
    drive(fleet, store.put("k", blob(4)))
    for digest, entry in store.index.items():
        assert len(entry.chain) == 2
        for target in entry.chain:
            assert BLOCK_PREFIX + digest in store._ssd(*target).fs.listdir()


def test_shared_chunks_survive_deleting_one_key():
    fleet, store = make_store()
    payload = blob(5)
    drive(fleet, store.put("a", payload))
    drive(fleet, store.put("b", payload))
    drive(fleet, store.delete("a"))
    drive(fleet, store.gc())
    assert drive(fleet, store.get("b")) == payload
    assert store.check_integrity()["ok"]


def test_delete_then_gc_reclaims_every_block():
    fleet, store = make_store()
    drive(fleet, store.put("a", blob(6)))
    drive(fleet, store.put("b", blob(7)))
    drive(fleet, store.delete("a"))
    drive(fleet, store.delete("b"))
    swept = drive(fleet, store.gc())
    assert swept["blocks"] > 0 and swept["bytes"] > 0
    assert store.index == {}
    assert all(not files for files in block_files(store).values())


def test_gc_never_touches_referenced_blocks():
    fleet, store = make_store()
    payload = blob(8)
    drive(fleet, store.put("keep", payload))
    before = block_files(store)
    swept = drive(fleet, store.gc())
    assert swept["blocks"] == 0
    assert block_files(store) == before
    assert drive(fleet, store.get("keep")) == payload


def test_overwrite_replaces_recipe_without_refcount_drift():
    fleet, store = make_store()
    shared = blob(9)
    drive(fleet, store.put("k", shared))
    drive(fleet, store.put("k", shared + blob(10, size=2 * 1024)))
    assert drive(fleet, store.get("k")) == shared + blob(10, size=2 * 1024)
    report = store.check_integrity()
    assert report["ok"], report
    drive(fleet, store.delete("k"))
    drive(fleet, store.gc())
    assert store.index == {}


def test_get_unknown_key_raises():
    fleet, store = make_store()
    with pytest.raises(ObjectStoreError):
        drive(fleet, store.get("ghost"))
    with pytest.raises(ObjectStoreError):
        drive(fleet, store.delete("ghost"))


def test_no_temp_files_survive_commit():
    fleet, store = make_store()
    drive(fleet, store.put("k", blob(11)))
    for target in store.ring:
        names = store._ssd(*target).fs.listdir()
        assert not [n for n in names if n.startswith(TEMP_PREFIX)]


# -- property: accounting identity -------------------------------------------

SEGMENTS = [blob(seed, size=1536) for seed in range(5)]

op_lists = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.sampled_from(["a", "b", "c"]),
            st.lists(st.integers(0, 4), min_size=1, max_size=4),
        ),
        st.tuples(st.just("delete"), st.sampled_from(["a", "b", "c"]), st.just([])),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(op_lists)
def test_accounting_identity_holds_under_any_op_sequence(ops):
    """Every offered byte is either stored (first occurrence) or deduped
    (repeat) — cumulatively, across puts, overwrites, and deletes."""
    fleet, store = make_store()
    for op, key, segments in ops:
        if op == "put":
            drive(fleet, store.put(key, b"".join(SEGMENTS[i] for i in segments)))
        elif key in store.manifests:
            drive(fleet, store.delete(key))
        stats = store.stats
        assert stats.stored_bytes + stats.deduped_bytes == stats.offered_bytes
        assert store.check_integrity()["ok"]


# -- drill cells as oracles ---------------------------------------------------

def test_objstore_cell_deterministic_in_process():
    first = run_objstore_cell()
    second = run_objstore_cell()
    assert first == second
    assert first["ok"], first
    # the preset's second crash window overlaps the first GC pass
    assert first["down_during_gc"], "drill never raced GC against a crash"


def test_gc_drill_holds_the_crash_recovery_invariant():
    cell = run_gc_drill_cell()
    assert cell["ok"], cell
    assert cell["objects_deleted"] > 0
    assert cell["orphans_left"] == 0
    assert cell["integrity"]["lost_blocks"] == []
    assert cell["integrity"]["refcount_drift"] == []
    assert cell["gets"]["mismatch"] == 0 and cell["gets"]["failed"] == 0


def test_drill_pair_matches_pinned_golden():
    digest, name = GOLDEN_FILE.read_text().split()
    assert name == "objstore-smoke"
    values = [run_objstore_cell(), run_gc_drill_cell()]
    assert payload_digest(values) == digest, (
        "the objstore-smoke scorecard drifted; if intentional, regenerate "
        "tests/golden_objstore_digest.txt"
    )


def test_dedup_sweep_ratio_tracks_the_dial():
    points = [run_objstore_sweep_cell(dedup_ratio=d) for d in (0.0, 0.5, 0.9)]
    ratios = [p["measured_ratio"] for p in points]
    assert ratios[0] == pytest.approx(1.0)
    assert ratios == sorted(ratios)
    assert ratios[-1] > 1.5
    for point in points:
        assert point["offered_bytes"] == (
            point["stored_bytes"] + point["deduped_bytes"]
        )


# -- the in-situ chunksum minion ---------------------------------------------

def test_chunksum_app_is_page_seam_safe():
    """The minion hashes payload spans, not page-sized read chunks: its
    stdout recipe equals host-side chunking even though the device streams
    the file through fixed pages."""
    from tests.test_apps import drive as drive_os
    from tests.test_apps import make_os, put_file

    sim, os_ = make_os()
    os_.install_executable(ChunkSumApp())
    payload = blob(12, size=20 * 1024)
    put_file(sim, os_, "obj.bin", payload)
    status, _ = drive_os(
        sim, os_.run(f"chunksum {PARAMS.min_size} {PARAMS.avg_size} {PARAMS.max_size} obj.bin")
    )
    assert status.code == 0
    got = [
        (line.split()[0], int(line.split()[1]))
        for line in status.stdout.decode().splitlines()
    ]
    assert got == [(d, s) for d, s in chunk_digests(payload, PARAMS)]
    assert status.detail["chunks"] == len(got)


def test_chunksum_app_analytic_mode_marks_detail():
    from tests.test_apps import drive as drive_os
    from tests.test_apps import make_os, put_file

    sim, os_ = make_os(store_data=False)
    os_.install_executable(ChunkSumApp())
    put_file(sim, os_, "ghost.bin", None, size=8 * 1024)
    status, _ = drive_os(sim, os_.run("chunksum 64 256 1024 ghost.bin"))
    assert status.code == 0
    assert status.stdout == b""
    assert status.detail == {"analytic": True, "bytes": 8 * 1024}


def test_chunksum_app_rejects_bad_usage():
    from tests.test_apps import drive as drive_os
    from tests.test_apps import make_os, put_file

    sim, os_ = make_os()
    os_.install_executable(ChunkSumApp())
    put_file(sim, os_, "x.bin", b"data")
    for bad in ("chunksum x.bin", "chunksum 512 256 1024 x.bin", "chunksum a b c x.bin"):
        status, _ = drive_os(sim, os_.run(bad))
        assert status.code == 2
