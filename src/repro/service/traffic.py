"""Seeded open-loop arrival streams over large tenant populations.

The generator is *open loop*: arrival times are drawn up front from one
named RNG stream, so load does not adapt to service latency — exactly the
regime where queues grow and shedding/fairness mechanisms earn their keep.

Three pattern families cover the mixes the traffic drills exercise:

- ``poisson`` — homogeneous Poisson (exponential inter-arrivals at
  ``rate``);
- ``diurnal`` — nonhomogeneous Poisson via Lewis-Shedler thinning against
  ``rate * (1 + amplitude * sin(2*pi*t / period))``, a compressed
  day/night cycle;
- ``bursty`` — on/off: ``burst_len`` arrivals back-to-back at
  ``rate * burst_factor``, separated by exponential quiet gaps sized so
  the long-run mean stays ``rate``.

Tenant IDs are drawn per arrival from a power-shaped popularity curve
(``tenants * u**skew``), so a population of millions costs nothing up
front; priority class is a stable hash of the tenant id into the
configured class shares (crc32, not ``hash()``, so it is identical across
processes and Python versions — a determinism requirement).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Generator, Sequence

import numpy as np

from repro.config.schema import ClosedLoopConfig, PriorityClassConfig, TrafficConfig

__all__ = ["Arrival", "ClosedLoopDriver", "TrafficGenerator", "assign_class"]


@dataclass(frozen=True, slots=True)
class Arrival:
    """One open-loop request: who asks, and when (seconds of sim time)."""

    time: float
    tenant: int


def assign_class(tenant: int, classes: Sequence[PriorityClassConfig]) -> str:
    """Stable tenant -> priority-class mapping by configured shares.

    crc32 of the decimal tenant id gives a uniform u in [0, 1); the tenant
    lands in the first class whose cumulative share covers u.  Shares that
    sum below 1 leave a remainder population that folds into the *last*
    class (the best-effort tier by convention).
    """
    u = (zlib.crc32(str(tenant).encode()) & 0xFFFFFFFF) / 2**32
    cumulative = 0.0
    for cls in classes:
        cumulative += cls.share
        if u < cumulative:
            return cls.name
    return classes[-1].name


class TrafficGenerator:
    """Materialises the full arrival list for one :class:`TrafficConfig`.

    Drawing everything from a single ``default_rng(seed)`` up front (rather
    than interleaving draws with simulation events) makes the stream a pure
    function of the config — the foundation of the byte-identical-scorecard
    contract.
    """

    def __init__(self, config: TrafficConfig):
        self.config = config

    def arrivals(self) -> list[Arrival]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if cfg.pattern == "poisson":
            times = self._poisson(rng)
        elif cfg.pattern == "diurnal":
            times = self._diurnal(rng)
        else:
            times = self._bursty(rng)
        tenants = self._tenants(rng, len(times))
        return [Arrival(float(t), int(tid)) for t, tid in zip(times, tenants)]

    # -- arrival-time processes ---------------------------------------------

    def _poisson(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        gaps = rng.exponential(1.0 / cfg.rate, size=cfg.requests)
        return np.cumsum(gaps)

    def _diurnal(self, rng: np.random.Generator) -> np.ndarray:
        """Lewis-Shedler thinning against the sinusoidal rate envelope."""
        cfg = self.config
        period = cfg.period_ms / 1e3
        peak = cfg.rate * (1.0 + cfg.amplitude)
        times = []
        t = 0.0
        while len(times) < cfg.requests:
            t += float(rng.exponential(1.0 / peak))
            lam = cfg.rate * (1.0 + cfg.amplitude * np.sin(2.0 * np.pi * t / period))
            if float(rng.random()) * peak < lam:
                times.append(t)
        return np.asarray(times)

    def _bursty(self, rng: np.random.Generator) -> np.ndarray:
        """On/off bursts with a long-run mean of ``rate``.

        A burst of ``burst_len`` arrivals at ``rate * burst_factor`` spans
        ``burst_len / (rate * burst_factor)`` seconds; the quiet gap is
        sized so one full on/off cycle averages out to ``rate``.
        """
        cfg = self.config
        burst_rate = cfg.rate * cfg.burst_factor
        cycle = cfg.burst_len / cfg.rate  # time one burst "should" take
        burst_span = cfg.burst_len / burst_rate
        mean_gap = max(cycle - burst_span, 1e-9)
        times = []
        t = 0.0
        while len(times) < cfg.requests:
            remaining = cfg.requests - len(times)
            n = min(cfg.burst_len, remaining)
            gaps = rng.exponential(1.0 / burst_rate, size=n)
            for gap in gaps:
                t += float(gap)
                times.append(t)
            t += float(rng.exponential(mean_gap))
        return np.asarray(times)

    # -- tenants -------------------------------------------------------------

    def _tenants(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Power-shaped popularity: skew=1 is uniform, larger skews
        concentrate traffic on low tenant IDs (the "hot tenants")."""
        cfg = self.config
        u = rng.random(size=n)
        ids = np.floor(cfg.tenants * np.power(u, cfg.skew)).astype(np.int64)
        return np.minimum(ids, cfg.tenants - 1)


class ClosedLoopDriver:
    """Drives concurrent *closed-loop* tenant sessions against a frontend.

    Where :class:`TrafficGenerator` is open loop (arrivals come no matter
    what), each of these sessions is one tenant that waits for its previous
    request to resolve — completion, shed, drop, loss, or a client timeout
    after ``timeout_ms`` — then retries (bounded, with jittered exponential
    backoff) or thinks and issues the next one.  Shed and abandoned work
    therefore *comes back* as offered load: the retry-storm feedback loop
    the overload defenses exist to break, and the regime metastable
    failures live in.

    Each session draws think times and backoff jitter from its own named
    simulator stream, so the whole drive is a pure function of the config
    regardless of event interleaving.
    """

    def __init__(self, sim: Any, config: ClosedLoopConfig):
        self.sim = sim
        self.config = config
        self.issued = 0  # fresh requests (retries not included)
        self.retried = 0  # retry attempts offered to admission
        self.succeeded = 0  # requests whose client saw a completion
        self.gave_up = 0  # requests abandoned for good (retries exhausted)

    def counters(self) -> dict[str, int]:
        return {
            "sessions": self.config.sessions,
            "issued": self.issued,
            "retried": self.retried,
            "succeeded": self.succeeded,
            "gave_up": self.gave_up,
        }

    def run(self, frontend: Any) -> Generator:
        procs = [
            self.sim.process(
                self._session(frontend, index), name=f"service.session{index}"
            )
            for index in range(self.config.sessions)
        ]
        yield self.sim.all_of(procs)

    def _session(self, frontend: Any, index: int) -> Generator:
        cfg = self.config
        rng = self.sim.rng(f"service.session.{cfg.seed}.{index}")
        end = self.sim.now + cfg.duration_ms / 1e3
        if cfg.think_ms > 0:
            # Stagger session starts across one think interval: an
            # all-at-once herd at t=0 can push a bistable system straight
            # into its degraded attractor before any trigger fires.
            yield self.sim.timeout(float(rng.random()) * cfg.think_ms / 1e3)
        while self.sim.now < end:
            self.issued += 1
            yield from self._request(frontend, index, rng)
            if cfg.think_ms > 0:
                yield self.sim.timeout(float(rng.exponential(cfg.think_ms / 1e3)))

    def _request(self, frontend: Any, tenant: int, rng: Any) -> Generator:
        """One request through shed/abandon/retry resolution."""
        cfg = self.config
        attempt = 0
        while True:
            request = frontend.offer(tenant, retry=attempt > 0)
            if request is not None:
                yield self.sim.any_of([
                    request.done,
                    self.sim.timeout(cfg.timeout_ms / 1e3, daemon=True),
                ])
                if request.done.triggered:
                    if request.status == "completed":
                        self.succeeded += 1
                        return
                    # dropped or lost: resolved against us — retryable
                else:
                    frontend.abandon(request)
            if attempt >= cfg.max_retries:
                self.gave_up += 1
                return
            attempt += 1
            self.retried += 1
            delay = (cfg.retry_backoff_ms / 1e3) * cfg.retry_multiplier ** (attempt - 1)
            if cfg.retry_jitter:
                delay *= 1.0 + cfg.retry_jitter * (2.0 * float(rng.random()) - 1.0)
            yield self.sim.timeout(delay)
