"""Structured event tracing.

Components emit :class:`TraceRecord` rows into a :class:`Tracer`; experiments
filter them to validate protocol behaviour (e.g. the Table III minion
lifetime) and to build timelines without coupling model code to reporters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    component:
        Dotted origin, e.g. ``"compstor0.isps.agent"``.
    kind:
        Machine-readable event name, e.g. ``"minion.received"``.
    detail:
        Free-form payload for assertions and debugging.
    """

    time: float
    component: str
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """An append-only trace log with cheap filtering.

    Tracing is opt-in per component: models hold an optional tracer and call
    :meth:`emit` unconditionally — a disabled tracer is a no-op, so hot paths
    pay one attribute test.

    With ``capacity`` set the log is a **ring buffer**: once full, each new
    record evicts the oldest one (long-running monitoring keeps the most
    recent window, the useful half for operators) and :attr:`dropped` counts
    the evictions.
    """

    def __init__(self, enabled: bool = True, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self.enabled = enabled
        self.capacity = capacity
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        self._dropped = 0

    def emit(self, time: float, component: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        records = self.records
        if self.capacity is not None and len(records) >= self.capacity:
            self._dropped += 1  # deque's maxlen evicts the oldest on append
        records.append(TraceRecord(time, component, kind, detail))

    @property
    def dropped(self) -> int:
        """Oldest records evicted because ``capacity`` was reached."""
        return self._dropped

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def filter(
        self,
        kind: str | None = None,
        component: str | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Records matching all given criteria (prefix match on component)."""
        out = []
        for rec in self.records:
            if kind is not None and rec.kind != kind:
                continue
            if component is not None and not rec.component.startswith(component):
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def kinds(self) -> list[str]:
        """Distinct record kinds in first-seen order."""
        seen: dict[str, None] = {}
        for rec in self.records:
            seen.setdefault(rec.kind, None)
        return list(seen)

    def clear(self) -> None:
        self.records.clear()
        self._dropped = 0


#: A shared disabled tracer for components created without one.
NULL_TRACER = Tracer(enabled=False)
