"""Failure injection: the FTL must degrade gracefully, never deadlock.

Covers grown bad blocks (erase failures), uncorrectable reads during GC
relocation, and destage failures — the three ways media trouble reaches the
translation layer.
"""

import pytest

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, EraseFailure, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=8, pages_per_block=4,
    page_size=512,
)


def make_ftl(rber0=1e-9, **cfg):
    sim = Simulator(seed=9)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=rber0))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=512)))
    defaults = dict(op_ratio=0.3, write_buffer_pages=4,
                    gc_low_watermark=1, gc_high_watermark=2)
    defaults.update(cfg)
    ftl = FlashTranslationLayer(sim, flash, ecc, config=FtlConfig(**defaults))
    return sim, ftl


def drive(sim, gen):
    return sim.run(sim.process(gen))


def churn(ftl, lpns, rounds):
    def flow():
        for r in range(rounds):
            for lpn in lpns:
                yield from ftl.write(lpn, f"r{r}p{lpn}".encode())
        yield from ftl.flush()

    return flow()


def test_erase_failure_retires_block_and_device_continues():
    sim, ftl = make_ftl()
    # doom a mid-array block: the first GC erase of it will fail
    victim = 3
    ftl.flash.mark_block_failed(victim)
    lpns = list(range(10))
    drive(sim, churn(ftl, lpns, rounds=10))
    # the device survived the churn; if GC touched the bad block it retired it
    if ftl.gc.blocks_retired:
        assert victim in ftl.allocator.retired
        assert victim not in set().union(*ftl.allocator.free)
    ftl.page_map.check_invariants()

    def readback():
        out = []
        for lpn in lpns:
            out.append((yield from ftl.read(lpn)))
        return out

    assert drive(sim, readback()) == [f"r9p{lpn}".encode() for lpn in lpns]


def test_many_bad_blocks_still_functional():
    sim, ftl = make_ftl()
    for block in (2, 5, 9, 12):
        ftl.flash.mark_block_failed(block)
    lpns = list(range(12))
    drive(sim, churn(ftl, lpns, rounds=12))
    ftl.page_map.check_invariants()
    # retired blocks never re-enter the free pool
    free_all = set().union(*ftl.allocator.free)
    assert not (ftl.allocator.retired & free_all)


def test_erase_failure_direct():
    sim, ftl = make_ftl()
    ftl.flash.mark_block_failed(0)

    def flow():
        # fill block 0 by writing through die 0's frontier
        for lpn in range(4):
            yield from ftl.write(lpn, b"x")
        yield from ftl.flush()
        yield from ftl.flash.erase_block(GEO.block_address(0))

    with pytest.raises(EraseFailure):
        drive(sim, flow())


def test_uncorrectable_gc_relocation_drops_only_that_page():
    """A rotten page hit during GC loses that page's data (recorded) but the
    collector finishes the block and the device stays writable."""
    sim, ftl = make_ftl()
    lpns = list(range(10))
    drive(sim, churn(ftl, lpns, rounds=2))

    # pick a closed block that still holds valid data and collect it with a
    # hopeless error model: every relocation read is uncorrectable
    victims = [
        b for b in ftl.allocator.closed_blocks()
        if ftl.page_map.valid_pages_in_block(b) > 0
    ]
    assert victims, "churn should leave mixed-validity closed blocks"
    valid_pages = ftl.page_map.valid_pages_in_block(victims[0])
    ftl.flash.error_model = BitErrorModel(rber0=0.4)
    drive(sim, ftl.gc._collect(victims[0]))
    assert ftl.gc.relocation_failures == valid_pages  # all drops recorded
    assert ftl.page_map.valid_pages_in_block(victims[0]) == 0
    ftl.page_map.check_invariants()

    # the device remains writable afterwards
    ftl.flash.error_model = BitErrorModel(rber0=1e-9)
    drive(sim, churn(ftl, lpns, rounds=1))


def test_destage_failure_recorded_not_fatal():
    """A destage that dies with a LogicalIOError is recorded; the flusher
    keeps draining everything else."""
    sim, ftl = make_ftl()
    from repro.ftl.ftl import LogicalIOError

    original = ftl._destage
    bombed = []

    def sabotaged(lpn, data):
        if lpn == 5 and not bombed:
            bombed.append(lpn)
            yield sim.timeout(1e-6)
            raise LogicalIOError("injected destage failure")
        yield from original(lpn, data)

    ftl.write_buffer.destage = sabotaged

    def flow():
        for lpn in range(8):
            yield from ftl.write(lpn, f"p{lpn}".encode())
        yield from ftl.flush()
        out = []
        for lpn in range(8):
            out.append((yield from ftl.read(lpn)))
        return out

    data = drive(sim, flow())
    assert len(ftl.write_buffer.failures) == 1
    assert ftl.write_buffer.failures[0][0] == 5
    # every page except the sabotaged one landed
    for lpn, value in enumerate(data):
        if lpn == 5:
            assert value is None
        else:
            assert value == f"p{lpn}".encode()


def test_model_bugs_still_propagate_from_flusher():
    """Non-media exceptions must crash loudly, not be swallowed."""
    sim, ftl = make_ftl()

    def broken(lpn, data):
        yield sim.timeout(1e-6)
        raise RuntimeError("model bug")

    ftl.write_buffer.destage = broken

    def flow():
        yield from ftl.write(0, b"x")
        yield from ftl.flush()

    with pytest.raises(RuntimeError, match="model bug"):
        drive(sim, flow())


def test_mark_block_failed_validation():
    sim, ftl = make_ftl()
    with pytest.raises(ValueError):
        ftl.flash.mark_block_failed(10**9)


def test_retire_block_validation():
    sim, ftl = make_ftl()
    free_block = next(iter(ftl.allocator.free[0]))
    with pytest.raises(ValueError, match="free block"):
        ftl.allocator.retire_block(free_block)


# -- property-based: correctness under injected media failures ---------------------

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    bad_blocks=st.sets(st.integers(0, GEO.blocks - 1), max_size=3),
    ops=st.lists(
        st.tuples(st.integers(0, 12), st.binary(min_size=1, max_size=8)),
        min_size=5, max_size=40,
    ),
)
def test_churn_with_grown_bad_blocks_matches_oracle(bad_blocks, ops):
    """Random writes with up to three blocks failing their next erase:
    every surviving logical page reads back its last written value."""
    sim, ftl = make_ftl()
    for block in bad_blocks:
        ftl.flash.mark_block_failed(block)
    oracle = {}

    def driver():
        for lpn, payload in ops:
            yield from ftl.write(lpn, payload)
            oracle[lpn] = payload
        yield from ftl.flush()
        out = {}
        for lpn in oracle:
            out[lpn] = yield from ftl.read(lpn)
        return out

    out = drive(sim, driver())
    assert out == oracle
    ftl.page_map.check_invariants()
    # retired blocks, if any, never re-enter the free pool
    free_all = set().union(*ftl.allocator.free)
    assert not (ftl.allocator.retired & free_all)
