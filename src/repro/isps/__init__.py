"""The in-situ processing subsystem (ISPS).

The dedicated hardware + software that distinguishes CompStor from
shared-controller designs (Biscuit, Smart SSD): its own quad-A53 cluster,
its own DRAM, an embedded Linux, and a direct flash data path — so storage
commands never contend with computation for processing resources.

- :mod:`repro.isps.subsystem` — the hardware/OS assembly;
- :mod:`repro.isps.agent` — the ISPS agent daemon (receives minions, spawns
  executables, returns responses; handles queries);
- :mod:`repro.isps.telemetry` — status snapshots for load balancing.
"""

from repro.isps.agent import IspsAgent
from repro.isps.subsystem import InSituProcessingSubsystem
from repro.isps.telemetry import TelemetrySnapshot

__all__ = ["InSituProcessingSubsystem", "IspsAgent", "TelemetrySnapshot"]
