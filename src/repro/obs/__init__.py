"""Observability subsystem: metrics, spans, fleet health, exporters.

The operational layer the paper's STATUS story implies ("ARM cores
utilization, or temperature of the cores ... used for load balancing"),
grown to fleet scale:

- :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram`` instruments
  in a :class:`MetricsRegistry`, sampled against simulation time;
- :mod:`repro.obs.spans` — causal span trees over :class:`repro.sim.Tracer`
  (a minion's life as one tree, per Table III);
- :mod:`repro.obs.health` — :class:`HealthAggregator` folding per-device
  telemetry + SMART into a :class:`FleetHealth` rollup;
- :mod:`repro.obs.export` — Prometheus-text and JSON-lines exporters
  (``python -m repro metrics`` dumps both).

Everything is default-off: components bound to :data:`NULL_METRICS` pay one
attribute test per hook (enforced by ``benchmarks/test_obs_overhead.py``).
"""

from repro.obs.export import to_json_lines, to_prometheus
from repro.obs.health import FleetHealth, HealthAggregator
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import (
    Span,
    SpanContext,
    SpanNode,
    adopt_records,
    build_span_trees,
    continue_trace,
    format_span_tree,
    start_trace,
)

__all__ = [
    "Counter",
    "FleetHealth",
    "Gauge",
    "HealthAggregator",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "Span",
    "SpanContext",
    "SpanNode",
    "adopt_records",
    "build_span_trees",
    "continue_trace",
    "format_span_tree",
    "start_trace",
    "to_json_lines",
    "to_prometheus",
]
