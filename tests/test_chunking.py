"""Property-based tests for content-defined chunking (Gear rolling hash)."""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.objstore import ChunkParams, Chunker, chunk_digests, chunk_spans

PARAMS = ChunkParams(min_size=64, avg_size=256, max_size=1024)

payloads = st.binary(min_size=0, max_size=16 * 1024)


def lengths(data: bytes, params: ChunkParams = PARAMS) -> list[int]:
    return [length for _, length in chunk_spans(data, params)]


def test_empty_input_produces_no_chunks():
    assert lengths(b"") == []
    chunker = Chunker(PARAMS)
    assert list(chunker.update(b"")) == []
    assert chunker.finish() is None


@settings(max_examples=60, deadline=None)
@given(payloads)
def test_chunking_is_deterministic(data):
    assert lengths(data) == lengths(data)
    assert chunk_digests(data, PARAMS) == chunk_digests(data, PARAMS)


@settings(max_examples=60, deadline=None)
@given(payloads)
def test_chunks_cover_input_exactly(data):
    spans = chunk_spans(data, PARAMS)
    assert sum(length for _, length in spans) == len(data)
    offset = 0
    for start, length in spans:
        assert start == offset
        offset += length


@settings(max_examples=60, deadline=None)
@given(payloads)
def test_chunk_sizes_respect_bounds(data):
    sizes = lengths(data)
    assert all(size <= PARAMS.max_size for size in sizes)
    # every chunk but the (possibly short) final tail honours the floor
    assert all(size >= PARAMS.min_size for size in sizes[:-1])


@settings(max_examples=60, deadline=None)
@given(payloads, st.binary(min_size=0, max_size=4 * 1024))
def test_concatenation_stable_at_chunk_boundaries(prefix, suffix):
    """Splitting the stream at an emitted boundary never changes the chunks:
    the rolling hash resets per chunk, so boundaries are self-synchronising."""
    whole = lengths(prefix + suffix)
    spans = chunk_spans(prefix, PARAMS)
    if not spans:
        return
    # feed the data in two pieces split at the first boundary; the chunk
    # sequence must match the one-shot pass byte for byte
    cut = spans[0][1]
    chunker = Chunker(PARAMS)
    streamed = list(chunker.update((prefix + suffix)[:cut]))
    streamed += list(chunker.update((prefix + suffix)[cut:]))
    tail = chunker.finish()
    if tail is not None:
        streamed.append(tail)
    assert streamed == whole


@settings(max_examples=40, deadline=None)
@given(payloads)
def test_incremental_equals_one_shot_under_any_split(data):
    one_shot = lengths(data)
    for step in (1, 7, 101):
        chunker = Chunker(PARAMS)
        streamed = []
        for start in range(0, len(data), step):
            streamed.extend(chunker.update(data[start:start + step]))
        tail = chunker.finish()
        if tail is not None:
            streamed.append(tail)
        assert streamed == one_shot


@settings(max_examples=40, deadline=None)
@given(payloads)
def test_digests_are_sha1_of_the_spans(data):
    spans = chunk_spans(data, PARAMS)
    digests = chunk_digests(data, PARAMS)
    assert len(digests) == len(spans)
    for (start, length), (digest, size) in zip(spans, digests):
        assert size == length
        assert digest == hashlib.sha1(data[start:start + length]).hexdigest()


def test_shared_suffix_resynchronises():
    """Prepending bytes only disturbs chunking near the edit: a long shared
    suffix converges to identical chunk digests (what makes dedup work)."""
    import random

    rng = random.Random(7)
    shared = bytes(rng.getrandbits(8) for _ in range(8 * 1024))
    a = dict(chunk_digests(b"X" * 37 + shared, PARAMS))
    b = dict(chunk_digests(shared, PARAMS))
    common = set(a) & set(b)
    assert sum(b[d] for d in common) > len(shared) // 2


def test_params_validate_bounds():
    import pytest

    with pytest.raises(ValueError):
        ChunkParams(min_size=0, avg_size=256, max_size=1024)
    with pytest.raises(ValueError):
        ChunkParams(min_size=512, avg_size=256, max_size=1024)
    with pytest.raises(ValueError):
        ChunkParams(min_size=64, avg_size=2048, max_size=1024)
