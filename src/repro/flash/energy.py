"""Flash operation energy model.

Per-operation energies are in joules; derived from public NAND power numbers
(tens of mW during tR, ~100 mW during tPROG per die).  The array-level idle
power covers the standby current of all dies plus the interface PHYs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlashEnergy"]


@dataclass(frozen=True, slots=True)
class FlashEnergy:
    """Energy per flash operation and static power.

    Attributes
    ----------
    e_read:
        Joules per page array-read.
    e_prog:
        Joules per page program.
    e_erase:
        Joules per block erase.
    e_transfer_per_byte:
        Bus/IO energy per byte moved over a channel.
    p_idle_per_die:
        Standby power per die, watts.
    """

    e_read: float = 6e-6
    e_prog: float = 70e-6
    e_erase: float = 250e-6
    e_transfer_per_byte: float = 3e-12  # ~3 pJ/byte interface energy
    p_idle_per_die: float = 5e-3

    def __post_init__(self) -> None:
        for field in ("e_read", "e_prog", "e_erase", "e_transfer_per_byte", "p_idle_per_die"):
            if getattr(self, field) < 0:
                raise ValueError(f"{field} must be non-negative")

    def transfer_energy(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes * self.e_transfer_per_byte

    def idle_power(self, dies: int) -> float:
        """Static power of an array with ``dies`` dies, watts."""
        if dies < 0:
            raise ValueError("dies must be non-negative")
        return dies * self.p_idle_per_die
