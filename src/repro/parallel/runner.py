"""Process-pool experiment runner with a deterministic merge.

:func:`run_jobs` shards a list of :class:`~repro.parallel.jobs.JobSpec`
across ``spawn`` workers and merges the results **in canonical (submission)
order**, never completion order, so scorecards, tables and exit codes are
byte-identical at any worker count.  The scenarios share nothing — each is
rebuilt from its own seed inside a fresh-ID process state — so throughput
grows with workers up to the physical core count, and the content-addressed
:class:`~repro.parallel.cache.ResultCache` skips any job whose code + spec
digest already has a stored result.

Failure policy: workers never raise across the pool boundary; every job
reports, then the runner raises one :class:`JobError` carrying every
traceback (canonical order).  A failed job is never cached.

Per-job telemetry flows through :mod:`repro.obs` when a registry is
passed: ``parallel.jobs.completed`` / ``parallel.jobs.cache_hits`` /
``parallel.jobs.failed`` counters (labelled per job) and the
``parallel.job.wall_seconds`` histogram.

Wall-clock note: this module times the *host* on purpose (per-job wall
seconds for the telemetry above); simulation time never appears here.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.parallel.cache import ResultCache
from repro.parallel.jobs import JobResult, JobSpec, execute_job

__all__ = ["JobError", "RunReport", "run_jobs"]


class JobError(RuntimeError):
    """One or more jobs failed; the message concatenates their tracebacks."""


@dataclass
class RunReport:
    """Everything a caller needs about one runner invocation."""

    results: list[JobResult]
    workers: int
    executed: int
    cache_hits: int
    wall_seconds: float  # whole-run wall time, not the per-job sum

    @property
    def jobs(self) -> int:
        return len(self.results)

    def values(self) -> list:
        return [r.value for r in self.results]

    def digests(self) -> dict[str, str]:
        return {r.name: r.digest for r in self.results}

    def summary(self) -> str:
        """One-line, greppable run summary (the CLI prints it to stderr)."""
        return (
            f"# parallel: jobs={self.jobs}, executed={self.executed}, "
            f"cache hits={self.cache_hits}, workers={self.workers}, "
            f"wall={self.wall_seconds:.2f}s"
        )


@dataclass
class _Instruments:
    registry: MetricsRegistry = field(default=NULL_METRICS)

    def __post_init__(self) -> None:
        self.completed = self.registry.counter(
            "parallel.jobs.completed", "jobs executed (cache misses)"
        )
        self.cache_hits = self.registry.counter(
            "parallel.jobs.cache_hits", "jobs served from the result cache"
        )
        self.failed = self.registry.counter(
            "parallel.jobs.failed", "jobs that raised in a worker"
        )
        self.wall = self.registry.histogram(
            "parallel.job.wall_seconds", "per-job host wall time"
        )
        self.workers = self.registry.gauge(
            "parallel.workers", "configured worker count of the last run"
        )

    def record(self, result: JobResult) -> None:
        if result.error is not None:
            self.failed.inc(job=result.name)
            return
        if result.cached:
            self.cache_hits.inc(job=result.name)
        else:
            self.completed.inc(job=result.name)
        self.wall.observe(result.wall_seconds, job=result.name)


def _ensure_importable_children() -> tuple[str, str | None]:
    """Make sure spawn workers can ``import repro``; returns restore state.

    ``spawn`` re-executes the interpreter, which rebuilds ``sys.path`` from
    ``PYTHONPATH`` — a parent that was pointed at ``src/`` via ``sys.path``
    manipulation (editable installs, test harnesses) would otherwise hatch
    workers that cannot import the package.
    """
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    previous = os.environ.get("PYTHONPATH")
    entries = (previous or "").split(os.pathsep) if previous else []
    if src not in entries:
        os.environ["PYTHONPATH"] = (
            src if not previous else src + os.pathsep + previous
        )
    return src, previous


def _restore_pythonpath(previous: str | None) -> None:
    if previous is None:
        os.environ.pop("PYTHONPATH", None)
    else:
        os.environ["PYTHONPATH"] = previous


def run_jobs(
    specs: Sequence[JobSpec],
    workers: int = 1,
    cache: ResultCache | None = None,
    metrics: MetricsRegistry | None = None,
) -> RunReport:
    """Run every spec; return results in spec order regardless of workers.

    ``workers <= 1`` runs in-process (still hermetically: fresh global IDs
    per job), which is also the reference the parallel path must match.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"job names must be unique, got {names}")
    instruments = _Instruments(metrics if metrics is not None else NULL_METRICS)
    instruments.workers.set(workers)

    start = time.perf_counter()
    results: dict[str, JobResult] = {}
    to_run: list[JobSpec] = []
    for spec in specs:
        hit = cache.load(spec) if cache is not None else None
        if hit is not None:
            results[spec.name] = hit
        else:
            to_run.append(spec)

    if workers <= 1 or len(to_run) <= 1:
        for spec in to_run:
            results[spec.name] = execute_job(spec)
    else:
        by_future = {}
        src, previous = _ensure_importable_children()
        try:
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=min(workers, len(to_run)), mp_context=context
            ) as pool:
                for spec in to_run:
                    by_future[pool.submit(execute_job, spec)] = spec
                pending = set(by_future)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        spec = by_future[future]
                        results[spec.name] = future.result()
        finally:
            _restore_pythonpath(previous)

    executed = 0
    for spec in specs:
        result = results[spec.name]
        instruments.record(result)
        if result.cached or result.error is not None:
            continue
        executed += 1
        if cache is not None:
            cache.store(spec, result)

    ordered = [results[name] for name in names]
    failures = [r.error for r in ordered if r.error is not None]
    if failures:
        raise JobError(
            f"{len(failures)}/{len(ordered)} jobs failed:\n" + "\n".join(failures)
        )
    return RunReport(
        results=ordered,
        workers=workers,
        executed=executed,
        cache_hits=sum(1 for r in ordered if r.cached),
        wall_seconds=time.perf_counter() - start,
    )
