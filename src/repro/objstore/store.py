"""A Kinetic-style key-value object store over the in-storage filesystem.

Objects are identified by keys (not LBAs); values live as files in the
device filesystem under a reserved prefix, with per-object metadata
(version, checksum, user tags).  The API mirrors the Kinetic primitives the
paper cites: ``put`` / ``get`` / ``delete`` / ``get_key_range``, plus
compare-and-swap versioning so concurrent clients don't clobber each other.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Generator

from repro.isos.filesystem import ExtentFileSystem, FsError

__all__ = ["ObjectMeta", "ObjectStore", "ObjectStoreError", "VersionMismatchError"]

#: Filesystem namespace reserved for object payloads / metadata.
OBJECT_PREFIX = "obj."
META_FILE = "objstore.meta"


class ObjectStoreError(Exception):
    """Object-level failure (missing key, bad key, space)."""


class VersionMismatchError(ObjectStoreError):
    """Compare-and-swap failed: the object changed under the caller."""


@dataclass(slots=True)
class ObjectMeta:
    """Metadata carried with every object."""

    key: str
    size: int
    version: int
    sha1: str
    tags: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "key": self.key,
            "size": self.size,
            "version": self.version,
            "sha1": self.sha1,
            "tags": self.tags,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "ObjectMeta":
        return cls(
            key=obj["key"], size=obj["size"], version=obj["version"],
            sha1=obj["sha1"], tags=dict(obj["tags"]),
        )


def _check_key(key: str) -> None:
    if not key or "/" in key or "\x00" in key or len(key) > 128:
        raise ObjectStoreError(f"invalid object key {key!r}")


def _file_for(key: str) -> str:
    return OBJECT_PREFIX + key


class ObjectStore:
    """Key-value objects over an :class:`ExtentFileSystem`."""

    def __init__(self, fs: ExtentFileSystem):
        self.fs = fs
        self.objects: dict[str, ObjectMeta] = {}
        self.puts = 0
        self.gets = 0

    # -- primitives ---------------------------------------------------------
    def put(
        self,
        key: str,
        value: bytes | None,
        size: int | None = None,
        tags: dict[str, str] | None = None,
        expect_version: int | None = None,
    ) -> Generator:
        """Store an object; returns its new :class:`ObjectMeta`.

        ``expect_version`` implements compare-and-swap: the put fails unless
        the current version matches (``0`` = must not exist).
        """
        _check_key(key)
        current = self.objects.get(key)
        if expect_version is not None:
            have = current.version if current else 0
            if have != expect_version:
                raise VersionMismatchError(
                    f"{key!r}: expected version {expect_version}, found {have}"
                )
        if value is not None:
            size = len(value)
        if size is None:
            raise ObjectStoreError("put needs a value or an explicit size")
        try:
            yield from self.fs.write_file(_file_for(key), value, size)
        except FsError as exc:
            raise ObjectStoreError(f"cannot store {key!r}: {exc}") from exc
        sha1 = hashlib.sha1(value).hexdigest() if value is not None else ""
        meta = ObjectMeta(
            key=key,
            size=size,
            version=(current.version + 1) if current else 1,
            sha1=sha1,
            tags=dict(tags or {}),
        )
        self.objects[key] = meta
        self.puts += 1
        return meta

    def get(self, key: str, verify: bool = True) -> Generator:
        """Fetch an object; returns ``(value_or_None, ObjectMeta)``."""
        meta = self._meta(key)
        data = yield from self.fs.read_file(_file_for(key))
        self.gets += 1
        if verify and data is not None and meta.sha1:
            digest = hashlib.sha1(data).hexdigest()
            if digest != meta.sha1:
                raise ObjectStoreError(f"{key!r}: checksum mismatch (corruption?)")
        return data, meta

    def delete(self, key: str, expect_version: int | None = None) -> Generator:
        meta = self._meta(key)
        if expect_version is not None and meta.version != expect_version:
            raise VersionMismatchError(
                f"{key!r}: expected version {expect_version}, found {meta.version}"
            )
        yield from self.fs.delete(_file_for(key))
        del self.objects[key]
        return None

    # -- queries -----------------------------------------------------------
    def _meta(self, key: str) -> ObjectMeta:
        _check_key(key)
        meta = self.objects.get(key)
        if meta is None:
            raise ObjectStoreError(f"no such object: {key!r}")
        return meta

    def head(self, key: str) -> ObjectMeta:
        """Metadata without reading the value."""
        return self._meta(key)

    def exists(self, key: str) -> bool:
        return key in self.objects

    def get_key_range(self, start: str = "", end: str = "\xff", limit: int = 1000) -> list[str]:
        """Kinetic's ordered key-range query."""
        keys = sorted(k for k in self.objects if start <= k <= end)
        return keys[:limit]

    def total_bytes(self) -> int:
        return sum(meta.size for meta in self.objects.values())

    # -- persistence ---------------------------------------------------------
    def persist(self) -> Generator:
        """Write the object index next to the data (survives 'reboot')."""
        blob = json.dumps(
            {"objects": [meta.to_json() for meta in self.objects.values()]}
        ).encode()
        yield from self.fs.write_file(META_FILE, blob)
        yield from self.fs.device.flush()
        return None

    def load(self) -> Generator:
        if not self.fs.exists(META_FILE):
            self.objects = {}
            return None
        blob = yield from self.fs.read_file(META_FILE)
        if blob is None:
            raise ObjectStoreError("cannot load object index from analytic device")
        table = json.loads(blob.decode())
        self.objects = {
            obj["key"]: ObjectMeta.from_json(obj) for obj in table["objects"]
        }
        return None
