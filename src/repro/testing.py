"""Hermetic-run helpers for tests and reproducibility tooling.

The model keeps a few process-global ID allocators (minion/query IDs,
PIDs, NVMe CIDs) whose values end up in trace payloads and responses.
They make IDs unique across every simulator in a process, but they also
make a scenario's observable output depend on what ran *earlier* in the
process — which breaks digest-style comparisons across runs.

:func:`reset_global_ids` restores fresh-process allocation state.  The
test suite applies it before every test (``tests/conftest.py``), and the
golden-schedule scenarios call it directly so their digests are a pure
function of ``(seed, model)`` no matter who runs them.
"""

from __future__ import annotations

__all__ = ["reset_global_ids"]


def reset_global_ids() -> None:
    """Restart every process-global ID allocator (fresh-process state)."""
    from repro.isos import process as isos_process
    from repro.nvme import commands as nvme_commands
    from repro.proto import entities

    entities.reset_ids()
    isos_process.reset_ids()
    nvme_commands.reset_ids()
