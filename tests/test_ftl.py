"""Integration tests for the flash translation layer."""

import pytest

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry, FlashTiming
from repro.ftl import FlashTranslationLayer, FtlConfig, LogicalIOError
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=6, pages_per_block=8,
    page_size=2048,
)


def make_ftl(sim=None, geometry=GEO, config=None, rber0=1e-9, **flash_kw):
    sim = sim or Simulator()
    flash = FlashArray(sim, geometry=geometry, error_model=BitErrorModel(rber0=rber0), **flash_kw)
    layout = CodewordLayout(data_bytes=min(2048, geometry.page_size))
    ecc = EccEngine(sim, EccConfig(layout=layout))
    ftl = FlashTranslationLayer(sim, flash, ecc, config=config)
    return sim, ftl


def drive(sim, gen):
    return sim.run(sim.process(gen))


def test_write_read_roundtrip():
    sim, ftl = make_ftl()

    def flow():
        yield from ftl.write(0, b"alpha")
        yield from ftl.flush()
        data = yield from ftl.read(0)
        return data

    assert drive(sim, flow()) == b"alpha"


def test_read_unwritten_page_returns_none():
    sim, ftl = make_ftl()

    def flow():
        return (yield from ftl.read(5))

    assert drive(sim, flow()) is None


def test_buffered_read_hit_before_flush():
    sim, ftl = make_ftl()

    def flow():
        yield from ftl.write(1, b"buffered")
        data = yield from ftl.read(1)
        return data

    assert drive(sim, flow()) == b"buffered"
    assert ftl.buffer_read_hits == 1


def test_fast_release_hides_program_latency():
    """A buffered write completes far faster than a flash program."""
    sim, ftl = make_ftl()
    timing = ftl.flash.timing

    def flow():
        t0 = sim.now
        yield from ftl.write(0, b"quick")
        return sim.now - t0

    elapsed = drive(sim, flow())
    assert elapsed < timing.t_prog / 10


def test_overwrite_returns_latest():
    sim, ftl = make_ftl()

    def flow():
        yield from ftl.write(2, b"old")
        yield from ftl.flush()
        yield from ftl.write(2, b"new")
        yield from ftl.flush()
        return (yield from ftl.read(2))

    assert drive(sim, flow()) == b"new"
    # old copy invalidated
    assert ftl.page_map.mapped_logical_pages() == 1


def test_trim_unmaps_and_reads_none():
    sim, ftl = make_ftl()

    def flow():
        yield from ftl.write(3, b"gone soon")
        yield from ftl.flush()
        yield from ftl.trim([3])
        return (yield from ftl.read(3))

    assert drive(sim, flow()) is None
    assert ftl.trims == 1


def test_trim_races_inflight_destage_without_resurrection():
    """Trim issued while the destage is in flight must not be undone by the
    destage's map bind completing afterwards."""
    sim, ftl = make_ftl()

    def flow():
        yield from ftl.write(4, b"never lands")
        yield from ftl.trim([4])
        yield from ftl.flush()
        return (yield from ftl.read(4))

    assert drive(sim, flow()) is None
    assert not ftl.page_map.is_mapped(4)


def test_out_of_range_lpn_rejected():
    sim, ftl = make_ftl()
    with pytest.raises(ValueError):
        drive(sim, ftl.read(ftl.logical_pages))

    sim2, ftl2 = make_ftl()
    with pytest.raises(ValueError):
        drive(sim2, ftl2.write(-1, b"x"))


def test_oversized_write_rejected():
    sim, ftl = make_ftl()
    with pytest.raises(ValueError, match="exceeds page size"):
        drive(sim, ftl.write(0, b"z" * (GEO.page_size + 1)))


def test_logical_capacity_respects_overprovisioning():
    _, ftl = make_ftl(config=FtlConfig(op_ratio=0.25))
    assert ftl.logical_pages == int(GEO.pages * 0.75)


def test_gc_reclaims_space_under_overwrite_churn():
    """Overwriting a small working set far beyond physical capacity must
    trigger GC and keep the device writable."""
    sim, ftl = make_ftl(config=FtlConfig(op_ratio=0.25, write_buffer_pages=4))
    working_set = 16
    rounds = 20  # 320 page writes >> 96 physical pages

    def flow():
        for r in range(rounds):
            for lpn in range(working_set):
                yield from ftl.write(lpn, f"r{r}-p{lpn}".encode())
        yield from ftl.flush()
        datas = []
        for lpn in range(working_set):
            datas.append((yield from ftl.read(lpn)))
        return datas

    datas = drive(sim, flow())
    assert datas == [f"r{rounds-1}-p{lpn}".encode() for lpn in range(working_set)]
    assert ftl.gc.collections > 0
    assert ftl.write_amplification() >= 1.0
    ftl.page_map.check_invariants()


def test_write_amplification_reported():
    sim, ftl = make_ftl(config=FtlConfig(op_ratio=0.25, write_buffer_pages=2))

    def flow():
        for r in range(30):
            for lpn in range(8):
                yield from ftl.write(lpn, b"churn")
        yield from ftl.flush()

    drive(sim, flow())
    wa = ftl.write_amplification()
    assert 1.0 <= wa < 3.0  # relocations cost something but stay bounded


def test_sustained_overwrite_at_full_logical_capacity():
    """Filling every logical page and then overwriting them all must never
    deadlock: the GC reserve guarantees the collector can always relocate."""
    geometry = FlashGeometry(
        channels=1, dies_per_channel=1, planes_per_die=1, blocks_per_plane=8,
        pages_per_block=4, page_size=512,
    )
    sim, ftl = make_ftl(
        geometry=geometry,
        config=FtlConfig(op_ratio=0.3, write_buffer_pages=1, gc_low_watermark=1,
                         gc_high_watermark=2),
    )

    def flow():
        for lpn in range(ftl.logical_pages):
            yield from ftl.write(lpn, b"fill")
        yield from ftl.flush()
        # churn within logical capacity must still work
        for r in range(3):
            for lpn in range(ftl.logical_pages):
                yield from ftl.write(lpn, f"more{r}".encode())
        yield from ftl.flush()
        return (yield from ftl.read(0))

    assert drive(sim, flow()) == b"more2"
    assert ftl.gc.collections > 0
    ftl.page_map.check_invariants()


def test_thin_overprovisioning_rejected_at_construction():
    geometry = FlashGeometry(
        channels=1, dies_per_channel=1, planes_per_die=1, blocks_per_plane=4,
        pages_per_block=4, page_size=512,
    )
    with pytest.raises(ValueError, match="slack"):
        make_ftl(geometry=geometry, config=FtlConfig(op_ratio=0.2))


def test_uncorrectable_read_surfaces_as_io_error():
    sim, ftl = make_ftl(rber0=0.4)  # hopeless media

    def flow():
        yield from ftl.write(0, b"doomed")
        yield from ftl.flush()
        yield from ftl.read(0)

    with pytest.raises(LogicalIOError, match="uncorrectable"):
        drive(sim, flow())
    # note: GC relocation of such media would also fail; stats must record it
    assert ftl.uncorrectable_reads >= 1


def test_concurrent_writers_no_protocol_violation():
    """Many parallel writers exercise the per-(stream,die) ordering locks."""
    sim, ftl = make_ftl()
    n = 32

    def writer(lpn):
        yield from ftl.write(lpn, f"w{lpn}".encode())

    def flow():
        procs = [sim.process(writer(i)) for i in range(n)]
        yield sim.all_of(procs)
        yield from ftl.flush()
        values = []
        for i in range(n):
            values.append((yield from ftl.read(i)))
        return values

    values = drive(sim, flow())
    assert values == [f"w{i}".encode() for i in range(n)]
    ftl.page_map.check_invariants()


def test_gc_policy_validation():
    with pytest.raises(ValueError, match="unknown gc_policy"):
        FtlConfig(gc_policy="mystery")
    with pytest.raises(ValueError):
        FtlConfig(op_ratio=0.0)


def test_stats_snapshot_keys():
    sim, ftl = make_ftl()

    def flow():
        yield from ftl.write(0, b"x")
        yield from ftl.flush()
        yield from ftl.read(0)

    drive(sim, flow())
    stats = ftl.stats()
    assert stats["host_writes"] == 1
    assert stats["host_reads"] == 1
    assert stats["host_pages_programmed"] == 1
    assert stats["write_amplification"] == 1.0


def test_read_cache_hits_and_latency():
    sim, ftl = make_ftl(config=FtlConfig(read_cache_pages=8))

    def flow():
        yield from ftl.write(0, b"cacheable")
        yield from ftl.flush()
        t0 = sim.now
        yield from ftl.read(0)  # miss: flash
        miss_time = sim.now - t0
        t0 = sim.now
        yield from ftl.read(0)  # hit: DRAM
        hit_time = sim.now - t0
        return miss_time, hit_time

    miss_time, hit_time = drive(sim, flow())
    assert ftl.read_cache_hits == 1
    assert hit_time < miss_time / 10


def test_read_cache_invalidated_by_write():
    sim, ftl = make_ftl(config=FtlConfig(read_cache_pages=8))

    def flow():
        yield from ftl.write(0, b"old")
        yield from ftl.flush()
        yield from ftl.read(0)  # populate cache
        yield from ftl.write(0, b"new")
        yield from ftl.flush()
        return (yield from ftl.read(0))

    assert drive(sim, flow()) == b"new"


def test_read_cache_invalidated_by_trim():
    sim, ftl = make_ftl(config=FtlConfig(read_cache_pages=8))

    def flow():
        yield from ftl.write(0, b"gone")
        yield from ftl.flush()
        yield from ftl.read(0)
        yield from ftl.trim([0])
        return (yield from ftl.read(0))

    assert drive(sim, flow()) is None


def test_read_cache_lru_eviction():
    sim, ftl = make_ftl(config=FtlConfig(read_cache_pages=2))

    def flow():
        for lpn in range(3):
            yield from ftl.write(lpn, f"p{lpn}".encode())
        yield from ftl.flush()
        for lpn in range(3):
            yield from ftl.read(lpn)  # 0 evicted when 2 arrives
        hits_before = ftl.read_cache_hits
        yield from ftl.read(0)  # miss again (evicted)
        yield from ftl.read(2)  # hit (still resident)
        return hits_before

    hits_before = drive(sim, flow())
    assert ftl.read_cache_hits == hits_before + 1
    assert len(ftl._read_cache) <= 2


def test_read_cache_disabled_by_default():
    sim, ftl = make_ftl()

    def flow():
        yield from ftl.write(0, b"x")
        yield from ftl.flush()
        yield from ftl.read(0)
        yield from ftl.read(0)

    drive(sim, flow())
    assert ftl.read_cache_hits == 0
    assert len(ftl._read_cache) == 0


def test_static_wear_leveling_bounds_pe_spread():
    """wl_delta forces cold blocks back into rotation under skewed writes."""
    from repro.workloads import hot_cold

    sim, ftl = make_ftl(config=FtlConfig(op_ratio=0.25, wl_delta=6, write_buffer_pages=8))
    rng = sim.rng("wl-test")
    logical = ftl.logical_pages

    def churn():
        for lpn in range(logical):
            yield from ftl.write(lpn, None)
        for lpn in hot_cold(rng, logical, 6000, hot_fraction=0.1, hot_probability=0.95):
            yield from ftl.write(int(lpn), None)
        yield from ftl.flush()

    drive(sim, churn())
    low, high, _ = ftl.allocator.wear_spread()
    assert ftl.gc.wl_migrations > 0
    assert high - low <= 6 + 4  # threshold plus in-flight slack
    ftl.page_map.check_invariants()
