"""Database-style selection/aggregation pushdown.

The paper's related work (Do et al., SIGMOD'13) offloads "a selection and
aggregation query" to a smart SSD — with significant porting effort.  On
CompStor the same query is just another executable.  ``selectq`` runs a
``SELECT``-with-``WHERE``-and-aggregate over a CSV file::

    selectq WHERE_COL OP VALUE AGG_COL FILE

e.g. ``selectq 2 gt 100 3 sales.csv`` streams ``sales.csv``, keeps rows
whose column 2 (0-based) is greater than 100, and returns the row count,
plus sum/min/max of column 3 — a few dozen bytes of result for gigabytes of
table, the canonical pushdown win.
"""

from __future__ import annotations

from typing import Generator

from repro.analysis.calibration import ARM_ISA, CYCLES_PER_BYTE, XEON_ISA
from repro.apps.base import StreamingApp, UsageError
from repro.isos.loader import ExecContext, ExitStatus

__all__ = ["SelectQueryApp"]

# CSV parsing + predicate evaluation is heavier than grep, lighter than gzip
CYCLES_PER_BYTE.setdefault("selectq", {XEON_ISA: 45.0, ARM_ISA: 120.0})

_OPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


class SelectQueryApp(StreamingApp):
    """``selectq WHERE_COL OP VALUE AGG_COL FILE``."""

    name = "selectq"

    def input_file(self, ctx: ExecContext) -> str:
        if len(ctx.args) != 5:
            raise UsageError("selectq: usage: selectq WHERE_COL OP VALUE AGG_COL FILE")
        return ctx.args[4]

    def begin(self, ctx: ExecContext) -> None:
        try:
            self.where_col = int(ctx.args[0])
            self.op = _OPS[ctx.args[1]]
            self.value = float(ctx.args[2])
            self.agg_col = int(ctx.args[3])
        except (ValueError, KeyError, IndexError) as exc:
            raise UsageError(f"selectq: bad arguments: {exc}") from exc
        if self.where_col < 0 or self.agg_col < 0:
            raise UsageError("selectq: column indexes must be non-negative")
        self._carry = b""
        self._analytic = False
        self.rows_seen = 0
        self.rows_selected = 0
        self.malformed = 0
        self.agg_sum = 0.0
        self.agg_min = float("inf")
        self.agg_max = float("-inf")

    def run(self, ctx: ExecContext) -> Generator:
        try:
            status = yield from super().run(ctx)
        except UsageError as exc:
            return ExitStatus(code=2, stdout=str(exc).encode())
        return status

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        lines = (self._carry + chunk).split(b"\n")
        self._carry = lines.pop()
        for line in lines:
            self._row(line)

    def _row(self, line: bytes) -> None:
        if not line.strip():
            return
        self.rows_seen += 1
        fields = line.split(b",")
        try:
            probe = float(fields[self.where_col])
            agg = float(fields[self.agg_col])
        except (IndexError, ValueError):
            self.malformed += 1
            return
        if self.op(probe, self.value):
            self.rows_selected += 1
            self.agg_sum += agg
            self.agg_min = min(self.agg_min, agg)
            self.agg_max = max(self.agg_max, agg)

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        if self._carry:
            self._row(self._carry)
        if self._analytic:
            return ExitStatus(code=0, stdout=b"",
                              detail={"bytes_scanned": total_bytes, "analytic": True})
        if self.rows_selected:
            out = (f"count={self.rows_selected} sum={self.agg_sum:.6g} "
                   f"min={self.agg_min:.6g} max={self.agg_max:.6g}")
        else:
            out = "count=0"
        return ExitStatus(
            code=0,
            stdout=out.encode(),
            detail={
                "rows_seen": self.rows_seen,
                "rows_selected": self.rows_selected,
                "malformed": self.malformed,
                "sum": self.agg_sum if self.rows_selected else 0.0,
                "bytes_scanned": total_bytes,
            },
        )
        yield  # pragma: no cover - generator protocol
