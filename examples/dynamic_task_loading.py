#!/usr/bin/env python3
"""Dynamic task loading + telemetry-driven load balancing.

The two capabilities Table I credits uniquely to CompStor's in-storage OS:

1. a brand-new analytics executable (a top-k word-frequency scanner that no
   device shipped with) is pushed to every running drive via ISC_LOAD and
   used immediately — no firmware rebuild, no FPGA synthesis;
2. a burst of tasks is placed by querying each device's ARM-core telemetry
   and picking the least-loaded drive, versus blind round-robin.

Run:  python examples/dynamic_task_loading.py
"""

from collections import Counter

from repro.analysis.calibration import CYCLES_PER_BYTE
from repro.cluster import (
    LeastLoadedBalancer,
    MinionDispatcher,
    RoundRobinBalancer,
    StorageNode,
)
from repro.isos.loader import ExitStatus
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec

# The new app must have a cycle calibration before devices will run it —
# in the real system this is the ARM cross-compile step.
CYCLES_PER_BYTE.setdefault("wordfreq", {"xeon": 20.0, "arm-a53": 55.0})


class WordFreqApp:
    """``wordfreq K FILE`` — top-K most frequent words."""

    name = "wordfreq"

    def run(self, ctx):
        from repro.apps.base import charge

        k = int(ctx.args[0])
        path = ctx.args[1]
        counts: Counter = Counter()
        stream = ctx.stream_pages(path)
        carry = b""
        while not stream.exhausted:
            chunk, take = yield from stream.next_page()
            yield from charge(ctx, self.name, take)
            if chunk is None:
                continue
            words = (carry + chunk).split()
            carry = words.pop() if chunk and not chunk.endswith((b" ", b"\n")) else b""
            counts.update(words)
        if carry:
            counts.update([carry])
        top = ", ".join(f"{w.decode()}:{n}" for w, n in counts.most_common(k))
        return ExitStatus(code=0, stdout=top.encode(), detail={"unique": len(counts)})


def main() -> None:
    node = StorageNode.build(devices=3, device_capacity=32 * 1024 * 1024)
    sim = node.sim
    books = BookCorpus(CorpusSpec(files=6, mean_file_bytes=64 * 1024)).generate()
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))
    placement = node.device_books(books)

    # one replicated file so load-balanced tasks are placeable anywhere
    def replicate_shared():
        for ssd in node.compstors:
            yield from ssd.fs.write_file("shared.txt", books[0].plain)

    sim.run(sim.process(replicate_shared()))

    def session():
        # -- 1. dynamic task loading -------------------------------------
        installed = yield from node.client.query(
            "compstor0", __import__("repro.proto", fromlist=["QueryKind"]).QueryKind.LIST_EXECUTABLES
        )
        assert "wordfreq" not in installed
        print(f"devices boot with {len(installed)} standard executables; "
              "pushing 'wordfreq' at runtime...")
        yield from node.client.load_executable_everywhere(WordFreqApp())

        responses = yield from node.client.gather([
            (device, Command(command_line=f"wordfreq 3 {part[0].name}"))
            for device, part in placement.items()
        ])
        for device, response in zip(placement, responses):
            print(f"   {device}: top words -> {response.stdout.decode()}")

        # -- 2. telemetry-driven load balancing ----------------------------
        print("\nplacing 9 replicated scans, round-robin vs least-loaded,")
        print("while compstor0 is busy with a long compression job:")
        hog = sim.process(
            node.client.run("compstor0", f"bzip2 {placement['compstor0'][0].name}")
        )
        yield sim.timeout(2e-3)

        for balancer in (RoundRobinBalancer(), LeastLoadedBalancer()):
            dispatcher = MinionDispatcher(node.client, balancer)
            start = sim.now
            responses = yield from dispatcher.submit_all(
                [Command(command_line="wordfreq 1 shared.txt") for _ in range(9)]
            )
            assert all(r.ok for r in responses)
            share = dispatcher.device_share()
            print(f"   {balancer.name:13s}: {sim.now - start:8.4f} s, "
                  f"placement {dict(sorted(share.items()))}")
        yield hog

    sim.run(sim.process(session()))


if __name__ == "__main__":
    main()
