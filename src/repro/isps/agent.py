"""The ISPS agent daemon.

"A daemon running on CompStor which is responsible for receiving minions
from clients and spawning in-storage processes based on the command inside
the received minions.  The daemon populates the response fields of the
minion and sends it back to the client after task completion."

The agent registers itself as the NVMe controller's ISC handler, so minions
and queries arrive through the same wire as storage traffic — but execute on
the ISPS's own cores.  Each NVMe worker invocation runs independently, so
several concurrent minions naturally share the quad-A53 through the OS
scheduler.

Trace kinds emitted per minion reproduce the paper's Table III lifetime:
``minion.received`` (step 2), ``minion.spawned`` (2), the driver's flash
traffic (3-4), ``minion.tracked`` (5), ``minion.responded`` (6).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.faults.state import FAULT_CAUSE_PREFIX, AgentUnavailable
from repro.isos.process import ProcessState
from repro.isps.subsystem import InSituProcessingSubsystem
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.spans import Span, continue_trace
from repro.sim.core import Interrupt
from repro.isps.telemetry import TelemetrySnapshot
from repro.nvme.commands import Opcode
from repro.proto.entities import Minion, Query, QueryKind, Response, ResponseStatus
from repro.sim import Simulator, Tracer
from repro.sim.trace import NULL_TRACER

__all__ = ["IspsAgent"]


class IspsAgent:
    """Receives minions/queries, spawns processes, returns responses."""

    def __init__(
        self,
        sim: Simulator,
        isps: InSituProcessingSubsystem,
        device_name: str = "compstor",
        tracer: Tracer | None = None,
        track_interval: float = 10e-3,
        metrics: MetricsRegistry | None = None,
    ):
        self.sim = sim
        self.isps = isps
        self.device_name = device_name
        self._component = f"{device_name}.agent"
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.track_interval = track_interval
        self.minions_served = 0
        self.queries_served = 0
        self.active_minions = 0
        self.watchdog_kills = 0
        self.minions_aborted = 0
        #: Fault hook (``repro.faults.AgentFaultState``), installed lazily
        #: by a FaultInjector; ``None`` costs one attribute test per dispatch.
        self.faults = None
        self.metrics = metrics if metrics is not None else NULL_METRICS
        m = self.metrics
        self._m_minions = m.counter(
            "isps.minions", "minions served by the agent, by response status"
        )
        self._m_queue_wait = m.histogram(
            "isps.minion.queue_wait_seconds",
            "client-send to in-situ execution start (transport + agent queueing)",
        )
        self._m_exec = m.histogram(
            "isps.minion.exec_seconds", "in-situ execution time per minion"
        )
        self._m_active = m.gauge(
            "isps.minions.active", "minions currently executing on the device"
        )
        self._m_watchdog = m.counter(
            "isps.watchdog.kills", "runaway minions killed by the agent watchdog"
        )
        self._m_queries = m.counter("isps.queries", "admin queries served, by kind")

    # -- NVMe ISC dispatch ---------------------------------------------------
    def handle(self, opcode: Opcode, body: Any) -> Generator:
        """Entry point registered with :meth:`NvmeController.register_isc_handler`."""
        if self.faults is not None and self.faults.down:
            # daemon dead: the controller converts this into ISC_AGENT_DOWN
            raise AgentUnavailable(f"{self.device_name}: agent daemon is down")
        if opcode == Opcode.ISC_MINION:
            if not isinstance(body, Minion):
                raise TypeError(f"ISC_MINION payload must be a Minion, got {type(body)}")
            result = yield from self._serve_minion(body)
            return result
        if opcode == Opcode.ISC_QUERY:
            if not isinstance(body, Query):
                raise TypeError(f"ISC_QUERY payload must be a Query, got {type(body)}")
            result = yield from self._serve_query(body)
            return result
        if opcode == Opcode.ISC_LOAD:
            result = yield from self._serve_load(body)
            return result
        raise ValueError(f"agent cannot handle opcode {opcode!r}")

    # -- minions -----------------------------------------------------------
    def _serve_minion(self, minion: Minion) -> Generator:
        command = minion.command
        component = self._component
        # Observability hooks cost one attribute check each when off (the
        # default for large sweeps); all emit/metric calls sit behind them.
        traced = self.tracer.enabled
        observed = self.metrics.enabled
        # Table III steps 2-6 live under one agent span when the minion
        # carries a span context (its parent is the NVMe transport hop).
        span = None
        if minion.span is not None and traced:
            span = continue_trace(
                self.tracer, self.sim, "agent.execute", component, minion.span
            )
            span.event("minion.received", minion=minion.minion_id)
        if traced:
            self.tracer.emit(
                self.sim.now, component, "minion.received",
                minion=minion.minion_id, command=command.command_line or "<script>",
            )
        self.active_minions += 1
        started = self.sim.now
        if observed:
            self._m_active.set(self.active_minions, device=self.device_name)
            self._m_queue_wait.observe(
                started - minion.created_at, device=self.device_name
            )
        try:
            response = yield from self._execute(minion, span)
        finally:
            self.active_minions -= 1
            if observed:
                self._m_active.set(self.active_minions, device=self.device_name)
        response.execution_seconds = self.sim.now - started
        response.device = self.device_name
        minion.response = response
        minion.completed_at = self.sim.now
        self.minions_served += 1
        if observed:
            self._m_minions.inc(device=self.device_name, status=response.status.value)
            self._m_exec.observe(response.execution_seconds, device=self.device_name)
        if traced:
            self.tracer.emit(
                self.sim.now, component, "minion.responded",
                minion=minion.minion_id, status=response.status.value,
            )
        if span is not None:
            span.event(
                "minion.responded", minion=minion.minion_id,
                status=response.status.value,
            )
            span.end()
        return minion

    def _execute(self, minion: Minion, span: Span | None = None) -> Generator:
        command = minion.command
        os_ = self.isps.os
        # validate the data contract before spawning
        missing = [f for f in command.input_files if not os_.fs.exists(f)]
        if missing:
            return Response(
                status=ResponseStatus.REJECTED,
                exit_code=-1,
                stdout=f"missing input files: {missing}".encode(),
            )
        exec_span = None
        try:
            if command.script:
                process = None
                if span is not None:
                    exec_span = span.child("exec.script")
                results = yield from self._run_script_tracked(command)
                status = results[-1][1] if results else None
                exit_code = status.code if status else -1
                stdout = status.stdout if status else b""
                detail = dict(status.detail) if status else {}
                detail["script_steps"] = len(results)
            else:
                process = os_.spawn(command.command_line, priority=command.priority)
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.sim.now, self._component, "minion.spawned",
                        minion=minion.minion_id, pid=process.pid,
                    )
                if span is not None:
                    # Table III steps 3-4 (driver + flash traffic) happen
                    # inside this window; the span-tree builder adopts the
                    # flash trace records into it.
                    exec_span = span.child("exec.process")
                    exec_span.event(
                        "minion.spawned", minion=minion.minion_id, pid=process.pid
                    )
                self.sim.process(
                    self._track(minion, process, span), name="agent.tracker"
                )
                if command.timeout_seconds > 0:
                    self.sim.process(
                        self._watchdog(process, command.timeout_seconds),
                        name="agent.watchdog",
                    )
                status = yield from os_.wait(process)
                exit_code = status.code
                stdout = status.stdout
                detail = dict(status.detail)
        except KeyError as exc:
            return Response(
                status=ResponseStatus.REJECTED, exit_code=-1, stdout=str(exc).encode()
            )
        except Interrupt as exc:
            cause = str(exc.cause or "")
            if cause.startswith(FAULT_CAUSE_PREFIX):
                # infrastructure death (device/agent crash), not a verdict on
                # the minion itself — retryable, unlike the watchdog kill
                self.minions_aborted += 1
                return Response(
                    status=ResponseStatus.ABORTED, exit_code=-1, stdout=cause.encode()
                )
            return Response(
                status=ResponseStatus.TIMEOUT,
                exit_code=-1,
                stdout=f"killed after {command.timeout_seconds}s".encode(),
            )
        except Exception as exc:  # executable crashed
            return Response(
                status=ResponseStatus.CRASHED, exit_code=-1, stdout=repr(exc).encode()
            )
        finally:
            if exec_span is not None:
                exec_span.end()
        status_kind = ResponseStatus.OK if exit_code == 0 else ResponseStatus.APP_ERROR
        return Response(
            status=status_kind, exit_code=exit_code, stdout=stdout, detail=detail
        )

    def _run_script_tracked(self, command) -> Generator:
        results = yield from self.isps.os.run_script(command.script, priority=command.priority)
        return results

    def _watchdog(self, process, timeout_seconds: float) -> Generator:
        """Kill a runaway task: SIGKILL as an interrupt into its process."""
        yield self.sim.timeout(timeout_seconds)
        if process.state == ProcessState.RUNNING:
            process.sim_process.interrupt("agent watchdog timeout")
            self.watchdog_kills += 1
            self._m_watchdog.inc(device=self.device_name)
        return None

    def _track(self, minion: Minion, process, span: Span | None = None) -> Generator:
        """Step 5 of Table III: the agent keeps track of in-situ status."""
        while process.state == ProcessState.RUNNING:
            if self.tracer.enabled or span is not None:
                # utilization() is a pure read — skip the arithmetic when
                # nobody records the sample (the poll timeout still runs,
                # keeping the event schedule identical either way)
                utilization = self.isps.cluster.utilization()
                self.tracer.emit(
                    self.sim.now, self._component, "minion.tracked",
                    minion=minion.minion_id, pid=process.pid,
                    utilization=utilization,
                )
                if span is not None:
                    span.event(
                        "minion.tracked", minion=minion.minion_id, pid=process.pid,
                        utilization=utilization,
                    )
            yield self.sim.timeout(self.track_interval)
        return None

    # -- queries -----------------------------------------------------------
    def _serve_query(self, query: Query) -> Generator:
        yield self.sim.timeout(50e-6)  # agent wakeup + admin handling
        if query.kind == QueryKind.STATUS:
            query.reply = self.telemetry()
        elif query.kind == QueryKind.LIST_EXECUTABLES:
            query.reply = self.isps.os.registry.installed()
        elif query.kind == QueryKind.LIST_FILES:
            query.reply = self.isps.os.fs.listdir()
        elif query.kind == QueryKind.PING:
            query.reply = "pong"
        elif query.kind == QueryKind.LOAD_EXECUTABLE:
            self.isps.os.install_executable(query.payload)
            query.reply = f"loaded {query.payload.name}"
        else:  # pragma: no cover - exhaustive over QueryKind
            raise ValueError(f"unknown query kind {query.kind}")
        self.queries_served += 1
        self._m_queries.inc(device=self.device_name, kind=query.kind.value)
        return query

    def _serve_load(self, executable) -> Generator:
        yield self.sim.timeout(200e-6)  # image transfer/installation overhead
        self.isps.os.install_executable(executable)
        self.queries_served += 1
        return f"loaded {executable.name}"

    def telemetry(self) -> TelemetrySnapshot:
        os_ = self.isps.os
        return TelemetrySnapshot(
            device=self.device_name,
            time=self.sim.now,
            core_utilization=os_.utilization(),
            temperature_c=os_.temperature_c(),
            running_processes=os_.running_processes(),
            active_minions=self.active_minions,
            uptime=os_.uptime(),
            free_bytes=os_.fs.free_bytes,
            watchdog_kills=self.watchdog_kills,
            minions_aborted=self.minions_aborted,
            agent_restarts=self.faults.restarts if self.faults is not None else 0,
        )
