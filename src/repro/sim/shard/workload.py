"""Host-side workloads for sharded runs.

Two drivers, mirroring the two fleet-level experiment families:

- :class:`JobDrill` — the batch analytics job (``fleet.run_job`` shape):
  every staged book gets one minion per app, dispatched concurrently with
  replica-chain failover, followed by a fleet-wide telemetry sweep;
- :class:`TrafficDrill` — the open-loop multi-tenant service frontend
  (``service.frontend`` shape): a seeded arrival stream, a bounded FIFO
  admission queue, ``concurrency`` dispatch workers, per-class exact
  latency percentiles and SLO grades.

Both run entirely on the :class:`~repro.sim.shard.host.HostDomain`
simulator and reach devices only through ``host.call`` — which is what
makes their scorecards a pure function of the scenario, independent of
shard grouping or backend.  Scorecards are plain JSON-able dicts so the
equivalence suite can digest them with ``payload_digest``.
"""

from __future__ import annotations

import hashlib
import zlib
from collections import Counter, deque
from dataclasses import dataclass, field
from math import ceil
from typing import Generator, Sequence

from repro.config.schema import ScenarioConfig, ServiceConfig
from repro.sim.core import SimulationError
from repro.sim.shard.host import HostDomain

__all__ = ["JobDrill", "ShardTopology", "TrafficDrill", "build_topology"]


# ---------------------------------------------------------------------------
# placement
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class ShardTopology:
    """Book placement over the device ring, mirrored from the fleet layer.

    ``placement[i]`` holds ring position *i*'s primary books; ``chains``
    maps each book name to its replica chain (primary-first ring indices);
    ``staged[i]`` is everything cell *i* must write at staging time —
    primaries first, then replica copies in ring order of their primaries.
    """

    ring: list[tuple[int, str]]
    placement: dict[int, list]
    chains: dict[str, list[int]]
    staged: dict[int, list] = field(default_factory=dict)


def build_topology(config: ScenarioConfig, books: Sequence) -> ShardTopology:
    """Round-robin books over nodes, then over each node's devices —
    exactly the fleet's ``placement()`` — and derive replica chains of
    ``fleet.replicas`` consecutive ring entries."""
    from repro.workloads import partition_round_robin

    fleet = config.fleet
    ring = [
        (node, f"compstor{dev}")
        for node in range(fleet.nodes)
        for dev in range(fleet.devices_per_node)
    ]
    if fleet.replicas > len(ring):
        raise ValueError(
            f"replicas={fleet.replicas} exceeds ring size {len(ring)}"
        )
    placement: dict[int, list] = {}
    for node, node_books in enumerate(partition_round_robin(list(books), fleet.nodes)):
        for dev, dev_books in enumerate(
            partition_round_robin(node_books, fleet.devices_per_node)
        ):
            placement[node * fleet.devices_per_node + dev] = dev_books
    chains: dict[str, list[int]] = {}
    staged = {i: list(placement[i]) for i in range(len(ring))}
    for i in range(len(ring)):
        chain = [(i + j) % len(ring) for j in range(fleet.replicas)]
        for book in placement[i]:
            chains[book.name] = chain
        for j in chain[1:]:
            staged[j].extend(placement[i])
    return ShardTopology(ring=ring, placement=placement, chains=chains, staged=staged)


def _command_line(app: str, book_name: str) -> str:
    # grep/gawk take a pattern argument; the fixture corpus seeds
    # "xylophone" needles, matching the fleet experiments.
    if app in ("grep", "gawk"):
        return f"{app} xylophone {book_name}"
    return f"{app} {book_name}"


def _percentile(sorted_values: list[float], q: float) -> float | None:
    """Exact (nearest-rank) percentile of an already-sorted list."""
    if not sorted_values:
        return None
    index = max(0, ceil(q * len(sorted_values)) - 1)
    return round(sorted_values[index], 6)


# ---------------------------------------------------------------------------
# batch jobs
# ---------------------------------------------------------------------------


class JobDrill:
    """One minion per (app, book) with replica-chain failover."""

    def __init__(
        self,
        host: HostDomain,
        topology: ShardTopology,
        apps: Sequence[str],
        base: float,
    ):
        self.host = host
        self.topology = topology
        self.apps = tuple(apps)
        self.base = base
        self._scorecard: dict | None = None

    def start(self) -> None:
        self.host.sim.process(self._drive(), name="job-drill")

    def scorecard(self) -> dict:
        if self._scorecard is None:
            raise SimulationError("job drill did not run to completion")
        return self._scorecard

    def _serve_book(self, app: str, book_name: str) -> Generator:
        chain = self.topology.chains[book_name]
        line = _command_line(app, book_name)
        for hops, ring_index in enumerate(chain):
            result = yield from self.host.call(
                f"cell{ring_index}", "minion", {"command_line": line}
            )
            if "error" not in result:
                return {"book": book_name, "hops": hops, "result": result}
        return {"book": book_name, "hops": len(chain), "result": None}

    def _drive(self) -> Generator:
        from repro.testing import canonical_value

        sim = self.host.sim
        if self.base > sim.now:
            yield sim.timeout(self.base - sim.now)
        ring_size = len(self.topology.ring)
        apps_report: dict[str, dict] = {}
        totals = Counter()
        for app in self.apps:
            procs = [
                sim.process(
                    self._serve_book(app, book.name), name=f"job.{app}.{book.name}"
                )
                for ring_index in range(ring_size)
                for book in self.topology.placement[ring_index]
            ]
            results = yield sim.all_of(procs)
            outcomes = [results[proc] for proc in procs]
            completed = recovered = lost = stdout_bytes = 0
            statuses: Counter = Counter()
            for outcome in outcomes:
                if outcome["result"] is None:
                    lost += 1
                    continue
                if outcome["hops"] == 0:
                    completed += 1
                else:
                    recovered += 1
                statuses[outcome["result"]["status"]] += 1
                stdout_bytes += outcome["result"]["stdout_bytes"]
            dispatched = len(outcomes)
            if completed + recovered + lost != dispatched:
                raise SimulationError(
                    f"job conservation broken for {app}: "
                    f"{completed}+{recovered}+{lost} != {dispatched}"
                )
            apps_report[app] = {
                "dispatched": dispatched,
                "completed": completed,
                "recovered": recovered,
                "lost": lost,
                "statuses": dict(sorted(statuses.items())),
                "stdout_bytes": stdout_bytes,
            }
            totals.update(
                dispatched=dispatched,
                completed=completed,
                recovered=recovered,
                lost=lost,
            )
        probes = [
            sim.process(
                self.host.call(f"cell{i}", "status", {}), name=f"status.cell{i}"
            )
            for i in range(ring_size)
        ]
        probe_results = yield sim.all_of(probes)
        snapshots = [probe_results[proc] for proc in probes]
        telemetry_blob = "\n".join(
            str(canonical_value(snapshot)) for snapshot in snapshots
        )
        self._scorecard = {
            "kind": "jobs",
            "apps": apps_report,
            "dispatched": totals["dispatched"],
            "completed": totals["completed"],
            "recovered": totals["recovered"],
            "lost": totals["lost"],
            "telemetry": {
                "probes": ring_size,
                "errors": sum(1 for s in snapshots if "error" in s),
                "digest": hashlib.sha256(telemetry_blob.encode()).hexdigest(),
            },
            "makespan_ms": round((sim.now - self.base) * 1e3, 6),
        }


# ---------------------------------------------------------------------------
# open-loop traffic
# ---------------------------------------------------------------------------


class TrafficDrill:
    """Seeded arrivals -> bounded FIFO admission -> concurrent dispatch.

    Arrivals beyond ``service.queue_depth`` waiting requests are shed at
    the door; admitted requests are served FIFO by ``service.concurrency``
    workers, each walking the target book's replica chain on delivery
    failure.  Conservation (offered == admitted + shed,
    admitted == completed + lost) is enforced, not just reported.
    """

    def __init__(
        self,
        host: HostDomain,
        topology: ShardTopology,
        config: ScenarioConfig,
        books: Sequence,
        base: float,
    ):
        if config.traffic is None:
            raise ValueError("traffic workload needs a traffic config section")
        self.host = host
        self.topology = topology
        self.traffic = config.traffic
        self.service = config.service or ServiceConfig()
        self.books = list(books)
        self.base = base
        self.offered = self.admitted = self.shed = 0
        self.completed = self.lost = 0
        self._in_service = 0
        self._closed = False
        self._queue: deque = deque()
        self._idle: deque = deque()
        self._classes = {
            cls.name: {
                "offered": 0,
                "admitted": 0,
                "shed": 0,
                "completed": 0,
                "lost": 0,
                "failover": 0,
                "slo_ms": cls.slo_ms,
                "latencies": [],
            }
            for cls in self.service.classes
        }
        self._finished_at = base

    def start(self) -> None:
        sim = self.host.sim
        sim.process(self._arrivals(), name="traffic.arrivals")
        for k in range(self.service.concurrency):
            sim.process(self._worker(), name=f"traffic.worker{k}")

    # -- admission ------------------------------------------------------------
    def _arrivals(self) -> Generator:
        from repro.service.traffic import TrafficGenerator, assign_class

        sim = self.host.sim
        if self.base > sim.now:
            yield sim.timeout(self.base - sim.now)
        previous = 0.0
        for index, arrival in enumerate(TrafficGenerator(self.traffic).arrivals()):
            if arrival.time > previous:
                yield sim.timeout(arrival.time - previous)
                previous = arrival.time
            cls = assign_class(arrival.tenant, self.service.classes)
            stats = self._classes[cls]
            self.offered += 1
            stats["offered"] += 1
            if len(self._queue) >= self.service.queue_depth:
                self.shed += 1
                stats["shed"] += 1
                continue
            self.admitted += 1
            stats["admitted"] += 1
            book = self.books[
                zlib.crc32(f"{index}:{arrival.tenant}".encode()) % len(self.books)
            ]
            item = (sim.now, cls, book.name)
            if self._idle:
                self._idle.popleft().succeed(item)
            else:
                self._queue.append(item)
        self._closed = True
        self._maybe_release()

    # -- dispatch -------------------------------------------------------------
    def _worker(self) -> Generator:
        sim = self.host.sim
        while True:
            if self._queue:
                item = self._queue.popleft()
            elif self._closed and self._in_service == 0 and not self._queue:
                return
            else:
                gate = sim.event(name="traffic.idle")
                self._idle.append(gate)
                item = yield gate
                if item is None:
                    return
            yield from self._serve(item)

    def _serve(self, item) -> Generator:
        admitted_at, cls, book_name = item
        self._in_service += 1
        chain = self.topology.chains[book_name]
        line = _command_line("grep", book_name)
        served_hops = None
        for hops, ring_index in enumerate(chain):
            result = yield from self.host.call(
                f"cell{ring_index}", "minion", {"command_line": line}
            )
            if "error" not in result:
                served_hops = hops
                break
        self._in_service -= 1
        stats = self._classes[cls]
        now = self.host.sim.now
        self._finished_at = max(self._finished_at, now)
        if served_hops is None:
            self.lost += 1
            stats["lost"] += 1
        else:
            self.completed += 1
            stats["completed"] += 1
            if served_hops > 0:
                stats["failover"] += 1
            stats["latencies"].append((now - admitted_at) * 1e3)
        self._maybe_release()

    def _maybe_release(self) -> None:
        if self._closed and not self._queue and self._in_service == 0:
            while self._idle:
                self._idle.popleft().succeed(None)

    # -- reporting ------------------------------------------------------------
    def scorecard(self) -> dict:
        if not self._closed or self._in_service or self._queue:
            raise SimulationError("traffic drill did not run to completion")
        if self.admitted + self.shed != self.offered:
            raise SimulationError(
                f"admission conservation broken: {self.admitted}+{self.shed} "
                f"!= {self.offered}"
            )
        if self.completed + self.lost != self.admitted:
            raise SimulationError(
                f"service conservation broken: {self.completed}+{self.lost} "
                f"!= {self.admitted}"
            )
        classes = {}
        for name, stats in self._classes.items():
            latencies = sorted(stats["latencies"])
            slo_hits = sum(1 for value in latencies if value <= stats["slo_ms"])
            classes[name] = {
                "offered": stats["offered"],
                "admitted": stats["admitted"],
                "shed": stats["shed"],
                "completed": stats["completed"],
                "lost": stats["lost"],
                "failover": stats["failover"],
                "p50_ms": _percentile(latencies, 0.50),
                "p99_ms": _percentile(latencies, 0.99),
                "p999_ms": _percentile(latencies, 0.999),
                "slo_ms": stats["slo_ms"],
                "slo_hits": slo_hits,
            }
        return {
            "kind": "traffic",
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "lost": self.lost,
            "conservation": {
                "admission": self.admitted + self.shed == self.offered,
                "service": self.completed + self.lost == self.admitted,
            },
            "classes": classes,
            "duration_ms": round((self._finished_at - self.base) * 1e3, 6),
        }
