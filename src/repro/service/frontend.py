"""The service pipeline: admission -> schedule -> dispatch -> SLO.

:class:`ServiceFrontend` glues the pieces together inside one simulation:

1. **Admission.**  Each request is classed (stable tenant hash), charged
   against its per-tenant token bucket (shed ``rate_limited``), and checked
   against the bounded queue (shed ``queue_full``).  With the overload
   defenses engaged, retries are charged against the fleet-wide
   :class:`~repro.service.overload.RetryBudget` (shed ``retry_budget``)
   and low-priority classes shed early as the queue fills
   (:class:`~repro.service.overload.Brownout`, shed ``brownout``).
2. **Scheduling.**  Admitted requests enter the weighted fair queue under
   their priority class.
3. **Dispatch.**  Worker processes pull from the WFQ and drive
   :meth:`StorageFleet.serve_one` — retries, circuit breakers, and replica
   failover all engaged.  With defenses on, a
   :class:`~repro.service.overload.CoDelController` drops requests whose
   queue sojourn proves a standing queue (served-stale work is the fuel of
   metastable failure), and an
   :class:`~repro.service.overload.AimdController` grows/shrinks the
   number of active dispatch slots against measured queue wait.
4. **SLO.**  Every outcome lands in the :class:`SloTracker`; ``run()``
   returns the frozen :class:`SloReport` scorecard — including goodput
   windows and multi-window burn-rate alert verdicts for closed-loop runs.

The traffic source is either the open-loop :class:`TrafficGenerator`
stream (``traffic`` config) or the closed-loop session population
(:class:`~repro.service.traffic.ClosedLoopDriver`, ``closed_loop``
config), where shed work feeds back as retries.

Determinism: open-loop arrivals are materialised up front from the traffic
seed, closed-loop sessions draw from per-session named streams, admission
is pure bookkeeping, the WFQ breaks ties by push order, and the
simulator's event order is stable — so the scorecard is a pure function of
the scenario config.  Every overload feature is gated on its config
section, and the gates sit outside the legacy code paths, so runs without
``overload``/``closed_loop`` sections replay the exact historical
schedules (the pinned traffic goldens).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Generator, Sequence

import zlib

from repro.cluster.fleet import StorageFleet
from repro.config.schema import (
    ClosedLoopConfig,
    ObjstoreConfig,
    OverloadConfig,
    ServiceConfig,
    TrafficConfig,
)
from repro.obs.health import burn_rate_alerts
from repro.proto.entities import Command
from repro.service.overload import (
    AimdController,
    Brownout,
    CoDelController,
    RetryBudget,
)
from repro.service.scheduler import WeightedFairQueue
from repro.service.slo import SloReport, SloTracker
from repro.service.tokens import TenantBuckets
from repro.service.traffic import (
    Arrival,
    ClosedLoopDriver,
    TrafficGenerator,
    assign_class,
)
from repro.workloads import BookFile

__all__ = ["QueuedRequest", "ServiceFrontend"]

#: Arrivals between token-bucket eviction sweeps (state-bound housekeeping).
EVICT_EVERY = 64


def _default_command(book: BookFile, tenant: int) -> Command:
    return Command(command_line=f"grep xylophone {book.name}")


class QueuedRequest:
    """One admitted request in flight through the queue.

    ``done`` (closed-loop only) fires when the request resolves; ``status``
    is then ``completed``/``dropped``/``lost``.  ``abandoned`` is set by
    the client when it stops waiting — the request still occupies the
    queue and may still be served, but that completion is wasted work.
    """

    __slots__ = ("tenant", "class_name", "admitted_at", "done", "abandoned", "status")

    def __init__(self, tenant: int, class_name: str, admitted_at: float, done=None):
        self.tenant = tenant
        self.class_name = class_name
        self.admitted_at = admitted_at
        self.done = done
        self.abandoned = False
        self.status = "queued"


class ServiceFrontend:
    """One multi-tenant serving session over a staged fleet."""

    def __init__(
        self,
        fleet: StorageFleet,
        service: ServiceConfig,
        traffic: TrafficConfig | None,
        books: Sequence[BookFile],
        command_for: Callable[[BookFile, int], Command] = _default_command,
        closed_loop: ClosedLoopConfig | None = None,
        overload: OverloadConfig | None = None,
        objstore=None,
        objstore_config: ObjstoreConfig | None = None,
    ):
        if not books:
            raise ValueError("serving needs at least one staged book")
        if (traffic is None) == (closed_loop is None):
            raise ValueError("need exactly one of traffic (open loop) or "
                             "closed_loop (sessions)")
        self.fleet = fleet
        self.sim = fleet.sim
        self.service = service
        self.traffic = traffic
        self.closed_loop = closed_loop
        self.overload = overload
        self.books = list(books)
        self.command_for = command_for
        engaged = closed_loop is not None or overload is not None
        self.tracker = SloTracker(
            service.classes,
            fleet.metrics if fleet.metrics.enabled else None,
            overload=engaged,
        )
        self.buckets = TenantBuckets()
        self._classes = {c.name: c for c in service.classes}
        self._queue = WeightedFairQueue({c.name: c.weight for c in service.classes})
        self._arrivals_done = False
        self._signal = None
        self.driver = (
            ClosedLoopDriver(self.sim, closed_loop)
            if closed_loop is not None
            else None
        )
        self._offers = 0
        self._wait_sum = 0.0
        self._wait_count = 0
        # Objstore write mix: engaged only when a store is supplied AND the
        # config asks for write traffic — every other run never touches this
        # path, so legacy scorecards stay byte-identical.
        self._objstore = objstore
        self._write_fraction = (
            objstore_config.write_fraction
            if objstore is not None and objstore_config is not None
            else 0.0
        )
        if self._objstore is not None and self._write_fraction > 0.0:
            from repro.objstore.workload import generate_objects

            self._write_payloads = generate_objects(objstore_config.spec())
        else:
            self._write_payloads = []
        if overload is not None:
            self.retry_budget = RetryBudget(
                overload.retry_budget, overload.retry_budget_burst
            )
            self._codel = CoDelController(
                overload.codel_target_ms / 1e3, overload.codel_interval_ms / 1e3
            )
            # lowest weight sheds first; name breaks ties deterministically
            order = tuple(c.name for c in sorted(
                service.classes, key=lambda c: (c.weight, c.name)
            ))
            self._brownout = Brownout(order, overload.brownout_start)
            self._aimd = AimdController(
                low=overload.aimd_low_ms / 1e3,
                high=overload.aimd_high_ms / 1e3,
                decrease=overload.aimd_decrease,
                floor=overload.min_concurrency,
                ceiling=overload.max_concurrency,
                initial=service.concurrency,
            )
            self._worker_count = overload.max_concurrency
            self._allowed = self._aimd.allowed
            self._gated = True
        else:
            self.retry_budget = None
            self._codel = None
            self._brownout = None
            self._aimd = None
            self._worker_count = service.concurrency
            self._allowed = service.concurrency
            self._gated = False

    # -- wiring ---------------------------------------------------------------

    def _wait_signal(self):
        """The shared work-available event (recreated after each trigger)."""
        if self._signal is None or self._signal.triggered:
            self._signal = self.sim.event("service.kick")
        return self._signal

    def _kick(self) -> None:
        if self._signal is not None and not self._signal.triggered:
            self._signal.succeed()

    # -- admission -------------------------------------------------------------

    def _admit(self, arrival: Arrival) -> None:
        """Open-loop admission: the legacy path, byte-for-byte."""
        cls = self._classes[assign_class(arrival.tenant, self.service.classes)]
        self.tracker.on_arrival(cls.name)
        now = self.sim.now
        if not self.buckets.allow(arrival.tenant, cls.rate, cls.burst, now):
            self.tracker.on_shed(cls.name, "rate_limited", at=now)
            return
        if self._brownout is not None and self._brownout.sheds(
            cls.name, len(self._queue), self.service.queue_depth
        ):
            self.tracker.on_shed(cls.name, "brownout", at=now)
            return
        if len(self._queue) >= self.service.queue_depth:
            self.tracker.on_shed(cls.name, "queue_full", at=now)
            return
        if self.retry_budget is not None:
            self.retry_budget.earn()
        self._queue.push(cls.name, QueuedRequest(arrival.tenant, cls.name, now))
        self.tracker.on_queue_depth(len(self._queue))
        self._kick()

    def offer(self, tenant: int, retry: bool = False) -> QueuedRequest | None:
        """Closed-loop admission: returns the queued request (carrying a
        ``done`` event the session can wait on) or ``None`` when shed.

        Retries are charged against the fleet-wide retry budget *first* —
        under overload, keeping retry pressure off the queue matters more
        than any per-tenant fairness decision.
        """
        cls = self._classes[assign_class(tenant, self.service.classes)]
        self.tracker.on_arrival(cls.name)
        now = self.sim.now
        if retry:
            self.tracker.on_retry(cls.name)
            if self.retry_budget is not None and not self.retry_budget.try_spend():
                self.tracker.on_shed(cls.name, "retry_budget", at=now)
                return None
        if not self.buckets.allow(tenant, cls.rate, cls.burst, now):
            self.tracker.on_shed(cls.name, "rate_limited", at=now)
            return None
        if self._brownout is not None and self._brownout.sheds(
            cls.name, len(self._queue), self.service.queue_depth
        ):
            self.tracker.on_shed(cls.name, "brownout", at=now)
            return None
        if len(self._queue) >= self.service.queue_depth:
            self.tracker.on_shed(cls.name, "queue_full", at=now)
            return None
        if not retry and self.retry_budget is not None:
            self.retry_budget.earn()
        request = QueuedRequest(tenant, cls.name, now,
                                done=self.sim.event("service.done"))
        self._queue.push(cls.name, request)
        self.tracker.on_queue_depth(len(self._queue))
        self._offers += 1
        if self._offers % EVICT_EVERY == 0:
            self.buckets.evict_restorable(now)
        self._kick()
        return request

    def abandon(self, request: QueuedRequest) -> None:
        """The client stopped waiting; the request stays queued (stale)."""
        request.abandoned = True
        self.tracker.on_abandon(request.class_name, at=self.sim.now)

    def _arrivals(self) -> Generator:
        start = self.sim.now
        stream = TrafficGenerator(self.traffic).arrivals()
        for index, arrival in enumerate(stream):
            target = start + arrival.time
            if target > self.sim.now:
                yield self.sim.timeout(target - self.sim.now)
            self._admit(arrival)
            if (index + 1) % EVICT_EVERY == 0:
                self.buckets.evict_restorable(self.sim.now)
        self._arrivals_done = True
        self._kick()

    def _sessions(self) -> Generator:
        yield from self.driver.run(self)
        self._arrivals_done = True
        self._kick()

    # -- dispatch --------------------------------------------------------------

    def _finish(self, request: QueuedRequest, status: str) -> None:
        request.status = status
        if request.done is not None:
            request.done.succeed()

    def _drained_kick(self) -> None:
        """Wake index-gated workers parked above the AIMD allowance so
        they can observe completion (gated runs only — the legacy path
        never parks a worker after the source finishes)."""
        if self._gated and self._arrivals_done and not self._queue:
            self._kick()

    def _is_write(self, tenant: int) -> bool:
        """Deterministic write-mix membership: the same stable-hash idiom as
        :func:`assign_class`, salted so write tenants are independent of
        priority class."""
        if self._write_fraction <= 0.0:
            return False
        point = (zlib.crc32(f"write:{tenant}".encode()) & 0xFFFFFFFF) / 2**32
        return point < self._write_fraction

    def _serve_write(self, request: QueuedRequest, wait: float) -> Generator:
        """One objstore PUT through the dedup store (the write request
        class).  A committed PUT completes with path ``"objstore"``; a PUT
        with no surviving replica target counts lost, like a read with no
        surviving copy."""
        from repro.objstore.store import ObjectStoreError

        key = f"t{request.tenant}"
        _, payload = self._write_payloads[request.tenant % len(self._write_payloads)]
        try:
            yield from self._objstore.put(key, payload)
        except ObjectStoreError:
            self.tracker.on_lost(request.class_name, at=self.sim.now)
            self._finish(request, "lost")
            return False
        self.tracker.on_complete(
            request.class_name,
            request.tenant,
            self.sim.now - request.admitted_at,
            wait,
            "objstore",
            stale=request.abandoned,
            at=self.sim.now,
        )
        self._finish(request, "completed")
        return True

    def _worker(self, index: int) -> Generator:
        while True:
            if self._gated and index >= self._allowed:
                if self._arrivals_done and not self._queue:
                    return
                yield self._wait_signal()
                continue
            if self._queue:
                class_name, request = self._queue.pop()
                self.tracker.on_queue_depth(len(self._queue))
                now = self.sim.now
                wait = now - request.admitted_at
                self._wait_sum += wait
                self._wait_count += 1
                if self._codel is not None and self._codel.on_dequeue(now, wait):
                    self.tracker.on_drop(class_name, at=now)
                    self._finish(request, "dropped")
                    self._drained_kick()
                    continue
                if self._is_write(request.tenant):
                    yield from self._serve_write(request, wait)
                    self._drained_kick()
                    continue
                book = self.books[request.tenant % len(self.books)]
                response, path = yield from self.fleet.serve_one(
                    book, self.command_for(book, request.tenant)
                )
                if response is None:
                    self.tracker.on_lost(class_name, at=self.sim.now)
                    self._finish(request, "lost")
                else:
                    self.tracker.on_complete(
                        class_name,
                        request.tenant,
                        self.sim.now - request.admitted_at,
                        wait,
                        path,
                        stale=request.abandoned,
                        at=self.sim.now,
                    )
                    self._finish(request, "completed")
                self._drained_kick()
            elif self._arrivals_done:
                return
            else:
                yield self._wait_signal()

    def _aimd_loop(self) -> Generator:
        """The concurrency governor: one AIMD update per control interval,
        fed the mean queue wait measured at dispatch over that interval
        (a starved interval under a standing queue reads as a high wait).
        Daemon timeouts: the governor never keeps the run alive."""
        overload = self.overload
        interval = overload.aimd_interval_ms / 1e3
        high = overload.aimd_high_ms / 1e3
        while not (self._arrivals_done and not self._queue):
            yield self.sim.timeout(interval, daemon=True)
            if self._wait_count:
                sample = self._wait_sum / self._wait_count
            elif self._queue:
                sample = 2.0 * high  # dispatch starved under a standing queue
            else:
                sample = 0.0
            self._wait_sum = 0.0
            self._wait_count = 0
            before = self._allowed
            self._allowed = self._aimd.update(sample)
            if self._allowed != before:
                self.tracker.on_concurrency(self._allowed)
            if self._allowed > before:
                self._kick()

    # -- the run ---------------------------------------------------------------

    def _goodput_windows(self, start: float, end: float) -> dict:
        window_s = self.closed_loop.goodput_window_ms / 1e3
        count = max(1, -int(-(end - start) // window_s))  # ceil
        windows = [0] * count
        for t in self.tracker.good_times:
            windows[min(count - 1, int((t - start) / window_s))] += 1
        return {"window_ms": self.closed_loop.goodput_window_ms, "windows": windows}

    def _attach_overload(self, report: SloReport, start: float) -> SloReport:
        """Attach the frontend-owned overload/closed-loop sections."""
        extras: dict = {}
        if self.driver is not None:
            counters = self.driver.counters()
            counters["abandoned"] = self.tracker.abandoned_total
            counters["stale"] = self.tracker.stale_total
            extras["closed"] = counters
            extras["goodput"] = self._goodput_windows(start, self.sim.now)
        if self.overload is not None:
            budget = self.retry_budget
            extras["retry_budget"] = {
                "requested": budget.requested,
                "admitted": budget.admitted,
                "rejected": budget.rejected,
            }
            extras["aimd"] = {
                "final": self._aimd.allowed,
                "peak": self._aimd.peak,
                "increases": self._aimd.increases,
                "decreases": self._aimd.decreases,
            }
            extras["burn"] = burn_rate_alerts(
                self.tracker.events,
                self.overload.slo_objective,
                self.overload.burn_windows,
            )
        return replace(report, **extras)

    def run(self) -> Generator:
        """Serve the whole configured traffic source; returns the
        :class:`SloReport` scorecard."""
        sim = self.sim
        start = sim.now
        procs = [
            sim.process(self._worker(i), name=f"service.worker{i}")
            for i in range(self._worker_count)
        ]
        if self.driver is not None:
            procs.append(sim.process(self._sessions(), name="service.sessions"))
            pattern = "closed-loop"
        else:
            procs.append(sim.process(self._arrivals(), name="service.arrivals"))
            pattern = self.traffic.pattern
        if self._aimd is not None:
            sim.process(self._aimd_loop(), name="service.aimd")
        yield sim.all_of(procs)
        report = self.tracker.report(
            pattern, peak_buckets=self.buckets.peak_buckets
        )
        if self.closed_loop is not None or self.overload is not None:
            report = self._attach_overload(report, start)
        return report
