"""Observability overhead guard.

The obs subsystem's contract is that the *default-off* path costs nothing
measurable: components constructed without a registry hold bound instruments
against ``NULL_METRICS`` and every hot-path hook is one attribute test.

Two properties are asserted here:

1. **Timing neutrality** — the simulated clock is bit-identical whether
   observability is absent, disabled, or fully enabled.  Instrumentation
   must never yield, so it cannot perturb the discrete-event schedule.
2. **Wall-clock overhead** — running with the default (disabled) hooks is
   within 5% of the pre-obs fast path.  Best-of-N timing keeps the guard
   stable on noisy CI machines.
"""

import time

from repro.cluster import StorageNode
from repro.obs import MetricsRegistry
from repro.sim import Tracer
from repro.workloads import BookCorpus, CorpusSpec

ROUNDS = 5
OVERHEAD_BUDGET = 1.05  # disabled-mode wall clock <= 105% of baseline


def run_workload(metrics=None, tracer=None):
    """One node, four devices, a staged corpus, one grep minion per book."""
    node = StorageNode.build(
        devices=4, device_capacity=24 * 1024 * 1024, metrics=metrics, tracer=tracer
    )
    sim = node.sim
    books = BookCorpus(CorpusSpec(files=8, mean_file_bytes=64 * 1024)).generate()
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))
    shares = node.device_books(books)

    def flow():
        assignments = []
        for device, dev_books in shares.items():
            from repro.proto import Command

            assignments.extend(
                (device, Command(command_line=f"grep xylophone {b.name}"))
                for b in dev_books
            )
        responses = yield from node.client.gather(assignments)
        return responses

    responses = sim.run(sim.process(flow()))
    assert all(r.ok for r in responses)
    return sim.now


def best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_observability_is_timing_neutral_and_cheap():
    # -- simulated time must be identical across all three modes ------------
    t_baseline = run_workload()
    t_disabled = run_workload(metrics=MetricsRegistry(enabled=False))
    t_enabled = run_workload(metrics=MetricsRegistry(), tracer=Tracer())
    assert t_baseline == t_disabled == t_enabled, (
        "observability perturbed the simulated schedule: "
        f"baseline={t_baseline} disabled={t_disabled} enabled={t_enabled}"
    )

    # -- disabled-mode wall clock stays within the budget --------------------
    base_wall, _ = best_of(lambda: run_workload())
    disabled_wall, _ = best_of(
        lambda: run_workload(metrics=MetricsRegistry(enabled=False))
    )
    ratio = disabled_wall / base_wall
    print(
        f"\nobs overhead: baseline={base_wall * 1e3:.1f} ms "
        f"disabled={disabled_wall * 1e3:.1f} ms ratio={ratio:.3f}"
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"disabled observability costs {(ratio - 1) * 100:.1f}% wall clock "
        f"(budget {(OVERHEAD_BUDGET - 1) * 100:.0f}%)"
    )


def test_enabled_mode_collects_from_every_layer():
    """Sanity for the other side of the trade: enabled mode actually works."""
    metrics = MetricsRegistry()
    run_workload(metrics=metrics)
    prefixes = {name.split(".")[0] for name in metrics.names()}
    assert {"client", "ftl", "isps", "nvme", "power"} <= prefixes
