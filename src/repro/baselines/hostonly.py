"""The conventional path: move the data to the host CPU.

Thin helper over a :class:`~repro.cluster.node.StorageNode` built with a
baseline drive: runs commands on the host OS (Xeon ISA, data over
NVMe/PCIe) and measures the same quantities the in-situ path reports, so
Fig. 7/8 comparisons are apples-to-apples.
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.cluster.node import StorageNode
from repro.isos.loader import ExitStatus

__all__ = ["HostOnlyRunner"]


class HostOnlyRunner:
    """Runs the workload suite on the host over NVMe-attached storage."""

    def __init__(self, node: StorageNode):
        if node.baseline_ssd is None:
            raise ValueError("node was built without a baseline SSD (with_baseline_ssd=True)")
        self.node = node
        self.os = node.host.require_os()

    def run(self, command_line: str) -> Generator:
        """Execute one command on the host; returns ``(ExitStatus, seconds)``."""
        start = self.node.sim.now
        status, _process = yield from self.os.run(command_line)
        return status, self.node.sim.now - start

    def run_many(self, command_lines: Sequence[str]) -> Generator:
        """Execute commands concurrently (host cores shared via the OS
        scheduler); returns (statuses, wall_seconds)."""
        sim = self.node.sim
        start = sim.now
        procs = [self.os.spawn(line) for line in command_lines]

        def wait_all() -> Generator:
            statuses: list[ExitStatus] = []
            for p in procs:
                statuses.append((yield from self.os.wait(p)))
            return statuses

        statuses = yield from wait_all()
        return statuses, sim.now - start
