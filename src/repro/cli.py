"""Command-line interface: regenerate the paper's experiments.

::

    python -m repro fig1                 # bandwidth mismatch table
    python -m repro fig6 --app grep --devices 1 2 4
    python -m repro fig7
    python -m repro fig8 --apps grep gawk
    python -m repro table1
    python -m repro validate --workers 4 # shard the scorecard across cores
    python -m repro quickstart           # the quickstart scenario
    python -m repro config presets       # scenario registry + digests

Every command prints the same table its benchmark counterpart asserts on.

The experiment verbs (``fig6``/``fig7``/``fig8``/``validate``/``chaos``)
take ``--preset NAME`` and repeatable ``--set path=value`` scenario
overrides; each run prints a ``# scenario <name> digest=<sha256>`` header
that ``config show`` can expand back into the full configuration.

The matrix-shaped verbs (``validate``, ``bench``, and the figure verbs)
accept ``--workers N`` to shard their independent seeded cells across a
process pool and merge in canonical order — stdout is byte-identical at
any worker count (the run summary goes to stderr).  They also keep a
content-addressed result cache (``--no-cache`` / ``--cache-dir`` to
control it); ``bench`` never caches, because its wall clock *is* the
measurement.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.experiments import format_series_table
from repro.analysis.figures import FIG8_APPS, Fig1Row, Fig8Row, fig6_linearity
from repro.baselines import table1_rows
from repro.config import DEVICE_BACKENDS
from repro.config.cli import (
    add_config_subparser,
    add_scenario_args,
    scenario_from_args,
    scenario_header,
)

__all__ = ["main"]


def _scenario_payload(args: argparse.Namespace):
    """``(config, to_dict(config))`` for a verb's scenario flags, or Nones.

    Verbs that carry ``--shards``/``--shard-backend`` (see
    :func:`_add_shard_args`) get the override folded into the scenario's
    ``sharding`` section here, so it rides through cache keys and worker
    processes exactly like any ``--set`` override.  The header is printed
    here — in the parent process, before any tables — so stdout stays
    byte-identical at every ``--workers`` count.
    """
    config = scenario_from_args(args)
    shards = getattr(args, "shards", None)
    backend = getattr(args, "shard_backend", None)
    if config is not None and (isinstance(shards, int) or backend):
        from dataclasses import replace

        from repro.config.schema import ShardingConfig

        current = config.sharding or ShardingConfig()
        config = replace(config, sharding=ShardingConfig(
            shards=shards if isinstance(shards, int) else current.shards,
            backend=backend or current.backend,
            window_us=current.window_us,
        ))
    if config is None:
        return None, None
    from repro.config import to_dict

    print(scenario_header(config))
    return config, to_dict(config)


def _add_parallel_args(
    parser: argparse.ArgumentParser, cached: bool = True
) -> None:
    parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool width; 1 (default) runs in-process serially",
    )
    if cached:
        parser.add_argument(
            "--no-cache", action="store_true",
            help="always recompute; do not read or write the result cache",
        )
        parser.add_argument(
            "--cache-dir", default=None,
            help="result cache root (default: $REPRO_CACHE_DIR or "
                 "<repo>/.repro-cache)",
        )
    else:
        parser.add_argument(
            "--no-cache", action="store_true",
            help="accepted for symmetry; this verb never caches (its wall "
                 "clock is the measurement)",
        )


def _add_shard_args(parser: argparse.ArgumentParser) -> None:
    """``--shards``/``--shard-backend``: run this verb's cells on the
    sharded engine (``repro.sim.shard``) with the given grouping."""
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the simulation into N device-shard event loops "
             "(digest-equivalent to the monolithic run)",
    )
    parser.add_argument(
        "--shard-backend", default=None, choices=["sequential", "process"],
        help="shard execution backend (default: scenario's, else sequential)",
    )


def _run_matrix(specs, args: argparse.Namespace, cached: bool = True):
    """Run work items through the parallel runner; summary to stderr only,
    so stdout stays byte-identical at every worker count."""
    from repro.obs import MetricsRegistry
    from repro.parallel import ResultCache, run_jobs

    cache = None
    if cached and not getattr(args, "no_cache", False):
        cache = ResultCache(getattr(args, "cache_dir", None))
    report = run_jobs(
        specs,
        workers=getattr(args, "workers", 1),
        cache=cache,
        metrics=MetricsRegistry(),
    )
    print(report.summary(), file=sys.stderr)
    return report


def _cmd_fig1(args: argparse.Namespace) -> None:
    from repro.parallel import fig1_jobs

    report = _run_matrix(fig1_jobs(tuple(args.devices)), args)
    rows = [Fig1Row(**value) for value in report.values()]
    print(format_series_table(
        "Fig. 1 — media vs host bandwidth (GB/s)",
        ["SSDs", "aggregate media", "per-SSD link", "host ingest", "mismatch x"],
        [[r.ssd_count, r.media_bandwidth_bps / 1e9, r.endpoint_link_bps / 1e9,
          r.host_ingest_bps / 1e9, r.mismatch] for r in rows],
    ))


def _cmd_fig6(args: argparse.Namespace) -> None:
    from repro.parallel import fig6_jobs

    _, payload = _scenario_payload(args)
    report = _run_matrix(
        fig6_jobs(args.app, tuple(args.devices), scenario=payload), args
    )
    results = [tuple(value) for value in report.values()]
    slope, _, r2 = fig6_linearity(results)
    print(format_series_table(
        f"Fig. 6 — {args.app} throughput vs device count",
        ["devices", "MB/s"],
        [[n, tp] for n, tp in results],
    ))
    print(f"fit: slope={slope:.2f} MB/s/device, r^2={r2:.4f}")


def _cmd_fig7(args: argparse.Namespace) -> None:
    from repro.parallel import fig7_jobs

    _, payload = _scenario_payload(args)
    report = _run_matrix(fig7_jobs(tuple(args.devices), scenario=payload), args)
    host_tp = report.results[0].value
    rows = [
        {
            "devices": n,
            "host_mb_s": host_tp,
            "compstor_mb_s": tp,
            "aggregate_mb_s": host_tp + tp,
        }
        for n, tp in (tuple(r.value) for r in report.results[1:])
    ]
    print(format_series_table(
        "Fig. 7 — bzip2 throughput, host + N CompStors (MB/s)",
        ["devices", "host", "CompStors", "aggregate"],
        [[r["devices"], r["host_mb_s"], r["compstor_mb_s"], r["aggregate_mb_s"]]
         for r in rows],
    ))


def _cmd_fig8(args: argparse.Namespace) -> None:
    from repro.parallel import fig8_jobs

    _, payload = _scenario_payload(args)
    report = _run_matrix(fig8_jobs(tuple(args.apps), scenario=payload), args)
    rows = [Fig8Row(**value) for value in report.values()]
    print(format_series_table(
        "Fig. 8 — energy per GB (J/GB), measured vs paper",
        ["app", "CompStor", "paper", "Xeon", "paper", "ratio", "paper ratio"],
        [[r.app, r.compstor_j_per_gb, r.paper_compstor, r.xeon_j_per_gb,
          r.paper_xeon, r.ratio, r.paper_ratio] for r in rows],
    ))


def _cmd_table1(_args: argparse.Namespace) -> None:
    print(format_series_table(
        "Table I — in-storage computation systems",
        ["system", "prototype", "dyn. loading", "library", "OS flexibility"],
        table1_rows(),
    ))


def _cmd_smart(args: argparse.Namespace) -> None:
    """Run a small workload, then dump the drive's SMART/health log.

    Scenario-driven so the device under inspection can be any registered
    backend (``--set device.backend=zoned``); the health attributes come
    from the backend-agnostic ``health_stats()`` surface.
    """
    from dataclasses import replace

    from repro.config import build_node
    from repro.workloads import BookCorpus, CorpusSpec

    config, _ = _scenario_payload(args)
    config = replace(
        config, fleet=replace(config.fleet, devices_per_node=1), sharding=None
    )
    node = build_node(config)
    sim = node.sim
    books = BookCorpus(CorpusSpec(files=args.files, mean_file_bytes=64 * 1024)).generate()
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))

    def workload():
        for book in books:
            yield from node.client.run("compstor0", f"gzip {book.name}")

    sim.run(sim.process(workload()))
    smart = node.compstors[0].controller.smart_log()
    rows = []
    for key, value in smart.items():
        if key == "latency":
            for opcode, stats in value.items():
                rows.append([f"latency.{opcode}",
                             f"n={stats['count']} mean={stats['mean'] * 1e6:.1f}us"])
        else:
            rows.append([key, value])
    print(format_series_table("SMART / health log after workload", ["attribute", "value"], rows))


def _cmd_fleet(args: argparse.Namespace) -> None:
    """Fleet weak-scaling sweep (nodes x devices, one minion per book)."""
    from repro.analysis.experiments import throughput_mb_s
    from repro.cluster import StorageFleet
    from repro.proto import Command
    from repro.workloads import BookCorpus, CorpusSpec

    rows = []
    for nodes in args.nodes:
        books = BookCorpus(
            CorpusSpec(files=args.books_per_node * nodes, mean_file_bytes=32 * 1024)
        ).generate()
        fleet = StorageFleet.build(
            nodes=nodes, devices_per_node=args.devices,
            device_capacity=24 * 1024 * 1024,
        )
        fleet.sim.run(fleet.sim.process(fleet.stage_corpus(books)))

        def job():
            return (
                yield from fleet.run_job(
                    books, lambda b: Command(command_line=f"grep xylophone {b.name}")
                )
            )

        responses, wall = fleet.sim.run(fleet.sim.process(job()))
        total = sum(b.plain_size for b in books)
        rows.append([nodes, len(responses), throughput_mb_s(total, wall)])
    print(format_series_table(
        "fleet weak scaling (grep)",
        ["nodes", "concurrent minions", "aggregate MB/s"],
        rows,
    ))


def _cmd_chaos(args: argparse.Namespace) -> None:
    """Run a fleet job under a fault plan; print the recovery report.

    Device targets are fleet-wide ring indices (``--kill 1@0.2`` crashes
    the second device 0.2 ms after staging completes); ``--random N``
    derives N faults deterministically from ``--seed``.
    """
    from repro.cluster import StorageFleet
    from repro.faults import BreakerConfig, FaultInjector, FaultPlan, RetryPolicy
    from repro.proto import Command
    from repro.workloads import BookCorpus, CorpusSpec

    config, _ = _scenario_payload(args)
    if config is not None:
        from repro.config import build_corpus, build_fleet

        fleet = build_fleet(config)
        books = build_corpus(config)
        replicas = config.fleet.replicas
        seed = config.seed
    else:
        fleet = StorageFleet.build(
            nodes=args.nodes,
            devices_per_node=args.devices,
            seed=args.seed,
            device_capacity=24 * 1024 * 1024,
            retry_policy=RetryPolicy(),
            breaker_config=BreakerConfig(),
        )
        books = BookCorpus(
            CorpusSpec(files=args.books, mean_file_bytes=32 * 1024, seed=args.seed)
        ).generate()
        replicas = args.replicas
        seed = args.seed
    ring = fleet.device_ring()
    fleet.sim.run(
        fleet.sim.process(fleet.stage_corpus(books, replicas=replicas))
    )
    start = fleet.sim.now

    def targets(specs):
        for raw in specs:
            index, _, when = raw.partition("@")
            node, device = ring[int(index) % len(ring)]
            yield node, device, start + float(when or "0") * 1e-3

    ms = lambda value: None if value is None else value * 1e-3
    if config is not None and config.faults.any:
        # the scenario's declarative fault plan; CLI flags stack on top
        plan = FaultPlan.from_config(config.faults, ring, base_time=start)
    else:
        plan = FaultPlan(seed=seed)
    for node, device, at in targets(args.kill):
        plan.kill_device(node, device, at, recover_after=ms(args.recover_after))
    for node, device, at in targets(args.agent_crash):
        plan.crash_agent(node, device, at, restart_after=ms(args.restart_after))
    for node, device, at in targets(args.limp):
        plan.limp(node, device, at, factor=args.limp_factor, duration=ms(args.limp_duration))
    for node, device, at in targets(args.transient):
        plan.transient_window(
            node, device, at,
            duration=ms(args.transient_duration), fraction=args.transient_fraction,
        )
    if args.random:
        for event in FaultPlan.random(
            seed, ring, horizon=start + 10e-3, faults=args.random
        ).events():
            plan.add(event)
    print(format_series_table(
        f"fault plan (seed={seed}, fingerprint={plan.fingerprint()})",
        ["t (ms)", "kind", "target", "detail"],
        plan.describe_rows() or [["-", "none", "-", "fault-free drill"]],
    ))
    FaultInjector.for_fleet(fleet, plan).start()

    def job():
        report = yield from fleet.run_job(
            books, lambda b: Command(command_line=f"grep xylophone {b.name}")
        )
        return report

    report = fleet.sim.run(fleet.sim.process(job()))
    print(format_series_table(
        "degraded-mode job report", ["attribute", "value"], report.rows()
    ))

    def poll():
        summary = yield from fleet.health()
        return summary

    health = fleet.sim.run(fleet.sim.process(poll()))
    print(format_series_table("fleet health", ["attribute", "value"], health.rows()))
    if report.lost:
        print(f"lost minions: {', '.join(report.lost)}")
        raise SystemExit(1)


def _cmd_traffic(args: argparse.Namespace) -> None:
    """Serve seeded multi-tenant traffic against the fleet; print the SLO
    scorecard (p50/p99/p999, fairness, shed counts) per arrival mix.

    Each mix is one hermetic matrix cell, so cells shard across
    ``--workers`` and cache like figure cells; the trailing scorecard
    digest is the byte-stable identity CI pins.
    """
    from repro.parallel import payload_digest, traffic_jobs

    _, payload = _scenario_payload(args)
    if getattr(args, "shards", None) or getattr(args, "shard_backend", None):
        _traffic_sharded(args, payload)
        return
    report = _run_matrix(traffic_jobs(payload, mixes=tuple(args.mixes)), args)
    values = report.values()
    rows = []
    lost = 0
    for value in values:
        shed = sum(value["shed"].values())
        rows.append([
            value["pattern"], value["requests"], value["admitted"], shed,
            value["completed"], value["lost"],
            f"{value['p50_ms']:.3f}", f"{value['p99_ms']:.3f}",
            f"{value['p999_ms']:.3f}", f"{value['jain']:.4f}",
            value["violations"],
        ])
        lost += value["lost"]
    print(format_series_table(
        "traffic scorecard (end-to-end latency in ms)",
        ["mix", "offered", "admitted", "shed", "completed", "lost",
         "p50", "p99", "p999", "Jain", "SLO viol"],
        rows,
    ))
    print(f"scorecard digest={payload_digest(values)}")
    if lost:
        print(f"{lost} requests lost in dispatch", file=sys.stderr)
        raise SystemExit(1)


def _traffic_sharded(args: argparse.Namespace, payload: dict) -> None:
    """Serve each arrival mix on the sharded engine, one hermetic cell per
    mix (the ``--shards`` override is already folded into ``payload``)."""
    from repro.parallel import payload_digest
    from repro.parallel.jobs import JobSpec

    if payload.get("traffic") is None:
        print("scenario has no traffic section; nothing to serve", file=sys.stderr)
        raise SystemExit(2)
    specs = [
        JobSpec(
            name=f"traffic.shard.{mix}",
            target="repro.sim.shard.engine:run_shard_cell",
            kwargs={
                "scenario": dict(
                    payload, traffic=dict(payload["traffic"], pattern=mix)
                )
            },
        )
        for mix in args.mixes
    ]
    report = _run_matrix(specs, args)
    values = report.values()
    rows = []
    for mix, value in zip(args.mixes, values):
        result = value["result"]
        classes = result["scorecard"]["classes"]
        total = {
            key: sum(cls[key] for cls in classes.values())
            for key in ("offered", "admitted", "shed", "completed", "lost")
        }
        rows.append([
            mix, total["offered"], total["admitted"], total["shed"],
            total["completed"], total["lost"], result["rounds"],
            result["events"]["total"], result["digest"][:12],
        ])
    print(format_series_table(
        "sharded traffic scorecard (per arrival mix)",
        ["mix", "offered", "admitted", "shed", "completed", "lost",
         "rounds", "events", "digest"],
        rows,
    ))
    scorecards = [value["result"]["scorecard"] for value in values]
    print(f"scorecard digest={payload_digest(scorecards)}")


def _cmd_shard(args: argparse.Namespace) -> None:
    """Run one scenario across shard counts on the conservative engine.

    Every count (and both backends) must produce the same scorecard
    digest — shard count is an execution-grouping knob, not a model
    parameter — so the verb exits 1 on any divergence.  Cells are
    hermetic matrix jobs: they shard across ``--workers`` and cache, and
    a cached rerun reports ``executed=0`` in the stderr summary.
    """
    from repro.parallel import shard_jobs

    _, payload = _scenario_payload(args)
    report = _run_matrix(
        shard_jobs(
            payload,
            shard_counts=tuple(args.counts),
            backend=args.backend,
            window_us=args.window_us,
        ),
        args,
    )
    values = report.values()
    rows = []
    digests = []
    for value in values:
        result = value["result"]
        run = value["run"]
        digests.append(result["digest"])
        rows.append([
            run["shards"], run["backend"],
            "+".join(str(size) for size in run["groups"]),
            result["rounds"], result["events"]["total"],
            result["messages"]["sent"], result["digest"][:12],
        ])
    print(format_series_table(
        f"sharded runs — {result['workload']} workload, {result['cells']} cells",
        ["shards", "backend", "groups", "rounds", "events", "msgs", "digest"],
        rows,
    ))
    if len(set(digests)) == 1:
        print(f"scorecard digest={digests[0]} (identical across shard counts)")
    else:
        print("digest mismatch across shard counts", file=sys.stderr)
        raise SystemExit(1)


def _cmd_drill(args: argparse.Namespace) -> None:
    """Run the metastable-failure drill: the defenses-on cell and its
    defenses-off counterfactual (same scenario digest, same seed, same
    fault trigger), scored for goodput recovery after the trigger clears.

    The drill *fails* (exit 1) unless defenses-on recovers to the
    configured bar within the recovery window while defenses-off shows
    sustained degradation — the metastable signature.  Cells are hermetic
    matrix jobs, so they shard across ``--workers`` and cache; the
    trailing scorecard digest is the byte-stable identity CI pins.
    """
    from repro.parallel import drill_jobs, payload_digest

    _, payload = _scenario_payload(args)
    report = _run_matrix(drill_jobs(payload), args)
    values = report.values()
    rows = []
    failures = []
    for value in values:
        meta = value["metastable"]
        closed = value["closed"]
        arm = "on" if value["defenses"] else "off"
        rows.append([
            arm, closed["issued"], closed["retried"], closed["abandoned"],
            sum(value["shed"].values()), value.get("dropped") or 0,
            f"{meta['pre_goodput_per_window']:.1f}",
            "yes" if meta["recovered"] else "no",
            "-" if meta["recovered_after_ms"] is None
            else f"{meta['recovered_after_ms']:.0f}",
            "yes" if meta["sustained_degradation"] else "no",
        ])
        if value["defenses"] and not meta["recovered"]:
            failures.append("defenses-on did not recover within the window")
        if not value["defenses"] and not meta["sustained_degradation"]:
            failures.append("defenses-off did not sustain degradation")
    print(format_series_table(
        "metastable drill (goodput = fresh completions per window)",
        ["defenses", "issued", "retried", "abandoned", "shed", "dropped",
         "pre-trigger", "recovered", "after ms", "sustained degr."],
        rows,
    ))
    print(f"scorecard digest={payload_digest(values)}")
    if failures:
        for failure in failures:
            print(f"drill failed: {failure}", file=sys.stderr)
        raise SystemExit(1)


def _cmd_objstore(args: argparse.Namespace) -> None:
    """Run the dedup object-store drill pair — the GC-under-crash ingest
    cell and the delete-wave reclamation stress — or, with ``--sweep``, the
    fig-style dedup-ratio sweep (one ingest cell per dial).

    Each cell is a hermetic matrix job (the scenario dict is the whole
    input), so cells shard across ``--workers`` and cache like figure
    cells; the trailing scorecard digest is the byte-stable identity CI
    pins.  The drill pair *fails* (exit 1) if any cell reports a lost or
    corrupted referenced block — the crash-recovery invariant.
    """
    from repro.parallel import objstore_jobs, objstore_sweep_jobs, payload_digest

    _, payload = _scenario_payload(args)
    if args.sweep is not None:
        dials = tuple(args.sweep) if args.sweep else None
        jobs = (
            objstore_sweep_jobs(payload)
            if dials is None
            else objstore_sweep_jobs(payload, dials=dials)
        )
        report = _run_matrix(jobs, args)
        values = report.values()
        rows = [
            [
                f"{value['dial']:.2f}", value["objects_committed"],
                value["chunks"], value["chunks_deduped"],
                value["offered_bytes"], value["stored_bytes"],
                value["deduped_bytes"], f"{value['measured_ratio']:.3f}",
            ]
            for value in values
        ]
        print(format_series_table(
            "dedup sweep (measured ratio = offered / stored bytes)",
            ["dial", "objects", "chunks", "deduped", "offered B",
             "stored B", "deduped B", "ratio"],
            rows,
        ))
        print(f"scorecard digest={payload_digest(values)}")
        return
    report = _run_matrix(objstore_jobs(payload), args)
    values = report.values()
    rows = []
    failures = []
    for name, value in zip(("ingest", "gc-drill"), values):
        integrity = value["integrity"]
        gets = value["gets"]
        rows.append([
            name, value["objects_committed"],
            value.get("objects_deleted", 0),
            f"{value['stats']['dedup_ratio']:.3f}",
            ",".join(value["down_during_gc"]) or "-",
            value["gc_during_crash"]["blocks"] + value["gc_after_recovery"]["blocks"],
            value.get("orphans_left", 0),
            gets["ok"], len(integrity["lost_blocks"]),
            "yes" if value["ok"] else "no",
        ])
        if not value["ok"]:
            detail = integrity["lost_blocks"] or integrity["refcount_drift"]
            failures.append(f"{name}: invariant violated ({detail or gets})")
    print(format_series_table(
        "objstore drill (GC raced against the crash window)",
        ["cell", "committed", "deleted", "ratio", "down during GC",
         "GC blocks", "orphans", "gets ok", "lost", "ok"],
        rows,
    ))
    print(f"scorecard digest={payload_digest(values)}")
    if failures:
        for failure in failures:
            print(f"objstore drill failed: {failure}", file=sys.stderr)
        raise SystemExit(1)


def _cmd_backends(args: argparse.Namespace) -> None:
    """Compare device backends on a pinned cell set (same scenario, same
    apps, same device count per cell) and print a per-backend scorecard.

    The device backend must never change what a minion computes, so the
    verb *fails* (exit 1) if any app's minion output digest differs across
    backends; the throughput/GC/zone columns then isolate what the backend
    does change.  Cells are hermetic matrix jobs — they shard across
    ``--workers`` and cache — and the trailing scorecard digest is the
    byte-stable identity CI pins.  Table I rows are printed first for
    context: the comparison is between *device backends of this prototype*,
    not between the systems the paper surveys.
    """
    from repro.parallel import backends_jobs, payload_digest

    _, payload = _scenario_payload(args)
    backends = tuple(args.backends)
    apps = tuple(args.apps)
    report = _run_matrix(
        backends_jobs(backends, payload, apps=apps, devices=args.devices), args
    )
    values = report.values()
    print(format_series_table(
        "Table I context (architectural approaches)",
        ["system", "compute", "os", "apps", "interface"],
        table1_rows(),
    ))
    rows = [
        [
            value["backend"], value["app"], value["devices"], value["minions"],
            f"{value['throughput_mb_s']:.3f}", value["gc_collections"],
            f"{value['write_amplification']:.4f}",
            value["zones"]["resets"] if "zones" in value else "-",
            value["zones"]["retired"] if "zones" in value else "-",
            value["output_digest"],
        ]
        for value in values
    ]
    print(format_series_table(
        "backend scorecard (identical workload per backend)",
        ["backend", "app", "devices", "minions", "MB/s", "GC",
         "WA", "resets", "retired", "output digest"],
        rows,
    ))
    for backend in backends:
        cells = [value for value in values if value["backend"] == backend]
        print(f"{backend} digest={payload_digest(cells)}")
    print(f"scorecard digest={payload_digest(values)}")
    failures = []
    for app in apps:
        digests = {
            value["output_digest"] for value in values if value["app"] == app
        }
        if len(digests) > 1:
            failures.append(
                f"{app}: minion output differs across backends ({sorted(digests)})"
            )
    if failures:
        for failure in failures:
            print(f"backends failed: {failure}", file=sys.stderr)
        raise SystemExit(1)


def _cmd_metrics(args: argparse.Namespace) -> None:
    """Run a workload with full observability on; dump every export surface.

    Emits the Prometheus text exposition, the JSON-lines samples, and the
    reconstructed span tree of the first minion — the six Table III
    lifecycle steps in causal order.
    """
    from repro.cluster import StorageNode
    from repro.cluster.scheduler import LeastLoadedBalancer, MinionDispatcher
    from repro.obs import (
        MetricsRegistry,
        adopt_records,
        build_span_trees,
        format_span_tree,
        to_json_lines,
        to_prometheus,
    )
    from repro.proto import Command
    from repro.sim import Tracer
    from repro.workloads import BookCorpus, CorpusSpec

    tracer = Tracer()
    metrics = MetricsRegistry()
    node = StorageNode.build(
        devices=args.devices,
        device_capacity=32 * 1024 * 1024,
        tracer=tracer,
        metrics=metrics,
    )
    sim = node.sim
    books = BookCorpus(CorpusSpec(files=args.files, mean_file_bytes=64 * 1024)).generate()
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))

    if args.workload in ("grep", "gawk"):
        commands = [Command(command_line=f"{args.workload} xylophone {b.name}") for b in books]
    else:
        commands = [Command(command_line=f"{args.workload} {b.name}") for b in books]
    dispatcher = MinionDispatcher(node.client, LeastLoadedBalancer(), metrics=metrics)
    sim.run(sim.process(dispatcher.submit_all(commands)))

    print("# == Prometheus exposition ==")
    print(to_prometheus(metrics))
    print("# == JSON lines ==")
    print(to_json_lines(metrics))

    roots = build_span_trees(tracer)
    root = next(
        (roots[t] for t in sorted(roots) if roots[t].name == "minion.lifetime"), None
    )
    if root is None:
        print("# no minion span tree captured")
        return
    # flash traffic (Table III steps 3-4) has no span plumbing of its own;
    # fold the device's records into the tree by time window
    sent = next((e for e in root.events if e[1] == "client.minion.sent"), None)
    device = sent[2].get("device", "") if sent is not None else ""
    adopt_records(root, tracer, kinds=("flash.read",), component_prefix=f"{device}.flash")
    print("# == span tree: first minion (Table III lifecycle) ==")
    print(format_span_tree(root))


def _cmd_bench(args: argparse.Namespace) -> None:
    """Measure simulator throughput on the pinned scenarios.

    Reports events/sec and wall clock per scenario and (unless ``--no-save``)
    writes ``BENCH_sim.json`` — the repo's perf-trajectory baseline that
    ``benchmarks/test_perf_guard.py`` regresses against.
    """
    from repro.analysis.perf import (
        SCENARIOS,
        load_bench_json,
        profile_scenario,
        run_bench,
        run_scenario,
        write_bench_json,
    )

    if args.profile:
        for name in args.scenario or ["n8"]:
            print(f"# == profile: {name} ==")
            print(profile_scenario(SCENARIOS[name], limit=args.profile_limit))
        return

    if getattr(args, "shards", None):
        # Ad-hoc sharded variants of the pinned scenarios.  These are
        # exploration, not baselines (the pinned *-shard scenarios are the
        # recorded ones), so never write BENCH_sim.json here.
        from dataclasses import replace

        names = args.scenario or ["n1", "n4", "n8"]
        results = [
            run_scenario(
                replace(
                    SCENARIOS[name],
                    name=f"{name}-s{args.shards}",
                    shards=args.shards,
                    backend=args.shard_backend or "sequential",
                ),
                repeat=args.repeat,
            )
            for name in names
        ]
        print(format_series_table(
            f"sharded simulator throughput (best of {args.repeat})",
            ["scenario", "devices", "minions", "events", "wall ms",
             "events/sec"],
            [r.row() for r in results],
        ))
        return

    if args.workers > 1:
        print(
            "# bench: workers>1 contend for cores; treat numbers as "
            "exploration, not baselines (benchmarks/perf/README.md)",
            file=sys.stderr,
        )
    baseline = load_bench_json(args.output) if not args.no_save else load_bench_json()
    results = run_bench(args.scenario, repeat=args.repeat, workers=args.workers)
    rows = []
    for r in results:
        row = r.row()
        recorded = (baseline or {}).get("scenarios", {}).get(r.scenario)
        if recorded and recorded.get("events_per_sec"):
            row.append(f"{r.events_per_sec / recorded['events_per_sec']:.2f}x")
        else:
            row.append("-")
        rows.append(row)
    print(format_series_table(
        f"simulator throughput (best of {args.repeat})",
        ["scenario", "devices", "minions", "events", "wall ms", "events/sec",
         "vs baseline"],
        rows,
    ))
    if not args.no_save:
        path = write_bench_json(results, args.output)
        print(f"baseline written to {path}")


def _cmd_validate(args: argparse.Namespace) -> None:
    """Run the whole evaluation and print the reproduction scorecard.

    Claims are independent seeded experiments, so they shard across
    ``--workers`` processes; the scorecard is merged in paper order and is
    byte-identical at any worker count (and on cache hits).
    """
    from repro.analysis.validation import Claim
    from repro.parallel import validation_jobs

    _, payload = _scenario_payload(args)
    report = _run_matrix(validation_jobs(quick=args.quick, scenario=payload), args)
    claims = [Claim(**value) for value in report.values()]
    rows = [
        [("PASS" if c.passed else "FAIL"), c.source, c.claim, c.measured]
        for c in claims
    ]
    print(format_series_table(
        "reproduction scorecard", ["", "source", "paper claim", "measured"], rows
    ))
    failed = [c for c in claims if not c.passed]
    print(f"\n{len(claims) - len(failed)}/{len(claims)} claims reproduced")
    if failed:
        raise SystemExit(1)


def _cmd_quickstart(_args: argparse.Namespace) -> None:
    # late import: the examples directory is not a package
    from repro.cluster import StorageNode

    node = StorageNode.build(devices=1, device_capacity=16 * 1024 * 1024)
    sim = node.sim
    ssd = node.compstors[0]
    sim.run(sim.process(ssd.fs.write_file("hello.txt", b"fox\n" * 100)))

    def session():
        response = yield from node.client.run("compstor0", "grep fox hello.txt")
        print(f"in-situ grep matched {response.stdout.decode()} lines "
              f"in {response.execution_seconds * 1e3:.2f} ms on {response.device}")

    sim.run(sim.process(session()))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CompStor reproduction: regenerate the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="bandwidth mismatch (Fig. 1)")
    p.add_argument("--devices", type=int, nargs="+", default=[1, 4, 8, 16, 32, 64])
    _add_parallel_args(p)
    p.set_defaults(func=_cmd_fig1)

    p = sub.add_parser("fig6", help="linear scaling (Fig. 6)")
    p.add_argument("--app", default="grep",
                   choices=["grep", "gawk", "gzip", "gunzip", "bzip2", "bunzip2"])
    p.add_argument("--devices", type=int, nargs="+", default=[1, 2, 4])
    _add_parallel_args(p)
    _add_shard_args(p)
    add_scenario_args(p, default_preset="fig6")
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("fig7", help="aggregate host+devices bzip2 (Fig. 7)")
    p.add_argument("--devices", type=int, nargs="+", default=[1, 2, 4])
    _add_parallel_args(p)
    _add_shard_args(p)
    add_scenario_args(p, default_preset="fig6")
    p.set_defaults(func=_cmd_fig7)

    p = sub.add_parser("fig8", help="energy per GB (Fig. 8)")
    p.add_argument("--apps", nargs="+", default=list(FIG8_APPS),
                   choices=list(FIG8_APPS))
    _add_parallel_args(p)
    add_scenario_args(p, default_preset="fig8-ablation")
    p.set_defaults(func=_cmd_fig8)

    p = sub.add_parser("table1", help="related-work capability matrix (Table I)")
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("smart", help="device SMART/health log after a workload")
    p.add_argument("--files", type=int, default=4)
    add_scenario_args(p, default_preset="smoke")
    p.set_defaults(func=_cmd_smart)

    p = sub.add_parser("fleet", help="fleet weak-scaling sweep")
    p.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4])
    p.add_argument("--devices", type=int, default=2)
    p.add_argument("--books-per-node", type=int, default=8)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser("chaos", help="fleet job under injected faults (recovery drill)")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--devices", type=int, default=2, help="CompStors per node")
    p.add_argument("--books", type=int, default=8)
    p.add_argument("--replicas", type=int, default=2, help="copies of each book")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kill", action="append", default=[], metavar="IDX@MS",
                   help="crash device at ring index IDX, MS ms after staging (repeatable)")
    p.add_argument("--agent-crash", action="append", default=[], metavar="IDX@MS",
                   help="crash the ISPS agent daemon (repeatable)")
    p.add_argument("--limp", action="append", default=[], metavar="IDX@MS",
                   help="slow the device front end (repeatable)")
    p.add_argument("--transient", action="append", default=[], metavar="IDX@MS",
                   help="open a transient NVMe failure window (repeatable)")
    p.add_argument("--recover-after", type=float, default=None,
                   help="killed-device recovery delay in ms (default: permanent)")
    p.add_argument("--restart-after", type=float, default=2.0,
                   help="agent supervised-restart delay in ms")
    p.add_argument("--limp-factor", type=float, default=4.0)
    p.add_argument("--limp-duration", type=float, default=None,
                   help="limp window in ms (default: permanent)")
    p.add_argument("--transient-fraction", type=float, default=0.2)
    p.add_argument("--transient-duration", type=float, default=2.0, help="ms")
    p.add_argument("--random", type=int, default=0, metavar="N",
                   help="add N random faults derived deterministically from --seed")
    add_scenario_args(p)
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "traffic", help="multi-tenant serving drill (admission/WFQ/SLO scorecard)"
    )
    p.add_argument(
        "--mixes", nargs="+", default=["poisson", "diurnal", "bursty"],
        choices=["poisson", "diurnal", "bursty"],
        help="arrival mixes to serve, one matrix cell each",
    )
    _add_parallel_args(p)
    _add_shard_args(p)
    add_scenario_args(p, default_preset="traffic-smoke")
    p.set_defaults(func=_cmd_traffic)

    p = sub.add_parser(
        "drill",
        help="metastable-failure drill (closed-loop load, defenses on vs off)",
    )
    _add_parallel_args(p)
    add_scenario_args(p, default_preset="metastable")
    p.set_defaults(func=_cmd_drill)

    p = sub.add_parser(
        "objstore",
        help="dedup object-store drill (in-situ chunk+hash, GC under crash)",
    )
    p.add_argument(
        "--sweep", type=float, nargs="*", default=None, metavar="DIAL",
        help="run the dedup-ratio sweep instead of the drill pair; optional "
             "dial list overrides the default 0.0 0.25 0.5 0.75 0.9",
    )
    _add_parallel_args(p)
    add_scenario_args(p, default_preset="objstore-smoke")
    p.set_defaults(func=_cmd_objstore)

    p = sub.add_parser(
        "backends",
        help="device-backend comparison (page vs zoned; minion outputs "
             "must match across backends)",
    )
    p.add_argument(
        "--backends", nargs="+", default=list(DEVICE_BACKENDS),
        choices=list(DEVICE_BACKENDS),
        help="device backends to compare, one cell set each",
    )
    p.add_argument(
        "--apps", nargs="+", default=["grep", "gzip"],
        choices=["grep", "gawk", "gzip", "bzip2"],
        help="apps to run per backend; outputs are digested per app",
    )
    p.add_argument("--devices", type=int, default=2,
                   help="CompStors per cell (weak scaling: files scale with it)")
    _add_parallel_args(p)
    add_scenario_args(p, default_preset="smoke")
    p.set_defaults(func=_cmd_backends)

    p = sub.add_parser(
        "shard",
        help="sharded scale-out run (conservative time sync; digests must "
             "match at every shard count)",
    )
    p.add_argument("--shards", dest="counts", type=int, nargs="+",
                   default=[1, 2, 4],
                   help="shard counts to sweep; scorecard digests must match")
    p.add_argument("--backend", default=None,
                   choices=["sequential", "process"],
                   help="execution backend override (default: scenario's)")
    p.add_argument("--window-us", dest="window_us", type=float, default=None,
                   help="host dispatch window in simulated us "
                        "(default: workload's)")
    _add_parallel_args(p)
    add_scenario_args(p, default_preset="smoke")
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser("metrics", help="observability dump: metrics + span tree")
    p.add_argument("--workload", default="grep",
                   choices=["grep", "gawk", "gzip", "bzip2"])
    p.add_argument("--devices", type=int, default=4)
    p.add_argument("--files", type=int, default=4)
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser("bench", help="simulator wall-clock perf harness")
    p.add_argument("--scenario", nargs="+", default=None,
                   choices=["small", "n1", "n4", "n8", "n16", "n64",
                            "n16-shard", "n64-shard", "zoned-n8"],
                   help="pinned scenarios to run (default: n1 n4 n8)")
    p.add_argument("--repeat", type=int, default=3,
                   help="repetitions per scenario; fastest run is kept")
    p.add_argument("--output", default=None,
                   help="baseline path (default: <repo>/BENCH_sim.json)")
    p.add_argument("--no-save", action="store_true",
                   help="measure and print only; do not rewrite the baseline")
    p.add_argument("--profile", action="store_true",
                   help="cProfile the measured region instead of timing it")
    p.add_argument("--profile-limit", type=int, default=25,
                   help="rows of the profile table to print")
    _add_parallel_args(p, cached=False)
    _add_shard_args(p)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("validate", help="grade every paper claim (scorecard)")
    p.add_argument("--quick", action="store_true", help="smaller device sweep")
    _add_parallel_args(p)
    add_scenario_args(p, default_preset="fig6")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("quickstart", help="minimal end-to-end in-situ grep")
    p.set_defaults(func=_cmd_quickstart)

    add_config_subparser(sub)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
