"""Host side: the server model, the in-situ client library, and the client.

- :class:`HostServer` — Table IV's machine: Xeon E5-2620 v4, 32 GB DDR4,
  platform power, with an OS mounted over an NVMe-attached drive;
- :class:`InSituClient` — the paper's statically-linked **in-situ library**:
  high-level APIs that configure minions/queries and move them over NVMe
  vendor commands.  It lives *only* on the client; off-loadable executables
  need no modification (contrast with rewrite-the-app frameworks).
"""

from repro.host.insitu import BreakerOpen, InSituClient, InSituError
from repro.host.server import HostServer

__all__ = ["BreakerOpen", "HostServer", "InSituClient", "InSituError"]
