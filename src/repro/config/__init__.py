"""``repro.config`` — the unified typed scenario layer.

One :class:`ScenarioConfig` describes a whole experiment — flash geometry,
FTL/ECC tuning, NVMe queues, PCIe topology, the ISPS CPU model, fleet
shape, corpus, recovery policy, fault plan, observability — and everything
else derives from it:

- **identity**: :func:`config_digest` hashes the canonical JSON
  (:func:`canonical_json` + :func:`to_dict`); the digest is printed in
  scorecard headers and participates in the parallel runner's cache keys;
- **variation**: :func:`apply_overrides` implements the CLI's dotted-path
  ``--set`` grammar; :func:`preset` serves the pinned registry
  (``paper-prototype``, ``smoke``, ``fig6``, ``fig8-ablation``,
  ``chaos-drill``);
- **construction**: :func:`build_device` / :func:`build_node` /
  :func:`build_fleet` turn a scenario into live simulator objects —
  the single construction path the legacy ``StorageNode.build`` /
  ``StorageFleet.build`` wrappers delegate to.
"""

from repro.config.codec import (
    ConfigError,
    canonical_json,
    config_digest,
    flatten,
    from_dict,
    scenario_from_dict,
    to_dict,
)
from repro.config.factory import (
    bind_metrics_clock,
    build_corpus,
    build_device,
    build_fault_plan,
    build_fleet,
    build_node,
    build_observability,
)
from repro.config.overrides import apply_overrides, parse_assignments
from repro.config.presets import PRESETS, preset, preset_names
from repro.config.schema import (
    DEVICE_BACKENDS,
    BurnWindowConfig,
    ClosedLoopConfig,
    DeviceBackendConfig,
    FaultSpec,
    FaultsConfig,
    FlashConfig,
    FleetConfig,
    IspsConfig,
    NvmeConfig,
    ObjstoreConfig,
    ObsConfig,
    OverloadConfig,
    PcieConfig,
    ScenarioConfig,
    ShardingConfig,
)

__all__ = [
    "BurnWindowConfig",
    "ClosedLoopConfig",
    "ConfigError",
    "DEVICE_BACKENDS",
    "DeviceBackendConfig",
    "FaultSpec",
    "FaultsConfig",
    "FlashConfig",
    "FleetConfig",
    "IspsConfig",
    "NvmeConfig",
    "ObjstoreConfig",
    "ObsConfig",
    "OverloadConfig",
    "PRESETS",
    "PcieConfig",
    "ScenarioConfig",
    "ShardingConfig",
    "apply_overrides",
    "bind_metrics_clock",
    "build_corpus",
    "build_device",
    "build_fault_plan",
    "build_fleet",
    "build_node",
    "build_observability",
    "canonical_json",
    "config_digest",
    "flatten",
    "from_dict",
    "parse_assignments",
    "preset",
    "preset_names",
    "scenario_from_dict",
    "to_dict",
]
