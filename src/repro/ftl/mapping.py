"""Page-level address mapping.

:class:`PageMap` maintains the logical-to-physical map (L2P), the reverse
map (P2L) and per-block valid-page counts as flat NumPy arrays.  All three
views are updated atomically by each mutator, preserving the invariants:

- ``l2p[lpn] == ppn  <=>  p2l[ppn] == lpn`` for every mapped pair;
- ``valid_count[block] == |{ppn in block : p2l[ppn] != UNMAPPED}|``.

The property-based tests in ``tests/test_ftl_mapping.py`` drive random
operation sequences against these invariants.
"""

from __future__ import annotations

import numpy as np

from repro.flash.geometry import FlashGeometry

__all__ = ["PageMap", "UNMAPPED"]

#: Sentinel for "no mapping".
UNMAPPED = -1


class PageMap:
    """L2P/P2L map over a flash geometry.

    Parameters
    ----------
    geometry:
        Physical geometry (defines the physical page count).
    logical_pages:
        Exported logical page count (< physical total because of
        over-provisioning).
    """

    def __init__(self, geometry: FlashGeometry, logical_pages: int):
        if not 0 < logical_pages <= geometry.pages:
            raise ValueError(
                f"logical_pages must be in (0, {geometry.pages}], got {logical_pages}"
            )
        self.geometry = geometry
        self.logical_pages = logical_pages
        self.l2p = np.full(logical_pages, UNMAPPED, dtype=np.int64)
        self.p2l = np.full(geometry.pages, UNMAPPED, dtype=np.int64)
        self.valid_count = np.zeros(geometry.blocks, dtype=np.int32)

    # -- queries -----------------------------------------------------------
    def lookup(self, lpn: int) -> int:
        """Physical page for ``lpn`` or :data:`UNMAPPED`."""
        self._check_lpn(lpn)
        return int(self.l2p[lpn])

    def reverse(self, ppn: int) -> int:
        """Logical page stored at ``ppn`` or :data:`UNMAPPED`."""
        self._check_ppn(ppn)
        return int(self.p2l[ppn])

    def is_mapped(self, lpn: int) -> bool:
        return self.lookup(lpn) != UNMAPPED

    def valid_pages_in_block(self, block_index: int) -> int:
        return int(self.valid_count[block_index])

    def mapped_logical_pages(self) -> int:
        return int(np.count_nonzero(self.l2p != UNMAPPED))

    def valid_lpns_in_block(self, block_index: int) -> list[int]:
        """Logical pages whose current copy lives in ``block_index``."""
        per_block = self.geometry.pages_per_block
        start = block_index * per_block
        segment = self.p2l[start : start + per_block]
        return [int(lpn) for lpn in segment[segment != UNMAPPED]]

    # -- mutations -----------------------------------------------------------
    def bind(self, lpn: int, ppn: int) -> int:
        """Map ``lpn`` to ``ppn``; returns the previous ppn (now stale) or
        :data:`UNMAPPED`.  The caller owns invalidating/erasing the old copy's
        block — this method already decrements its valid count."""
        self._check_lpn(lpn)
        self._check_ppn(ppn)
        if self.p2l[ppn] != UNMAPPED:
            raise ValueError(f"ppn {ppn} already holds lpn {int(self.p2l[ppn])}")
        old = int(self.l2p[lpn])
        if old != UNMAPPED:
            self.p2l[old] = UNMAPPED
            self.valid_count[old // self.geometry.pages_per_block] -= 1
        self.l2p[lpn] = ppn
        self.p2l[ppn] = lpn
        self.valid_count[ppn // self.geometry.pages_per_block] += 1
        return old

    def unbind(self, lpn: int) -> int:
        """Drop the mapping for ``lpn`` (TRIM); returns the stale ppn or
        :data:`UNMAPPED` if it was not mapped."""
        self._check_lpn(lpn)
        old = int(self.l2p[lpn])
        if old != UNMAPPED:
            self.l2p[lpn] = UNMAPPED
            self.p2l[old] = UNMAPPED
            self.valid_count[old // self.geometry.pages_per_block] -= 1
        return old

    def release_block(self, block_index: int) -> None:
        """Assert a block is fully invalid before erase (GC postcondition)."""
        if self.valid_count[block_index] != 0:
            raise ValueError(
                f"block {block_index} still has {int(self.valid_count[block_index])} "
                "valid pages; GC must relocate them before erase"
            )

    # -- invariants (used by property tests and debug builds) ------------------
    def check_invariants(self) -> None:
        mapped = np.flatnonzero(self.l2p != UNMAPPED)
        for lpn in mapped:
            ppn = self.l2p[lpn]
            assert self.p2l[ppn] == lpn, f"l2p/p2l disagree at lpn {lpn}"
        held = np.flatnonzero(self.p2l != UNMAPPED)
        for ppn in held:
            lpn = self.p2l[ppn]
            assert self.l2p[lpn] == ppn, f"p2l/l2p disagree at ppn {ppn}"
        per_block = self.geometry.pages_per_block
        counts = np.zeros_like(self.valid_count)
        for ppn in held:
            counts[ppn // per_block] += 1
        assert (counts == self.valid_count).all(), "valid_count drifted"

    # -- guards ---------------------------------------------------------------
    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"lpn {lpn} out of range [0, {self.logical_pages})")

    def _check_ppn(self, ppn: int) -> None:
        if not 0 <= ppn < self.geometry.pages:
            raise ValueError(f"ppn {ppn} out of range [0, {self.geometry.pages})")
