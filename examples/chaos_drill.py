#!/usr/bin/env python3
"""Chaos drill: kill a device mid-job and watch the fleet recover.

A replicated fleet (two copies of every book on consecutive ring devices)
runs a scan job while a fault plan crashes one device outright and opens a
transient-error window on another.  The in-situ client retries transport
faults with backoff, the circuit breaker fences off the dead drive, and
the coordinator reroutes its minions to surviving replicas — the job
degrades instead of failing, and the report accounts for every minion:
``completed + recovered + lost == dispatched``.

Run:  python examples/chaos_drill.py
      python -m repro chaos --kill 1@0.2 --transient 2@0.0   # CLI twin
"""

from repro.analysis.experiments import format_series_table
from repro.cluster import StorageFleet
from repro.faults import BreakerConfig, FaultInjector, FaultPlan, RetryPolicy
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec


def main() -> None:
    fleet = StorageFleet.build(
        nodes=2,
        devices_per_node=2,
        device_capacity=24 * 1024 * 1024,
        retry_policy=RetryPolicy(),          # backoff for transient faults
        breaker_config=BreakerConfig(),      # fail-fast on persistent death
    )
    sim = fleet.sim
    books = BookCorpus(CorpusSpec(files=8, mean_file_bytes=32 * 1024)).generate()
    sim.run(sim.process(fleet.stage_corpus(books, replicas=2)))

    # schedule the trouble: one permanent crash, one flaky window
    ring = fleet.device_ring()
    plan = (
        FaultPlan()
        .kill_device(*ring[1], at=sim.now + 2e-4)                    # dies mid-job
        .transient_window(*ring[2], at=sim.now, duration=1e-3, fraction=0.4)
    )
    print(format_series_table(
        f"fault plan (fingerprint={plan.fingerprint()})",
        ["t (ms)", "kind", "target", "detail"], plan.describe_rows(),
    ))
    injector = FaultInjector.for_fleet(fleet, plan).start()

    def job():
        report = yield from fleet.run_job(
            books, lambda b: Command(command_line=f"grep xylophone {b.name}")
        )
        return report

    report = sim.run(sim.process(job()))
    print(format_series_table(
        "degraded-mode job report", ["attribute", "value"], report.rows()
    ))
    for _, what in injector.applied:
        print(f"  injected: {what}")
    print()

    def poll():
        return (yield from fleet.health())

    health = sim.run(sim.process(poll()))
    print(format_series_table("fleet health", ["attribute", "value"], health.rows()))
    verdict = "lost work!" if report.lost else "no minion was lost"
    print(f"\n{report.recovered} of {report.dispatched} minions rerouted; {verdict}")


if __name__ == "__main__":
    main()
