"""repro — a simulation-based reproduction of CompStor (IPDPS-W 2018).

CompStor is an in-storage computation platform: an NVMe SSD with a dedicated
in-situ processing subsystem (ISPS: quad ARM A53 + embedded Linux) and a host
software stack that ships *minions* (computation requests) and *queries*
(admin/telemetry requests) into the drive.

Subpackage map (bottom-up):

- ``repro.sim``   — discrete-event simulation kernel
- ``repro.flash`` — NAND media (geometry, timing, energy, wear, BER)
- ``repro.ecc``   — BCH-style error correction engine
- ``repro.ftl``   — flash translation layer (mapping, GC, wear leveling, TRIM)
- ``repro.nvme``  — NVMe front-end (queues, command set, vendor ISC opcodes)
- ``repro.pcie``  — PCIe links, switch, root complex topology
- ``repro.cpu``   — CPU core/cluster models (ARM A53, Xeon E5-2620 v4)
- ``repro.isos``  — embedded OS (scheduler, processes, filesystem, shell)
- ``repro.isps``  — in-situ processing subsystem + agent daemon + telemetry
- ``repro.proto`` — Command / Response / Minion / Query entities + transport
- ``repro.host``  — host server, client, in-situ library
- ``repro.ssd``   — device assemblies (CompStor, conventional SSD)
- ``repro.apps``  — offloadable applications (gzip/bzip2/grep/gawk/...)
- ``repro.workloads`` — synthetic book corpus and dataset staging
- ``repro.power`` — component power models and the energy meter
- ``repro.baselines`` — host-only / shared-core / FPGA comparators, Table I
- ``repro.cluster``   — multi-device nodes, dispatch, load balancing
- ``repro.config``    — typed scenario tree, presets, digests, factories
- ``repro.analysis``  — calibration constants, experiment harness, reports
"""

__version__ = "1.0.0"
