"""Device status telemetry.

Returned by STATUS queries; the paper: "get information about the current
status of CompStor such as ARM cores utilization, or temperature of the
cores.  This information could be used for load balancing."
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TelemetrySnapshot"]


@dataclass(frozen=True, slots=True)
class TelemetrySnapshot:
    """Point-in-time device health/status."""

    device: str
    time: float
    core_utilization: float
    temperature_c: float
    running_processes: int
    active_minions: int
    uptime: float
    free_bytes: int
    #: Degradation history (PR 2): runaway tasks the watchdog killed,
    #: minions lost to device/agent death, and supervised agent restarts.
    watchdog_kills: int = 0
    minions_aborted: int = 0
    agent_restarts: int = 0

    def load_score(self) -> float:
        """Scalar used by load balancers (higher = busier).

        Active minions dominate; utilisation breaks ties between devices
        with equal queue depth.  A degradation penalty steers placeable
        work away from devices with a history of killing or losing work —
        a limping drive should not win ties against a healthy one.
        """
        penalty = (
            0.25 * self.watchdog_kills
            + 0.5 * self.minions_aborted
            + 1.0 * self.agent_restarts
        )
        return self.active_minions + self.core_utilization + penalty
