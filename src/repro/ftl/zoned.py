"""Zoned (ZNS-style) translation backend.

:class:`ZonedFtl` exports the same logical page device as the page-mapped
FTL — so every consumer (NVMe controller, ISPS flash access driver,
staging, objstore) runs unmodified — but organises the media as
**zones**: fixed groups of whole erase blocks that admit only sequential
writes and are reclaimed by whole-zone reset.

Semantics modeled:

- **zone-append allocation** — host writes are out-of-place appends at the
  write pointer of an open zone; up to ``max_open_zones`` host zones accept
  appends concurrently (one in-flight program per zone, so the NAND array's
  in-order-within-block rule holds by construction);
- **write-pointer tracking** — one monotone pointer per zone, advancing
  from 0 to ``zone_pages`` and returning to 0 only through a reset;
- **explicit zone reset** — :meth:`reset_zone` drops a zone's mappings and
  erases all its blocks (the destructive host-side operation);
- **whole-zone GC with copy-forward** — when free zones run low the
  collector picks the full zone with the fewest valid pages, appends every
  live page into its own GC zone (carrying the original OOB stamp), then
  resets the victim;
- **zone-state telemetry** — empty/open/full/offline counts, per-zone
  write pointers, reset and retirement counters (:meth:`zone_report`).

Timing and error behaviour reuse the existing flash/ECC models untouched:
program/erase costs, retention-driven bit errors, grown bad blocks (an
erase failure during reset takes the whole zone offline).
"""

from __future__ import annotations

from collections import deque
from enum import IntEnum
from typing import Generator

import numpy as np

from repro.ecc import EccEngine, UncorrectableError
from repro.flash.package import EraseFailure, FlashArray
from repro.ftl.ftl import FtlConfig, LogicalIOError
from repro.ftl.mapping import UNMAPPED, PageMap
from repro.ftl.write_buffer import WriteBuffer
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.sim import Event, Resource, Simulator, Tracer
from repro.sim.trace import NULL_TRACER

__all__ = ["ZoneState", "ZonedFtl"]


class ZoneState(IntEnum):
    EMPTY = 0
    OPEN = 1
    FULL = 2
    OFFLINE = 3  # grown bad block inside the zone: out of service


class ZonedFtl:
    """Logical page device over zones of a :class:`FlashArray`.

    ``zone_blocks`` whole erase blocks form one zone (trailing blocks that
    do not fill a zone are left unused); ``max_open_zones`` bounds the host
    append parallelism.  Over-provisioning, write-buffer size, and latency
    knobs come from the shared :class:`~repro.ftl.ftl.FtlConfig`.
    """

    HOST = 0
    GC = 1

    def __init__(
        self,
        sim: Simulator,
        flash: FlashArray,
        ecc: EccEngine,
        config: FtlConfig | None = None,
        zone_blocks: int = 4,
        max_open_zones: int = 4,
        name: str = "ftl",
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if zone_blocks < 1:
            raise ValueError("zone_blocks must be >= 1")
        if max_open_zones < 1:
            raise ValueError("max_open_zones must be >= 1")
        self.sim = sim
        self.flash = flash
        self.ecc = ecc
        self.config = config or FtlConfig()
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS

        geo = flash.geometry
        self.zone_blocks = zone_blocks
        self.zone_pages = zone_blocks * geo.pages_per_block
        self.zone_count = geo.blocks // zone_blocks
        if self.zone_count < 3:
            raise ValueError(
                f"geometry yields {self.zone_count} zones of {zone_blocks} "
                "blocks; need >= 3 (one open, one GC, one free)"
            )
        covered = self.zone_count * self.zone_pages
        self.logical_pages = int(covered * (1.0 - self.config.op_ratio))
        if self.logical_pages < 1:
            raise ValueError("over-provisioning leaves no logical capacity")
        if covered - self.logical_pages < 2 * self.zone_pages:
            raise ValueError(
                "over-provisioning slack must be at least two zones "
                f"({2 * self.zone_pages} pages) for deadlock-free zone GC; "
                f"got {covered - self.logical_pages} pages — raise op_ratio "
                "or shrink zone_blocks"
            )
        self.page_map = PageMap(geo, self.logical_pages)

        # zone state
        self._zone_state = np.full(self.zone_count, ZoneState.EMPTY, dtype=np.uint8)
        self._zone_wp = np.zeros(self.zone_count, dtype=np.int32)
        self._readers = np.zeros(self.zone_count, dtype=np.int32)
        self._writers = np.zeros(self.zone_count, dtype=np.int32)
        self._free: deque[int] = deque(range(self.zone_count))

        # append slots: each open zone is owned by one (stream, slot) lock,
        # so appends to a zone serialise while distinct zones run parallel
        self._slots = {self.HOST: max_open_zones, self.GC: 1}
        self._open: dict[int, list[int | None]] = {
            stream: [None] * count for stream, count in self._slots.items()
        }
        self._locks = {
            (stream, slot): Resource(sim, capacity=1, name=f"{name}.z{stream}s{slot}")
            for stream, count in self._slots.items()
            for slot in range(count)
        }
        self._rr = {self.HOST: 0, self.GC: 0}

        self._buffer_hit_latency = self.config.buffer_hit_latency
        self.reader_quiesce_delay = self.config.reader_quiesce_delay

        self.write_buffer = WriteBuffer(
            sim,
            self.config.write_buffer_pages,
            destage=self._destage,
            name=f"{name}.wbuf",
            workers=max(4, max_open_zones),
        )

        self._destaging: set[int] = set()
        self._reclaiming: set[int] = set()
        self._write_seq = 0

        # statistics
        self.host_reads = 0
        self.host_writes = 0
        self.host_pages_programmed = 0
        self.buffer_read_hits = 0
        self.trims = 0
        self.uncorrectable_reads = 0
        self.gc_collections = 0
        self.gc_pages_relocated = 0
        self.relocation_failures = 0
        self.zone_resets = 0
        self.zones_retired = 0

        # whole-zone collector, driven by free-zone watermarks
        self._gc_low = 1
        self._gc_high = 2
        self._gc_kick: Event | None = None
        self._gc_idle = True
        self._gc_process = sim.process(self._gc_run(), name=f"{name}.gc")

    # -- capacity ------------------------------------------------------------
    @property
    def logical_capacity_bytes(self) -> int:
        return self.logical_pages * self.flash.geometry.page_size

    @property
    def page_size(self) -> int:
        return self.flash.geometry.page_size

    def write_amplification(self) -> float:
        if self.host_pages_programmed == 0:
            return 0.0
        return self.flash.stats.programs / self.host_pages_programmed

    # -- zone accessors ------------------------------------------------------
    def zone_state(self, zone: int) -> ZoneState:
        return ZoneState(int(self._zone_state[zone]))

    def write_pointer(self, zone: int) -> int:
        return int(self._zone_wp[zone])

    def zone_of(self, ppn: int) -> int:
        return ppn // self.zone_pages

    def _zone_block_range(self, zone: int) -> range:
        start = zone * self.zone_blocks
        return range(start, start + self.zone_blocks)

    def _zone_valid_pages(self, zone: int) -> int:
        return sum(
            self.page_map.valid_pages_in_block(block)
            for block in self._zone_block_range(zone)
        )

    # -- logical operations --------------------------------------------------
    def read(self, lpn: int) -> Generator:
        """Read one logical page; ``bytes | None`` (None = unwritten)."""
        self._check_lpn(lpn)
        self.host_reads += 1
        hit, data = self.write_buffer.peek(lpn)
        if hit:
            self.buffer_read_hits += 1
            yield self.sim.timeout(self._buffer_hit_latency)
            return data
        ppn = self.page_map.lookup(lpn)
        if ppn == UNMAPPED:
            yield self.sim.timeout(self._buffer_hit_latency)
            return None
        geo = self.flash.geometry
        zone = ppn // self.zone_pages
        self._readers[zone] += 1
        try:
            result = yield from self.flash.read_page(geo.page_address(ppn))
            try:
                yield from self.ecc.decode_page(geo.page_size, result.raw_bit_errors)
            except UncorrectableError as exc:
                self.uncorrectable_reads += 1
                raise LogicalIOError(f"uncorrectable read at lpn {lpn}") from exc
        finally:
            self._readers[zone] -= 1
        return result.data

    def write(self, lpn: int, data: bytes | None) -> Generator:
        """Write one logical page (fast-release: returns on buffer insert)."""
        self._check_lpn(lpn)
        if data is not None and len(data) > self.page_size:
            raise ValueError(f"payload {len(data)}B exceeds page size {self.page_size}B")
        self.host_writes += 1
        yield from self.write_buffer.put(lpn, data)
        return None

    def trim(self, lpns: "list[int] | range") -> Generator:
        for lpn in lpns:
            self._check_lpn(lpn)
        yield self.sim.timeout(self.config.trim_latency)
        for lpn in lpns:
            self.write_buffer.discard(lpn)
            while lpn in self._destaging:
                yield self.sim.timeout(self.config.reader_quiesce_delay)
            self.page_map.unbind(lpn)
            self.trims += 1
        self._kick_gc()
        return None

    def flush(self) -> Generator:
        yield from self.write_buffer.flush()
        return None

    # -- append path ---------------------------------------------------------
    def _destage(self, lpn: int, data: bytes | None) -> Generator:
        self._destaging.add(lpn)
        try:
            yield from self._append(lpn, data, stream=self.HOST, expect_ppn=None)
        finally:
            self._destaging.discard(lpn)
        self.host_pages_programmed += 1

    def _unwritten_pages(self) -> int:
        """Unprogrammed pages the streams can still reach: free zones plus
        the remaining space of every open zone (host and GC)."""
        pages = len(self._free) * self.zone_pages
        for zones in self._open.values():
            for zone in zones:
                if zone is not None:
                    pages += self.zone_pages - int(self._zone_wp[zone])
        return pages

    def _append(
        self,
        lpn: int,
        data: bytes | None,
        stream: int,
        expect_ppn: int | None,
        oob: dict | None = None,
    ) -> Generator:
        """Zone append: program at an open zone's write pointer, then bind.

        ``expect_ppn`` is GC's compare-and-bind: if the host overwrote the
        page mid-relocation, the fresh copy stays unbound and is reclaimed
        with its zone later.  The program completes while the slot lock is
        held, so each zone's pointer only ever advances in program order.

        Admission is **page-based**: the host never dips into one zone's
        worth of unwritten pages, so the collector can always relocate any
        victim (``valid < zone_pages``) — borrowing host open-zone space if
        no free zone remains — and every collection repays a whole zone.
        A zone-count reserve is not enough: when every full zone is 100%
        valid (zero invalid pages anywhere) the host must still be able to
        reach the remaining unwritten pages, because only its overwrites
        can create the invalid pages GC needs.
        """
        if oob is None:
            self._write_seq += 1
            oob = {"lpn": lpn, "seq": self._write_seq}
        slots = self._slots[stream]
        stalls = 0
        while True:
            if stream == self.HOST:
                inflight = int(self._writers.sum())
                if self._unwritten_pages() - inflight <= self.zone_pages:
                    # collector reserve floor reached: stall an erase cycle
                    # while GC reclaims.  Repeated stalls against an idle
                    # collector mean genuine exhaustion — but re-check after
                    # the sleep: GC may have freed zones during the stall.
                    self._kick_gc()
                    yield self.sim.timeout(self.flash.timing.t_erase)
                    stalls += 1
                    if stalls >= 8 and self._gc_idle and self._host_stuck():
                        raise LogicalIOError("device full: no reclaimable zones")
                    continue
            for _ in range(slots):
                slot = self._rr[stream]
                self._rr[stream] = (slot + 1) % slots
                done = yield from self._append_in_slot(
                    stream, slot, lpn, data, expect_ppn, oob, open_fresh=True
                )
                if done:
                    return None
            if stream == self.GC:
                # No free zone for the collector: borrow remaining space in
                # a host open zone (under that slot's lock, preserving the
                # one-writer-per-zone program order).  The admission floor
                # above guarantees this space exists for any chosen victim.
                for hslot in range(self._slots[self.HOST]):
                    done = yield from self._append_in_slot(
                        self.HOST, hslot, lpn, data, expect_ppn, oob,
                        open_fresh=False,
                    )
                    if done:
                        return None
                yield self.sim.timeout(self.flash.timing.t_erase)
                continue
            # Host passed admission but found no open slot (space sits in
            # the GC zone): wait for the collector to free a zone.
            self._kick_gc()
            yield self.sim.timeout(self.flash.timing.t_erase)
            stalls += 1
            if stalls >= 8 and self._gc_idle and self._host_stuck():
                raise LogicalIOError("device full: no reclaimable zones")

    def _host_stuck(self) -> bool:
        """True when a host append cannot make progress right now: below
        the collector's reserve floor, or no free zone and every host open
        zone closed.  Checked at raise time so a stall that GC resolved
        mid-sleep retries instead of failing (no lost wakeup)."""
        inflight = int(self._writers.sum())
        if self._unwritten_pages() - inflight <= self.zone_pages:
            return True
        if self._free:
            return False
        return all(
            zone is None or int(self._zone_wp[zone]) >= self.zone_pages
            for zone in self._open[self.HOST]
        )

    def _append_in_slot(
        self,
        stream: int,
        slot: int,
        lpn: int,
        data: bytes | None,
        expect_ppn: int | None,
        oob: dict,
        open_fresh: bool,
    ) -> Generator:
        """Try one append under ``(stream, slot)``'s lock; True if programmed.

        ``open_fresh`` lets the slot pull a new zone from the free list;
        the GC borrow path passes False to use only already-open space.
        """
        geo = self.flash.geometry
        lock = self._locks[(stream, slot)]
        with lock.request() as req:
            yield req
            zone = self._slot_zone(stream, slot, open_fresh=open_fresh)
            if zone is None:
                return False
            wp = int(self._zone_wp[zone])
            ppn = zone * self.zone_pages + wp
            self._writers[zone] += 1
            try:
                yield from self.ecc.encode_page(geo.page_size)
                yield from self.flash.program_page(
                    geo.page_address(ppn), data, oob=oob
                )
                self._zone_wp[zone] = wp + 1
                if wp + 1 == self.zone_pages:
                    self._zone_state[zone] = ZoneState.FULL
                    self._open[stream][slot] = None
                if expect_ppn is None or self.page_map.lookup(lpn) == expect_ppn:
                    self.page_map.bind(lpn, ppn)
            finally:
                self._writers[zone] -= 1
            if len(self._free) <= self._gc_low:
                self._kick_gc()
            return True

    def _slot_zone(self, stream: int, slot: int, open_fresh: bool = True) -> int | None:
        """The slot's open zone, opening a fresh one when needed/allowed."""
        zone = self._open[stream][slot]
        if zone is not None and int(self._zone_wp[zone]) < self.zone_pages:
            return zone
        if not open_fresh:
            return None
        zone = self._free.popleft() if self._free else None
        self._open[stream][slot] = zone
        if zone is not None:
            self._zone_state[zone] = ZoneState.OPEN
        return zone

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(f"lpn {lpn} out of range [0, {self.logical_pages})")

    # -- zone reset ----------------------------------------------------------
    def reset_zone(self, zone: int) -> Generator:
        """Explicit host-side zone reset: drop the zone's data and erase it.

        Destructive by design (ZNS reset semantics): any logical page still
        mapped into the zone reads as unwritten afterwards.  Open-slot and
        reclaiming zones are refused — close or let GC finish first.
        """
        if not 0 <= zone < self.zone_count:
            raise ValueError(f"zone {zone} out of range [0, {self.zone_count})")
        for stream, zones in self._open.items():
            if zone in zones:
                raise ValueError(f"zone {zone} is open for appends; cannot reset")
        if zone in self._reclaiming or self._zone_state[zone] == ZoneState.OFFLINE:
            raise ValueError(f"zone {zone} is being reclaimed or offline")
        self._reclaiming.add(zone)
        try:
            while self._readers[zone] > 0 or self._writers[zone] > 0:
                yield self.sim.timeout(self.reader_quiesce_delay)
            for block in self._zone_block_range(zone):
                for lpn in self.page_map.valid_lpns_in_block(block):
                    self.page_map.unbind(lpn)
            yield from self._erase_zone(zone)
        finally:
            self._reclaiming.discard(zone)
        return None

    def _erase_zone(self, zone: int) -> Generator:
        """Erase every block of a (mapping-free) zone; returns success."""
        for block in self._zone_block_range(zone):
            self.page_map.release_block(block)
        geo = self.flash.geometry
        for block in self._zone_block_range(zone):
            try:
                yield from self.flash.erase_block(geo.block_address(block))
            except EraseFailure:
                # grown bad block: the whole zone leaves service
                self._zone_state[zone] = ZoneState.OFFLINE
                self.zones_retired += 1
                self.tracer.emit(
                    self.sim.now, self.name, "zone.retired", zone=zone, block=block
                )
                return False
        self._zone_wp[zone] = 0
        self._zone_state[zone] = ZoneState.EMPTY
        self._free.append(zone)
        self.zone_resets += 1
        return True

    # -- garbage collection ----------------------------------------------------
    def _kick_gc(self) -> None:
        if self._gc_kick is not None and not self._gc_kick.triggered:
            self._gc_kick.succeed()

    @property
    def gc_idle(self) -> bool:
        return self._gc_idle

    def _gc_run(self) -> Generator:
        while True:
            if len(self._free) > self._gc_low:
                yield from self._wait_for_kick()
            self._gc_idle = False
            progressed = False
            while len(self._free) < self._gc_high:
                victim = self._choose_victim()
                if victim is None:
                    break
                yield from self._collect(victim)
                progressed = True
            if not progressed:
                yield from self._wait_for_kick()

    def _wait_for_kick(self) -> Generator:
        self._gc_kick = self.sim.event(name="zone-gc.kick")
        self._gc_idle = True
        yield self._gc_kick
        self._gc_kick = None

    def _choose_victim(self) -> int | None:
        # GC may borrow host open-zone space when no free zone remains, so
        # its relocation headroom is every reachable unwritten page — and
        # the host admission floor keeps one zone's worth of it in reserve.
        headroom = self._unwritten_pages()
        best = None
        best_valid = None
        for zone in range(self.zone_count):
            if self._zone_state[zone] != ZoneState.FULL:
                continue
            if zone in self._reclaiming or self._writers[zone] != 0:
                continue
            valid = self._zone_valid_pages(zone)
            if valid >= self.zone_pages or valid > headroom:
                continue  # nothing reclaimable, or uncompletable right now
            if best_valid is None or (valid, zone) < (best_valid, best):
                best, best_valid = zone, valid
        return best

    def _collect(self, zone: int) -> Generator:
        if zone in self._reclaiming:
            return
        self._reclaiming.add(zone)
        try:
            yield from self._collect_inner(zone)
        finally:
            self._reclaiming.discard(zone)

    def _collect_inner(self, zone: int) -> Generator:
        """Copy-forward every live page of ``zone``, then reset it."""
        for block in self._zone_block_range(zone):
            for lpn in self.page_map.valid_lpns_in_block(block):
                old_ppn = self.page_map.lookup(lpn)
                if old_ppn // self.zone_pages != zone:
                    continue  # host overwrote while we were collecting
                yield from self._relocate_or_drop(lpn, old_ppn)
        # quiesce in-flight readers before the erase; a late host bind
        # re-validates a page, which the re-scan relocates too
        while self._readers[zone] > 0 or self._writers[zone] > 0:
            yield self.sim.timeout(self.reader_quiesce_delay)
            for block in self._zone_block_range(zone):
                for lpn in self.page_map.valid_lpns_in_block(block):
                    yield from self._relocate_or_drop(lpn, self.page_map.lookup(lpn))
        ok = yield from self._erase_zone(zone)
        if ok:
            self.gc_collections += 1
            self.tracer.emit(self.sim.now, self.name, "zone-gc.collect", zone=zone)

    def _relocate_or_drop(self, lpn: int, old_ppn: int) -> Generator:
        """Copy one live page forward; an uncorrectable source read loses
        the page (recorded) rather than killing the collector."""
        geo = self.flash.geometry
        addr = geo.page_address(old_ppn)
        try:
            result = yield from self.flash.read_page(addr)
            yield from self.ecc.decode_page(geo.page_size, result.raw_bit_errors)
        except UncorrectableError:
            self.relocation_failures += 1
            if self.page_map.lookup(lpn) == old_ppn:
                self.page_map.unbind(lpn)
            self.tracer.emit(self.sim.now, self.name, "zone-gc.data-loss", lpn=lpn)
            return None
        oob = self.flash.page_oob(addr)
        yield from self._append(
            lpn, result.data, stream=self.GC, expect_ppn=old_ppn, oob=oob
        )
        self.gc_pages_relocated += 1
        return None

    # -- reporting -------------------------------------------------------------
    def zone_report(self) -> dict:
        """Zone-state telemetry: counts per state plus lifetime counters."""
        states = [int(s) for s in self._zone_state]
        return {
            "zones": self.zone_count,
            "zone_blocks": self.zone_blocks,
            "zone_pages": self.zone_pages,
            "empty": states.count(ZoneState.EMPTY),
            "open": states.count(ZoneState.OPEN),
            "full": states.count(ZoneState.FULL),
            "offline": states.count(ZoneState.OFFLINE),
            "free": len(self._free),
            "resets": self.zone_resets,
            "retired": self.zones_retired,
            "max_write_pointer": int(self._zone_wp.max()),
        }

    def stats(self) -> dict[str, float]:
        report = self.zone_report()
        return {
            "host_reads": self.host_reads,
            "host_writes": self.host_writes,
            "host_pages_programmed": self.host_pages_programmed,
            "buffer_read_hits": self.buffer_read_hits,
            "buffer_write_hits": self.write_buffer.hits,
            "trims": self.trims,
            "gc_collections": self.gc_collections,
            "gc_pages_relocated": self.gc_pages_relocated,
            "wl_migrations": 0,
            "write_amplification": self.write_amplification(),
            "free_blocks": len(self._free) * self.zone_blocks,
            "uncorrectable_reads": self.uncorrectable_reads,
            "scrub_refreshes": 0,
            "zones_empty": report["empty"],
            "zones_open": report["open"],
            "zones_full": report["full"],
            "zones_offline": report["offline"],
            "zone_resets": self.zone_resets,
        }

    def health_stats(self) -> dict[str, float]:
        return {
            "available_spare": len(self._free) * self.zone_blocks,
            "bad_blocks": self.zones_retired * self.zone_blocks,
            "gc_collections": self.gc_collections,
            "scrub_refreshes": 0,
        }
