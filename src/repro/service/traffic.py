"""Seeded open-loop arrival streams over large tenant populations.

The generator is *open loop*: arrival times are drawn up front from one
named RNG stream, so load does not adapt to service latency — exactly the
regime where queues grow and shedding/fairness mechanisms earn their keep.

Three pattern families cover the mixes the traffic drills exercise:

- ``poisson`` — homogeneous Poisson (exponential inter-arrivals at
  ``rate``);
- ``diurnal`` — nonhomogeneous Poisson via Lewis-Shedler thinning against
  ``rate * (1 + amplitude * sin(2*pi*t / period))``, a compressed
  day/night cycle;
- ``bursty`` — on/off: ``burst_len`` arrivals back-to-back at
  ``rate * burst_factor``, separated by exponential quiet gaps sized so
  the long-run mean stays ``rate``.

Tenant IDs are drawn per arrival from a power-shaped popularity curve
(``tenants * u**skew``), so a population of millions costs nothing up
front; priority class is a stable hash of the tenant id into the
configured class shares (crc32, not ``hash()``, so it is identical across
processes and Python versions — a determinism requirement).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.config.schema import PriorityClassConfig, TrafficConfig

__all__ = ["Arrival", "TrafficGenerator", "assign_class"]


@dataclass(frozen=True, slots=True)
class Arrival:
    """One open-loop request: who asks, and when (seconds of sim time)."""

    time: float
    tenant: int


def assign_class(tenant: int, classes: Sequence[PriorityClassConfig]) -> str:
    """Stable tenant -> priority-class mapping by configured shares.

    crc32 of the decimal tenant id gives a uniform u in [0, 1); the tenant
    lands in the first class whose cumulative share covers u.  Shares that
    sum below 1 leave a remainder population that folds into the *last*
    class (the best-effort tier by convention).
    """
    u = (zlib.crc32(str(tenant).encode()) & 0xFFFFFFFF) / 2**32
    cumulative = 0.0
    for cls in classes:
        cumulative += cls.share
        if u < cumulative:
            return cls.name
    return classes[-1].name


class TrafficGenerator:
    """Materialises the full arrival list for one :class:`TrafficConfig`.

    Drawing everything from a single ``default_rng(seed)`` up front (rather
    than interleaving draws with simulation events) makes the stream a pure
    function of the config — the foundation of the byte-identical-scorecard
    contract.
    """

    def __init__(self, config: TrafficConfig):
        self.config = config

    def arrivals(self) -> list[Arrival]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        if cfg.pattern == "poisson":
            times = self._poisson(rng)
        elif cfg.pattern == "diurnal":
            times = self._diurnal(rng)
        else:
            times = self._bursty(rng)
        tenants = self._tenants(rng, len(times))
        return [Arrival(float(t), int(tid)) for t, tid in zip(times, tenants)]

    # -- arrival-time processes ---------------------------------------------

    def _poisson(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        gaps = rng.exponential(1.0 / cfg.rate, size=cfg.requests)
        return np.cumsum(gaps)

    def _diurnal(self, rng: np.random.Generator) -> np.ndarray:
        """Lewis-Shedler thinning against the sinusoidal rate envelope."""
        cfg = self.config
        period = cfg.period_ms / 1e3
        peak = cfg.rate * (1.0 + cfg.amplitude)
        times = []
        t = 0.0
        while len(times) < cfg.requests:
            t += float(rng.exponential(1.0 / peak))
            lam = cfg.rate * (1.0 + cfg.amplitude * np.sin(2.0 * np.pi * t / period))
            if float(rng.random()) * peak < lam:
                times.append(t)
        return np.asarray(times)

    def _bursty(self, rng: np.random.Generator) -> np.ndarray:
        """On/off bursts with a long-run mean of ``rate``.

        A burst of ``burst_len`` arrivals at ``rate * burst_factor`` spans
        ``burst_len / (rate * burst_factor)`` seconds; the quiet gap is
        sized so one full on/off cycle averages out to ``rate``.
        """
        cfg = self.config
        burst_rate = cfg.rate * cfg.burst_factor
        cycle = cfg.burst_len / cfg.rate  # time one burst "should" take
        burst_span = cfg.burst_len / burst_rate
        mean_gap = max(cycle - burst_span, 1e-9)
        times = []
        t = 0.0
        while len(times) < cfg.requests:
            remaining = cfg.requests - len(times)
            n = min(cfg.burst_len, remaining)
            gaps = rng.exponential(1.0 / burst_rate, size=n)
            for gap in gaps:
                t += float(gap)
                times.append(t)
            t += float(rng.exponential(mean_gap))
        return np.asarray(times)

    # -- tenants -------------------------------------------------------------

    def _tenants(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Power-shaped popularity: skew=1 is uniform, larger skews
        concentrate traffic on low tenant IDs (the "hot tenants")."""
        cfg = self.config
        u = rng.random(size=n)
        ids = np.floor(cfg.tenants * np.power(u, cfg.skew)).astype(np.int64)
        return np.minimum(ids, cfg.tenants - 1)
