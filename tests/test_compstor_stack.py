"""Integration tests: client -> NVMe -> agent -> ISPS -> flash and back."""

import pytest

from repro.cluster import StorageNode
from repro.proto import Command, QueryKind, ResponseStatus
from repro.sim import Tracer


def build_node(devices=2, **kw):
    kw.setdefault("device_capacity", 16 * 1024 * 1024)
    return StorageNode.build(devices=devices, **kw)


def drive(node, gen):
    return node.sim.run(node.sim.process(gen))


def put_device_file(node, ssd, name, data):
    def staged():
        yield from ssd.fs.write_file(name, data)
        yield from ssd.ftl.flush()  # land on NAND so scans exercise the flash path

    drive(node, staged())


def test_minion_round_trip_grep():
    node = build_node(devices=1)
    ssd = node.compstors[0]
    put_device_file(node, ssd, "hay.txt", b"a fox\nnothing\nfox fox\n")

    def flow():
        response = yield from node.client.run("compstor0", "grep fox hay.txt")
        return response

    response = drive(node, flow())
    assert response.ok
    assert response.stdout == b"2"
    assert response.execution_seconds > 0
    assert response.device == "compstor0"


def test_minion_lifecycle_trace_matches_table3():
    """Table III: the six steps of a minion's lifetime, in order."""
    tracer = Tracer()
    node = build_node(devices=1, tracer=tracer)
    ssd = node.compstors[0]
    put_device_file(node, ssd, "in.txt", b"needle\n")

    def flow():
        return (yield from node.client.run("compstor0", "grep needle in.txt"))

    drive(node, flow())
    kinds = tracer.kinds()
    # step 1: client configures and sends the minion via the in-situ library
    # step 2: agent receives it and spawns the off-loadable executable
    # steps 3-4: the executable reaches flash through the device driver
    # step 5: the agent tracks status; step 6: the response returns
    for expected in (
        "client.minion.sent",
        "minion.received",
        "minion.spawned",
        "flash.read",
        "minion.responded",
        "client.minion.returned",
    ):
        assert expected in kinds, f"missing {expected} in {kinds}"
    order = [kinds.index(k) for k in (
        "client.minion.sent", "minion.received", "minion.spawned", "minion.responded",
        "client.minion.returned",
    )]
    assert order == sorted(order)


def test_minion_rejected_for_missing_input():
    node = build_node(devices=1)

    def flow():
        return (
            yield from node.client.run(
                "compstor0", "grep x absent.txt", input_files=("absent.txt",)
            )
        )

    response = drive(node, flow())
    assert response.status == ResponseStatus.REJECTED
    assert b"missing input" in response.stdout


def test_minion_app_error_propagates():
    node = build_node(devices=1)

    def flow():
        return (yield from node.client.run("compstor0", "grep missingpattern nothere.txt"))

    response = drive(node, flow())
    # grep on a missing file exits 1
    assert response.status == ResponseStatus.APP_ERROR
    assert response.exit_code == 1


def test_minion_script_execution():
    node = build_node(devices=1)
    ssd = node.compstors[0]
    put_device_file(node, ssd, "hay.txt", b"the fox\n")

    def flow():
        return (
            yield from node.client.run(
                "compstor0", script="gzip hay.txt\ngunzip hay.txt.gz\ngrep fox hay.txt"
            )
        )

    response = drive(node, flow())
    assert response.ok
    assert response.detail["script_steps"] == 3


def test_status_query_returns_telemetry():
    node = build_node(devices=1)

    def flow():
        return (yield from node.client.status("compstor0"))

    snap = drive(node, flow())
    assert snap.device == "compstor0"
    assert snap.temperature_c > 30
    assert snap.active_minions == 0
    assert snap.load_score() >= 0


def test_ping_and_list_queries():
    node = build_node(devices=1)

    def flow():
        pong = yield from node.client.query("compstor0", QueryKind.PING)
        apps = yield from node.client.query("compstor0", QueryKind.LIST_EXECUTABLES)
        return pong, apps

    pong, apps = drive(node, flow())
    assert pong == "pong"
    assert "grep" in apps and "gzip" in apps


def test_dynamic_task_loading_via_client():
    from repro.isos.loader import ExitStatus

    class CustomApp:
        name = "wordfreq"

        def run(self, ctx):
            data = yield from ctx.read_file(ctx.args[0])
            words = len((data or b"").split())
            return ExitStatus(code=0, stdout=str(words).encode())

    node = build_node(devices=2)
    put_device_file(node, node.compstors[0], "d.txt", b"alpha beta gamma\n")

    def flow():
        # not installed yet -> rejected
        r = yield from node.client.run("compstor0", "wordfreq d.txt")
        assert r.status == ResponseStatus.REJECTED
        # load everywhere at runtime, then it works
        yield from node.client.load_executable_everywhere(CustomApp())
        r2 = yield from node.client.run("compstor0", "wordfreq d.txt")
        return r2

    response = drive(node, flow())
    assert response.ok
    assert response.stdout == b"3"
    assert all("wordfreq" in ssd.isps.os.registry for ssd in node.compstors)


def test_concurrent_minions_to_multiple_devices():
    node = build_node(devices=3)
    for i, ssd in enumerate(node.compstors):
        put_device_file(node, ssd, "f.txt", f"fox {i}\n".encode() * (i + 1))

    def flow():
        responses = yield from node.client.gather(
            [(f"compstor{i}", Command(command_line="grep fox f.txt")) for i in range(3)]
        )
        return responses

    responses = drive(node, flow())
    assert [r.stdout for r in responses] == [b"1", b"2", b"3"]


def test_concurrent_minions_on_one_device_share_cores():
    node = build_node(devices=1)
    ssd = node.compstors[0]
    for i in range(4):
        put_device_file(node, ssd, f"f{i}.txt", b"fox line\n" * 2000)

    def flow():
        t0 = node.sim.now
        responses = yield from node.client.gather(
            [("compstor0", Command(command_line=f"grep fox f{i}.txt")) for i in range(4)]
        )
        return responses, node.sim.now - t0

    responses, elapsed = drive(node, flow())
    assert all(r.ok for r in responses)
    # 4 tasks on 4 cores: wall time must be far below 4x serial
    serial = sum(r.execution_seconds for r in responses)
    assert elapsed < 0.6 * serial


def test_storage_node_describe():
    node = build_node(devices=2, with_baseline_ssd=True)
    info = node.describe()
    assert len(info["devices"]) == 2
    assert info["devices"][0]["isc"] is True
    assert info["baseline_ssd"]["isc"] is False
    assert info["fabric_endpoints"] == 3
    assert "E5-2620" in info["host"]["cpu"]


def test_client_rejects_non_isc_device():
    from repro.host import InSituClient
    from repro.host.insitu import InSituError
    from repro.sim import Simulator
    from repro.ssd import ConventionalSSD
    from repro.ssd.conventional import small_geometry

    sim = Simulator()
    plain = ConventionalSSD(sim, geometry=small_geometry(8 * 1024 * 1024))
    client = InSituClient(sim)
    with pytest.raises(InSituError, match="no in-situ capability"):
        client.attach(plain.controller)


def test_isolation_reads_unaffected_by_compute():
    """The headline Table I property: storage latency does not degrade while
    the ISPS computes."""
    import numpy as np

    from repro.nvme import NvmeCommand, Opcode

    def read_latencies(node, n=30):
        ssd = node.compstors[0]
        qp = ssd.controller.queue(0)
        latencies = []

        def flow():
            for lpn in range(n):
                completion = yield from qp.call(NvmeCommand(opcode=Opcode.READ, slba=lpn))
                latencies.append(completion.latency)

        # pre-write so reads hit real pages
        def setup():
            for lpn in range(n):
                yield from ssd.ftl.write(lpn, b"data")
            yield from ssd.ftl.flush()

        node.sim.run(node.sim.process(setup()))
        return flow, latencies

    # baseline: reads on an idle device
    node_a = build_node(devices=1, seed=7)
    flow_a, lat_a = read_latencies(node_a)
    node_a.sim.run(node_a.sim.process(flow_a()))

    # treatment: identical reads while a big in-situ grep runs
    node_b = build_node(devices=1, seed=7)
    ssd_b = node_b.compstors[0]
    put_device_file(node_b, ssd_b, "big.txt", b"fox line here\n" * 20000)
    flow_b, lat_b = read_latencies(node_b)

    def busy_and_read():
        compute = node_b.sim.process(node_b.client.run("compstor0", "grep fox big.txt"))
        yield node_b.sim.timeout(1e-3)  # compute is well underway
        yield from flow_b()
        yield compute

    node_b.sim.run(node_b.sim.process(busy_and_read()))
    # ISPS compute is allowed a little flash-channel interference, nothing more
    assert np.median(lat_b) < 1.5 * np.median(lat_a)


def test_minion_watchdog_timeout_kills_runaway_task():
    """A command with a deadline is killed by the agent's watchdog and the
    client receives a TIMEOUT response; the device stays healthy."""
    node = build_node(devices=1)
    ssd = node.compstors[0]
    put_device_file(node, ssd, "big.txt", b"slow scan fodder line\n" * 50000)

    def flow():
        # bzip2 of ~1 MB at ARM speeds takes ~0.6 s in-situ; 10 ms deadline
        response = yield from node.client.run(
            "compstor0", "bzip2 big.txt", timeout_seconds=0.01
        )
        return response

    response = drive(node, flow())
    assert response.status == ResponseStatus.TIMEOUT
    assert b"killed" in response.stdout
    # the device still serves new minions afterwards
    put_device_file(node, ssd, "ok.txt", b"fox\n")

    def again():
        return (yield from node.client.run("compstor0", "grep fox ok.txt"))

    assert drive(node, again()).ok


def test_minion_completes_before_watchdog():
    node = build_node(devices=1)
    ssd = node.compstors[0]
    put_device_file(node, ssd, "small.txt", b"fox\n")

    def flow():
        return (
            yield from node.client.run(
                "compstor0", "grep fox small.txt", timeout_seconds=30.0
            )
        )

    response = drive(node, flow())
    assert response.ok
    assert response.stdout == b"1"


def test_negative_timeout_rejected():
    import pytest

    from repro.proto import Command

    with pytest.raises(ValueError):
        Command(command_line="ls", timeout_seconds=-1.0)


def test_script_with_unknown_binary_rejected():
    node = build_node(devices=1)

    def flow():
        return (yield from node.client.run("compstor0", script="ls\nnosuchtool --x"))

    response = drive(node, flow())
    assert response.status == ResponseStatus.REJECTED


def test_script_with_crash_reported():
    from repro.isos.loader import ExitStatus

    class BoomApp:
        name = "boom"

        def run(self, ctx):
            yield from ctx.compute(1e3)
            raise RuntimeError("kaboom")

    node = build_node(devices=1)
    node.compstors[0].isps.os.install_executable(BoomApp())

    def flow():
        return (yield from node.client.run("compstor0", script="ls\nboom"))

    response = drive(node, flow())
    assert response.status == ResponseStatus.CRASHED
    assert b"kaboom" in response.stdout
