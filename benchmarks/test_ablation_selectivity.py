"""Ablation — result selectivity: when does in-situ stop saving the wire?

The paper: "only a command and a resulting data need to transfer over the
storage interface".  That saving depends on the *result size*.  This bench
runs ``filter`` (which emits the matching lines, not a count) over corpora
with increasing needle density and reports bytes moved over PCIe per byte
scanned — from ~0 (rare matches) towards 1 (everything matches), where
in-situ processing no longer reduces traffic at all.
"""

from repro.analysis.experiments import format_series_table
from repro.cluster import StorageNode
from repro.workloads import BookCorpus, CorpusSpec

DENSITIES = (0.0, 0.01, 0.10, 0.45)
FILE_BYTES = 192 * 1024


def run_density(needle_rate: float) -> dict:
    spec = CorpusSpec(files=2, mean_file_bytes=FILE_BYTES, needle_rate=needle_rate,
                      size_spread=0.05)
    books = BookCorpus(spec).generate()
    node = StorageNode.build(devices=1, device_capacity=32 * 1024 * 1024)
    sim = node.sim
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))
    scanned = sum(b.plain_size for b in books)

    def flow():
        emitted = 0
        for book in books:
            response = yield from node.client.run(
                "compstor0", f"filter {spec.needle} {book.name}"
            )
            emitted += response.detail.get("bytes_emitted", 0)
        return emitted

    emitted = sim.run(sim.process(flow()))
    # wire bytes: minion envelopes + the emitted lines (response payloads)
    wire = emitted + 2 * 2 * 256  # two round trips of envelope overhead
    return {
        "needle_rate": needle_rate,
        "scanned": scanned,
        "emitted": emitted,
        "wire_fraction": wire / scanned,
    }


def test_ablation_selectivity(benchmark):
    def experiment():
        return [run_density(d) for d in DENSITIES]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n" + format_series_table(
        "Ablation — wire traffic vs match selectivity (filter, in-situ)",
        ["needle rate", "bytes scanned", "bytes emitted", "wire/scanned"],
        [[r["needle_rate"], r["scanned"], r["emitted"], r["wire_fraction"]]
         for r in rows],
    ))

    fractions = [r["wire_fraction"] for r in rows]
    # monotone: denser matches -> more result bytes on the wire
    assert fractions == sorted(fractions)
    # rare matches: in-situ moves <1% of what the host path would
    assert fractions[0] < 0.01
    # ~11-word lines make a 1% word-level needle rate a ~10% line-match
    # rate — the wire saving is already an order of magnitude, not three
    assert fractions[1] < 0.2
    # at ~45% of words being needles, essentially every line matches and
    # in-situ stops saving traffic (the paper's implicit boundary)
    assert fractions[-1] > 0.9
    # match counts really grow with density (functional check)
    emitted = [r["emitted"] for r in rows]
    assert emitted[0] == 0 and all(a < b for a, b in zip(emitted, emitted[1:]))
