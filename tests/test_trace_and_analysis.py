"""Unit tests for tracing and the analysis helpers."""

import pytest

from repro.analysis import format_series_table, linear_fit, throughput_mb_s
from repro.sim import Tracer
from repro.sim.trace import TraceRecord


# -- tracer -------------------------------------------------------------------

def test_tracer_records_and_filters():
    tracer = Tracer()
    tracer.emit(1.0, "dev0.flash", "flash.read", addr=1)
    tracer.emit(2.0, "dev0.agent", "minion.received", minion=7)
    tracer.emit(3.0, "dev1.flash", "flash.read", addr=2)

    assert len(tracer) == 3
    assert len(tracer.filter(kind="flash.read")) == 2
    assert len(tracer.filter(component="dev0")) == 2
    assert len(tracer.filter(kind="flash.read", component="dev1")) == 1
    assert tracer.filter(predicate=lambda r: r.detail.get("minion") == 7)[0].time == 2.0


def test_tracer_kinds_first_seen_order():
    tracer = Tracer()
    for kind in ("b", "a", "b", "c", "a"):
        tracer.emit(0.0, "x", kind)
    assert tracer.kinds() == ["b", "a", "c"]


def test_disabled_tracer_is_noop():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "x", "y")
    assert len(tracer) == 0


def test_tracer_capacity_drops_and_counts():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.emit(float(i), "x", "k")
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_tracer_ring_buffer_keeps_newest_records():
    """Regression: a full bounded tracer used to drop *new* records, leaving
    the log stuck on the oldest window — useless for long-running monitoring.
    It now evicts the oldest record instead."""
    tracer = Tracer(capacity=3)
    for i in range(7):
        tracer.emit(float(i), "x", "k", i=i)
    assert [r.detail["i"] for r in tracer.records] == [4, 5, 6]
    assert tracer.dropped == 4


def test_tracer_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_tracer_clear():
    tracer = Tracer(capacity=1)
    tracer.emit(0.0, "x", "k")
    tracer.emit(0.0, "x", "k")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_empty_tracer_is_still_truthy_enough_to_wire():
    """Regression: Tracer defines __len__, so `tracer or NULL_TRACER` used
    to silently discard enabled-but-empty tracers."""
    from repro.sim.trace import NULL_TRACER

    tracer = Tracer()
    chosen = tracer if tracer is not None else NULL_TRACER
    assert chosen is tracer


def test_trace_record_is_frozen():
    record = TraceRecord(1.0, "c", "k")
    with pytest.raises(AttributeError):
        record.time = 2.0


# -- analysis helpers -------------------------------------------------------------

def test_linear_fit_recovers_exact_line():
    a, b, r2 = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
    assert a == pytest.approx(2.0)
    assert b == pytest.approx(1.0)
    assert r2 == pytest.approx(1.0)


def test_linear_fit_rejects_bad_input():
    with pytest.raises(ValueError):
        linear_fit([1], [2])
    with pytest.raises(ValueError):
        linear_fit([1, 2], [1])


def test_linear_fit_r2_degrades_with_noise():
    _, _, clean = linear_fit([1, 2, 3, 4], [2, 4, 6, 8])
    _, _, noisy = linear_fit([1, 2, 3, 4], [2, 7, 5, 8])
    assert clean > noisy


def test_throughput_mb_s():
    assert throughput_mb_s(2e6, 2.0) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        throughput_mb_s(1.0, 0.0)


def test_format_series_table_alignment():
    table = format_series_table("T", ["col", "value"], [["a", 1.5], ["bbbb", 22.25]])
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "col" in lines[2]
    assert "bbbb" in lines[4]
    # all rows align to the same width
    assert len(lines[3].rstrip()) <= len(lines[4])


def test_format_series_table_empty_rows():
    table = format_series_table("T", ["a"], [])
    assert "a" in table


# -- telemetry -------------------------------------------------------------------

def test_telemetry_load_score_ordering():
    from repro.isps import TelemetrySnapshot

    idle = TelemetrySnapshot(
        device="d0", time=0.0, core_utilization=0.1, temperature_c=40.0,
        running_processes=0, active_minions=0, uptime=1.0, free_bytes=100,
    )
    busy = TelemetrySnapshot(
        device="d1", time=0.0, core_utilization=0.2, temperature_c=50.0,
        running_processes=3, active_minions=2, uptime=1.0, free_bytes=100,
    )
    assert busy.load_score() > idle.load_score()
    # minions dominate utilisation
    hot_cores = TelemetrySnapshot(
        device="d2", time=0.0, core_utilization=0.95, temperature_c=70.0,
        running_processes=1, active_minions=0, uptime=1.0, free_bytes=100,
    )
    one_minion = TelemetrySnapshot(
        device="d3", time=0.0, core_utilization=0.0, temperature_c=40.0,
        running_processes=1, active_minions=1, uptime=1.0, free_bytes=100,
    )
    assert one_minion.load_score() > hot_cores.load_score()
