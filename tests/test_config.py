"""The typed scenario layer: digests, round-trips, overrides, factories.

The preset digests are the repo's scenario identity: they are pinned in
``tests/golden_config_digests.txt`` (the exact output of ``python -m repro
config digest``) and must be stable across processes and refactors — a
digest change is a semantic change to what an experiment *is* and must be
deliberate.  The Hypothesis round-trip property guarantees any scenario the
override grammar can reach survives the canonical-JSON codec losslessly,
which is what makes the digest a faithful identity in the first place.
"""

import os
import subprocess
import sys
from dataclasses import FrozenInstanceError, replace
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import (
    ConfigError,
    FaultSpec,
    FaultsConfig,
    FlashConfig,
    FleetConfig,
    ScenarioConfig,
    apply_overrides,
    canonical_json,
    config_digest,
    flatten,
    parse_assignments,
    preset,
    preset_names,
    scenario_from_dict,
    to_dict,
)
from repro.faults.retry import RetryPolicy
from repro.ssd.conventional import small_geometry

GOLDEN_PATH = Path(__file__).parent / "golden_config_digests.txt"
REPO_ROOT = Path(__file__).resolve().parents[1]


def _golden_digests() -> dict[str, str]:
    lines = GOLDEN_PATH.read_text().splitlines()
    return {name: digest for digest, name in (line.split() for line in lines)}


# -- preset digest goldens ---------------------------------------------------


def test_preset_digests_match_goldens():
    golden = _golden_digests()
    assert sorted(golden) == sorted(preset_names())
    for name in preset_names():
        assert config_digest(preset(name)) == golden[name], (
            f"preset {name!r} digest drifted; if intentional, regenerate "
            f"tests/golden_config_digests.txt with `python -m repro config digest`"
        )


def test_digests_stable_across_processes():
    """The digest must not depend on interpreter state (hash seed, import
    order): a fresh subprocess reproduces the golden file byte-for-byte."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = "12345"  # a digest must not see the hash seed
    out = subprocess.run(
        [sys.executable, "-m", "repro", "config", "digest"],
        capture_output=True, text=True, check=True, cwd=REPO_ROOT, env=env,
    ).stdout
    assert out == GOLDEN_PATH.read_text()


def test_digest_changes_with_any_field():
    base = preset("smoke")
    assert config_digest(replace(base, seed=base.seed + 1)) != config_digest(base)
    assert config_digest(base.with_name("other")) != config_digest(base)


# -- canonical JSON round-trip (Hypothesis) ----------------------------------

scenarios = st.builds(
    ScenarioConfig,
    name=st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=12
    ),
    seed=st.integers(0, 2**31 - 1),
    flash=st.builds(
        FlashConfig,
        capacity_bytes=st.integers(1024, 2**30),
        channels=st.integers(1, 16),
        pages_per_block=st.integers(4, 64),
        store_data=st.booleans(),
    ),
    fleet=st.builds(
        FleetConfig,
        nodes=st.integers(1, 8),
        devices_per_node=st.integers(1, 8),
        with_baseline_ssd=st.booleans(),
        replicas=st.integers(1, 4),
    ),
    retry=st.one_of(
        st.none(), st.builds(RetryPolicy, max_attempts=st.integers(1, 5))
    ),
    faults=st.builds(
        FaultsConfig,
        seed=st.integers(0, 1000),
        random=st.integers(0, 4),
        events=st.tuples() | st.tuples(
            st.builds(
                FaultSpec,
                kind=st.sampled_from(
                    ["device-crash", "agent-crash", "transient", "limp"]
                ),
                ring_index=st.integers(0, 7),
                at_ms=st.floats(0.0, 5.0, allow_nan=False),
                duration_ms=st.none() | st.floats(0.1, 5.0, allow_nan=False),
                factor=st.floats(1.0, 8.0, allow_nan=False),
            )
        ),
    ),
)


@given(scenarios)
def test_scenario_roundtrips_through_canonical_json(config):
    decoded = scenario_from_dict(to_dict(config))
    assert decoded == config
    assert config_digest(decoded) == config_digest(config)
    # canonical form is itself a fixed point
    assert canonical_json(to_dict(decoded)) == canonical_json(to_dict(config))


@given(scenarios)
def test_scenario_is_hashable_and_frozen(config):
    assert hash(config) == hash(scenario_from_dict(to_dict(config)))
    with pytest.raises(FrozenInstanceError):
        config.seed = 1


# -- dotted-path overrides ---------------------------------------------------


def test_parse_assignments_grammar():
    assert parse_assignments(["a.b=1", "x= y "]) == [("a.b", "1"), ("x", "y")]
    with pytest.raises(ConfigError):
        parse_assignments(["no-equals-sign"])
    with pytest.raises(ConfigError):
        parse_assignments(["=value"])


def test_override_coercion_by_declared_type():
    config = apply_overrides(
        ScenarioConfig(),
        [
            "fleet.nodes=8",                 # int
            "ftl.op_ratio=0.2",              # float
            "flash.store_data=no",           # bool
            "isps.cpu=xeon-e5-2620-v4",      # str (validated by the section)
            "corpus.compressions=gzip,bzip2",  # tuple[str, ...]
        ],
    )
    assert config.fleet.nodes == 8
    assert config.ftl.op_ratio == 0.2
    assert config.flash.store_data is False
    assert config.isps.cpu == "xeon-e5-2620-v4"
    assert config.corpus.compressions == ("gzip", "bzip2")


def test_override_unknown_key_names_valid_fields():
    with pytest.raises(ConfigError, match="valid keys.*devices_per_node"):
        apply_overrides(ScenarioConfig(), ["fleet.device_count=2"])
    with pytest.raises(ConfigError, match="no field"):
        apply_overrides(ScenarioConfig(), ["turbo=on"])


def test_override_type_errors_are_loud():
    with pytest.raises(ConfigError, match="expected an integer"):
        apply_overrides(ScenarioConfig(), ["fleet.nodes=many"])
    with pytest.raises(ConfigError, match="expected a boolean"):
        apply_overrides(ScenarioConfig(), ["flash.store_data=maybe"])
    # section validators still run (replace() re-invokes __post_init__)
    with pytest.raises(ConfigError):
        apply_overrides(ScenarioConfig(), ["fleet.nodes=0"])


def test_override_materialises_optional_section():
    base = ScenarioConfig()
    assert base.retry is None
    config = apply_overrides(base, ["retry.max_attempts=2"])
    assert config.retry is not None and config.retry.max_attempts == 2
    cleared = apply_overrides(config, ["retry=none"])
    assert cleared.retry is None


def test_override_order_matters_last_wins():
    config = apply_overrides(ScenarioConfig(), ["seed=1", "seed=7"])
    assert config.seed == 7


def test_preset_with_overrides_changes_digest():
    assert config_digest(preset("fig6", ("fleet.nodes=2",))) != config_digest(
        preset("fig6")
    )


def test_flatten_covers_every_leaf():
    flat = flatten(preset("chaos-drill"))
    assert flat["fleet.nodes"] == 2
    assert "faults.events" in flat
    assert "retry.max_attempts" in flat


# -- geometry fidelity -------------------------------------------------------


def test_flash_config_roundtrips_small_geometry():
    for capacity in (16, 24, 32, 48, 64):
        geo = small_geometry(capacity * 1024 * 1024)
        config = FlashConfig.from_geometry(geo)
        assert config.geometry() == geo
        assert config.capacity_bytes == geo.capacity_bytes
