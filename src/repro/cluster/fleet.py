"""Datacenter fleet: many storage nodes, one coordinator.

The paper's closing scaling argument: "Considering a data center containing
hundreds of CompStor equipped storage nodes, there could be thousands of
concurrent minions, resulting in heavy parallelism at the storage unit
level."  :class:`StorageFleet` builds that two-level topology — a
coordinator fanning jobs out to per-node in-situ clients, each fanning out
to its local devices — inside one simulation.
"""

from __future__ import annotations

from typing import Callable, Generator, Sequence

from repro.cluster.node import StorageNode
from repro.obs.health import FleetHealth, HealthAggregator
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.proto.entities import Command, Response
from repro.sim import Simulator, Tracer
from repro.workloads import BookFile, partition_round_robin

__all__ = ["StorageFleet"]


class StorageFleet:
    """A rack/row of storage nodes under one job coordinator."""

    def __init__(
        self,
        sim: Simulator,
        nodes: list[StorageNode],
        metrics: MetricsRegistry | None = None,
    ):
        if not nodes:
            raise ValueError("a fleet needs at least one node")
        self.sim = sim
        self.nodes = nodes
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_node_load = self.metrics.gauge(
            "cluster.node.active_minions", "in-flight minions per node, sampled per job"
        )

    @classmethod
    def build(
        cls,
        nodes: int = 4,
        devices_per_node: int = 4,
        seed: int = 0,
        device_capacity: int = 32 * 1024 * 1024,
        store_data: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> "StorageFleet":
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        sim = Simulator(seed=seed)
        if metrics is not None and metrics.clock is None:
            metrics.bind_clock(lambda: sim.now)
        built = [
            StorageNode.build(
                devices=devices_per_node,
                sim=sim,
                device_capacity=device_capacity,
                store_data=store_data,
                metrics=metrics,
                tracer=tracer,
            )
            for _ in range(nodes)
        ]
        return cls(sim, built, metrics=metrics)

    # -- topology -----------------------------------------------------------
    @property
    def total_devices(self) -> int:
        return sum(len(node.compstors) for node in self.nodes)

    def describe(self) -> dict:
        return {
            "nodes": len(self.nodes),
            "devices": self.total_devices,
            "capacity_bytes": sum(
                ssd.capacity_bytes for node in self.nodes for ssd in node.compstors
            ),
        }

    # -- dataset ------------------------------------------------------------
    def stage_corpus(self, books: Sequence[BookFile], compressed: bool = False) -> Generator:
        """Scatter books round-robin over nodes (each node scatters over its
        devices); all staging runs concurrently."""
        parts = partition_round_robin(list(books), len(self.nodes))
        procs = [
            self.sim.process(node.stage_corpus(part, compressed=compressed))
            for node, part in zip(self.nodes, parts)
        ]
        yield self.sim.all_of(procs)
        return None

    def placement(self, books: Sequence[BookFile]) -> dict[tuple[int, str], list[BookFile]]:
        """(node index, device name) -> books, matching :meth:`stage_corpus`."""
        out: dict[tuple[int, str], list[BookFile]] = {}
        parts = partition_round_robin(list(books), len(self.nodes))
        for node_index, (node, part) in enumerate(zip(self.nodes, parts)):
            for device, dev_books in node.device_books(part).items():
                out[(node_index, device)] = dev_books
        return out

    # -- jobs ----------------------------------------------------------------
    def run_job(
        self,
        books: Sequence[BookFile],
        command_for: Callable[[BookFile], Command],
    ) -> Generator:
        """One minion per book, everywhere at once.

        Returns ``(responses, wall_seconds)``; responses come back grouped
        per node but flattened in deterministic order.
        """
        start = self.sim.now
        per_node_assignments: list[list[tuple[str, Command]]] = []
        for (node_index, device), dev_books in sorted(self.placement(books).items()):
            while len(per_node_assignments) <= node_index:
                per_node_assignments.append([])
            per_node_assignments[node_index].extend(
                (device, command_for(book)) for book in dev_books
            )
        if self.metrics.enabled:
            for node_index, assignments in enumerate(per_node_assignments):
                self._m_node_load.set(len(assignments), node=node_index)
        procs = [
            self.sim.process(node.client.gather(assignments))
            for node, assignments in zip(self.nodes, per_node_assignments)
            if assignments
        ]
        results = yield self.sim.all_of(procs)
        responses: list[Response] = [r for proc in procs for r in results[proc]]
        return responses, self.sim.now - start

    def telemetry(self) -> Generator:
        """Status of every device in the fleet, concurrently."""
        procs = [self.sim.process(node.client.status_all()) for node in self.nodes]
        results = yield self.sim.all_of(procs)
        merged = {}
        for node_index, proc in enumerate(procs):
            for device, snap in results[proc].items():
                merged[(node_index, device)] = snap
        return merged

    def health(self, aggregator: HealthAggregator | None = None) -> Generator:
        """Poll every device and roll the fleet up into one report.

        Telemetry queries travel the ISC wire concurrently (they cost
        simulated time like any admin command); SMART pages are read
        straight off each controller.  When the fleet was built with an
        enabled metrics registry, minion-latency percentiles come from the
        client round-trip histogram — callers without metrics can feed
        latencies into their own :class:`HealthAggregator` first.

        Returns the :class:`FleetHealth` summary.
        """
        aggregator = aggregator if aggregator is not None else HealthAggregator()
        snapshots = yield from self.telemetry()
        for (node_index, device), snap in sorted(snapshots.items()):
            node = self.nodes[node_index]
            ssd = next(s for s in node.compstors if s.name == device)
            aggregator.observe_device(
                node_index, device, snap, smart=ssd.controller.smart_log()
            )
        if self.metrics.enabled and "client.minion.round_trip_seconds" in self.metrics:
            aggregator.observe_latency_histogram(
                self.metrics["client.minion.round_trip_seconds"]
            )
        return aggregator.summary()

    def total_minions_served(self) -> int:
        return sum(ssd.agent.minions_served for node in self.nodes for ssd in node.compstors)
