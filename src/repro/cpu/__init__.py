"""CPU core/cluster models.

Two parameter sets matter for the paper's evaluation:

- the **ISPS processor**: a quad-core ARM Cortex-A53 @ 1.5 GHz (Table II);
- the **host processor**: an Intel Xeon E5-2620 v4 (Table IV).

A cluster executes *cycles*; applications convert bytes to cycles through
per-ISA cost models (see :mod:`repro.analysis.calibration`), which is where
the ARM-vs-Xeon single-thread performance gap and the perf/watt advantage
live.
"""

from repro.cpu.core import CpuCluster, CpuSpec
from repro.cpu.models import ARM_A53_QUAD, XEON_E5_2620_V4
from repro.cpu.scheduler import RunQueue

__all__ = ["ARM_A53_QUAD", "CpuCluster", "CpuSpec", "RunQueue", "XEON_E5_2620_V4"]
