"""Table III — the lifetime of a minion.

The six steps: (1) the client configures a minion and sends it via the
in-situ library; (2) the ISPS agent extracts the command and spawns the
off-loadable executable; (3) the executable accesses flash through the
device driver; (4) the driver sends read/write commands to the flash
controller; (5) the agent tracks the in-situ processing status; (6) the
agent populates the response and sends the minion back.

The bench replays one minion with tracing on and checks each step appears,
in order, with causally consistent timestamps.
"""

from repro.analysis.experiments import format_series_table
from repro.cluster import StorageNode
from repro.sim import Tracer

STEPS = [
    ("1", "client.minion.sent", "client configures + sends the minion"),
    ("2", "minion.spawned", "agent spawns the off-loadable executable"),
    ("3-4", "flash.read", "executable reaches flash via the device driver"),
    ("5", "minion.tracked", "agent tracks in-situ processing status"),
    ("6", "minion.responded", "agent populates the response"),
    ("6", "client.minion.returned", "minion travels back to the client"),
]


def test_table3_minion_lifetime(benchmark):
    def run_minion():
        tracer = Tracer()
        node = StorageNode.build(
            devices=1, device_capacity=16 * 1024 * 1024, tracer=tracer
        )
        ssd = node.compstors[0]

        def stage():
            yield from ssd.fs.write_file("input.txt", b"needle in text\n" * 5000)
            yield from ssd.ftl.flush()

        node.sim.run(node.sim.process(stage()))
        tracer.clear()  # only trace the minion itself

        def flow():
            return (yield from node.client.run("compstor0", "grep needle input.txt"))

        response = node.sim.run(node.sim.process(flow()))
        return tracer, response

    tracer, response = benchmark.pedantic(run_minion, rounds=1, iterations=1)
    assert response.ok

    first_at = {}
    rows = []
    for step, kind, description in STEPS:
        records = tracer.filter(kind=kind)
        assert records, f"step {step} ({kind}) missing from the trace"
        first_at[kind] = records[0].time
        rows.append([step, kind, f"{records[0].time * 1e3:.3f} ms", description])

    print("\n" + format_series_table(
        "Table III — lifetime of a minion (traced)",
        ["step", "trace kind", "first at", "description"],
        rows,
    ))

    # causal backbone: 1 -> 2 -> 6 -> back to the client
    assert (
        first_at["client.minion.sent"]
        <= first_at["minion.spawned"]
        <= first_at["minion.responded"]
        <= first_at["client.minion.returned"]
    )
    # steps 3-5 happen *during* execution (tracking runs concurrently with
    # the executable's flash accesses, per "at runtime" in the paper)
    for during in ("flash.read", "minion.tracked"):
        assert first_at["minion.spawned"] <= first_at[during] <= first_at["minion.responded"]

    # step 5 really is periodic tracking, not a single ping
    assert len(tracer.filter(kind="minion.tracked")) >= 1
    # steps 3-4 repeat per page of the scanned file
    assert len(tracer.filter(kind="flash.read")) >= 4
