"""Workload generation: the synthetic book corpus, staging helpers, and
logical-IO access-pattern generators."""

from repro.workloads.corpus import BookCorpus, BookFile, CorpusSpec, partition_round_robin
from repro.workloads.io_patterns import hot_cold, sequential, uniform, zipfian
from repro.workloads.tables import CsvTable, TableSpec

__all__ = [
    "BookCorpus",
    "BookFile",
    "CorpusSpec",
    "CsvTable",
    "hot_cold",
    "partition_round_robin",
    "sequential",
    "TableSpec",
    "uniform",
    "zipfian",
]
