"""Block devices: how an OS reaches storage.

Two implementations matter for the paper's architecture:

- :class:`FlashAccessDevice` — the **flash access device driver** inside the
  ISPS Linux: a direct, low-latency path into the SSD's own FTL (no PCIe,
  no NVMe queueing).  This is why "ISPS can access the flash data more
  efficiently than the host CPU".
- :class:`NvmeBlockDevice` — the host's path: every page crosses the NVMe
  queue pair and the PCIe fabric.

Both expose the same protocol, so the same filesystem (and therefore the
same unmodified application) runs on either side — the porting-effort claim.
"""

from __future__ import annotations

from typing import Generator, Protocol, runtime_checkable

from repro.ftl import TranslationBackend
from repro.nvme.commands import NvmeCommand, Opcode
from repro.nvme.queues import QueuePair
from repro.sim import Simulator

__all__ = ["BlockDevice", "FlashAccessDevice", "NvmeBlockDevice"]


@runtime_checkable
class BlockDevice(Protocol):
    """Minimal page-granular block device."""

    page_size: int
    pages: int

    def read(self, lpn: int) -> Generator: ...

    def write(self, lpn: int, data: bytes | None) -> Generator: ...

    def trim(self, lpns: list[int]) -> Generator: ...

    def flush(self) -> Generator: ...


class FlashAccessDevice:
    """Direct ISPS-to-FTL block device (the paper's flash access driver).

    ``driver_latency`` models the kernel crossing (syscall + driver + the
    controller mailbox); it is microseconds, versus the NVMe/PCIe path's
    command + DMA costs.
    """

    def __init__(self, sim: Simulator, ftl: TranslationBackend, driver_latency: float = 2e-6):
        self.sim = sim
        self.ftl = ftl
        self.driver_latency = driver_latency
        self.page_size = ftl.page_size
        self.pages = ftl.logical_pages
        self.reads = 0
        self.writes = 0

    def read(self, lpn: int) -> Generator:
        yield self.sim.timeout(self.driver_latency)
        data = yield from self.ftl.read(lpn)
        self.reads += 1
        return data

    def write(self, lpn: int, data: bytes | None) -> Generator:
        yield self.sim.timeout(self.driver_latency)
        yield from self.ftl.write(lpn, data)
        self.writes += 1
        return None

    def trim(self, lpns: list[int]) -> Generator:
        yield self.sim.timeout(self.driver_latency)
        yield from self.ftl.trim(lpns)
        return None

    def flush(self) -> Generator:
        yield from self.ftl.flush()
        return None


class NvmeBlockDevice:
    """Host-side block device over an NVMe queue pair (and its PCIe port)."""

    def __init__(self, sim: Simulator, queue: QueuePair, page_size: int, pages: int):
        self.sim = sim
        self.queue = queue
        self.page_size = page_size
        self.pages = pages
        self.reads = 0
        self.writes = 0

    def read(self, lpn: int) -> Generator:
        completion = yield from self.queue.call(NvmeCommand(opcode=Opcode.READ, slba=lpn))
        completion.raise_for_status()
        self.reads += 1
        return completion.result[0]

    def write(self, lpn: int, data: bytes | None) -> Generator:
        completion = yield from self.queue.call(
            NvmeCommand(opcode=Opcode.WRITE, slba=lpn, data=data)
        )
        completion.raise_for_status()
        self.writes += 1
        return None

    def trim(self, lpns: list[int]) -> Generator:
        completion = yield from self.queue.call(NvmeCommand(opcode=Opcode.DSM_TRIM, lbas=lpns))
        completion.raise_for_status()
        return None

    def flush(self) -> Generator:
        completion = yield from self.queue.call(NvmeCommand(opcode=Opcode.FLUSH))
        completion.raise_for_status()
        return None
