"""The in-situ library + client.

"A C/C++ library that provides high-level APIs for the client...  the
CompStor in-situ library is only intended to be used in the client, not in
the off-loadable executable, which does not need any modification."

:class:`InSituClient` is that library's API surface: it configures minions
and queries, tunnels them through NVMe vendor commands, and (because a
client may drive *several* CompStors concurrently) provides gather/map
helpers for parallel dispatch — the paper's "thousands of concurrent
minions" pattern in miniature.

At fleet scale the client is also the first line of defence against device
failure: construct it with a :class:`~repro.faults.RetryPolicy` and/or a
:class:`~repro.faults.BreakerConfig` and ``send_minion`` retries retryable
transport faults with backoff while a per-device circuit breaker fail-fasts
commands to drives that keep dying.  Both are opt-in; without them the
client behaves (and schedules) exactly as before.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.faults.retry import (
    BreakerConfig,
    CircuitBreaker,
    RetryPolicy,
    completion_retryable,
    response_retryable,
)
from repro.nvme import IscPayload, NvmeCommand, NvmeController, Opcode
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.spans import start_trace
from repro.proto.entities import Command, Minion, Query, QueryKind
from repro.sim import Simulator, Tracer
from repro.sim.trace import NULL_TRACER

__all__ = ["BreakerOpen", "InSituClient", "InSituError"]


class InSituError(Exception):
    """Transport-level failure delivering a minion or query."""


class BreakerOpen(InSituError):
    """Fail-fast: the target device's circuit breaker is open."""


class InSituClient:
    """Host-side controller of the in-situ processing flow (master side)."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "client",
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_config: BreakerConfig | None = None,
    ):
        self.sim = sim
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.retry_policy = retry_policy
        self.breaker_config = breaker_config
        self._m_minions = self.metrics.counter(
            "client.minions", "minions dispatched by the in-situ client"
        )
        self._m_round_trip = self.metrics.histogram(
            "client.minion.round_trip_seconds", "client-observed minion round trip"
        )
        self._m_retries = self.metrics.counter(
            "client.minion.retries", "minion retries, by device and failure status"
        )
        self._m_breaker = self.metrics.counter(
            "client.breaker.transitions", "circuit-breaker state changes, by device"
        )
        self._m_fast_fails = self.metrics.counter(
            "client.breaker.fast_fails", "commands refused locally by an open breaker"
        )
        self._devices: dict[str, NvmeController] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self.minions_sent = 0
        self.queries_sent = 0
        self.retries = 0

    # -- topology ------------------------------------------------------------
    def attach(self, controller: NvmeController) -> str:
        """Register a CompStor; returns its device name."""
        ident = controller.identify()
        device_name = ident["model"].removesuffix(".nvme")
        if device_name in self._devices:
            raise ValueError(f"device {device_name!r} already attached")
        if not ident["isc_capable"]:
            raise InSituError(f"device {device_name!r} has no in-situ capability")
        self._devices[device_name] = controller
        if self.breaker_config is not None:
            self._breakers[device_name] = self._make_breaker(device_name)
        return device_name

    def _make_breaker(self, device: str) -> CircuitBreaker:
        def on_transition(previous: str, state: str) -> None:
            self.tracer.emit(
                self.sim.now, self.name, "client.breaker",
                device=device, state=state,
            )
            if self.metrics.enabled:
                self._m_breaker.inc(device=device, to=state)

        return CircuitBreaker(self.breaker_config, on_transition=on_transition)

    def devices(self) -> list[str]:
        return sorted(self._devices)

    def breaker_state(self, device: str) -> str:
        """The device's breaker state (``"closed"`` when none configured)."""
        breaker = self._breakers.get(device)
        return breaker.state if breaker is not None else CircuitBreaker.CLOSED

    def breaker_states(self) -> dict[str, str]:
        return {device: self.breaker_state(device) for device in self.devices()}

    def _controller(self, device: str) -> NvmeController:
        try:
            return self._devices[device]
        except KeyError as exc:
            raise InSituError(f"unknown device {device!r} (attached: {self.devices()})") from exc

    # -- minions -----------------------------------------------------------
    def send_minion(self, device: str, command: Command) -> Generator:
        """Ship a command; blocks until the response returns.

        Returns the completed :class:`Minion` (response populated by the
        device, per Fig. 3).  With a retry policy configured, retryable
        transport faults (``TRANSIENT``, ``DEVICE_UNAVAILABLE``,
        ``ISC_AGENT_DOWN`` completions, ``ABORTED`` responses) are resent
        with exponential backoff until the policy's attempt/deadline budget
        runs out; genuine minion outcomes (``CRASHED``, ``TIMEOUT``, ...)
        are never retried.
        """
        controller = self._controller(device)
        minion = Minion(command=command, client=self.name, created_at=self.sim.now)
        # Table III step 1: the client configures a minion and ships it.
        # With tracing on, this opens the root span of the minion's life.
        root_span = None
        if self.tracer.enabled:
            root_span = start_trace(self.tracer, self.sim, "minion.lifetime", self.name)
            root_span.event("client.minion.sent", minion=minion.minion_id, device=device)
            minion.span = root_span.context
        self.tracer.emit(
            self.sim.now, self.name, "client.minion.sent",
            minion=minion.minion_id, device=device,
        )
        self.minions_sent += 1
        breaker = self._breakers.get(device)
        policy = self.retry_policy
        deadline = self.sim.now + policy.deadline if policy is not None else None
        attempt = 1
        # try/finally so the root span always ends — even when the queue
        # call raises or an injected fault aborts the delivery mid-flight
        # (Span.end is idempotent; failure paths end it first, with status).
        try:
            while True:
                if breaker is not None and not breaker.allow(self.sim.now):
                    if self.metrics.enabled:
                        self._m_fast_fails.inc(device=device)
                    if root_span is not None:
                        root_span.end(status="breaker-open")
                    raise BreakerOpen(
                        f"minion {minion.minion_id} refused: breaker open for {device!r}"
                    )
                payload = IscPayload(body=minion, nbytes=command.wire_bytes)
                completion = yield from controller.queue(0).call(
                    NvmeCommand(opcode=Opcode.ISC_MINION, payload=payload)
                )
                failure: str | None = None
                retryable = False
                returned: Minion | None = None
                if not completion.ok:
                    failure = completion.status.name
                    retryable = completion_retryable(completion.status)
                else:
                    returned = completion.result
                    response = returned.response
                    if response is not None and response_retryable(response.status):
                        failure = response.status.value
                        retryable = True
                if failure is None:
                    assert returned is not None
                    if breaker is not None:
                        breaker.record_success(self.sim.now)
                    self.tracer.emit(
                        self.sim.now, self.name, "client.minion.returned",
                        minion=returned.minion_id, device=device,
                        status=returned.response.status.value if returned.response else "?",
                    )
                    if root_span is not None:
                        root_span.event(
                            "client.minion.returned", minion=returned.minion_id, device=device
                        )
                    self._m_minions.inc(device=device)
                    self._m_round_trip.observe(self.sim.now - minion.created_at, device=device)
                    return returned
                if breaker is not None:
                    breaker.record_failure(self.sim.now)
                out_of_budget = policy is None or attempt >= policy.max_attempts or (
                    deadline is not None and self.sim.now >= deadline
                )
                if not retryable or out_of_budget:
                    if root_span is not None:
                        root_span.end(status=failure)
                    raise InSituError(f"minion {minion.minion_id} failed: {failure}")
                # jitter draws only happen on this failure path, so healthy
                # runs consume nothing from the stream (schedule-neutral)
                delay = policy.backoff(attempt, self.sim.rng("client.retry"))
                if deadline is not None and self.sim.now + delay >= deadline:
                    # the backoff would sleep past the per-minion deadline:
                    # that retry is a guaranteed loss, so fail fast now
                    # instead of burning the sleep first
                    if root_span is not None:
                        root_span.end(status="TIMEOUT")
                    raise InSituError(
                        f"minion {minion.minion_id} failed: TIMEOUT "
                        f"(backoff past deadline after {failure})"
                    )
                self.retries += 1
                if self.metrics.enabled:
                    self._m_retries.inc(device=device, status=failure)
                self.tracer.emit(
                    self.sim.now, self.name, "client.minion.retry",
                    minion=minion.minion_id, device=device,
                    attempt=attempt, status=failure,
                )
                yield self.sim.timeout(delay)
                attempt += 1
        finally:
            if root_span is not None:
                root_span.end()

    def run(self, device: str, command_line: str = "", script: str = "", **kw) -> Generator:
        """Convenience: build the Command, send the minion, return the Response."""
        minion = yield from self.send_minion(
            device, Command(command_line=command_line, script=script, **kw)
        )
        assert minion.response is not None
        return minion.response

    def _send_collect(self, device: str, command: Command) -> Generator:
        """``send_minion`` with the error as a value instead of a raise."""
        try:
            minion = yield from self.send_minion(device, command)
        except InSituError as exc:
            return exc
        return minion.response

    def gather(
        self,
        assignments: Sequence[tuple[str, Command]],
        return_exceptions: bool = False,
    ) -> Generator:
        """Dispatch many minions concurrently; returns responses in order.

        This is the client fan-out the paper's Fig. 6/7 experiments rely on:
        one host client driving N CompStors in parallel.

        By default one failed delivery destroys the whole fan-out (the
        historical all-or-nothing contract).  With ``return_exceptions=True``
        each slot holds either the :class:`Response` or the
        :class:`InSituError` that killed it — one dead device costs only its
        own assignments, which is what fleet failover builds on.
        """
        if return_exceptions:
            procs = [
                self.sim.process(self._send_collect(device, command), name=f"minion->{device}")
                for device, command in assignments
            ]
            results = yield self.sim.all_of(procs)
            return [results[p] for p in procs]
        procs = [
            self.sim.process(self.send_minion(device, command), name=f"minion->{device}")
            for device, command in assignments
        ]
        results = yield self.sim.all_of(procs)
        minions: list[Minion] = [results[p] for p in procs]
        return [m.response for m in minions]

    # -- queries -----------------------------------------------------------
    def query(self, device: str, kind: QueryKind, payload: Any = None) -> Generator:
        """Administrative round trip; returns the reply."""
        controller = self._controller(device)
        query = Query(kind=kind, payload=payload)
        self.queries_sent += 1
        completion = yield from controller.queue(0).call(
            NvmeCommand(
                opcode=Opcode.ISC_QUERY,
                payload=IscPayload(body=query, nbytes=query.wire_bytes),
            )
        )
        if not completion.ok:
            raise InSituError(f"query {query.query_id} failed: {completion.status.name}")
        return completion.result.reply

    def status(self, device: str) -> Generator:
        reply = yield from self.query(device, QueryKind.STATUS)
        return reply

    def _status_collect(self, device: str) -> Generator:
        try:
            reply = yield from self.status(device)
        except InSituError as exc:
            return exc
        return reply

    def status_all(self, return_exceptions: bool = False) -> Generator:
        """Telemetry from every attached device, concurrently.

        With ``return_exceptions=True`` a crashed device's slot holds the
        :class:`InSituError` instead of poisoning the whole poll — fleet
        health keeps reporting while devices are down.
        """
        names = self.devices()
        if return_exceptions:
            procs = [self.sim.process(self._status_collect(name)) for name in names]
        else:
            procs = [self.sim.process(self.status(name)) for name in names]
        results = yield self.sim.all_of(procs)
        return {name: results[proc] for name, proc in zip(names, procs)}

    def load_executable(self, device: str, executable: Any) -> Generator:
        """Dynamic task loading: install a new binary on a running device."""
        controller = self._controller(device)
        completion = yield from controller.queue(0).call(
            NvmeCommand(
                opcode=Opcode.ISC_LOAD,
                payload=IscPayload(body=executable, nbytes=512 * 1024),
            )
        )
        if not completion.ok:
            raise InSituError(f"load of {executable.name!r} failed")
        return completion.result

    def load_executable_everywhere(self, executable: Any) -> Generator:
        procs = [
            self.sim.process(self.load_executable(name, executable))
            for name in self.devices()
        ]
        yield self.sim.all_of(procs)
        return None
