"""Background patrol scrubber (retention management).

NAND raw bit error rate grows with retention time; data written once and
read years later (exactly the cold-archive profile of a 24 TB drive) can
silently drift past the ECC's correction capability.  Enterprise FTLs run a
*patrol read*: walk the valid blocks, decode a sample page, and refresh
(relocate + erase) any block whose error level approaches the ECC limit.

:class:`PatrolScrubber` implements that loop over the existing GC machinery:
refreshing a block is just a forced collection, so relocated data lands on a
freshly-erased block with its retention clock reset.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ftl.ftl import FlashTranslationLayer

__all__ = ["PatrolScrubber"]


class PatrolScrubber:
    """Walks closed blocks and refreshes those near the ECC limit.

    Parameters
    ----------
    ftl:
        The translation layer to patrol.
    interval:
        Seconds between patrol passes.
    margin:
        Refresh when the *expected* per-codeword error count exceeds
        ``margin x capability`` (0.5 = refresh at half the ECC budget).
    """

    def __init__(
        self,
        ftl: "FlashTranslationLayer",
        interval: float = 30.0,
        margin: float = 0.5,
        enabled: bool = True,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not 0 < margin <= 1:
            raise ValueError("margin must be in (0, 1]")
        self.ftl = ftl
        self.interval = interval
        self.margin = margin
        self.blocks_scanned = 0
        self.blocks_refreshed = 0
        self.process = None
        if enabled:
            self.process = ftl.sim.process(self._run(), name=f"{ftl.name}.scrub")

    # -- decision logic ------------------------------------------------------
    def _block_at_risk(self, block_index: int) -> bool:
        ftl = self.ftl
        geo = ftl.flash.geometry
        pe = int(ftl.flash.pe_cycles[block_index])
        retention = max(0.0, ftl.sim.now - float(ftl.flash.program_time[block_index]))
        layout = ftl.ecc.config.layout
        expected = ftl.flash.error_model.expected_errors(
            nbits=layout.codeword_bytes * 8, pe_cycles=pe, retention_s=retention
        )
        return expected > self.margin * ftl.ecc.config.capability

    def _patrol_targets(self) -> tuple[list[int], list[int]]:
        """(closed, open-frontier) blocks holding valid data."""
        ftl = self.ftl
        closed = [
            b
            for b in ftl.allocator.closed_blocks()
            if ftl.page_map.valid_pages_in_block(b) > 0
        ]
        open_ = [
            b
            for b in ftl.allocator.open_blocks()
            if b is not None and ftl.page_map.valid_pages_in_block(b) > 0
        ]
        return closed, open_

    def at_risk_blocks(self) -> list[int]:
        """Blocks (closed or open) currently beyond the refresh margin."""
        closed, open_ = self._patrol_targets()
        return [b for b in closed + open_ if self._block_at_risk(b)]

    # -- patrol loop -----------------------------------------------------------
    def _run(self) -> Generator:
        ftl = self.ftl
        while True:
            # daemon timer: patrols never keep the simulation alive
            yield ftl.sim.timeout(self.interval, daemon=True)
            closed, open_ = self._patrol_targets()
            for block in closed:
                self.blocks_scanned += 1
                if self._block_at_risk(block):
                    yield from self.refresh(block)
            for block in open_:
                # an open frontier cannot be erased, but its cold data can
                # still be rewritten elsewhere (relocation-only refresh)
                self.blocks_scanned += 1
                if self._block_at_risk(block):
                    yield from self.refresh_data_only(block)

    def refresh_data_only(self, block_index: int) -> Generator:
        """Relocate valid data out of a block without erasing it."""
        ftl = self.ftl
        if block_index in ftl._reclaiming:
            return None
        ftl._reclaiming.add(block_index)
        try:
            for lpn in ftl.page_map.valid_lpns_in_block(block_index):
                old_ppn = ftl.page_map.lookup(lpn)
                if old_ppn // ftl.flash.geometry.pages_per_block != block_index:
                    continue
                yield from ftl.relocate(lpn, old_ppn)
            self.blocks_refreshed += 1
            ftl.tracer.emit(ftl.sim.now, ftl.name, "scrub.refresh-data", block=block_index)
        finally:
            ftl._reclaiming.discard(block_index)
        return None

    def refresh(self, block_index: int) -> Generator:
        """Relocate a block's valid data and erase it (retention reset)."""
        ftl = self.ftl
        if block_index in ftl._reclaiming:
            return None  # the garbage collector got there first
        ftl._reclaiming.add(block_index)
        try:
            yield from self._refresh_inner(block_index)
        finally:
            ftl._reclaiming.discard(block_index)
        return None

    def _refresh_inner(self, block_index: int) -> Generator:
        from repro.flash.package import EraseFailure

        ftl = self.ftl
        gc = ftl.gc
        for lpn in ftl.page_map.valid_lpns_in_block(block_index):
            old_ppn = ftl.page_map.lookup(lpn)
            if old_ppn // ftl.flash.geometry.pages_per_block != block_index:
                continue
            yield from gc._relocate_or_drop(lpn, old_ppn)
        while ftl.block_readers(block_index) > 0 or ftl.block_writers(block_index) > 0:
            yield ftl.sim.timeout(ftl.reader_quiesce_delay)
        # late binds may have re-validated pages; relocate the stragglers
        for lpn in ftl.page_map.valid_lpns_in_block(block_index):
            yield from gc._relocate_or_drop(lpn, ftl.page_map.lookup(lpn))
        ftl.page_map.release_block(block_index)
        try:
            yield from ftl.flash.erase_block(ftl.flash.geometry.block_address(block_index))
        except EraseFailure:
            ftl.allocator.retire_block(block_index)
            gc.blocks_retired += 1
            ftl.tracer.emit(ftl.sim.now, ftl.name, "scrub.block-retired", block=block_index)
            self.blocks_refreshed += 1
            return None
        ftl.allocator.release_block(block_index)
        self.blocks_refreshed += 1
        ftl.tracer.emit(ftl.sim.now, ftl.name, "scrub.refresh", block=block_index)
        return None
