"""SLO accounting: latency tails, fairness, shed/violation counts.

The tracker is the service frontend's single sink: every arrival,
admission decision, completion, and loss lands here, and :meth:`report`
freezes the run into a :class:`SloReport` — the JSON-able scorecard the
CLI prints, the determinism tests digest, and the CI golden pins.

Instruments are registered on the fleet's metrics registry when metrics
are enabled (so traffic runs export through :mod:`repro.obs.export` like
every other subsystem); with metrics off the tracker brings its own
private enabled registry, because the scorecard itself is not optional.

Latency histograms use the exact-reservoir mode
(:class:`repro.obs.metrics.Histogram` ``exact_limit``): p999 at a few
hundred completions is meaningless under bucket interpolation, and exact
quantiles are also what makes the scorecard byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config.schema import PriorityClassConfig
from repro.obs.metrics import MetricsRegistry

__all__ = ["OVERLOAD_SHED_REASONS", "SHED_REASONS", "SloReport", "SloTracker", "jain_index"]

#: Reservoir bound for exact tail quantiles; beyond this the histograms
#: degrade to bucket interpolation (drills stay far below it).
EXACT_LIMIT = 8192

#: Shed reasons the baseline admission pipeline can report.
SHED_REASONS = ("queue_full", "rate_limited")

#: Additional shed reasons once the overload defenses are engaged.
OVERLOAD_SHED_REASONS = ("brownout", "retry_budget")


def jain_index(counts: Sequence[float]) -> float:
    """Jain's fairness index over per-tenant allocations: 1.0 is perfectly
    fair, 1/n is maximally unfair.  Empty input reports 1.0 (vacuous)."""
    values = [float(c) for c in counts]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True, slots=True)
class SloReport:
    """One traffic run, frozen: the scorecard payload."""

    pattern: str
    requests: int
    admitted: int
    shed: dict[str, int]
    completed: int
    lost: int
    violations: int
    p50_ms: float
    p99_ms: float
    p999_ms: float
    queue_wait_p99_ms: float
    jain: float
    tenants_seen: int
    peak_queue: int
    peak_buckets: int
    per_class: dict[str, dict[str, float]]
    # Overload / closed-loop sections.  ``None`` (the default for every
    # open-loop run without defenses) keeps them out of the payload, so
    # pre-existing scorecards stay byte-identical.
    dropped: int | None = None  # CoDel drops at dispatch (post-admission)
    closed: dict | None = None  # session counters: issued/retried/...
    retry_budget: dict | None = None  # requested/admitted/rejected
    aimd: dict | None = None  # concurrency governor trajectory
    goodput: dict | None = None  # windowed fresh-completion counts
    burn: tuple | None = None  # multi-window burn-rate alert evaluations
    objstore: dict | None = None  # dedup-store byte accounting (write mix)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    def to_payload(self) -> dict:
        """Plain JSON-encodable dict (canonical-JSON friendly: no NaN,
        floats rounded so the scorecard digest is byte-stable)."""
        payload: dict = {
            "pattern": self.pattern,
            "requests": self.requests,
            "admitted": self.admitted,
            "shed": dict(sorted(self.shed.items())),
            "completed": self.completed,
            "lost": self.lost,
            "violations": self.violations,
            "p50_ms": round(self.p50_ms, 6),
            "p99_ms": round(self.p99_ms, 6),
            "p999_ms": round(self.p999_ms, 6),
            "queue_wait_p99_ms": round(self.queue_wait_p99_ms, 6),
            "jain": round(self.jain, 6),
            "tenants_seen": self.tenants_seen,
            "peak_queue": self.peak_queue,
            "peak_buckets": self.peak_buckets,
            "per_class": {
                name: {k: (round(v, 6) if isinstance(v, float) else v)
                       for k, v in sorted(stats.items())}
                for name, stats in sorted(self.per_class.items())
            },
        }
        if self.dropped is not None:
            payload["dropped"] = self.dropped
        if self.closed is not None:
            payload["closed"] = dict(sorted(self.closed.items()))
        if self.retry_budget is not None:
            payload["retry_budget"] = dict(sorted(self.retry_budget.items()))
        if self.aimd is not None:
            payload["aimd"] = dict(sorted(self.aimd.items()))
        if self.goodput is not None:
            payload["goodput"] = {
                "window_ms": round(self.goodput["window_ms"], 6),
                "windows": list(self.goodput["windows"]),
            }
        if self.objstore is not None:
            payload["objstore"] = dict(sorted(self.objstore.items()))
        if self.burn is not None:
            payload["burn"] = [
                {k: (round(v, 6) if isinstance(v, float) else v)
                 for k, v in sorted(alert.items())}
                for alert in self.burn
            ]
        return payload


class SloTracker:
    """Mutable accounting behind :class:`SloReport`."""

    def __init__(
        self,
        classes: Sequence[PriorityClassConfig],
        registry: MetricsRegistry | None = None,
        overload: bool = False,
    ):
        if registry is None or not registry.enabled:
            registry = MetricsRegistry(enabled=True)
        self.registry = registry
        self.overload = overload
        self.classes = tuple(classes)
        self._slo_s = {c.name: c.slo_ms / 1e3 for c in classes}
        self._latency = registry.histogram(
            "service.request.latency_seconds",
            "end-to-end latency (arrival to completion)",
            exact_limit=EXACT_LIMIT,
        )
        self._wait = registry.histogram(
            "service.queue.wait_seconds",
            "admission-queue wait (arrival to dispatch)",
            exact_limit=EXACT_LIMIT,
        )
        self._requests = registry.counter(
            "service.requests", "arrivals offered to admission"
        )
        self._shed = registry.counter("service.shed", "arrivals shed at admission")
        self._completed = registry.counter(
            "service.completed", "requests completed by the fleet"
        )
        self._lost = registry.counter(
            "service.lost", "admitted requests the fleet could not serve"
        )
        self._violations = registry.counter(
            "service.slo.violations", "completions over their class objective"
        )
        self._depth = registry.gauge("service.queue.depth", "admission queue depth")
        self._tenant_completions: dict[int, int] = {}
        self.peak_queue = 0
        # Overload/closed-loop instruments and the (time, good) event
        # series burn-rate alerting consumes — registered only when the
        # defenses are engaged, so legacy runs export exactly what they
        # always did.
        if overload:
            self._dropped = registry.counter(
                "service.dropped", "admitted requests dropped at dispatch"
            )
            self._stale = registry.counter(
                "service.stale", "completions delivered after client abandonment"
            )
            self._abandoned = registry.counter(
                "service.abandoned", "requests whose client stopped waiting"
            )
            self._retries = registry.counter(
                "service.retries", "retry attempts offered to admission"
            )
            self._concurrency = registry.gauge(
                "service.concurrency", "AIMD-governed dispatch slots"
            )
        else:
            self._dropped = self._stale = self._abandoned = None
            self._retries = self._concurrency = None
        self.events: list[tuple[float, bool]] = []  # (time, good)
        self.good_times: list[float] = []  # fresh-completion times

    # -- event sinks ---------------------------------------------------------

    def on_arrival(self, class_name: str) -> None:
        self._requests.inc(cls=class_name)

    def on_retry(self, class_name: str) -> None:
        if self._retries is not None:
            self._retries.inc(cls=class_name)

    def on_shed(self, class_name: str, reason: str, at: float | None = None) -> None:
        self._shed.inc(cls=class_name, reason=reason)
        if self.overload and at is not None:
            self.events.append((at, False))

    def on_queue_depth(self, depth: int) -> None:
        if depth > self.peak_queue:
            self.peak_queue = depth
        self._depth.set(depth)

    def on_concurrency(self, allowed: int) -> None:
        if self._concurrency is not None:
            self._concurrency.set(allowed)

    def on_drop(self, class_name: str, at: float | None = None) -> None:
        """An admitted request dropped at dispatch (CoDel sojourn control)."""
        self._dropped.inc(cls=class_name, reason="codel")
        if at is not None:
            self.events.append((at, False))

    def on_abandon(self, class_name: str, at: float | None = None) -> None:
        """The client stopped waiting; the request may still be served
        (stale) — that later completion is wasted work, not a good event."""
        self._abandoned.inc(cls=class_name)
        if at is not None:
            self.events.append((at, False))

    def on_complete(
        self,
        class_name: str,
        tenant: int,
        latency_s: float,
        wait_s: float,
        path: str,
        stale: bool = False,
        at: float | None = None,
    ) -> None:
        self._latency.observe(latency_s, cls=class_name)
        self._wait.observe(wait_s, cls=class_name)
        self._completed.inc(cls=class_name, path=path)
        self._tenant_completions[tenant] = self._tenant_completions.get(tenant, 0) + 1
        if latency_s > self._slo_s[class_name]:
            self._violations.inc(cls=class_name)
        if stale:
            self._stale.inc(cls=class_name)
        elif self.overload and at is not None:
            self.events.append((at, True))
            self.good_times.append(at)

    def on_lost(self, class_name: str, at: float | None = None) -> None:
        self._lost.inc(cls=class_name)
        if self.overload and at is not None:
            self.events.append((at, False))

    # -- reporting -----------------------------------------------------------

    def _class_count(self, counter, class_name: str, **extra: str) -> int:
        total = 0.0
        for labels, value, _t in counter.samples():
            if labels.get("cls") != class_name:
                continue
            if any(labels.get(k) != v for k, v in extra.items()):
                continue
            total += value
        return int(total)

    @property
    def dropped_total(self) -> int:
        return int(self._dropped.total()) if self._dropped is not None else 0

    @property
    def stale_total(self) -> int:
        return int(self._stale.total()) if self._stale is not None else 0

    @property
    def abandoned_total(self) -> int:
        return int(self._abandoned.total()) if self._abandoned is not None else 0

    @property
    def retries_total(self) -> int:
        return int(self._retries.total()) if self._retries is not None else 0

    def report(self, pattern: str, peak_buckets: int = 0) -> SloReport:
        reasons = SHED_REASONS + (OVERLOAD_SHED_REASONS if self.overload else ())
        shed: dict[str, int] = {reason: 0 for reason in reasons}
        for labels, value, _t in self._shed.samples():
            reason = labels.get("reason", "unknown")
            shed[reason] = shed.get(reason, 0) + int(value)
        per_class: dict[str, dict[str, float]] = {}
        for cls in self.classes:
            name = cls.name
            per_class[name] = {
                "requests": self._class_count(self._requests, name),
                "completed": self._class_count(self._completed, name),
                "violations": self._class_count(self._violations, name),
                "p99_ms": self._latency.percentile(0.99, cls=name) * 1e3,
            }
        return SloReport(
            pattern=pattern,
            requests=int(self._requests.total()),
            admitted=int(self._requests.total() - self._shed.total()),
            shed=shed,
            completed=int(self._completed.total()),
            lost=int(self._lost.total()),
            violations=int(self._violations.total()),
            p50_ms=self._latency.aggregate_percentile(0.50) * 1e3,
            p99_ms=self._latency.aggregate_percentile(0.99) * 1e3,
            p999_ms=self._latency.aggregate_percentile(0.999) * 1e3,
            queue_wait_p99_ms=self._wait.aggregate_percentile(0.99) * 1e3,
            jain=jain_index(list(self._tenant_completions.values())),
            tenants_seen=len(self._tenant_completions),
            peak_queue=self.peak_queue,
            peak_buckets=peak_buckets,
            per_class=per_class,
            dropped=self.dropped_total if self.overload else None,
        )
