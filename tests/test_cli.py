"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "CompStor" in out
    assert "Biscuit" in out


def test_fig1_command(capsys):
    assert main(["fig1", "--devices", "1", "64"]) == 0
    out = capsys.readouterr().out
    assert "mismatch" in out
    assert "545.8" in out  # 64-SSD aggregate media GB/s


def test_fig6_command_small(capsys):
    assert main(["fig6", "--app", "grep", "--devices", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "grep throughput" in out
    assert "r^2=" in out


def test_quickstart_command(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "in-situ grep matched 100 lines" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["definitely-not-a-command"])


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig6", "--app", "fortnite"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


def test_smart_command(capsys):
    assert main(["smart", "--files", "2"]) == 0
    out = capsys.readouterr().out
    assert "SMART" in out
    assert "write_amplification" in out
    assert "latency.ISC_MINION" in out


def test_fleet_command(capsys):
    assert main(["fleet", "--nodes", "1", "2", "--books-per-node", "4"]) == 0
    out = capsys.readouterr().out
    assert "fleet weak scaling" in out
    assert "aggregate MB/s" in out


def test_metrics_command(capsys):
    assert main(["metrics", "--workload", "grep", "--devices", "2", "--files", "2"]) == 0
    out = capsys.readouterr().out
    # all four instrumented layers show up in the Prometheus exposition
    assert "repro_ftl_host_reads_total" in out
    assert "repro_nvme_commands_total" in out
    assert "repro_isps_minions_total" in out
    assert "repro_cluster_placements_total" in out
    # JSON lines keep dotted names
    assert '"name": "ftl.host_reads"' in out
    # and the first minion's span tree replays the Table III lifecycle
    assert "span tree" in out
    for step in ("client.minion.sent", "minion.received", "minion.spawned",
                 "flash.read", "minion.tracked", "minion.responded",
                 "client.minion.returned"):
        assert step in out, f"span tree missing {step}"


def test_validate_quick_scorecard(capsys):
    assert main(["validate", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "reproduction scorecard" in out
    assert "5/5 claims reproduced" in out
    assert "FAIL" not in out


def test_fig7_command(capsys):
    assert main(["fig7", "--devices", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "aggregate" in out


def test_fig8_command_single_app(capsys):
    assert main(["fig8", "--apps", "grep"]) == 0
    out = capsys.readouterr().out
    assert "grep" in out and "paper ratio" in out


# -- parallel runner flags ----------------------------------------------------

def test_parallel_flags_parse_on_experiment_verbs():
    parser = build_parser()
    for verb in ("fig1", "fig6", "fig7", "fig8", "validate"):
        args = parser.parse_args([verb, "--workers", "4", "--no-cache"])
        assert args.workers == 4 and args.no_cache is True
    args = parser.parse_args(["validate", "--cache-dir", "/tmp/x"])
    assert args.cache_dir == "/tmp/x"
    args = parser.parse_args(["bench", "--workers", "2"])
    assert args.workers == 2


def test_fig1_workers_output_matches_serial(capsys):
    assert main(["fig1", "--devices", "1", "64", "--no-cache"]) == 0
    serial = capsys.readouterr()
    assert main(["fig1", "--devices", "1", "64", "--no-cache", "--workers", "2"]) == 0
    parallel = capsys.readouterr()
    assert parallel.out == serial.out  # stdout byte-identical at any width


def test_run_summary_goes_to_stderr_not_stdout(capsys):
    assert main(["fig8", "--apps", "grep"]) == 0
    captured = capsys.readouterr()
    assert "# parallel:" not in captured.out
    assert "# parallel:" in captured.err


def test_figure_cache_hit_reuses_results(capsys):
    assert main(["fig8", "--apps", "grep"]) == 0
    first = capsys.readouterr()
    assert "executed=1" in first.err
    assert main(["fig8", "--apps", "grep"]) == 0
    second = capsys.readouterr()
    assert second.out == first.out
    assert "cache hits=1" in second.err and "executed=0" in second.err
