#!/usr/bin/env python3
"""Selection/aggregation query pushdown (the Smart SSD scenario).

Do et al. (SIGMOD'13) ported a SELECT+aggregate into an SSD with "significant
modifications" to the database.  The paper's argument: with a Linux-powered
drive the same pushdown is just another executable.  This example runs

    SELECT COUNT(*), SUM(col4), MIN(col4), MAX(col4)
    FROM sales WHERE col2 > threshold

two ways — in-situ (`selectq`, a stock executable on every CompStor) and on
the host (table pulled over NVMe/PCIe) — and compares result sizes, time and
device energy.

Run:  python examples/sql_pushdown.py
"""

from repro.baselines import HostOnlyRunner
from repro.cluster import StorageNode
from repro.workloads import CsvTable, TableSpec

SPEC = TableSpec(rows=40_000, columns=6, value_range=(0.0, 1000.0))
QUERY = "selectq 2 gt 750 4 sales.csv"


def main() -> None:
    table = CsvTable(SPEC)
    blob = table.to_csv_bytes()
    truth = table.expected_selection(2, "gt", 750.0, 4)
    print(f"table: {SPEC.rows} rows x {SPEC.columns} cols, {len(blob) / 1e6:.2f} MB CSV")
    print(f"ground truth: {truth['count']} rows selected, sum={truth['sum']:.6g}\n")

    node = StorageNode.build(
        devices=1, device_capacity=64 * 1024 * 1024, with_baseline_ssd=True
    )
    sim = node.sim

    def stage():
        yield from node.compstors[0].fs.write_file("sales.csv", blob)
        yield from node.compstors[0].ftl.flush()
        yield from node.host.require_os().fs.write_file("sales.csv", blob)
        yield from node.baseline_ssd.ftl.flush()

    sim.run(sim.process(stage()))

    # -- in-situ pushdown ---------------------------------------------------
    mark = node.meter.snapshot()

    def pushdown():
        start = sim.now
        response = yield from node.client.run("compstor0", QUERY)
        return response, sim.now - start

    response, device_seconds = sim.run(sim.process(pushdown()))
    device_j = node.meter.window(mark).subset(["compstor0"])
    assert response.ok
    assert response.detail["rows_selected"] == truth["count"]

    # -- host-side scan ----------------------------------------------------
    runner = HostOnlyRunner(node)
    mark = node.meter.snapshot()

    def host_scan():
        return (yield from runner.run(QUERY))

    status, host_seconds = sim.run(sim.process(host_scan()))
    host_j = node.meter.window(mark).subset(["host", "baseline-ssd", "fabric"])
    assert status.detail["rows_selected"] == truth["count"]

    result_bytes = len(response.stdout) + 256  # + envelope
    print(f"{'':24s}{'in-situ':>12s}{'host pull':>12s}")
    print(f"{'query time (ms)':24s}{device_seconds * 1e3:>12.2f}{host_seconds * 1e3:>12.2f}")
    print(f"{'bytes over PCIe':24s}{result_bytes:>12d}{len(blob):>12d}")
    print(f"{'energy (J)':24s}{device_j:>12.4f}{host_j:>12.4f}")
    print(f"\nresult: {response.stdout.decode()}")
    print(f"PCIe traffic reduction: {len(blob) / result_bytes:,.0f}x; "
          f"energy advantage: {host_j / device_j:.1f}x")


if __name__ == "__main__":
    main()
