"""One-shot validation: does this build still reproduce the paper?

:func:`validate_against_paper` runs every evaluation experiment and grades
each published claim, returning a structured scorecard.  ``python -m repro
validate`` prints it — the reproduction certificate a reviewer would ask
for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.figures import (
    fig6_linearity,
    run_fig1,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.baselines import SYSTEMS

__all__ = ["Claim", "validate_against_paper"]

#: Fig. 8 absolute values must land within this fraction of the paper's bars.
FIG8_TOLERANCE = 0.40


@dataclass(frozen=True, slots=True)
class Claim:
    """One graded claim from the paper."""

    source: str  # "Fig. 1", "Table I", ...
    claim: str
    measured: str
    passed: bool


def validate_against_paper(quick: bool = False) -> list[Claim]:
    """Run the evaluation and grade each claim.

    ``quick=True`` trims device counts for sub-minute wall time.
    """
    claims: list[Claim] = []
    device_counts = (1, 2) if quick else (1, 2, 4)

    # -- Fig. 1 ---------------------------------------------------------------
    rows = run_fig1((1, 64))
    at64 = next(r for r in rows if r.ssd_count == 64)
    claims.append(Claim(
        "Fig. 1",
        "aggregate media bandwidth at 64 SSDs ~545 GB/s vs ~16 GB/s host PCIe",
        f"{at64.media_bandwidth_bps / 1e9:.0f} GB/s media, "
        f"{at64.host_ingest_bps / 1e9:.1f} GB/s ingest ({at64.mismatch:.0f}x)",
        abs(at64.media_bandwidth_bps - 545.8e9) / 545.8e9 < 0.02 and at64.mismatch > 30,
    ))

    # -- Table I --------------------------------------------------------------
    full = [s.system for s in SYSTEMS if s.all_features]
    claims.append(Claim(
        "Table I",
        "CompStor is the only full-feature in-storage computation system",
        f"full-feature rows: {full}",
        full == ["CompStor"],
    ))

    # -- Fig. 6 --------------------------------------------------------------
    results = run_fig6(app="grep", device_counts=device_counts)
    slope, _, r2 = fig6_linearity(results)
    claims.append(Claim(
        "Fig. 6",
        "performance scales linearly with the number of CompStors",
        f"grep slope {slope:.1f} MB/s/device, r^2={r2:.4f}",
        r2 > 0.98 and slope > 0,
    ))

    # -- Fig. 7 --------------------------------------------------------------
    fig7 = run_fig7(device_counts=device_counts)
    device_tp = fig7[0]["compstor_mb_s"]
    host_tp = fig7[0]["host_mb_s"]
    aggregate_monotone = all(
        a["aggregate_mb_s"] < b["aggregate_mb_s"] for a, b in zip(fig7, fig7[1:])
    )
    claims.append(Claim(
        "Fig. 7",
        "one CompStor is below the Xeon; aggregate grows with devices",
        f"device {device_tp:.1f} vs host {host_tp:.1f} MB/s; aggregate monotone: "
        f"{aggregate_monotone}",
        device_tp < host_tp and aggregate_monotone,
    ))

    # -- Fig. 8 --------------------------------------------------------------
    fig8 = run_fig8()
    wins = all(r.compstor_j_per_gb < r.xeon_j_per_gb for r in fig8)
    within = all(
        abs(r.compstor_j_per_gb - r.paper_compstor) / r.paper_compstor < FIG8_TOLERANCE
        and abs(r.xeon_j_per_gb - r.paper_xeon) / r.paper_xeon < FIG8_TOLERANCE
        for r in fig8
    )
    best = max(r.ratio for r in fig8)
    claims.append(Claim(
        "Fig. 8",
        "CompStor wins energy/GB on all six apps, up to ~3X",
        f"wins all: {wins}; within {FIG8_TOLERANCE:.0%} of paper bars: {within}; "
        f"best ratio {best:.2f}x",
        wins and within and best >= 2.8,
    ))
    return claims
