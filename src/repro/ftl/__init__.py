"""Flash translation layer.

The FTL turns the raw NAND array into a logical block device:

- :mod:`repro.ftl.mapping` — page-level logical-to-physical map with valid
  page accounting;
- :mod:`repro.ftl.allocator` — free-block pool and per-die write frontiers
  (dynamic wear-aware allocation);
- :mod:`repro.ftl.gc` — garbage-collection victim policies (greedy /
  cost-benefit) and the background collector;
- :mod:`repro.ftl.write_buffer` — the "fast-release host data buffer" from
  the paper: host writes complete on buffer insertion and are flushed to
  flash asynchronously;
- :mod:`repro.ftl.ftl` — the :class:`FlashTranslationLayer` facade offering
  ``read`` / ``write`` / ``trim`` / ``flush``.

In CompStor both the host path (via NVMe) and the ISPS path (via the flash
access device driver) issue logical I/O against this layer; the ISPS path
skips the PCIe hop, which is where the in-situ bandwidth advantage
originates.
"""

from repro.ftl.allocator import BlockAllocator, OutOfSpaceError
from repro.ftl.backend import (
    DEVICE_BACKENDS,
    TranslationBackend,
    backend_factory,
    create_backend,
    register_backend,
)
from repro.ftl.ftl import FlashTranslationLayer, FtlConfig, LogicalIOError
from repro.ftl.gc import CostBenefitPolicy, GarbageCollector, GcPolicy, GreedyPolicy
from repro.ftl.mapping import PageMap
from repro.ftl.scrubber import PatrolScrubber
from repro.ftl.write_buffer import WriteBuffer
from repro.ftl.zoned import ZonedFtl, ZoneState

__all__ = [
    "BlockAllocator",
    "CostBenefitPolicy",
    "DEVICE_BACKENDS",
    "FlashTranslationLayer",
    "FtlConfig",
    "GarbageCollector",
    "GcPolicy",
    "GreedyPolicy",
    "LogicalIOError",
    "OutOfSpaceError",
    "PageMap",
    "PatrolScrubber",
    "TranslationBackend",
    "WriteBuffer",
    "ZoneState",
    "ZonedFtl",
    "backend_factory",
    "create_backend",
    "register_backend",
]
