"""Sudden-power-off recovery (SPOR) tests.

A 'power cut' is modelled by constructing a fresh FTL over the same flash
array: all DRAM state (map, write buffer, allocator) vanishes; only the
NAND contents and OOB stamps survive.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=8, pages_per_block=4,
    page_size=512,
)
CONFIG = FtlConfig(op_ratio=0.3, write_buffer_pages=4, gc_low_watermark=1,
                   gc_high_watermark=2)


def make_stack():
    sim = Simulator(seed=6)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=512)))
    ftl = FlashTranslationLayer(sim, flash, ecc, config=CONFIG)
    return sim, flash, ecc, ftl


def power_cycle(sim, flash, ecc):
    """Fresh FTL over the surviving media; runs recovery."""
    reborn = FlashTranslationLayer(sim, flash, ecc, config=CONFIG, name="ftl2")
    mapped = sim.run(sim.process(reborn.recover_from_flash()))
    return reborn, mapped


def drive(sim, gen):
    return sim.run(sim.process(gen))


def test_flushed_data_survives_power_cut():
    sim, flash, ecc, ftl = make_stack()

    def workload():
        for lpn in range(10):
            yield from ftl.write(lpn, f"v{lpn}".encode())
        yield from ftl.flush()

    drive(sim, workload())
    reborn, mapped = power_cycle(sim, flash, ecc)
    assert mapped == 10

    def readback():
        out = []
        for lpn in range(10):
            out.append((yield from reborn.read(lpn)))
        return out

    assert drive(sim, readback()) == [f"v{lpn}".encode() for lpn in range(10)]
    reborn.page_map.check_invariants()


def test_latest_version_wins_after_overwrites_and_gc():
    sim, flash, ecc, ftl = make_stack()

    def workload():
        for r in range(8):  # enough churn to force GC relocations
            for lpn in range(8):
                yield from ftl.write(lpn, f"r{r}p{lpn}".encode())
        yield from ftl.flush()

    drive(sim, workload())
    assert ftl.gc.collections > 0  # relocated copies exist on the media
    reborn, mapped = power_cycle(sim, flash, ecc)
    assert mapped == 8

    def readback():
        out = []
        for lpn in range(8):
            out.append((yield from reborn.read(lpn)))
        return out

    assert drive(sim, readback()) == [f"r7p{lpn}".encode() for lpn in range(8)]


def test_unflushed_buffer_contents_are_lost():
    """The cost of fast-release: what never left DRAM is gone."""
    sim, flash, ecc, ftl = make_stack()

    def workload():
        yield from ftl.write(0, b"durable")
        yield from ftl.flush()
        yield from ftl.write(1, b"doomed")  # buffered, never flushed
        # power cut now: no flush

    drive(sim, workload())
    # ensure lpn 1 truly never destaged in this interleaving
    if ftl.page_map.is_mapped(1):
        pytest.skip("destage won the race in this schedule")
    reborn, _ = power_cycle(sim, flash, ecc)

    def readback():
        a = yield from reborn.read(0)
        b = yield from reborn.read(1)
        return a, b

    a, b = drive(sim, readback())
    assert a == b"durable"
    assert b is None


def test_recovery_restores_write_sequence():
    sim, flash, ecc, ftl = make_stack()

    def workload():
        for lpn in range(5):
            yield from ftl.write(lpn, b"x")
        yield from ftl.flush()

    drive(sim, workload())
    old_seq = ftl._write_seq
    reborn, _ = power_cycle(sim, flash, ecc)
    assert reborn._write_seq == old_seq

    # new writes after recovery continue the sequence and win
    def more():
        yield from reborn.write(0, b"after-reboot")
        yield from reborn.flush()
        return (yield from reborn.read(0))

    assert drive(sim, more()) == b"after-reboot"


def test_recovery_rebuilds_free_pool_and_device_stays_writable():
    sim, flash, ecc, ftl = make_stack()

    def workload():
        for r in range(6):
            for lpn in range(12):
                yield from ftl.write(lpn, f"r{r}".encode())
        yield from ftl.flush()

    drive(sim, workload())
    reborn, _ = power_cycle(sim, flash, ecc)
    # free pool excludes anything holding data
    for die_pool in reborn.allocator.free:
        for block in die_pool:
            assert int(flash.write_pointer[block]) == 0
    # full churn still works post-recovery
    drive(sim, workload_on(reborn, rounds=4))
    reborn.page_map.check_invariants()


def workload_on(ftl, rounds):
    def flow():
        for r in range(rounds):
            for lpn in range(12):
                yield from ftl.write(lpn, f"post{r}".encode())
        yield from ftl.flush()

    return flow()


def test_recovery_requires_fresh_ftl():
    sim, flash, ecc, ftl = make_stack()
    drive(sim, workload_on(ftl, rounds=1))
    with pytest.raises(RuntimeError, match="fresh"):
        drive(sim, ftl.recover_from_flash())


def test_recovery_costs_scan_time():
    sim, flash, ecc, ftl = make_stack()
    drive(sim, workload_on(ftl, rounds=1))
    before = sim.now
    reborn = FlashTranslationLayer(sim, flash, ecc, config=CONFIG, name="ftl2")
    sim.run(sim.process(reborn.recover_from_flash()))
    assert sim.now > before  # the OOB scan is not free


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 15), st.binary(min_size=1, max_size=8)),
        min_size=1, max_size=40,
    )
)
def test_recovery_matches_oracle_property(writes):
    """Any flushed write history is reconstructed exactly."""
    sim, flash, ecc, ftl = make_stack()
    oracle = {}

    def workload():
        for lpn, payload in writes:
            yield from ftl.write(lpn, payload)
            oracle[lpn] = payload
        yield from ftl.flush()

    drive(sim, workload())
    reborn, mapped = power_cycle(sim, flash, ecc)
    assert mapped == len(oracle)

    def readback():
        out = {}
        for lpn in oracle:
            out[lpn] = yield from reborn.read(lpn)
        return out

    assert drive(sim, readback()) == oracle
    reborn.page_map.check_invariants()
