"""Synthetic book corpus.

The paper's dataset: 348 plain-text books (~11.3 GB total), individually
compressed with bzip2 and gzip.  We cannot ship those books, so this module
generates a statistically similar corpus:

- Zipf-distributed words from a synthetic vocabulary (compression ratios
  land in the real-English range: ~0.33-0.42 for gzip level 6);
- newline-terminated lines of ~8-14 words (grep/gawk are line-based);
- a **needle token** injected at a known rate, so search results have exact
  expected values;
- deterministic from the seed: same spec, same corpus, bit for bit.

``CorpusSpec.paper_scale()`` reproduces the full 348-file/11.3 GB dataset
(analytic mode recommended at that size); the default is a scaled-down
corpus that keeps functional simulations fast.
"""

from __future__ import annotations

import bz2
import zlib
from dataclasses import dataclass
from typing import Generator, Iterable, Sequence

import numpy as np

__all__ = ["BookCorpus", "BookFile", "CorpusSpec", "partition_round_robin"]

_VOCAB_SIZE = 4096
_MEAN_WORDS_PER_LINE = 11


@dataclass(frozen=True, slots=True)
class CorpusSpec:
    """Parameters of a generated corpus.

    ``mean_file_bytes`` is the plain-text (uncompressed) size; compressed
    sizes emerge from the actual compressors.
    """

    files: int = 12
    mean_file_bytes: int = 256 * 1024
    size_spread: float = 0.5  # lognormal-ish spread around the mean
    needle: str = "xylophone"
    needle_rate: float = 1.0 / 2000.0  # probability per word
    seed: int = 2018  # the paper's year
    compressions: tuple[str, ...] = ("gzip", "bzip2")  # alternated per file

    def __post_init__(self) -> None:
        if self.files < 1 or self.mean_file_bytes < 1024:
            raise ValueError("need at least one file of at least 1 KiB")
        if not 0 <= self.needle_rate < 1:
            raise ValueError("needle_rate must be in [0, 1)")
        bad = set(self.compressions) - {"gzip", "bzip2", "none"}
        if bad:
            raise ValueError(f"unknown compressions: {bad}")

    @classmethod
    def paper_scale(cls) -> "CorpusSpec":
        """The full dataset: 348 books, ~11.3 GB compressed.

        At gzip/bzip2 text ratios (~0.35) that is ~32 GB of plain text, i.e.
        ~93 MB per book.  Use analytic staging at this scale.
        """
        return cls(files=348, mean_file_bytes=93 * 1024 * 1024)


@dataclass(slots=True)
class BookFile:
    """One generated book, plain and compressed."""

    name: str
    plain_size: int
    compressed_size: int
    compression: str
    plain: bytes | None = None
    compressed: bytes | None = None
    needle_count: int = 0

    @property
    def compressed_name(self) -> str:
        ext = {"gzip": ".gz", "bzip2": ".bz2", "none": ""}[self.compression]
        return self.name + ext

    @property
    def ratio(self) -> float:
        return self.compressed_size / self.plain_size if self.plain_size else 0.0


def _make_vocabulary(rng: np.random.Generator) -> list[bytes]:
    """A synthetic vocabulary with English-like word lengths."""
    letters = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz", dtype=np.uint8)
    vocab = []
    lengths = rng.integers(2, 11, size=_VOCAB_SIZE)
    for n in lengths:
        word = bytes(rng.choice(letters, size=int(n)))
        vocab.append(word)
    return vocab


class BookCorpus:
    """Generates and stages the corpus."""

    def __init__(self, spec: CorpusSpec | None = None):
        self.spec = spec or CorpusSpec()
        self._rng = np.random.default_rng(self.spec.seed)
        self._vocab = _make_vocabulary(self._rng)
        # Zipf-ish weights over the vocabulary (s ~ 1.1)
        ranks = np.arange(1, _VOCAB_SIZE + 1, dtype=float)
        weights = ranks ** -1.1
        self._weights = weights / weights.sum()

    # -- generation -----------------------------------------------------------
    def _file_sizes(self) -> np.ndarray:
        spec = self.spec
        mu = np.log(spec.mean_file_bytes)
        sizes = self._rng.lognormal(mean=mu, sigma=spec.size_spread, size=spec.files)
        return np.maximum(sizes, 1024).astype(np.int64)

    def _generate_text(self, nbytes: int) -> tuple[bytes, int]:
        """~``nbytes`` of Zipfian text; returns (text, needle_count)."""
        spec = self.spec
        mean_word = float(np.mean([len(w) for w in self._vocab])) + 1.0
        n_words = max(16, int(nbytes / mean_word))
        idx = self._rng.choice(_VOCAB_SIZE, size=n_words, p=self._weights)
        words = [self._vocab[i] for i in idx]
        needle = spec.needle.encode()
        needle_count = 0
        if spec.needle_rate > 0:
            hits = np.flatnonzero(self._rng.random(n_words) < spec.needle_rate)
            for h in hits:
                words[int(h)] = needle
            needle_count = len(hits)
        # assemble lines
        out = bytearray()
        i = 0
        while i < n_words:
            line_len = int(self._rng.integers(8, 2 * _MEAN_WORDS_PER_LINE - 7))
            out += b" ".join(words[i : i + line_len])
            out += b"\n"
            i += line_len
        return bytes(out[:nbytes] if len(out) > nbytes else out), needle_count

    def generate(self, functional: bool = True) -> list[BookFile]:
        """Produce the corpus.

        ``functional=False`` skips byte generation and compression, using
        the analytic ratio instead — instant at paper scale.
        """
        spec = self.spec
        books: list[BookFile] = []
        sizes = self._file_sizes()
        for i, size in enumerate(sizes):
            compression = spec.compressions[i % len(spec.compressions)]
            name = f"book{i:04d}.txt"
            if functional:
                plain, needles = self._generate_text(int(size))
                compressed = _compress(plain, compression)
                books.append(
                    BookFile(
                        name=name,
                        plain_size=len(plain),
                        compressed_size=len(compressed),
                        compression=compression,
                        plain=plain,
                        compressed=compressed,
                        needle_count=needles,
                    )
                )
            else:
                ratio = {"gzip": 0.36, "bzip2": 0.30, "none": 1.0}[compression]
                expected_needles = int(size / 7.0 * spec.needle_rate)
                books.append(
                    BookFile(
                        name=name,
                        plain_size=int(size),
                        compressed_size=max(1, int(size * ratio)),
                        compression=compression,
                        needle_count=expected_needles,
                    )
                )
        return books

    # -- staging ---------------------------------------------------------------
    @staticmethod
    def stage_plain(fs, books: Iterable[BookFile]) -> Generator:
        """Import plain-text books into a filesystem (simulation process)."""
        for book in books:
            yield from fs.write_file(book.name, book.plain, size=book.plain_size)
        return None

    @staticmethod
    def stage_compressed(fs, books: Iterable[BookFile]) -> Generator:
        """Import compressed books (the paper's on-device layout)."""
        for book in books:
            yield from fs.write_file(
                book.compressed_name, book.compressed, size=book.compressed_size
            )
        return None


def _compress(data: bytes, algorithm: str) -> bytes:
    if algorithm == "gzip":
        return zlib.compress(data, 6)
    if algorithm == "bzip2":
        return bz2.compress(data, 9)
    if algorithm == "none":
        return data
    raise ValueError(f"unknown algorithm {algorithm!r}")


def partition_round_robin(items: Sequence, buckets: int) -> list[list]:
    """Distribute items across ``buckets`` (file->device placement)."""
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    out: list[list] = [[] for _ in range(buckets)]
    for i, item in enumerate(items):
        out[i % buckets].append(item)
    return out
