"""Serial/parallel equivalence: the tentpole determinism proof.

Two layers:

* **Golden scenarios through the runner.**  The three pinned scenarios run
  as parallel-runner jobs at ``workers=1`` and ``workers=4``; both must
  reproduce the recorded golden digests bit-for-bit.  This catches any
  hermeticity leak a ``spawn`` worker could introduce (import order, ID
  allocator state, environment) — a digest is a pure function of
  ``(seed, model)`` or it is wrong.

* **The ``validate`` CLI.**  ``validate --quick`` must print a
  byte-identical scorecard at any worker count, and a cache-hit rerun must
  reuse stored results (``executed=0``) while still printing the same
  bytes to stdout.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.cli import main
from repro.parallel import JobSpec, run_jobs

# the recorded digests live next door in test_golden_schedules.py; make the
# sibling importable regardless of pytest's import mode
sys.path.insert(0, str(Path(__file__).resolve().parent))
from test_golden_schedules import GOLDEN  # noqa: E402


def golden_specs() -> list[JobSpec]:
    return [
        JobSpec(
            name=f"golden.{name}",
            target="repro.testing:golden_scenario_job",
            kwargs={"name": name},
        )
        for name in GOLDEN
    ]


def test_golden_scenarios_identical_across_worker_counts():
    serial = run_jobs(golden_specs(), workers=1)
    parallel = run_jobs(golden_specs(), workers=4)
    assert serial.digests() == parallel.digests()
    for result in (*serial.results, *parallel.results):
        scenario = result.value["scenario"]
        assert result.value["digest"] == GOLDEN[scenario], (
            f"{scenario} drifted in a {'spawn' if result in parallel.results else 'serial'} run"
        )
        assert result.value["records"] > 0


def test_validate_quick_byte_identical_and_cached(capsys):
    # reference: serial, no cache
    assert main(["validate", "--quick", "--no-cache"]) == 0
    serial = capsys.readouterr()
    assert "5/5 claims reproduced" in serial.out

    # parallel first run: populates the (per-test) cache, same bytes out
    assert main(["validate", "--quick", "--workers", "4"]) == 0
    parallel = capsys.readouterr()
    assert parallel.out == serial.out
    assert "executed=5" in parallel.err

    # cache-hit rerun: nothing executes, stdout still byte-identical
    assert main(["validate", "--quick", "--workers", "4"]) == 0
    rerun = capsys.readouterr()
    assert rerun.out == serial.out
    assert "executed=0" in rerun.err
    assert "cache hits=5" in rerun.err
