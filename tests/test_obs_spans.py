"""Span tracing: propagation, tree reconstruction, Table III causal order."""

from repro.cluster import StorageNode
from repro.obs import (
    adopt_records,
    build_span_trees,
    continue_trace,
    format_span_tree,
    start_trace,
)
from repro.sim import Simulator, Tracer
from repro.sim.trace import TraceRecord


# -- construction / reconstruction --------------------------------------------

def test_span_tree_reconstruction():
    sim = Simulator()
    tracer = Tracer()
    root = start_trace(tracer, sim, "job", "client")
    child = root.child("transport", "nvme")
    child.event("hop", queue=0)
    child.end()
    root.end()

    trees = build_span_trees(tracer)
    assert len(trees) == 1
    tree = next(iter(trees.values()))
    assert tree.name == "job"
    assert [c.name for c in tree.children] == ["transport"]
    assert tree.children[0].events[0][1] == "hop"
    assert tree.children[0].duration == 0.0


def test_continue_trace_joins_propagated_context():
    sim = Simulator()
    tracer = Tracer()
    root = start_trace(tracer, sim, "life", "client")
    ctx = root.context  # what travels inside the minion
    remote = continue_trace(tracer, sim, "agent", "device", ctx)
    remote.end()
    root.end()
    tree = next(iter(build_span_trees(tracer).values()))
    assert tree.name == "life"
    assert tree.children[0].name == "agent"
    assert tree.children[0].parent_id == ctx.span_id


def test_span_end_is_idempotent():
    sim = Simulator()
    tracer = Tracer()
    span = start_trace(tracer, sim, "s", "c")
    span.end()
    span.end()
    assert len([r for r in tracer.records if r.kind == "span.end"]) == 1


def test_span_ids_are_deterministic_per_tracer():
    def run():
        sim = Simulator(seed=7)
        tracer = Tracer()
        root = start_trace(tracer, sim, "a", "c")
        root.child("b").end()
        root.end()
        return [(r.kind, dict(r.detail)) for r in tracer.records]

    assert run() == run()


def test_orphan_spans_promote_to_roots():
    # parent record evicted (bounded tracer) -> child still reconstructs
    records = [
        TraceRecord(1.0, "c", "span.start",
                    detail={"trace": 1, "span": 5, "parent": 2, "name": "orphan"}),
        TraceRecord(2.0, "c", "span.end", detail={"trace": 1, "span": 5}),
    ]
    trees = build_span_trees(records)
    assert trees[1].name == "orphan"


def test_adopt_records_attaches_to_deepest_window():
    sim = Simulator()
    tracer = Tracer()
    root = start_trace(tracer, sim, "outer", "client")
    inner = root.child("inner", "dev0.agent")

    def flow():
        yield sim.timeout(1.0)
        tracer.emit(sim.now, "dev0.flash", "flash.read", addr=3)
        yield sim.timeout(1.0)
        inner.end()
        yield sim.timeout(1.0)
        root.end()

    sim.run(sim.process(flow()))
    tree = next(iter(build_span_trees(tracer).values()))
    adopted = adopt_records(tree, tracer, kinds=("flash.read",), component_prefix="dev0")
    assert adopted == 1
    # landed on the *deepest* containing span, not the root
    assert tree.events == []
    assert tree.children[0].events[0][1] == "flash.read"


# -- end-to-end: the Table III minion lifetime ---------------------------------

# Step 5 (tracking) runs concurrently with the driver's flash traffic and
# takes its first sample at spawn time, so it precedes the first flash.read
# completion in the causal sequence.
TABLE3_STEPS = (
    "client.minion.sent",     # 1. client configures + sends the minion
    "minion.received",        # 2. agent receives it
    "minion.spawned",         # 2. and spawns the in-storage process
    "minion.tracked",         # 5. agent tracks in-situ status (periodic)
    "flash.read",             # 3-4. driver reads flash for the scan
    "minion.responded",       # 6. response populated and sent back
    "client.minion.returned", # 6. client observes completion
)


def minion_lifetime_tree():
    tracer = Tracer()
    node = StorageNode.build(devices=1, device_capacity=16 * 1024 * 1024, tracer=tracer)
    sim = node.sim
    fs = node.compstors[0].fs

    def stage():
        yield from fs.write_file("f.txt", b"fox\n" * 500)
        # land the file on NAND so the scan produces real flash traffic
        yield from fs.device.flush()

    sim.run(sim.process(stage()))

    def flow():
        yield from node.client.run("compstor0", "grep fox f.txt")

    sim.run(sim.process(flow()))
    trees = build_span_trees(tracer)
    roots = [t for t in trees.values() if t.name == "minion.lifetime"]
    assert len(roots) == 1
    root = roots[0]
    adopt_records(root, tracer, kinds=("flash.read",), component_prefix="compstor0.flash")
    return root


def test_minion_lifetime_spans_all_six_table3_steps_in_causal_order():
    root = minion_lifetime_tree()
    names = [name for _, name in root.event_sequence()]
    # every step is present...
    for step in TABLE3_STEPS:
        assert step in names, f"missing Table III step {step}"
    # ...and in causal order (first occurrence of each)
    first = [names.index(step) for step in TABLE3_STEPS]
    assert first == sorted(first)


def test_minion_lifetime_tree_shape():
    root = minion_lifetime_tree()
    # client -> nvme transport -> agent execution -> process execution
    assert root.find("nvme.isc") is not None
    agent = root.find("agent.execute")
    assert agent is not None and agent.component == "compstor0.agent"
    execp = root.find("exec.process")
    assert execp is not None
    # flash traffic was adopted into the execution window
    assert any(event[1] == "flash.read" for event in execp.events)
    # spans nest in time
    assert root.start <= agent.start and agent.end <= root.end


def test_format_span_tree_renders_events_and_nesting():
    root = minion_lifetime_tree()
    text = format_span_tree(root)
    assert "minion.lifetime (client)" in text
    assert "agent.execute" in text
    assert "* " in text  # events inlined
    # nesting via indentation
    lines = text.splitlines()
    assert any(line.startswith("    ") for line in lines)


def test_no_span_records_without_tracer():
    # default-off: a node built without a tracer emits no span records at all
    node = StorageNode.build(devices=1, device_capacity=16 * 1024 * 1024)
    sim = node.sim
    sim.run(sim.process(node.compstors[0].fs.write_file("f.txt", b"fox\n")))

    def flow():
        yield from node.client.run("compstor0", "grep fox f.txt")

    sim.run(sim.process(flow()))  # nothing raises; no tracer anywhere
