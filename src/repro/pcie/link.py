"""Point-to-point PCIe link model.

A link is ``lanes`` wide at a generation's per-lane rate.  Each direction is
an independent capacity-1 resource (full duplex); a transfer occupies its
direction for ``overhead + bytes/effective_bw`` seconds.  TLP/DLLP protocol
overhead is folded into an efficiency factor (~87% for 256B payloads on
Gen3), matching how the paper quotes "16 lanes of PCIe = 16 GB/s".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Generator

from repro.sim import Resource, Simulator

__all__ = ["PcieGen", "PcieLink", "Direction"]


class PcieGen(Enum):
    """Per-lane raw rate in bytes/second (after line coding)."""

    GEN1 = 250e6
    GEN2 = 500e6
    GEN3 = 985e6
    GEN4 = 1969e6

    @property
    def lane_rate(self) -> float:
        return float(self.value)


class Direction(Enum):
    TX = "tx"  # host -> device (downstream writes)
    RX = "rx"  # device -> host (upstream reads/results)


@dataclass(frozen=True, slots=True)
class LinkParams:
    gen: PcieGen = PcieGen.GEN3
    lanes: int = 4
    efficiency: float = 0.87
    latency: float = 0.5e-6  # propagation + serdes + switch hop
    energy_per_byte: float = 5e-12  # PHY + SerDes energy

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError("lanes must be >= 1")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        if self.latency < 0 or self.energy_per_byte < 0:
            raise ValueError("latency/energy must be non-negative")

    @property
    def bandwidth(self) -> float:
        """Effective one-direction bandwidth, bytes/second."""
        return self.gen.lane_rate * self.lanes * self.efficiency


class PcieLink:
    """One full-duplex link with per-direction serialization."""

    def __init__(
        self,
        sim: Simulator,
        params: LinkParams | None = None,
        name: str = "pcie",
        energy_sink: Callable[[str, float], None] | None = None,
        **param_overrides,
    ):
        self.sim = sim
        self.params = params or LinkParams(**param_overrides)
        self.name = name
        self.energy_sink = energy_sink
        self._channels = {
            Direction.TX: Resource(sim, capacity=1, name=f"{name}.tx"),
            Direction.RX: Resource(sim, capacity=1, name=f"{name}.rx"),
        }
        self.bytes_moved = {Direction.TX: 0, Direction.RX: 0}

    @property
    def bandwidth(self) -> float:
        return self.params.bandwidth

    def transfer(self, nbytes: int, direction: Direction) -> Generator:
        """Move ``nbytes`` in ``direction``; returns the elapsed seconds."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        channel = self._channels[direction]
        start = self.sim.now
        with channel.request() as req:
            yield req
            duration = self.params.latency + nbytes / self.params.bandwidth
            yield self.sim.timeout(duration)
        self.bytes_moved[direction] += nbytes
        if self.energy_sink is not None and nbytes:
            self.energy_sink(self.name, nbytes * self.params.energy_per_byte)
        return self.sim.now - start

    def utilization(self, direction: Direction) -> float:
        return self._channels[direction].utilization()
