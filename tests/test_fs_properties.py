"""Property-based tests: the extent filesystem against a dict oracle."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.isos import ExtentFileSystem, FlashAccessDevice, FsError
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=10,
    pages_per_block=8, page_size=512,
)

NAMES = ("alpha", "beta", "gamma", "delta")


def make_fs():
    sim = Simulator(seed=2)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=512)))
    ftl = FlashTranslationLayer(sim, flash, ecc, config=FtlConfig(op_ratio=0.25))
    return sim, ExtentFileSystem(sim, FlashAccessDevice(sim, ftl))


fs_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.sampled_from(NAMES), st.binary(max_size=1400)),
        st.tuples(st.just("append"), st.sampled_from(NAMES), st.binary(min_size=1, max_size=600)),
        st.tuples(st.just("delete"), st.sampled_from(NAMES), st.just(b"")),
        st.tuples(st.just("read"), st.sampled_from(NAMES), st.just(b"")),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=fs_ops)
def test_filesystem_agrees_with_dict_oracle(ops):
    sim, fs = make_fs()
    oracle: dict[str, bytes] = {}
    problems: list[tuple] = []

    def driver():
        for op, name, payload in ops:
            if op == "write":
                yield from fs.write_file(name, payload)
                oracle[name] = payload
            elif op == "append":
                if name in oracle:
                    # appends are page-aligned (documented simplification):
                    # the oracle pads the existing tail to a page boundary
                    page = fs.page_size
                    existing = oracle[name]
                    pad = (-len(existing)) % page if existing else 0
                    yield from fs.append(name, payload)
                    oracle[name] = existing + b"\0" * pad + payload
                else:
                    yield from fs.append(name, payload)
                    oracle[name] = payload
            elif op == "delete":
                if name in oracle:
                    yield from fs.delete(name)
                    oracle.pop(name)
                else:
                    try:
                        yield from fs.delete(name)
                        problems.append(("delete-missing-succeeded", name))
                    except FsError:
                        pass
            else:  # read
                if name in oracle:
                    data = yield from fs.read_file(name)
                    # reads may legitimately return extra page padding only
                    # if our oracle mis-modelled; require exact agreement on
                    # the logical size prefix
                    if data != oracle[name][: len(data)] or len(data) != len(oracle[name]):
                        problems.append(("read-mismatch", name, data, oracle[name]))
                else:
                    try:
                        yield from fs.read_file(name)
                        problems.append(("read-missing-succeeded", name))
                    except FsError:
                        pass
        # final sweep
        if set(fs.listdir()) != set(oracle):
            problems.append(("listing-mismatch", fs.listdir(), sorted(oracle)))
        for name, expected in oracle.items():
            data = yield from fs.read_file(name)
            if data != expected:
                problems.append(("final-mismatch", name))

    sim.run(sim.process(driver()))
    assert problems == []


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=fs_ops)
def test_free_page_accounting_never_leaks(ops):
    """free + allocated is invariant across any operation sequence."""
    sim, fs = make_fs()
    total_free = fs.free_pages

    def driver():
        for op, name, payload in ops:
            try:
                if op == "write":
                    yield from fs.write_file(name, payload)
                elif op == "append":
                    yield from fs.append(name, payload)
                elif op == "delete":
                    yield from fs.delete(name)
                else:
                    yield from fs.read_file(name)
            except FsError:
                pass

    sim.run(sim.process(driver()))
    allocated = sum(len(inode.pages) for inode in fs.files.values())
    assert fs.free_pages + allocated == total_free
    # no page is referenced twice
    all_pages = [lpn for inode in fs.files.values() for lpn in inode.pages]
    assert len(all_pages) == len(set(all_pages))


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    files=st.dictionaries(
        st.sampled_from(NAMES), st.binary(min_size=1, max_size=800), min_size=1
    )
)
def test_persist_load_roundtrip_property(files):
    """Any file set survives persist + reboot + load byte-for-byte."""
    sim, fs = make_fs()

    def driver():
        for name, data in files.items():
            yield from fs.write_file(name, data)
        yield from fs.persist()

    sim.run(sim.process(driver()))
    reborn = ExtentFileSystem(sim, fs.device)
    sim.run(sim.process(reborn.load()))
    assert set(reborn.listdir()) == set(files)

    def verify():
        out = {}
        for name in files:
            out[name] = yield from reborn.read_file(name)
        return out

    assert sim.run(sim.process(verify())) == files
