"""PCIe fabric model: links, switch, root complex.

The paper's Fig. 2 topology — one host root complex, a PCIe switch, and N
CompStor endpoints — is built here.  Bandwidth is modelled per *direction*
(PCIe is full duplex) with protocol efficiency applied; contention arises
from the shared uplink between switch and root complex, which is exactly the
bottleneck the paper's Fig. 1 quantifies (2 GB/s per SSD link vs 16 GB/s of
host PCIe vs ~545 GB/s of aggregate flash bandwidth at 64 SSDs).
"""

from repro.pcie.link import PcieGen, PcieLink
from repro.pcie.switch import PcieFabric, PciePort, PcieSwitch, RootComplex

__all__ = [
    "PcieFabric",
    "PcieGen",
    "PcieLink",
    "PciePort",
    "PcieSwitch",
    "RootComplex",
]
