"""The experiment matrix as enumerable work items.

Every row of the paper's evaluation — scorecard claims, figure cells,
ablation points, bench scenarios — expressed as
:class:`~repro.parallel.jobs.JobSpec` lists that the runner can shard.
Targets are import strings, not callables, so this module stays cheap to
import and specs stay picklable for ``spawn`` workers.

Ablation cells live in ``benchmarks/`` (outside the installable package)
and are addressed with ``file:`` targets; :func:`ablation_jobs` only
enumerates them when the checkout is present.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.parallel.jobs import JobSpec, repo_root

__all__ = [
    "ablation_jobs",
    "backends_jobs",
    "bench_jobs",
    "drill_jobs",
    "fig1_jobs",
    "fig6_jobs",
    "fig7_jobs",
    "fig8_jobs",
    "full_matrix",
    "objstore_jobs",
    "objstore_sweep_jobs",
    "shard_jobs",
    "traffic_jobs",
    "validation_jobs",
]

#: Traffic mixes in canonical scorecard order.
TRAFFIC_MIXES = ("poisson", "diurnal", "bursty")

#: Scorecard claim names in canonical (paper) order; mirrors
#: ``repro.analysis.validation.CLAIM_ORDER`` without importing it.
CLAIM_NAMES = ("fig1", "table1", "fig6", "fig7", "fig8")


def _scenario_kwargs(scenario: dict | None) -> dict[str, Any]:
    """Scenario payload for a cell's kwargs.

    Omitted entirely when None so legacy job specs — and their cache
    keys — are byte-identical to previous releases; when present the
    scenario participates in the spec digest automatically.
    """
    return {} if scenario is None else {"scenario": scenario}


def validation_jobs(quick: bool = False, scenario: dict | None = None) -> list[JobSpec]:
    """One job per scorecard claim (the unit ``validate`` shards on)."""
    return [
        JobSpec(
            name=f"validate.{name}",
            target="repro.analysis.validation:run_claim",
            kwargs={"name": name, "quick": quick, **_scenario_kwargs(scenario)},
        )
        for name in CLAIM_NAMES
    ]


def fig1_jobs(ssd_counts: Sequence[int]) -> list[JobSpec]:
    return [
        JobSpec(
            name=f"fig1.n{count}",
            target="repro.analysis.figures:fig1_cell",
            kwargs={"ssd_count": count},
        )
        for count in ssd_counts
    ]


def fig6_jobs(
    app: str,
    device_counts: Sequence[int],
    scenario: dict | None = None,
    **cell_kwargs: Any,
) -> list[JobSpec]:
    return [
        JobSpec(
            name=f"fig6.{app}.n{count}",
            target="repro.analysis.figures:fig6_cell",
            kwargs={
                "app": app, "devices": count,
                **_scenario_kwargs(scenario), **cell_kwargs,
            },
        )
        for count in device_counts
    ]


def fig7_jobs(
    device_counts: Sequence[int], scenario: dict | None = None
) -> list[JobSpec]:
    """The host-only bzip2 measurement plus one device cell per count."""
    return [
        JobSpec(
            name="fig7.host",
            target="repro.analysis.figures:fig7_host_cell",
            kwargs=_scenario_kwargs(scenario),
        )
    ] + [
        JobSpec(
            name=f"fig7.bzip2.n{count}",
            target="repro.analysis.figures:fig6_cell",
            kwargs={
                "app": "bzip2", "devices": count, **_scenario_kwargs(scenario)
            },
        )
        for count in device_counts
    ]


def fig8_jobs(apps: Sequence[str], scenario: dict | None = None) -> list[JobSpec]:
    return [
        JobSpec(
            name=f"fig8.{app}",
            target="repro.analysis.figures:fig8_cell",
            kwargs={"app": app, **_scenario_kwargs(scenario)},
        )
        for app in apps
    ]


def backends_jobs(
    backends: Sequence[str] = ("page", "zoned"),
    scenario: dict | None = None,
    apps: Sequence[str] = ("grep", "gzip"),
    devices: int = 2,
) -> list[JobSpec]:
    """One comparison cell per ``(backend, app)`` on a pinned device count.

    The cell set is the ``backends`` verb's scorecard: every backend runs
    the identical workload, so cross-backend ``output_digest`` equality is
    an invariant and the throughput/GC columns isolate the backend.
    """
    return [
        JobSpec(
            name=f"backends.{backend}.{app}.n{devices}",
            target="repro.analysis.backends:backend_cell",
            kwargs={
                "backend": backend, "app": app, "devices": devices,
                **_scenario_kwargs(scenario),
            },
        )
        for backend in backends
        for app in apps
    ]


def traffic_jobs(
    scenario: dict | None = None, mixes: Sequence[str] = TRAFFIC_MIXES
) -> list[JobSpec]:
    """One serving cell per arrival mix.  Each cell is hermetic (the
    scenario dict plus the mix override are the whole input), so results
    cache and shard like any other matrix cell."""
    return [
        JobSpec(
            name=f"traffic.{mix}",
            target="repro.service.drill:run_traffic_cell",
            kwargs={"mix": mix, **_scenario_kwargs(scenario)},
        )
        for mix in mixes
    ]


def drill_jobs(scenario: dict | None = None) -> list[JobSpec]:
    """The metastable drill pair: defenses on, then the defenses-off
    counterfactual of the *same* scenario (same digest, same seed, same
    fault trigger) — demonstrating both the recovery and the sustained
    degraded state the defenses prevent."""
    return [
        JobSpec(
            name=f"drill.{tag}",
            target="repro.service.drill:run_metastable_cell",
            kwargs={"defenses": defenses, **_scenario_kwargs(scenario)},
        )
        for tag, defenses in (("defenses-on", True), ("defenses-off", False))
    ]


#: Dedup-ratio dials for the default objstore sweep, in dial order.
OBJSTORE_SWEEP_DIALS = (0.0, 0.25, 0.5, 0.75, 0.9)


def objstore_jobs(scenario: dict | None = None) -> list[JobSpec]:
    """The object-store drill pair: the GC-under-crash cell and the
    delete-wave reclamation stress over the *same* scenario (same digest,
    same seed, same fault windows) — together they cover the crash-recovery
    invariant from both sides: nothing referenced is ever lost, and nothing
    unreferenced outlives the post-recovery sweep."""
    return [
        JobSpec(
            name=f"objstore.{tag}",
            target=f"repro.objstore.drill:{func}",
            kwargs=_scenario_kwargs(scenario),
        )
        for tag, func in (
            ("ingest", "run_objstore_cell"),
            ("gc-drill", "run_gc_drill_cell"),
        )
    ]


def objstore_sweep_jobs(
    scenario: dict | None = None,
    dials: Sequence[float] = OBJSTORE_SWEEP_DIALS,
) -> list[JobSpec]:
    """One ingest cell per dedup-ratio dial — the fig-style sweep showing
    measured dedup ratio (offered / stored bytes) tracking the workload
    dial as chunk+hash offload suppresses duplicate writes."""
    return [
        JobSpec(
            name=f"objstore.sweep.d{dial:g}",
            target="repro.objstore.drill:run_objstore_sweep_cell",
            kwargs={"dedup_ratio": dial, **_scenario_kwargs(scenario)},
        )
        for dial in dials
    ]


def shard_jobs(
    scenario: dict | None = None,
    shard_counts: Sequence[int] = (1, 2, 4),
    backend: str | None = None,
    window_us: float | None = None,
) -> list[JobSpec]:
    """One sharded run per shard count — the equivalence sweep as cells.

    Each cell is hermetic (scenario dict plus overrides are the whole
    input) and caches like any matrix cell; the scorecard digest printed
    per cell is shard-count-independent by construction, so a sweep whose
    digests differ is a sync-protocol bug surfacing in CI.
    """
    extra: dict[str, Any] = {}
    if backend is not None:
        extra["backend"] = backend
    if window_us is not None:
        extra["window_us"] = window_us
    return [
        JobSpec(
            name=f"shard.s{count}",
            target="repro.sim.shard.engine:run_shard_cell",
            kwargs={"shards": count, **_scenario_kwargs(scenario), **extra},
        )
        for count in shard_counts
    ]


def bench_jobs(names: Sequence[str], repeat: int = 1) -> list[JobSpec]:
    """Bench scenarios as jobs.  Never cache these: the wall clock *is*
    the measurement, and a cached wall time is a lie about this run."""
    return [
        JobSpec(
            name=f"bench.{name}",
            target="repro.analysis.perf:bench_job",
            kwargs={"name": name, "repeat": repeat},
        )
        for name in names
    ]


#: Ablation cells: (job name, benchmark file, cell function, kwargs).
#: Each target is a module-level function with JSON-encodable scalar
#: arguments — the same functions the pytest benches sweep.
ABLATION_CELLS: tuple[tuple[str, str, str, dict], ...] = (
    *(
        (
            f"ablation.selectivity.d{rate}",
            "benchmarks/test_ablation_selectivity.py",
            "run_density",
            {"needle_rate": rate},
        )
        for rate in (0.0, 0.01, 0.10, 0.45)
    ),
    *(
        (
            f"ablation.queue_depth.q{depth}",
            "benchmarks/test_ablation_queue_depth.py",
            "measure_iops",
            {"queue_depth": depth},
        )
        for depth in (1, 4, 16)
    ),
    *(
        (
            f"ablation.overprovisioning.op{ratio}",
            "benchmarks/test_ablation_overprovisioning.py",
            "run_op_ratio",
            {"op_ratio": ratio},
        )
        for ratio in (0.10, 0.35)
    ),
)


def ablation_jobs() -> list[JobSpec]:
    """Ablation cells, when the benchmarks tree is available (checkouts)."""
    if not (repo_root() / "benchmarks").is_dir():
        return []
    return [
        JobSpec(name=name, target=f"file:{rel}:{func}", kwargs=dict(kwargs))
        for name, rel, func, kwargs in ABLATION_CELLS
    ]


def full_matrix(quick: bool = False) -> list[JobSpec]:
    """Everything shard-able in one list (claims, figures, ablations).

    Bench scenarios are deliberately absent: they measure the host wall
    clock and must not run concurrently with other work by default.
    """
    device_counts = (1, 2) if quick else (1, 2, 4)
    return [
        *validation_jobs(quick=quick),
        *fig1_jobs((1, 4, 8, 16, 32, 64)),
        *fig6_jobs("grep", device_counts),
        *fig7_jobs(device_counts),
        *fig8_jobs(("gzip", "gunzip", "bzip2", "bunzip2", "grep", "gawk")),
        *ablation_jobs(),
    ]
