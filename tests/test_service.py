"""Unit tests for the service frontend building blocks.

Covers the admission token buckets (including the full-bucket eviction
that bounds per-tenant state), weighted fair queuing, the traffic
generator, Jain's index, and the end-to-end accounting identities of a
full serving run (``offered == admitted + shed``,
``admitted == completed + lost``).
"""

from __future__ import annotations

import pytest

from repro.config import preset, to_dict
from repro.config.schema import (
    DEFAULT_PRIORITY_CLASSES,
    ServiceConfig,
    TrafficConfig,
)
from repro.service import (
    TenantBuckets,
    TokenBucket,
    TrafficGenerator,
    WeightedFairQueue,
    assign_class,
    jain_index,
)
from repro.service.drill import run_traffic_cell


# -- token buckets -----------------------------------------------------------


def test_token_bucket_admits_burst_then_refuses():
    bucket = TokenBucket(rate=10.0, capacity=4.0, now=0.0)
    assert [bucket.try_take(0.0) for _ in range(4)] == [True] * 4
    assert not bucket.try_take(0.0)  # bucket drained, no time has passed


def test_token_bucket_refills_at_rate():
    bucket = TokenBucket(rate=10.0, capacity=4.0, now=0.0)
    for _ in range(4):
        bucket.try_take(0.0)
    assert not bucket.try_take(0.05)  # 0.5 tokens accrued: not enough
    assert bucket.try_take(0.1 + 1e-6)  # one full token accrued
    assert not bucket.try_take(0.1 + 1e-6)


def test_tenant_bucket_eviction_never_changes_decisions():
    """A bucket that would refill to capacity is identical to a fresh one,
    so evicting it is lossless — replay the same arrivals with eviction
    every step and with no eviction, decisions must match."""
    arrivals = [(0.001 * i, i % 3) for i in range(60)]  # 3 hot tenants
    with_evict, without = TenantBuckets(), TenantBuckets()
    decisions_a, decisions_b = [], []
    for now, tenant in arrivals:
        decisions_a.append(with_evict.allow(tenant, rate=50.0, capacity=2.0, now=now))
        with_evict.evict_restorable(now)
        decisions_b.append(without.allow(tenant, rate=50.0, capacity=2.0, now=now))
    assert decisions_a == decisions_b
    assert False in decisions_a  # the hot tenants actually hit the limit


def test_tenant_buckets_state_stays_bounded():
    """A million-tenant population with single-shot tenants must not grow
    a million buckets: everyone refills to full and is evicted."""
    buckets = TenantBuckets()
    for i in range(5000):
        now = i * 0.01  # sparse arrivals: every bucket refills fully
        buckets.allow(i, rate=100.0, capacity=4.0, now=now)
        if i % 64 == 0:
            buckets.evict_restorable(now)
    assert len(buckets) < 200
    assert buckets.peak_buckets < 200
    assert buckets.evictions > 4000


# -- weighted fair queue -----------------------------------------------------


def test_wfq_serves_classes_proportionally_to_weight():
    def drain():
        queue = WeightedFairQueue({"a": 1.0, "b": 3.0})
        for i in range(6):
            queue.push("a", f"a{i}")
        for i in range(6):
            queue.push("b", f"b{i}")
        return [queue.pop() for _ in range(12)]

    order = drain()
    # the pop order is a pure function of the push order (tag, then seq)
    assert order == drain()
    classes = [cls for cls, _ in order]
    # class b (weight 3) drains its whole backlog while a gets ~1/3 as much
    assert classes[:8].count("b") >= 6
    # FIFO within each class regardless of interleaving
    assert [item for cls, item in order if cls == "a"] == [f"a{i}" for i in range(6)]
    assert [item for cls, item in order if cls == "b"] == [f"b{i}" for i in range(6)]


def test_wfq_is_fifo_within_a_class():
    queue = WeightedFairQueue({"a": 1.0})
    for i in range(5):
        queue.push("a", i)
    assert [queue.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]
    with pytest.raises(IndexError):
        queue.pop()


def test_wfq_rejects_bad_inputs():
    with pytest.raises(ValueError):
        WeightedFairQueue({})
    with pytest.raises(ValueError):
        WeightedFairQueue({"a": 0.0})
    queue = WeightedFairQueue({"a": 1.0})
    with pytest.raises(KeyError):
        queue.push("unknown", 1)


# -- fairness index ----------------------------------------------------------


def test_jain_index_bounds():
    assert jain_index([]) == 1.0
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
    # one tenant hogging everything: 1/n
    assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)
    assert 0.25 < jain_index([4, 1, 1, 1]) < 1.0


# -- traffic generation ------------------------------------------------------


@pytest.mark.parametrize("pattern", ["poisson", "diurnal", "bursty"])
def test_traffic_generator_is_seed_deterministic(pattern):
    config = TrafficConfig(pattern=pattern, requests=100, rate=1000.0,
                           tenants=10_000, skew=2.0, seed=7)
    a = TrafficGenerator(config).arrivals()
    b = TrafficGenerator(config).arrivals()
    assert a == b
    assert len(a) == 100
    times = [arr.time for arr in a]
    assert times == sorted(times) and times[0] > 0.0
    assert all(0 <= arr.tenant < 10_000 for arr in a)
    different = TrafficGenerator(
        TrafficConfig(pattern=pattern, requests=100, rate=1000.0,
                      tenants=10_000, skew=2.0, seed=8)
    ).arrivals()
    assert different != a


def test_skew_concentrates_traffic_on_low_tenant_ids():
    uniform = TrafficGenerator(
        TrafficConfig(requests=500, tenants=1000, skew=1.0, seed=0)
    ).arrivals()
    skewed = TrafficGenerator(
        TrafficConfig(requests=500, tenants=1000, skew=8.0, seed=0)
    ).arrivals()
    mean_u = sum(a.tenant for a in uniform) / len(uniform)
    mean_s = sum(a.tenant for a in skewed) / len(skewed)
    assert mean_s < mean_u / 4


def test_assign_class_is_stable_and_respects_shares():
    classes = DEFAULT_PRIORITY_CLASSES
    first = [assign_class(t, classes) for t in range(2000)]
    assert first == [assign_class(t, classes) for t in range(2000)]
    gold = first.count("gold") / len(first)
    bronze = first.count("bronze") / len(first)
    assert 0.05 < gold < 0.15  # configured share 0.1
    assert 0.5 < bronze < 0.7  # configured share 0.6


# -- end-to-end serving ------------------------------------------------------


def test_traffic_cell_accounting_identities():
    payload = run_traffic_cell()  # the pinned traffic-smoke preset
    assert payload["requests"] == payload["admitted"] + sum(payload["shed"].values())
    assert payload["admitted"] == payload["completed"] + payload["lost"]
    assert payload["p50_ms"] <= payload["p99_ms"] <= payload["p999_ms"]
    assert 0.0 < payload["jain"] <= 1.0
    assert payload["peak_queue"] <= 32  # the preset's queue_depth
    per_class = payload["per_class"]
    assert set(per_class) == {"gold", "silver", "bronze"}
    assert sum(c["requests"] for c in per_class.values()) == payload["requests"]
    assert sum(c["completed"] for c in per_class.values()) == payload["completed"]


def test_traffic_burst_exercises_every_mechanism():
    payload = run_traffic_cell(to_dict(preset("traffic-burst")))
    assert payload["shed"]["queue_full"] > 0
    assert payload["shed"]["rate_limited"] > 0
    assert payload["violations"] > 0
    assert payload["jain"] < 1.0
    # bounded state despite the 2000-tenant population
    assert payload["peak_buckets"] < 2000


def test_service_config_validation():
    with pytest.raises(ValueError, match="queue_depth"):
        ServiceConfig(queue_depth=0)
    with pytest.raises(ValueError, match="shares"):
        ServiceConfig(classes=(
            DEFAULT_PRIORITY_CLASSES[0],  # share 0.1
            type(DEFAULT_PRIORITY_CLASSES[0])(name="x", share=1.0),
        ))
    with pytest.raises(ValueError, match="pattern"):
        TrafficConfig(pattern="steady")
    with pytest.raises(ValueError, match="amplitude"):
        TrafficConfig(amplitude=1.5)
