"""Traffic determinism: same seed + config digest => byte-identical scorecard.

Three layers, mirroring ``test_parallel_equivalence.py``:

* two in-process runs of the same cell produce identical payload digests,
  and the pinned ``traffic-smoke`` scorecard digest
  (``tests/golden_traffic_digest.txt``) never drifts silently;
* the ``traffic`` CLI prints byte-identical stdout at ``--workers 1`` and
  ``--workers 4`` (spawn workers), and a cache-hit rerun reuses results
  while printing the same bytes;
* a Hypothesis property: a token bucket never admits more than
  ``capacity + rate * elapsed`` requests over any arrival sequence, and
  full-bucket eviction never changes an admission decision.
"""

from __future__ import annotations

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.parallel import payload_digest
from repro.service import TenantBuckets, TokenBucket
from repro.service.drill import run_traffic_cell

GOLDEN_FILE = Path(__file__).with_name("golden_traffic_digest.txt")
MIXES = ("poisson", "diurnal", "bursty")


def test_traffic_cell_deterministic_in_process():
    first = run_traffic_cell()
    second = run_traffic_cell()
    assert first == second
    assert payload_digest(first) == payload_digest(second)


def test_traffic_smoke_scorecard_matches_pinned_golden():
    digest, name = GOLDEN_FILE.read_text().split()
    assert name == "traffic-smoke"
    values = [run_traffic_cell(mix=mix) for mix in MIXES]
    assert payload_digest(values) == digest, (
        "the traffic-smoke scorecard drifted; if intentional, regenerate "
        "tests/golden_traffic_digest.txt"
    )


def test_traffic_cli_byte_identical_across_worker_counts(capsys):
    assert main(["traffic", "--preset", "traffic-smoke", "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert main([
        "traffic", "--preset", "traffic-smoke", "--workers", "4", "--no-cache",
    ]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel
    assert "scorecard digest=" in serial
    digest = GOLDEN_FILE.read_text().split()[0]
    assert f"scorecard digest={digest}" in serial


def test_traffic_cli_cache_hit_reprints_same_bytes(tmp_path, capsys):
    argv = ["traffic", "--preset", "traffic-smoke", "--mixes", "poisson",
            "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert cold.out == warm.out
    assert "executed=0" in warm.err  # every cell came from the cache


# -- admission-control properties -------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    gaps=st.lists(
        st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
        min_size=1, max_size=100,
    ),
    rate=st.floats(min_value=0.5, max_value=500.0),
    capacity=st.floats(min_value=1.0, max_value=32.0),
)
def test_token_bucket_never_admits_above_configured_rate(gaps, rate, capacity):
    bucket = TokenBucket(rate=rate, capacity=capacity)
    now, admitted = 0.0, 0
    for gap in gaps:
        now += gap
        if bucket.try_take(now):
            admitted += 1
    # over any window [0, T]: at most the initial burst plus rate * T
    assert admitted <= capacity + rate * now + 1e-6


@settings(max_examples=100, deadline=None)
@given(
    arrivals=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1, max_size=120,
    ),
    evict_every=st.integers(min_value=1, max_value=7),
)
def test_full_bucket_eviction_is_lossless(arrivals, evict_every):
    """Evicting restorable buckets at any cadence yields exactly the same
    admission decisions as never evicting — the invariant that makes
    million-tenant populations affordable."""
    evicting, reference = TenantBuckets(), TenantBuckets()
    now = 0.0
    for index, (gap, tenant) in enumerate(arrivals):
        now += gap
        a = evicting.allow(tenant, rate=20.0, capacity=3.0, now=now)
        b = reference.allow(tenant, rate=20.0, capacity=3.0, now=now)
        assert a == b
        if index % evict_every == 0:
            evicting.evict_restorable(now)
    assert len(evicting) <= len(reference)
