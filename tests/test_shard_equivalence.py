"""Differential equivalence: the sharded engine vs itself, everywhere.

The conservative-sync design argument (DESIGN.md §14) is that shard count
and backend are *execution-grouping* knobs: every horizon the engine
computes is a function of global domain state, never of how cells are
grouped into OS processes.  These tests turn that argument into a pinned
property:

- each pinned scenario's full result payload digest is byte-identical at
  shards ∈ {1, 2, 4} (``shards=1`` is the sequential oracle);
- the ``process`` backend reproduces the sequential oracle exactly;
- the parallel runner replays cells identically at ``--workers`` 1 and 4
  (canonical merge + result cache);
- the digests match the checked-in goldens, so the schedule semantics of
  the sharded engine can never drift silently.

Regenerate goldens after an *intentional* model change with::

    PYTHONPATH=src python -c "
    from repro.config.presets import preset
    from repro.config.codec import to_dict
    from repro.sim.shard import run_shard_cell
    from repro.testing import reset_global_ids
    for name in ('smoke', 'fig6', 'chaos-drill', 'traffic-smoke'):
        reset_global_ids()
        p = run_shard_cell(to_dict(preset(name)), shards=1)
        print(f\"{p['result']['digest']}  {name}\")" \
    > tests/golden_shard_digests.txt
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.config.codec import to_dict
from repro.config.presets import preset
from repro.sim.shard import run_shard_cell

GOLDEN_PATH = Path(__file__).parent / "golden_shard_digests.txt"

#: The pinned differential scenarios: a trivial single-cell run, a batch
#: drill, a faulted recovery drill, and a multi-tenant serving drill —
#: between them they exercise jobs + traffic workloads, replica chains,
#: fault arming, and admission/shed accounting across the boundary.
PINNED = ("smoke", "fig6", "chaos-drill", "traffic-smoke")

SHARD_COUNTS = (1, 2, 4)


def _goldens() -> dict[str, str]:
    table = {}
    for line in GOLDEN_PATH.read_text().splitlines():
        digest, name = line.split()
        table[name] = digest
    return table


def _run(name: str, **overrides) -> dict:
    return run_shard_cell(to_dict(preset(name)), **overrides)


@pytest.mark.parametrize("name", PINNED)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_digest_is_shard_count_independent(name: str, shards: int) -> None:
    """Every shard count reproduces the checked-in oracle digest."""
    payload = _run(name, shards=shards)
    assert payload["result"]["digest"] == _goldens()[name], (
        f"{name} at shards={shards} diverged from the pinned oracle"
    )


@pytest.mark.parametrize("name", PINNED)
def test_full_payloads_identical_across_shard_counts(name: str) -> None:
    """Not just the digest: rounds, event counts, message counts, and every
    cell fingerprint agree across groupings (digest collisions can't hide
    a divergence the payload would show)."""
    payloads = [_run(name, shards=shards)["result"] for shards in SHARD_COUNTS]
    for other in payloads[1:]:
        assert other == payloads[0]


@pytest.mark.parametrize("name", ("fig6", "chaos-drill"))
@pytest.mark.parametrize("shards", (2, 4))
def test_process_backend_matches_sequential_oracle(name: str, shards: int) -> None:
    """Spawn workers over pipes produce the same bytes as the in-process
    oracle — the engine's rounds are deterministic regardless of which
    side of a pipe a cell lives on."""
    payload = _run(name, shards=shards, backend="process")
    assert payload["result"]["digest"] == _goldens()[name]
    assert payload["run"]["backend"] == "process"


@pytest.mark.parametrize("workers", (1, 4))
def test_matrix_replay_is_worker_count_independent(workers: int) -> None:
    """Shard cells through the parallel runner: canonical merge keeps the
    results byte-identical at any worker count, and every digest matches
    the oracle."""
    from repro.obs import MetricsRegistry
    from repro.parallel import run_jobs, shard_jobs

    specs = shard_jobs(to_dict(preset("smoke")), shard_counts=(1, 2, 4))
    report = run_jobs(specs, workers=workers, metrics=MetricsRegistry())
    digests = [value["result"]["digest"] for value in report.values()]
    assert digests == [_goldens()["smoke"]] * 3


def test_conservation_in_every_pinned_payload() -> None:
    """No message is lost at the boundary: sent == delivered and nothing
    is in flight at quiescence, for every pinned scenario."""
    for name in PINNED:
        messages = _run(name, shards=2)["result"]["messages"]
        assert messages["sent"] == messages["delivered"], name
        assert messages["in_flight"] == 0, name


def test_goldens_cover_exactly_the_pinned_scenarios() -> None:
    assert set(_goldens()) == set(PINNED)
