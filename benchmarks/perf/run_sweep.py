#!/usr/bin/env python
"""Run the pinned bench sweep without CLI plumbing (CI smoke entry point).

Equivalent to ``python -m repro bench``; exists so the perf job can run a
sweep and leave ``BENCH_sim.json`` in the workspace for artifact upload
with one self-contained command::

    PYTHONPATH=src python benchmarks/perf/run_sweep.py [scenario ...]
"""

from __future__ import annotations

import sys

from repro.analysis.perf import run_bench, write_bench_json


def main(argv: list[str]) -> int:
    names = argv or ["small", "n1", "n4", "n8"]
    results = run_bench(names, repeat=3)
    for r in results:
        print(
            f"{r.scenario:<8} devices={r.devices:<2} events={r.events:<7} "
            f"wall={r.wall_seconds * 1e3:8.1f}ms  {r.events_per_sec:12,.0f} events/s"
        )
    path = write_bench_json(results)
    print(f"baseline written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
