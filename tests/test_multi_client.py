"""Multi-queue and multi-client behaviour of the NVMe/ISC stack.

The paper: "CompStor client is able to send several concurrent minions to
different CompStors... there could be thousands of concurrent minions".
These tests cover the plumbing that makes that safe: independent queue
pairs, multiple clients sharing one device, and fairness across clients.
"""

import pytest

from repro.cluster import StorageNode
from repro.host import InSituClient
from repro.nvme import NvmeCommand, Opcode
from repro.proto import Command


def build_node(**kw):
    kw.setdefault("device_capacity", 16 * 1024 * 1024)
    kw.setdefault("devices", 1)
    return StorageNode.build(**kw)


def stage(node, ssd, name, data):
    def flow():
        yield from ssd.fs.write_file(name, data)
        yield from ssd.ftl.flush()

    node.sim.run(node.sim.process(flow()))


def test_multiple_queue_pairs_progress_independently():
    from repro.ecc import CodewordLayout, EccConfig, EccEngine
    from repro.flash import BitErrorModel, FlashArray, FlashGeometry
    from repro.ftl import FlashTranslationLayer
    from repro.nvme import NvmeController
    from repro.sim import Simulator

    sim = Simulator()
    geo = FlashGeometry(channels=2, dies_per_channel=2, planes_per_die=1,
                        blocks_per_plane=6, pages_per_block=8, page_size=2048)
    flash = FlashArray(sim, geometry=geo, error_model=BitErrorModel(rber0=1e-9))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(sim, flash, ecc)
    ctrl = NvmeController(sim, ftl, queue_pairs=4, workers_per_queue=2)

    done = []

    def client(qid):
        completion = yield from ctrl.queue(qid).call(
            NvmeCommand(opcode=Opcode.WRITE, slba=qid, data=f"q{qid}".encode())
        )
        done.append((qid, completion.ok))

    for qid in range(4):
        sim.process(client(qid))
    sim.run()
    assert sorted(done) == [(0, True), (1, True), (2, True), (3, True)]
    assert ctrl.commands_executed == 4


def test_two_clients_share_one_compstor():
    node = build_node()
    ssd = node.compstors[0]
    stage(node, ssd, "shared.txt", b"fox\n" * 100)

    alice = node.client  # built-in client
    bob = InSituClient(node.sim, name="bob")
    bob.attach(ssd.controller)

    results = {}

    def run_as(client, tag):
        response = yield from client.run("compstor0", "grep fox shared.txt")
        results[tag] = response.stdout

    node.sim.process(run_as(alice, "alice"))
    node.sim.process(run_as(bob, "bob"))
    node.sim.run()
    assert results == {"alice": b"100", "bob": b"100"}


def test_many_concurrent_minions_one_device():
    """A burst of 24 minions against one drive completes, with bounded
    concurrency inside (the agent never loses one)."""
    node = build_node()
    ssd = node.compstors[0]
    stage(node, ssd, "f.txt", b"fox\n" * 50)

    def flow():
        responses = yield from node.client.gather(
            [("compstor0", Command(command_line="grep fox f.txt")) for _ in range(24)]
        )
        return responses

    responses = node.sim.run(node.sim.process(flow()))
    assert len(responses) == 24
    assert all(r.ok for r in responses)
    assert ssd.agent.minions_served == 24
    assert ssd.agent.active_minions == 0


def test_client_device_name_collision_rejected():
    node = build_node()
    with pytest.raises(ValueError, match="already attached"):
        node.client.attach(node.compstors[0].controller)


def test_storage_and_compute_traffic_interleave():
    """NVMe IO and ISC minions share the wire but both complete."""
    node = build_node()
    ssd = node.compstors[0]
    stage(node, ssd, "f.txt", b"fox\n" * 2000)
    qp = ssd.controller.queue(0)
    outcomes = {"io": 0, "isc": 0}

    base = ssd.ftl.logical_pages - 30

    def io_traffic():
        for i in range(20):
            completion = yield from qp.call(
                NvmeCommand(opcode=Opcode.WRITE, slba=base + i, data=b"io")
            )
            assert completion.ok
            outcomes["io"] += 1

    def isc_traffic():
        for _ in range(3):
            response = yield from node.client.run("compstor0", "grep fox f.txt")
            assert response.ok
            outcomes["isc"] += 1

    node.sim.process(io_traffic())
    node.sim.process(isc_traffic())
    node.sim.run()
    assert outcomes == {"io": 20, "isc": 3}
