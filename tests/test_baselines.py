"""Tests for the baseline systems and the Table I registry."""

import pytest

from repro.baselines import (
    ARM_R7_DUAL,
    BiscuitSSD,
    FpgaAcceleratedSSD,
    HostOnlyRunner,
    SYSTEMS,
    table1_rows,
)
from repro.baselines.fpga import FpgaKernel, KernelNotSynthesizedError
from repro.cluster import StorageNode
from repro.sim import Simulator
from repro.ssd.conventional import small_geometry

CAPACITY = 16 * 1024 * 1024


# -- Table I ----------------------------------------------------------------

def test_table1_compstor_is_unique_full_feature_row():
    full = [s for s in SYSTEMS if s.all_features]
    assert len(full) == 1
    assert full[0].system == "CompStor"


def test_table1_biscuit_lacks_os_flexibility():
    biscuit = next(s for s in SYSTEMS if "Biscuit" in s.system)
    assert biscuit.dynamic_task_loading
    assert not biscuit.os_level_flexibility


def test_table1_rows_shape():
    rows = table1_rows()
    assert len(rows) == 8
    assert all(len(row) == 5 for row in rows)


# -- host-only --------------------------------------------------------------

def test_host_only_runner_executes_on_xeon():
    node = StorageNode.build(devices=1, device_capacity=CAPACITY, with_baseline_ssd=True)
    runner = HostOnlyRunner(node)
    fs = node.host.require_os().fs
    node.sim.run(node.sim.process(fs.write_file("h.txt", b"fox\n" * 50)))

    def flow():
        return (yield from runner.run("grep fox h.txt"))

    status, seconds = node.sim.run(node.sim.process(flow()))
    assert status.code == 0
    assert status.stdout == b"50"
    assert seconds > 0
    assert node.host.cluster.cycles_executed > 0


def test_host_only_requires_baseline_drive():
    node = StorageNode.build(devices=1, device_capacity=CAPACITY)
    with pytest.raises(ValueError, match="baseline"):
        HostOnlyRunner(node)


def test_host_run_many_concurrent():
    node = StorageNode.build(devices=1, device_capacity=CAPACITY, with_baseline_ssd=True)
    runner = HostOnlyRunner(node)
    fs = node.host.require_os().fs
    node.sim.run(node.sim.process(fs.write_file("h.txt", b"fox\n" * 200)))

    def flow():
        return (yield from runner.run_many(["grep fox h.txt"] * 4))

    statuses, wall = node.sim.run(node.sim.process(flow()))
    assert len(statuses) == 4
    assert all(s.code == 0 for s in statuses)


# -- Biscuit ------------------------------------------------------------------

def make_biscuit():
    sim = Simulator()
    ssd = BiscuitSSD(sim, geometry=small_geometry(CAPACITY))
    return sim, ssd


def test_biscuit_serves_minions_on_shared_cores():
    from repro.host import InSituClient

    sim, ssd = make_biscuit()
    client = InSituClient(sim)
    client.attach(ssd.controller)
    sim.run(sim.process(ssd.fs.write_file("f.txt", b"fox\n" * 10)))

    def flow():
        return (yield from client.run("biscuit", "grep fox f.txt"))

    response = sim.run(sim.process(flow()))
    assert response.ok
    assert response.stdout == b"10"


def test_biscuit_firmware_charges_shared_cluster():
    from repro.nvme import NvmeCommand, Opcode

    sim, ssd = make_biscuit()
    before = ssd.shared_cluster.cycles_executed

    def flow():
        yield from ssd.queue(0).call(NvmeCommand(opcode=Opcode.WRITE, slba=0, data=b"x"))

    sim.run(sim.process(flow()))
    assert ssd.shared_cluster.cycles_executed == before + ssd.controller.firmware_cycles


def test_biscuit_compute_degrades_io_latency_compstor_does_not():
    """The central Table I property, quantified: concurrent ISC inflates
    Biscuit read latency far more than CompStor read latency."""
    import numpy as np

    from repro.host import InSituClient
    from repro.nvme import NvmeCommand, Opcode
    from repro.ssd import CompStorSSD

    def median_read_latency_under_compute(make_ssd, devname):
        """Saturate every compute core with scans, then probe read latency."""
        sim = Simulator(seed=11)
        ssd = make_ssd(sim)
        client = InSituClient(sim)
        client.attach(ssd.controller)

        cores = ssd.isps.cluster.spec.cores
        probe_lpns = range(ssd.ftl.logical_pages - 12, ssd.ftl.logical_pages)

        def setup():
            for i in range(cores):
                yield from ssd.fs.write_file(f"big{i}.txt", b"fox word line\n" * 20000)
            for lpn in probe_lpns:
                yield from ssd.ftl.write(lpn, b"io")
            yield from ssd.ftl.flush()

        sim.run(sim.process(setup()))
        latencies = []

        def measure():
            compute = [
                sim.process(client.run(devname, f"grep fox big{i}.txt"))
                for i in range(cores)
            ]
            yield sim.timeout(4e-3)
            qp = ssd.controller.queue(0)
            # probe while the scans are guaranteed in flight (they run tens
            # of ms); space probes out so each samples fresh contention
            for lpn in probe_lpns:
                completion = yield from qp.call(NvmeCommand(opcode=Opcode.READ, slba=lpn))
                latencies.append(completion.latency)
                yield sim.timeout(4e-4)
            yield sim.all_of(compute)

        sim.run(sim.process(measure()))
        return float(np.median(latencies))

    biscuit_lat = median_read_latency_under_compute(
        lambda sim: BiscuitSSD(sim, geometry=small_geometry(CAPACITY)), "biscuit"
    )
    compstor_lat = median_read_latency_under_compute(
        lambda sim: CompStorSSD(sim, geometry=small_geometry(CAPACITY)), "compstor"
    )
    assert biscuit_lat > 2.0 * compstor_lat


# -- FPGA ----------------------------------------------------------------------

def test_fpga_runs_synthesized_kernel():
    sim = Simulator()
    ssd = FpgaAcceleratedSSD(sim, geometry=small_geometry(CAPACITY))
    data = b"noise xylophone noise\n" * 100
    sim.run(sim.process(ssd.fs.write_file("f.txt", data)))

    def flow():
        return (yield from ssd.run_kernel("grep", "f.txt"))

    nbytes, seconds, matches = sim.run(sim.process(flow()))
    assert nbytes == len(data)
    assert matches == 100
    assert seconds > 0
    assert ssd.reconfigurations == 1


def test_fpga_reconfigures_between_kernels_only():
    sim = Simulator()
    ssd = FpgaAcceleratedSSD(sim, geometry=small_geometry(CAPACITY))
    sim.run(sim.process(ssd.fs.write_file("f.txt", b"data\n" * 10)))

    def flow():
        yield from ssd.run_kernel("grep", "f.txt")
        yield from ssd.run_kernel("grep", "f.txt")  # no reload
        yield from ssd.run_kernel("sha1sum", "f.txt")  # reload

    sim.run(sim.process(flow()))
    assert ssd.reconfigurations == 2


def test_fpga_unknown_kernel_needs_synthesis():
    sim = Simulator()
    ssd = FpgaAcceleratedSSD(sim, geometry=small_geometry(CAPACITY))
    sim.run(sim.process(ssd.fs.write_file("f.txt", b"x" * 100)))

    def flow():
        yield from ssd.run_kernel("gzip", "f.txt")

    with pytest.raises(KernelNotSynthesizedError):
        sim.run(sim.process(flow()))

    # synthesis takes *hours* of simulated time — the flexibility tax
    def synth():
        yield from ssd.synthesize_kernel(FpgaKernel("gzip", bytes_per_second=0.8e9))
        return sim.now

    t = sim.run(sim.process(synth()))
    assert t >= ssd.synthesis_seconds
    sim.run(sim.process(flow()))  # now it works


def test_r7_spec_is_weaker_than_a53_cluster():
    from repro.cpu import ARM_A53_QUAD

    r7 = ARM_R7_DUAL.cores * ARM_R7_DUAL.freq_hz * ARM_R7_DUAL.ipc
    a53 = ARM_A53_QUAD.cores * ARM_A53_QUAD.freq_hz * ARM_A53_QUAD.ipc
    assert a53 > 3 * r7
