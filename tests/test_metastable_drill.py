"""The metastable drill: determinism, pinned golden, and the drill contract.

Mirrors ``test_traffic_determinism.py`` for the closed-loop cells:

* two in-process runs of the drill pair produce identical payloads, and
  the pinned ``metastable`` scorecard digest
  (``tests/golden_metastable_digest.txt``) never drifts silently;
* the ``drill`` CLI prints byte-identical stdout at ``--workers 1`` and
  ``--workers 4`` and on a cache-hit rerun;
* the drill *contract* holds: defenses-on recovers goodput within the
  recovery window, the defenses-off counterfactual (same scenario digest,
  same seed, same trigger) shows sustained degradation;
* engaged-mode accounting stays conservative at every layer
  (offers == admissions + sheds, admissions == completions + losses +
  CoDel drops, retry budget requested == admitted + rejected).
"""

from __future__ import annotations

from pathlib import Path

from repro.cli import main
from repro.parallel import payload_digest
from repro.service.drill import run_closedloop_cell, run_metastable_cell

GOLDEN_FILE = Path(__file__).with_name("golden_metastable_digest.txt")


def drill_pair():
    return [
        run_metastable_cell(defenses=True),
        run_metastable_cell(defenses=False),
    ]


def test_metastable_cell_deterministic_in_process():
    first = run_metastable_cell(defenses=True)
    second = run_metastable_cell(defenses=True)
    assert first == second
    assert payload_digest(first) == payload_digest(second)


def test_metastable_scorecard_matches_pinned_golden():
    digest, name = GOLDEN_FILE.read_text().split()
    assert name == "metastable"
    assert payload_digest(drill_pair()) == digest, (
        "the metastable drill scorecard drifted; if intentional, regenerate "
        "tests/golden_metastable_digest.txt"
    )


def test_drill_contract_defenses_decide_the_outcome():
    """The same scenario, same seed, same trigger — only the defenses
    differ — must land in different attractors."""
    armed, bare = drill_pair()
    assert armed["defenses"] and not bare["defenses"]
    # defenses on: goodput back above the bar within the recovery window
    assert armed["metastable"]["recovered"]
    assert not armed["metastable"]["sustained_degradation"]
    # defenses off: the degraded state outlives the fault that caused it
    assert not bare["metastable"]["recovered"]
    assert bare["metastable"]["sustained_degradation"]
    # the trigger and the bar are identical across arms
    assert armed["metastable"]["trigger_ms"] == bare["metastable"]["trigger_ms"]
    assert armed["metastable"]["clear_ms"] == bare["metastable"]["clear_ms"]
    # and the client experience tells the same story
    assert bare["closed"]["abandoned"] > 5 * armed["closed"]["abandoned"]


def test_defenses_on_engages_the_overload_mechanisms():
    armed = run_metastable_cell(defenses=True)
    budget = armed["retry_budget"]
    assert budget["requested"] == budget["admitted"] + budget["rejected"]
    assert armed["shed"]["retry_budget"] == budget["rejected"]
    assert armed["shed"]["brownout"] > 0
    assert armed["aimd"]["peak"] > armed["aimd"]["final"] or armed["aimd"]["increases"] > 0
    assert any(alert["fired"] for alert in armed["burn"])


def test_engaged_accounting_identities():
    for payload in drill_pair():
        closed = payload["closed"]
        # every offer is an admission or a shed
        offers = closed["issued"] + closed["retried"]
        assert payload["requests"] == offers
        assert payload["requests"] == payload["admitted"] + sum(payload["shed"].values())
        # every admission resolves exactly once
        assert payload["admitted"] == (
            payload["completed"] + payload["lost"] + payload["dropped"]
        )
        # stale completions are completions whose client had already left
        assert closed["stale"] <= payload["completed"]
        assert closed["stale"] <= closed["abandoned"]


def test_closedloop_cell_without_faults_is_deterministic():
    first = run_closedloop_cell(defenses=True)
    second = run_closedloop_cell(defenses=True)
    assert first == second
    assert first["defenses"]
    assert "metastable" not in first  # scoring is the drill's job
    assert sum(first["goodput"]["windows"]) > 0


def test_drill_cli_byte_identical_across_worker_counts(capsys):
    assert main(["drill", "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert main(["drill", "--workers", "4", "--no-cache"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel
    digest = GOLDEN_FILE.read_text().split()[0]
    assert f"scorecard digest={digest}" in serial


def test_drill_cli_cache_hit_reprints_same_bytes(tmp_path, capsys):
    argv = ["drill", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert cold.out == warm.out
    assert "executed=0" in warm.err  # both arms came from the cache
