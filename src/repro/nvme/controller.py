"""NVMe controller front-end.

Pulls commands from the queue pairs (round-robin arbitration via per-queue
worker pools), runs DMA over the attached PCIe port, executes IO against the
FTL, and dispatches vendor ISC commands to a registered handler.

The handler contract for ISC opcodes is ``handler(opcode, payload_body)``
returning a generator that yields simulation events and returns the result
object placed in the completion — CompStor's ISPS agent transport plugs in
here without the controller knowing anything about minions.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.faults.state import AgentUnavailable
from repro.ftl import LogicalIOError, TranslationBackend
from repro.nvme.commands import NvmeCommand, NvmeCompletion, Opcode, Status
from repro.nvme.queues import QueuePair
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.spans import continue_trace
from repro.pcie.switch import PciePort
from repro.sim import Simulator, Tracer
from repro.sim.trace import NULL_TRACER

__all__ = ["NvmeController"]

IscHandler = Callable[[Opcode, Any], Generator]


class NvmeController:
    """Front-end processor bridging queue pairs, DMA, FTL and ISC handler.

    Parameters
    ----------
    sim, ftl:
        Simulator and the backing translation layer — any
        :class:`~repro.ftl.TranslationBackend` (the controller never touches
        backend-specific internals).
    port:
        PCIe attachment; ``None`` models a direct-attached loopback (used in
        unit tests) with zero-cost DMA.
    queue_pairs, queue_depth, workers_per_queue:
        Queue topology.  Workers bound the per-queue command concurrency the
        way real controllers bound outstanding commands.
    firmware_latency:
        Fixed front-end processing cost per command (dedicated front-end
        hardware, CompStor's design).
    firmware_cluster, firmware_cycles:
        Alternative: charge front-end processing as cycles on a CPU cluster.
        Used by the Biscuit-style baseline, where ISC tasks share the very
        cores that run command processing — so computation visibly degrades
        storage latency (the interference CompStor's dedicated ISPS avoids).
    """

    def __init__(
        self,
        sim: Simulator,
        ftl: TranslationBackend,
        port: PciePort | None = None,
        queue_pairs: int = 1,
        queue_depth: int = 64,
        workers_per_queue: int = 8,
        firmware_latency: float = 5e-6,
        name: str = "nvme",
        tracer: Tracer | None = None,
        firmware_cluster=None,
        firmware_cycles: float = 15_000.0,
        metrics: MetricsRegistry | None = None,
    ):
        if queue_pairs < 1 or workers_per_queue < 1:
            raise ValueError("queue_pairs and workers_per_queue must be >= 1")
        self.sim = sim
        self.ftl = ftl
        self.port = port
        self.firmware_latency = firmware_latency
        self.firmware_cluster = firmware_cluster
        self.firmware_cycles = firmware_cycles
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_commands = self.metrics.counter(
            "nvme.commands", "NVMe commands completed, by opcode and status"
        )
        self._m_latency = self.metrics.histogram(
            "nvme.command.latency_seconds", "submission-to-completion latency per opcode"
        )
        self._m_qdepth = self.metrics.gauge(
            "nvme.queue.depth", "outstanding commands per queue pair, sampled at fetch"
        )
        self.queues = [
            QueuePair(sim, qid=q, depth=queue_depth, name=f"{name}.qp") for q in range(queue_pairs)
        ]
        self._isc_handler: IscHandler | None = None
        #: Fault hook (``repro.faults.DeviceFaultState``), installed lazily
        #: by a FaultInjector; ``None`` costs one attribute test per command.
        self.faults = None
        self.commands_executed = 0
        self.isc_commands = 0
        # per-opcode latency accounting (count, total, max) for QoS reporting
        self._latency: dict[str, list[float]] = {}
        self._workers = [
            sim.process(self._worker(qp), name=f"{name}.q{qp.qid}w{w}")
            for qp in self.queues
            for w in range(workers_per_queue)
        ]

    # -- wiring ---------------------------------------------------------------
    def register_isc_handler(self, handler: IscHandler) -> None:
        """Install the in-storage-computation dispatcher (ISPS transport)."""
        if self._isc_handler is not None:
            raise RuntimeError("ISC handler already registered")
        self._isc_handler = handler

    @property
    def admin_queue(self) -> QueuePair:
        return self.queues[0]

    def queue(self, index: int = 0) -> QueuePair:
        return self.queues[index]

    # -- execution ------------------------------------------------------------
    def _worker(self, qp: QueuePair) -> Generator:
        while True:
            submitted_at, command = yield from qp.fetch()
            # Enum .name is a descriptor lookup; resolve it once per command
            # for the bookkeeping below.
            opname = command.opcode.name
            if self.metrics.enabled:
                self._m_qdepth.set(
                    qp.outstanding, device=self.name, queue=qp.qid, opcode=opname,
                )
            refusal = self.faults.intercept() if self.faults is not None else None
            if refusal is not None:
                # a crashed/flaky front end aborts immediately: the host
                # driver's view of a dead drive is a fast failed completion
                completion = NvmeCompletion(
                    cid=command.cid,
                    status=Status[refusal],
                    result=None,
                    submitted_at=submitted_at,
                    completed_at=self.sim.now,
                )
                if self.metrics.enabled:
                    self._m_commands.inc(
                        device=self.name, opcode=opname,
                        status=completion.status.name,
                    )
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.sim.now, self.name, "nvme.refused",
                        opcode=opname, status=completion.status.name,
                    )
                yield from qp.post(completion)
                continue
            if self.firmware_cluster is not None:
                # shared-core design: command processing competes with ISC
                yield from self.firmware_cluster.execute(self.firmware_cycles)
            elif self.faults is not None and self.faults.limp_factor != 1.0:
                yield self.sim.timeout(self.firmware_latency * self.faults.limp_factor)
            else:
                yield self.sim.timeout(self.firmware_latency)
            status, result = yield from self._execute(command)
            if self.faults is not None and self.faults.crashed:
                # the device died while this command was in flight: whatever
                # the back end produced never reaches the completion queue
                status, result = Status.DEVICE_UNAVAILABLE, None
            completion = NvmeCompletion(
                cid=command.cid,
                status=status,
                result=result,
                submitted_at=submitted_at,
                completed_at=self.sim.now,
            )
            self.commands_executed += 1
            stats = self._latency.get(opname)
            if stats is None:
                stats = self._latency[opname] = [0, 0.0, 0.0]
            stats[0] += 1
            stats[1] += completion.latency
            stats[2] = max(stats[2], completion.latency)
            if self.metrics.enabled:
                self._m_commands.inc(
                    device=self.name, opcode=opname, status=status.name
                )
                self._m_latency.observe(
                    completion.latency, device=self.name, opcode=opname
                )
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, self.name, "nvme.complete",
                    opcode=opname, status=status.name,
                )
            yield from qp.post(completion)

    def _execute(self, command: NvmeCommand) -> Generator:
        opcode = command.opcode
        try:
            if opcode == Opcode.READ:
                return (yield from self._do_read(command))
            if opcode == Opcode.WRITE:
                return (yield from self._do_write(command))
            if opcode == Opcode.DSM_TRIM:
                return (yield from self._do_trim(command))
            if opcode == Opcode.FLUSH:
                yield from self.ftl.flush()
                return Status.SUCCESS, None
            if opcode == Opcode.IDENTIFY:
                return Status.SUCCESS, self.identify()
            if opcode == Opcode.GET_LOG_PAGE:
                return Status.SUCCESS, self.smart_log()
            if opcode.is_vendor:
                return (yield from self._do_isc(command))
        except LogicalIOError:
            return Status.MEDIA_ERROR, None
        return Status.INVALID_OPCODE, None

    def _check_range(self, command: NvmeCommand) -> bool:
        return 0 <= command.slba and command.slba + command.nlb <= self.ftl.logical_pages

    def _do_read(self, command: NvmeCommand) -> Generator:
        if not self._check_range(command):
            return Status.LBA_OUT_OF_RANGE, None
        pages: list[bytes | None] = []
        for lpn in range(command.slba, command.slba + command.nlb):
            pages.append((yield from self.ftl.read(lpn)))
        nbytes = command.nlb * self.ftl.page_size
        if self.port is not None:
            yield from self.port.to_host(nbytes)
        return Status.SUCCESS, pages

    def _do_write(self, command: NvmeCommand) -> Generator:
        if not self._check_range(command):
            return Status.LBA_OUT_OF_RANGE, None
        nbytes = command.transfer_bytes_to_device or command.nlb * self.ftl.page_size
        if self.port is not None:
            yield from self.port.from_host(nbytes)
        page_size = self.ftl.page_size
        data = command.data
        for i, lpn in enumerate(range(command.slba, command.slba + command.nlb)):
            chunk = None
            if data is not None:
                chunk = data[i * page_size : (i + 1) * page_size]
            yield from self.ftl.write(lpn, chunk)
        return Status.SUCCESS, None

    def _do_trim(self, command: NvmeCommand) -> Generator:
        lbas = command.lbas
        if lbas is None:
            lbas = list(range(command.slba, command.slba + command.nlb))
        if any(not 0 <= lba < self.ftl.logical_pages for lba in lbas):
            return Status.LBA_OUT_OF_RANGE, None
        yield from self.ftl.trim(lbas)
        return Status.SUCCESS, None

    def _do_isc(self, command: NvmeCommand) -> Generator:
        if self._isc_handler is None:
            return Status.INVALID_OPCODE, None
        payload = command.payload
        assert payload is not None  # validated by NvmeCommand
        if self.port is not None and payload.nbytes:
            yield from self.port.from_host(payload.nbytes)
        self.isc_commands += 1
        # Minions carrying a span context get a transport hop in their tree;
        # the agent then parents its execution span under this one.
        body = payload.body
        span = None
        parent_ctx = getattr(body, "span", None)
        if parent_ctx is not None and self.tracer.enabled:
            span = continue_trace(
                self.tracer, self.sim, "nvme.isc", self.name, parent_ctx
            )
            body.span = span.context
        try:
            result = yield from self._isc_handler(command.opcode, body)
        except AgentUnavailable:
            if span is not None:
                span.end(status="ISC_AGENT_DOWN")
                body.span = parent_ctx
            return Status.ISC_AGENT_DOWN, None
        except Exception:
            if span is not None:
                span.end(status="ISC_FAILURE")
                body.span = parent_ctx
            return Status.ISC_FAILURE, None
        if span is not None:
            span.end()
            body.span = parent_ctx
        # result envelopes travel back over the wire too
        if self.port is not None:
            result_bytes = getattr(result, "nbytes", 256)
            yield from self.port.to_host(result_bytes)
        return Status.SUCCESS, result

    # -- admin ------------------------------------------------------------
    def latency_stats(self) -> dict[str, dict[str, float]]:
        """Per-opcode ``{count, mean, max}`` command latencies (seconds)."""
        return {
            opcode: {"count": c, "mean": total / c if c else 0.0, "max": worst}
            for opcode, (c, total, worst) in self._latency.items()
        }

    def smart_log(self) -> dict[str, Any]:
        """SMART / health information (NVMe log page 0x02 analogue).

        Aggregates FTL and media health the way a real drive's SMART log
        does — the monitoring surface fleet operators scrape.
        """
        flash = self.ftl.flash
        pe = flash.pe_cycles
        rated = flash.error_model.pe_rated
        # Spare/bad/GC/scrub counters go through the backend-agnostic
        # health surface: a zoned backend has no block allocator or patrol
        # scrubber, and reading concrete page-FTL attributes here would
        # silently report zeros for it.
        health = self.ftl.health_stats()
        return {
            "media_errors": self.ftl.uncorrectable_reads,
            "data_units_read": flash.stats.bytes_read // 512000 or 0,
            "data_units_written": flash.stats.bytes_programmed // 512000 or 0,
            "host_reads": self.ftl.host_reads,
            "host_writes": self.ftl.host_writes,
            "write_amplification": self.ftl.write_amplification(),
            "percentage_used": min(100, int(100 * float(pe.mean()) / rated)),
            "max_pe_cycles": int(pe.max()),
            "available_spare": health["available_spare"],
            "bad_blocks": health["bad_blocks"],
            "gc_collections": health["gc_collections"],
            "scrub_refreshes": health["scrub_refreshes"],
            "latency": self.latency_stats(),
        }

    def identify(self) -> dict[str, Any]:
        """IDENTIFY controller/namespace data."""
        return {
            "model": self.name,
            "capacity_bytes": self.ftl.logical_capacity_bytes,
            "logical_pages": self.ftl.logical_pages,
            "page_size": self.ftl.page_size,
            "queue_pairs": len(self.queues),
            "isc_capable": self._isc_handler is not None,
        }
