"""Fleet-wide metrics instruments.

A :class:`MetricsRegistry` hands out :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments keyed by hierarchical dotted names (e.g.
``"ftl.gc.collections"``) plus label dicts (``device="compstor0"``), the
observability substrate the paper's operational story needs ("ARM cores
utilization, or temperature of the cores ... used for load balancing").

Design constraints, in order:

1. **The default path pays nothing.**  Components hold an instrument bound
   at construction time against :data:`NULL_METRICS`; every update method
   starts with one attribute test and returns.  The overhead guard bench
   (``benchmarks/test_obs_overhead.py``) enforces this.
2. **Simulation-time aware.**  Updates are stamped with the registry's
   clock (wire ``clock=lambda: sim.now``), and ``keep_series=True`` records
   a bounded ``(time, value)`` history per instrument/label-set so
   time-series can be extracted per component after a run.
3. **No new dependencies** — exporters (:mod:`repro.obs.export`) turn the
   same samples into Prometheus text or JSON lines.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
]

LabelKey = tuple[tuple[str, str], ...]

#: Default histogram bounds, tuned for simulated device latencies (seconds):
#: sub-microsecond buffer hits up to multi-second minion jobs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _exact_quantile(samples: list[float], q: float) -> float:
    """Linear-interpolated quantile over raw samples (numpy's default
    ``linear`` method): rank ``q * (n - 1)`` in the sorted sample."""
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    fraction = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * fraction


class Instrument:
    """Shared plumbing: a named family of per-label-set values."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        self.registry = registry
        self.name = name
        self.help = help
        self._values: dict[LabelKey, Any] = {}
        self._updated: dict[LabelKey, float] = {}

    # -- sample access ------------------------------------------------------
    def samples(self) -> list[tuple[dict[str, str], Any, float]]:
        """``(labels, value, last_update_time)`` per label set, sorted."""
        return [
            (dict(key), self._values[key], self._updated.get(key, 0.0))
            for key in sorted(self._values)
        ]

    def value(self, **labels: Any) -> Any:
        """Current value for one label set (KeyError if never updated)."""
        return self._values[_label_key(labels)]

    def get(self, default: Any = None, **labels: Any) -> Any:
        return self._values.get(_label_key(labels), default)

    def _stamp(self, key: LabelKey, value: Any) -> None:
        now = self.registry.now()
        self._updated[key] = now
        self.registry._record_series(self.name, key, now, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ({len(self._values)} series)>"


class Counter(Instrument):
    """Monotonically increasing count (events, pages, joules, ...)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        key = _label_key(labels)
        value = self._values.get(key, 0.0) + amount
        self._values[key] = value
        self._stamp(key, value)

    def labels(self, **labels: Any) -> "BoundCounter":
        return BoundCounter(self, _label_key(labels))

    def total(self) -> float:
        """Sum across all label sets."""
        return float(sum(self._values.values()))


class BoundCounter:
    """A counter pre-bound to one label set: zero-allocation hot-path inc."""

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: Counter, key: LabelKey):
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        counter = self._counter
        if not counter.registry.enabled:
            return
        key = self._key
        value = counter._values.get(key, 0.0) + amount
        counter._values[key] = value
        counter._stamp(key, value)


class Gauge(Instrument):
    """A value that can go up and down (queue depth, utilisation, WA)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        self._values[key] = float(value)
        self._stamp(key, value)

    def add(self, delta: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        value = self._values.get(key, 0.0) + delta
        self._values[key] = value
        self._stamp(key, value)

    def labels(self, **labels: Any) -> "BoundGauge":
        return BoundGauge(self, _label_key(labels))


class BoundGauge:
    """A gauge pre-bound to one label set."""

    __slots__ = ("_gauge", "_key")

    def __init__(self, gauge: Gauge, key: LabelKey):
        self._gauge = gauge
        self._key = key

    def set(self, value: float) -> None:
        gauge = self._gauge
        if not gauge.registry.enabled:
            return
        gauge._values[self._key] = float(value)
        gauge._stamp(self._key, value)

    def add(self, delta: float) -> None:
        gauge = self._gauge
        if not gauge.registry.enabled:
            return
        key = self._key
        value = gauge._values.get(key, 0.0) + delta
        gauge._values[key] = value
        gauge._stamp(key, value)


class _HistogramState:
    """Per-label-set histogram accumulator."""

    __slots__ = ("bucket_counts", "count", "sum", "max", "min", "samples")

    def __init__(self, n_buckets: int, keep_samples: bool = False):
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 = overflow (+Inf)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self.min = float("inf")  # finite after the first observation
        # Exact-mode reservoir: raw observations while n <= exact_limit,
        # permanently dropped (-> bucket interpolation) once exceeded.
        self.samples: list[float] | None = [] if keep_samples else None


class Histogram(Instrument):
    """Bucketed distribution with percentile estimation.

    Buckets are upper bounds (Prometheus ``le`` convention); one implicit
    ``+Inf`` overflow bucket is always present.

    ``exact_limit`` (default 0 = off) keeps a bounded reservoir of raw
    observations per label set: while a series holds at most that many
    samples, :meth:`percentile` is *exact* (sorted-sample interpolation,
    which tail quantiles like p999 need at small n), and the reservoir is
    permanently dropped — falling back to bucket interpolation — the
    moment a series exceeds it, so memory stays bounded.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        exact_limit: int = 0,
    ):
        super().__init__(registry, name, help)
        bounds = tuple(sorted(buckets)) if buckets is not None else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if exact_limit < 0:
            raise ValueError("exact_limit must be >= 0")
        self.buckets = bounds
        self.exact_limit = exact_limit

    def observe(self, value: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        state = self._values.get(key)
        if state is None:
            state = self._values[key] = _HistogramState(
                len(self.buckets), keep_samples=self.exact_limit > 0
            )
        index = bisect.bisect_left(self.buckets, value)
        state.bucket_counts[index] += 1
        state.count += 1
        state.sum += value
        if value > state.max:
            state.max = value
        if value < state.min:
            state.min = value
        if state.samples is not None:
            state.samples.append(value)
            if len(state.samples) > self.exact_limit:
                state.samples = None  # degrade permanently; memory stays bounded
        self._stamp(key, value)

    def labels(self, **labels: Any) -> "BoundHistogram":
        return BoundHistogram(self, _label_key(labels))

    # -- statistics ---------------------------------------------------------
    def _state(self, **labels: Any) -> _HistogramState | None:
        return self._values.get(_label_key(labels))

    def count(self, **labels: Any) -> int:
        state = self._state(**labels)
        return state.count if state else 0

    def mean(self, **labels: Any) -> float:
        state = self._state(**labels)
        if not state or not state.count:
            return 0.0
        return state.sum / state.count

    def percentile(self, q: float, **labels: Any) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) by linear
        interpolation inside the containing bucket.

        Every bucket's interpolation range is clamped to the observed
        ``[min, max]``: ``q=0`` reports the true minimum (not the containing
        bucket's lower bound), and a distribution living entirely in the
        ``+Inf`` overflow bucket interpolates between its min and max
        instead of collapsing every quantile to the maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        state = self._state(**labels)
        if not state or not state.count:
            return 0.0
        if state.samples is not None and state.samples:
            return _exact_quantile(state.samples, q)
        rank = q * state.count
        cumulative = 0
        for index, bucket_count in enumerate(state.bucket_counts):
            if not bucket_count:
                continue
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.buckets):  # overflow bucket
                    upper = state.max
                    lower = self.buckets[-1]
                else:
                    upper = self.buckets[index]
                    lower = self.buckets[index - 1] if index > 0 else 0.0
                if state.min > lower:
                    lower = state.min
                if state.max < upper:
                    upper = max(state.max, lower)
                fraction = 1.0 - (cumulative - rank) / bucket_count
                return lower + (upper - lower) * fraction
        return state.max

    def aggregate_percentile(self, q: float) -> float:
        """Percentile over the union of every label set's observations.

        Stays exact when every series still holds its reservoir (and the
        union fits the limit); otherwise merges buckets and interpolates.
        """
        if not self._values:
            return 0.0
        merged = _HistogramState(len(self.buckets))
        pooled: list[float] | None = [] if self.exact_limit > 0 else None
        for state in self._values.values():
            merged.count += state.count
            merged.sum += state.sum
            merged.max = max(merged.max, state.max)
            merged.min = min(merged.min, state.min)
            for i, c in enumerate(state.bucket_counts):
                merged.bucket_counts[i] += c
            if pooled is not None:
                if state.samples is None:
                    pooled = None
                else:
                    pooled.extend(state.samples)
        if pooled is not None and len(pooled) <= self.exact_limit:
            merged.samples = pooled
        probe = Histogram(self.registry, self.name, self.help, self.buckets)
        probe._values[()] = merged
        return probe.percentile(q)


class BoundHistogram:
    """A histogram pre-bound to one label set."""

    __slots__ = ("_histogram", "_key")

    def __init__(self, histogram: Histogram, key: LabelKey):
        self._histogram = histogram
        self._key = key

    def observe(self, value: float) -> None:
        hist = self._histogram
        if not hist.registry.enabled:
            return
        key = self._key
        state = hist._values.get(key)
        if state is None:
            state = hist._values[key] = _HistogramState(
                len(hist.buckets), keep_samples=hist.exact_limit > 0
            )
        index = bisect.bisect_left(hist.buckets, value)
        state.bucket_counts[index] += 1
        state.count += 1
        state.sum += value
        if value > state.max:
            state.max = value
        if value < state.min:
            state.min = value
        if state.samples is not None:
            state.samples.append(value)
            if len(state.samples) > hist.exact_limit:
                state.samples = None
        hist._stamp(key, value)


class MetricsRegistry:
    """Owns every instrument; the unit of export and of enable/disable.

    Parameters
    ----------
    enabled:
        When False every instrument is a no-op (the shared
        :data:`NULL_METRICS` default).
    clock:
        ``() -> float`` returning the current simulation time; wire
        ``clock=lambda: sim.now``.  Defaults to a constant 0.0 so a registry
        can exist before its simulator.
    keep_series:
        Record per-instrument/label-set ``(time, value)`` histories.
    series_limit:
        Ring-buffer cap per series (oldest points dropped first).
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] | None = None,
        keep_series: bool = False,
        series_limit: int = 4096,
    ):
        self.enabled = enabled
        self._clock = clock
        self.keep_series = keep_series
        self.series_limit = series_limit
        self._instruments: dict[str, Instrument] = {}
        self._series: dict[tuple[str, LabelKey], list[tuple[float, float]]] = {}

    @classmethod
    def for_sim(cls, sim, **kw: Any) -> "MetricsRegistry":
        """A registry stamping samples with ``sim.now``."""
        return cls(clock=lambda: sim.now, **kw)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    @property
    def clock(self) -> Callable[[], float] | None:
        return self._clock

    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- instrument factories ------------------------------------------------
    def _instrument(self, cls: type, name: str, help: str, **kw: Any) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"instrument {name!r} already registered as {existing.kind}"
                )
            return existing
        instrument = cls(self, name, help, **kw)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._instrument(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._instrument(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        exact_limit: int = 0,
    ) -> Histogram:
        return self._instrument(
            Histogram, name, help, buckets=buckets, exact_limit=exact_limit
        )

    # -- introspection -------------------------------------------------------
    def collect(self) -> Iterator[Instrument]:
        """Instruments in name order (stable export)."""
        for name in sorted(self._instruments):
            yield self._instruments[name]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str) -> Instrument:
        return self._instruments[name]

    def names(self, prefix: str = "") -> list[str]:
        """Registered instrument names under a hierarchical prefix."""
        return [n for n in sorted(self._instruments) if n.startswith(prefix)]

    def series(self, name: str, **labels: Any) -> list[tuple[float, float]]:
        """The recorded ``(time, value)`` history (``keep_series=True``)."""
        return list(self._series.get((name, _label_key(labels)), ()))

    def _record_series(self, name: str, key: LabelKey, now: float, value: Any) -> None:
        if not self.keep_series:
            return
        points = self._series.setdefault((name, key), [])
        points.append((now, float(value)))
        if len(points) > self.series_limit:
            del points[: len(points) - self.series_limit]


#: Shared disabled registry for components constructed without metrics.
NULL_METRICS = MetricsRegistry(enabled=False)
