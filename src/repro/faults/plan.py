"""Deterministic fault schedules.

A :class:`FaultPlan` is a pure description — ``(seed, builder calls)`` —
of *what* goes wrong *where* and *when*, on simulation time.  It owns no
simulator state, so the same plan can be replayed against fresh fleets and
two plans built the same way are equal event-for-event (the chaos
determinism tests hash :meth:`fingerprint`).

``FaultPlan.random`` derives a whole plan from one integer seed: the chaos
property tests feed random seeds through it and assert that jobs always
terminate with complete accounting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation only (avoids a config cycle)
    from repro.config.schema import FaultsConfig

__all__ = ["FaultEvent", "FaultKind", "FaultPlan"]


class FaultKind(Enum):
    DEVICE_CRASH = "device-crash"
    AGENT_CRASH = "agent-crash"
    TRANSIENT = "transient"
    LIMP = "limp"


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault on one device.

    ``duration`` is the recovery/restart delay for crash kinds and the
    window length for transient/limp kinds; ``None`` means permanent.
    """

    time: float
    kind: FaultKind
    node: int
    device: str
    duration: float | None = None
    fraction: float = 0.0  # TRANSIENT: share of commands failed
    factor: float = 1.0  # LIMP: firmware-latency multiplier

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("fault duration must be positive")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("transient fraction must be in [0, 1]")
        if self.factor < 1.0:
            raise ValueError("limp factor must be >= 1")

    @property
    def target(self) -> tuple[int, str]:
        return (self.node, self.device)

    def describe(self) -> str:
        what = self.kind.value
        if self.kind is FaultKind.TRANSIENT:
            what += f" {self.fraction * 100:.0f}%"
        if self.kind is FaultKind.LIMP:
            what += f" x{self.factor:g}"
        window = "permanent" if self.duration is None else f"for {self.duration * 1e3:.2f} ms"
        return f"{what} on node{self.node}/{self.device} at {self.time * 1e3:.3f} ms ({window})"


class FaultPlan:
    """An ordered, reproducible schedule of :class:`FaultEvent`s."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._events: list[FaultEvent] = []

    # -- builders (chainable) ------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultPlan":
        self._events.append(event)
        return self

    def kill_device(
        self, node: int, device: str, at: float, recover_after: float | None = None
    ) -> "FaultPlan":
        """Whole-device crash: every command aborts, in-flight work dies."""
        return self.add(
            FaultEvent(at, FaultKind.DEVICE_CRASH, node, device, duration=recover_after)
        )

    def crash_agent(
        self, node: int, device: str, at: float, restart_after: float | None = 2e-3
    ) -> "FaultPlan":
        """ISPS agent dies mid-minion; a supervisor restarts it after the delay."""
        return self.add(
            FaultEvent(at, FaultKind.AGENT_CRASH, node, device, duration=restart_after)
        )

    def transient_window(
        self, node: int, device: str, at: float, duration: float, fraction: float = 0.05
    ) -> "FaultPlan":
        """Fail a fraction of NVMe commands with a retryable status."""
        return self.add(
            FaultEvent(
                at, FaultKind.TRANSIENT, node, device, duration=duration, fraction=fraction
            )
        )

    def limp(
        self,
        node: int,
        device: str,
        at: float,
        factor: float = 4.0,
        duration: float | None = None,
    ) -> "FaultPlan":
        """Slow the device's front end by ``factor`` (a limping drive)."""
        return self.add(
            FaultEvent(at, FaultKind.LIMP, node, device, duration=duration, factor=factor)
        )

    # -- inspection ----------------------------------------------------------
    def events(self) -> tuple[FaultEvent, ...]:
        """Events sorted by (time, insertion order) — the injection order."""
        decorated = sorted(enumerate(self._events), key=lambda e: (e[1].time, e[0]))
        return tuple(event for _, event in decorated)

    def __len__(self) -> int:
        return len(self._events)

    def fingerprint(self) -> str:
        """Stable digest of the schedule (chaos determinism assertions)."""
        canon = repr((self.seed, [repr(e) for e in self.events()]))
        return hashlib.sha256(canon.encode()).hexdigest()[:16]

    def describe_rows(self) -> list[list[Any]]:
        """``[time_ms, kind, target, detail]`` rows for table rendering."""
        rows: list[list[Any]] = []
        for event in self.events():
            detail = "permanent" if event.duration is None else f"{event.duration * 1e3:.2f} ms"
            if event.kind is FaultKind.TRANSIENT:
                detail += f", {event.fraction * 100:.0f}% of commands"
            if event.kind is FaultKind.LIMP:
                detail += f", x{event.factor:g}"
            rows.append(
                [f"{event.time * 1e3:.3f}", event.kind.value,
                 f"node{event.node}/{event.device}", detail]
            )
        return rows

    # -- declarative plans ---------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: "FaultsConfig",
        ring: Sequence[tuple[int, str]],
        base_time: float = 0.0,
    ) -> "FaultPlan":
        """A plan from a scenario's ``faults`` section, aimed at a device ring.

        Explicit events come first (``ring_index`` resolved modulo the ring,
        times in ms relative to ``base_time``), then ``config.random``
        seeded-random faults over ``[0, horizon_ms)``.  Pure function of
        ``(config, ring, base_time)`` — the fingerprint is reproducible.
        """
        if not ring:
            raise ValueError("need at least one device to plan faults for")
        plan = cls(seed=config.seed)
        for spec in config.events:
            node, device = ring[spec.ring_index % len(ring)]
            at = base_time + spec.at_ms * 1e-3
            duration = None if spec.duration_ms is None else spec.duration_ms * 1e-3
            if spec.kind == FaultKind.DEVICE_CRASH.value:
                plan.kill_device(node, device, at, recover_after=duration)
            elif spec.kind == FaultKind.AGENT_CRASH.value:
                plan.crash_agent(
                    node, device, at,
                    restart_after=duration if duration is not None else 2e-3,
                )
            elif spec.kind == FaultKind.TRANSIENT.value:
                if duration is None:
                    raise ValueError("transient faults need duration_ms")
                plan.transient_window(
                    node, device, at, duration, fraction=spec.fraction
                )
            else:  # LIMP — FaultSpec validates the kind at construction
                plan.limp(node, device, at, factor=spec.factor, duration=duration)
        if config.random:
            random_plan = cls.random(
                config.seed, list(ring),
                horizon=base_time + config.horizon_ms * 1e-3,
                faults=config.random,
            )
            for event in random_plan.events():
                plan.add(event)
        return plan

    # -- randomised plans ----------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        devices: Sequence[tuple[int, str]],
        horizon: float,
        faults: int = 3,
        allow_permanent: bool = True,
    ) -> "FaultPlan":
        """A reproducible random plan over ``devices`` within ``[0, horizon]``.

        Randomness comes from ``numpy.default_rng(seed)`` only — independent
        of any simulator, so the plan (and its fingerprint) is a pure
        function of its arguments.
        """
        if not devices:
            raise ValueError("need at least one device to plan faults for")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = np.random.default_rng(seed)
        plan = cls(seed=seed)
        kinds = list(FaultKind)
        for _ in range(faults):
            node, device = devices[int(rng.integers(len(devices)))]
            kind = kinds[int(rng.integers(len(kinds)))]
            at = float(rng.uniform(0.0, horizon))
            duration = float(rng.uniform(horizon * 0.05, horizon * 0.5))
            if kind is FaultKind.DEVICE_CRASH:
                permanent = allow_permanent and bool(rng.random() < 0.5)
                plan.kill_device(node, device, at, None if permanent else duration)
            elif kind is FaultKind.AGENT_CRASH:
                plan.crash_agent(node, device, at, restart_after=duration)
            elif kind is FaultKind.TRANSIENT:
                plan.transient_window(
                    node, device, at, duration, fraction=float(rng.uniform(0.05, 0.8))
                )
            else:
                plan.limp(
                    node, device, at, factor=float(rng.uniform(1.5, 8.0)), duration=duration
                )
        return plan
