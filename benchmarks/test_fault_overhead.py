"""Fault-subsystem overhead guard (companion to test_obs_overhead.py).

The fault layer's contract is that *disabled* chaos costs nothing: devices
keep ``faults = None`` until an injector names them, the client's retry
loop collapses to the historical single attempt when no policy is set,
and an armed-but-empty plan schedules zero simulation events.

Two properties are asserted:

1. **Schedule neutrality** — the simulated clock and every response are
   bit-identical whether the fault machinery is absent, configured but
   idle (retry policy + breakers + an empty armed plan), or never built.
2. **Wall-clock overhead** — the armed-but-idle mode stays within 5% of
   the plain fast path (best-of-N timing for CI stability).
"""

import time

from repro.cluster import StorageFleet, StorageNode
from repro.faults import BreakerConfig, FaultInjector, FaultPlan, RetryPolicy
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec

ROUNDS = 5
OVERHEAD_BUDGET = 1.10  # armed-but-idle wall clock <= 110% of baseline


def run_node_workload(armed=False):
    """One node, four devices, one grep minion per book; returns the
    schedule-identity tuple (finish time + every stdout)."""
    kw = dict(retry_policy=RetryPolicy(), breaker_config=BreakerConfig()) if armed else {}
    node = StorageNode.build(devices=4, device_capacity=24 * 1024 * 1024, **kw)
    sim = node.sim
    if armed:
        FaultInjector.for_node(node, FaultPlan()).start()
    books = BookCorpus(CorpusSpec(files=8, mean_file_bytes=64 * 1024)).generate()
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))
    assignments = [
        (device, Command(command_line=f"grep xylophone {book.name}"))
        for device, part in node.device_books(books).items()
        for book in part
    ]

    def job():
        return (yield from node.client.gather(assignments))

    responses = sim.run(sim.process(job()))
    return sim.now, tuple(r.stdout for r in responses)


def run_fleet_workload(armed=False):
    """Fleet-level identity: run_job with no faults must schedule exactly
    like a fleet that never built the recovery machinery."""
    kw = dict(retry_policy=RetryPolicy(), breaker_config=BreakerConfig()) if armed else {}
    fleet = StorageFleet.build(
        nodes=2, devices_per_node=2, device_capacity=24 * 1024 * 1024, **kw
    )
    sim = fleet.sim
    if armed:
        FaultInjector.for_fleet(fleet, FaultPlan()).start()
    books = BookCorpus(CorpusSpec(files=8, mean_file_bytes=32 * 1024)).generate()
    sim.run(sim.process(fleet.stage_corpus(books)))

    def job():
        return (yield from fleet.run_job(
            books, lambda b: Command(command_line=f"grep xylophone {b.name}")
        ))

    report = sim.run(sim.process(job()))
    assert report.completed == report.dispatched and not report.degraded
    return sim.now, tuple(r.stdout for r in report.responses)


def best_of_interleaved(a, b, rounds=ROUNDS):
    """Best wall clock of each callable, alternating runs so slow drift in
    the machine (thermal, noisy neighbours) hits both sides equally."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def test_idle_fault_machinery_is_schedule_neutral():
    assert run_node_workload() == run_node_workload(armed=True), (
        "idle retry/breaker/injector machinery perturbed the node schedule"
    )
    assert run_fleet_workload() == run_fleet_workload(armed=True), (
        "idle fault machinery perturbed the fleet run_job schedule"
    )


def test_idle_fault_machinery_is_cheap():
    base_wall, armed_wall = best_of_interleaved(
        run_node_workload, lambda: run_node_workload(armed=True)
    )
    ratio = armed_wall / base_wall
    print(
        f"\nfault overhead: baseline={base_wall * 1e3:.1f} ms "
        f"armed-idle={armed_wall * 1e3:.1f} ms ratio={ratio:.3f}"
    )
    assert ratio <= OVERHEAD_BUDGET, (
        f"idle fault machinery costs {(ratio - 1) * 100:.1f}% wall clock "
        f"(budget {(OVERHEAD_BUDGET - 1) * 100:.0f}%)"
    )
