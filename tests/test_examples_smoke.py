"""Smoke tests: every example script must run end to end.

Examples are user-facing documentation; a broken example is a broken
promise.  Each is executed in-process (fast) with stdout captured.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_has_enough_examples():
    assert len(EXAMPLES) >= 5, EXAMPLES
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_quickstart_output_contents(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "grep matched 400 lines" in out
    assert "device status" in out
