"""Processor parameter sets.

Sources:

- **ARM_A53_QUAD** — the paper's Table II: quad-core 64-bit Cortex-A53 @
  1.5 GHz, 32 KB L1 I/D, 1 MB L2, 8 GB DDR4.  A53 is a dual-issue in-order
  core; sustained IPC ~1.1 on data-processing workloads.  Power from public
  Zynq UltraScale+ characterisation: ~0.35 W per busy core at 1.5 GHz plus
  ~0.6 W cluster idle/uncore.
- **XEON_E5_2620_V4** — the paper's Table IV host: 8C/16T Broadwell-EP @
  2.1 GHz base.  Wide out-of-order core, sustained IPC ~2.4 on the same
  workloads.  85 W TDP; ~8 W per busy core active power plus ~18 W package
  idle/uncore.
"""

from repro.cpu.core import CpuSpec

__all__ = ["ARM_A53_QUAD", "CPU_MODELS", "XEON_E5_2620_V4", "cpu_model", "resolve_cpu"]

ARM_A53_QUAD = CpuSpec(
    name="ARM Cortex-A53 quad @ 1.5 GHz",
    cores=4,
    freq_hz=1.5e9,
    ipc=1.1,
    p_active_core=0.35,
    p_idle=0.6,
    l1_kib=32,
    l2_kib=1024,
    dram_gib=8,
)

XEON_E5_2620_V4 = CpuSpec(
    name="Intel Xeon E5-2620 v4 @ 2.1 GHz",
    cores=8,
    freq_hz=2.1e9,
    ipc=2.4,
    p_active_core=8.0,
    p_idle=18.0,
    l1_kib=32,
    l2_kib=20480,
    dram_gib=32,
)

#: Model-name registry: how scenario configs (``isps.cpu``) name a spec.
CPU_MODELS: dict[str, CpuSpec] = {
    "arm-a53-quad": ARM_A53_QUAD,
    "xeon-e5-2620-v4": XEON_E5_2620_V4,
}


def cpu_model(name: str) -> CpuSpec:
    """The registered :class:`CpuSpec` for ``name`` (loud on unknown names)."""
    try:
        return CPU_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown cpu model {name!r}; use {sorted(CPU_MODELS)}"
        ) from None


def resolve_cpu(spec: "CpuSpec | str") -> CpuSpec:
    """Accept either a spec object or a registry name."""
    return spec if isinstance(spec, CpuSpec) else cpu_model(spec)
