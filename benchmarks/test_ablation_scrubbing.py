"""Ablation — background patrol scrubbing vs silent retention loss.

DESIGN.md decision under test: the FTL ships a retention scrubber.  Cold
data aged far past the media's retention constant must survive when the
scrubber runs and become uncorrectable when it does not — and the scrubber's
cost (extra P/E cycles) must stay bounded.
"""

from repro.analysis.experiments import format_series_table
from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig, LogicalIOError
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=8,
    pages_per_block=8, page_size=2048,
)
PAGES = 24
#: accelerated retention constant: 1 "year" of drift every simulated second
TAU = 1.0
AGE = 25.0  # seconds of cold storage


def cold_storage_run(scrub_interval):
    sim = Simulator(seed=4)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=2e-5, tau=TAU))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048), capability=60))
    ftl = FlashTranslationLayer(
        sim, flash, ecc,
        config=FtlConfig(scrub_interval=scrub_interval, scrub_margin=0.5),
    )

    def write_cold():
        for lpn in range(PAGES):
            yield from ftl.write(lpn, b"archival")
        yield from ftl.flush()

    sim.run(sim.process(write_cold()))
    sim.run(until=sim.now + AGE)  # the drive sits powered but idle

    lost = 0

    def readback():
        nonlocal lost
        for lpn in range(PAGES):
            try:
                data = yield from ftl.read(lpn)
                assert data == b"archival"
            except LogicalIOError:
                lost += 1

    sim.run(sim.process(readback()))
    return {
        "scrub": "on" if scrub_interval else "off",
        "pages_lost": lost,
        "refreshes": ftl.scrubber.blocks_refreshed,
        "extra_erases": int(ftl.flash.stats.erases),
    }


def test_ablation_scrubbing(benchmark):
    def experiment():
        return cold_storage_run(None), cold_storage_run(0.5)

    off, on = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n" + format_series_table(
        f"Ablation — {PAGES} cold pages aged {AGE / TAU:.0f} retention-constants",
        ["scrubbing", "pages lost", "refreshes", "erases spent"],
        [[r["scrub"], r["pages_lost"], r["refreshes"], r["extra_erases"]]
         for r in (off, on)],
    ))

    # without scrubbing the archive rots
    assert off["pages_lost"] > 0
    assert off["refreshes"] == 0
    # with scrubbing nothing is lost...
    assert on["pages_lost"] == 0
    assert on["refreshes"] > 0
    # ...at a bounded wear cost (a handful of erases, not a rewrite storm)
    assert on["extra_erases"] <= 12 * (AGE / TAU)