"""A storage node: one host, a PCIe fabric, N CompStors (paper Fig. 2).

:meth:`StorageNode.build` assembles the full system used by the
experiments: host server (Xeon), root complex + switch, N in-situ drives,
one shared power meter, and the in-situ client library attached to every
device.  A conventional drive for the host-side baseline can be included
with ``with_baseline_ssd=True`` (the Table IV setup uses a separate,
identical server; sharing the fabric here changes nothing because the
baseline and in-situ runs never overlap in time).
"""

from __future__ import annotations

from typing import Generator, Iterable, Sequence

from repro.faults.retry import BreakerConfig, RetryPolicy
from repro.flash import FlashGeometry
from repro.ftl import FtlConfig
from repro.host import HostServer, InSituClient
from repro.isos.loader import ExecutableRegistry
from repro.obs.metrics import MetricsRegistry
from repro.pcie import PcieFabric
from repro.power import PowerMeter
from repro.sim import Simulator, Tracer
from repro.ssd import CompStorSSD, ConventionalSSD
from repro.workloads import BookFile, partition_round_robin

__all__ = ["StorageNode"]


class StorageNode:
    """Host + fabric + N CompStors (+ optional baseline drive)."""

    def __init__(
        self,
        sim: Simulator,
        host: HostServer,
        fabric: PcieFabric,
        compstors: list[CompStorSSD],
        client: InSituClient,
        meter: PowerMeter,
        baseline_ssd: ConventionalSSD | None = None,
    ):
        self.sim = sim
        self.host = host
        self.fabric = fabric
        self.compstors = compstors
        self.client = client
        self.meter = meter
        self.baseline_ssd = baseline_ssd

    # -- construction -----------------------------------------------------------
    @classmethod
    def build(
        cls,
        devices: int = 4,
        seed: int = 0,
        sim: Simulator | None = None,
        geometry: FlashGeometry | None = None,
        device_capacity: int = 64 * 1024 * 1024,
        store_data: bool = True,
        with_baseline_ssd: bool = False,
        registry: ExecutableRegistry | None = None,
        ftl_config: FtlConfig | None = None,
        tracer: Tracer | None = None,
        uplink_lanes: int = 16,
        endpoint_lanes: int = 4,
        metrics: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_config: BreakerConfig | None = None,
    ) -> "StorageNode":
        """Thin wrapper over :func:`repro.config.factory.build_node`.

        The kwargs are the historical surface; each maps onto one
        :class:`~repro.config.ScenarioConfig` field and the factory owns
        the construction sequence, so a node built here is identical —
        schedule-for-schedule — to one built from the equivalent scenario.
        """
        from repro.config.factory import build_node, scenario_for_node

        config = scenario_for_node(
            devices=devices,
            seed=seed,
            geometry=geometry,
            device_capacity=device_capacity,
            store_data=store_data,
            with_baseline_ssd=with_baseline_ssd,
            ftl_config=ftl_config,
            uplink_lanes=uplink_lanes,
            endpoint_lanes=endpoint_lanes,
            retry_policy=retry_policy,
            breaker_config=breaker_config,
        )
        return build_node(
            config,
            sim=sim,
            geometry=geometry,
            registry=registry,
            tracer=tracer,
            metrics=metrics,
        )

    # -- dataset staging ----------------------------------------------------------
    def stage_corpus(
        self,
        books: Sequence[BookFile],
        compressed: bool = True,
        include_host: bool = False,
    ) -> Generator:
        """Distribute books round-robin across the CompStors' filesystems.

        ``include_host`` additionally stages *all* books on the host's
        baseline drive (for host-vs-device comparisons).
        """
        parts = partition_round_robin(list(books), len(self.compstors))
        procs = []
        for ssd, part in zip(self.compstors, parts):
            stage = self._stage_books(ssd.fs, part, compressed)
            procs.append(self.sim.process(stage, name=f"stage->{ssd.name}"))
        if include_host:
            fs = self.host.require_os().fs
            procs.append(
                self.sim.process(self._stage_books(fs, books, compressed), name="stage->host")
            )
        yield self.sim.all_of(procs)
        return None

    @staticmethod
    def _stage_books(fs, books: Iterable[BookFile], compressed: bool) -> Generator:
        for book in books:
            if compressed:
                yield from fs.write_file(
                    book.compressed_name, book.compressed, size=book.compressed_size
                )
            else:
                yield from fs.write_file(book.name, book.plain, size=book.plain_size)
        # land everything on NAND so measurements that follow staging see a
        # quiescent device (the paper pre-loads its dataset)
        yield from fs.device.flush()
        return None

    def device_books(self, books: Sequence[BookFile]) -> dict[str, list[BookFile]]:
        """Which device holds which book under round-robin staging."""
        parts = partition_round_robin(list(books), len(self.compstors))
        return {ssd.name: part for ssd, part in zip(self.compstors, parts)}

    # -- reporting ----------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "host": self.host.describe(),
            "devices": [ssd.describe() for ssd in self.compstors],
            "fabric_endpoints": len(self.fabric),
            "baseline_ssd": self.baseline_ssd.describe() if self.baseline_ssd else None,
        }
