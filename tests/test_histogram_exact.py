"""Exact small-sample quantile mode of the obs Histogram.

p999 over a few hundred observations is meaningless under bucket
interpolation; with ``exact_limit`` the histogram keeps a bounded
reservoir of raw samples and reports numpy-identical quantiles until the
series outgrows the limit, at which point it degrades (permanently) to
the existing bucket interpolation.  The default (``exact_limit=0``) is
bit-identical to the historical behaviour — the regression tests in
``test_obs_metrics.py`` run against it unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry


def _histogram(exact_limit, buckets=(0.001, 0.01, 0.1, 1.0)):
    return MetricsRegistry().histogram(
        "lat", buckets=buckets, exact_limit=exact_limit
    )


def test_exact_mode_matches_numpy_quantiles():
    hist = _histogram(exact_limit=2048)
    values = [((i * 37) % 1000) / 1000 + 0.001 for i in range(1000)]
    for v in values:
        hist.observe(v)
    for q in (0.5, 0.99, 0.999):
        assert hist.percentile(q) == pytest.approx(
            float(np.percentile(values, q * 100)), rel=1e-12
        )


def test_exact_mode_tail_quantiles_at_small_n():
    """The motivating case: 10 samples, p999 must report (essentially) the
    maximum, not a bucket-interpolated fiction."""
    hist = _histogram(exact_limit=64)
    values = [0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.008, 0.009, 0.05, 0.9]
    for v in values:
        hist.observe(v)
    assert hist.percentile(0.5) == pytest.approx(float(np.percentile(values, 50)))
    assert hist.percentile(0.999) == pytest.approx(
        float(np.percentile(values, 99.9))
    )
    assert hist.percentile(0.999) > 0.89  # right next to the max
    assert hist.percentile(0.0) == pytest.approx(0.002)
    assert hist.percentile(1.0) == pytest.approx(0.9)


def test_exact_mode_degrades_permanently_beyond_limit():
    hist = _histogram(exact_limit=5)
    for v in (0.002, 0.003, 0.004, 0.005, 0.006, 0.007):
        hist.observe(v)  # sixth observation overflows the reservoir
    reference = _histogram(exact_limit=0)
    for v in (0.002, 0.003, 0.004, 0.005, 0.006, 0.007):
        reference.observe(v)
    # after degrading, quantiles equal the plain bucket interpolation
    for q in (0.0, 0.5, 0.99, 1.0):
        assert hist.percentile(q) == pytest.approx(reference.percentile(q))
    state = hist._values[()]
    assert state.samples is None  # reservoir dropped, memory bounded


def test_exact_limit_zero_keeps_no_reservoir():
    hist = _histogram(exact_limit=0)
    hist.observe(0.005)
    assert hist._values[()].samples is None
    # existing min/max interpolation paths still the estimator
    assert 0.001 < hist.percentile(0.5) <= 0.01


def test_aggregate_percentile_exact_across_label_sets():
    hist = _histogram(exact_limit=64)
    for v in (0.002, 0.004):
        hist.observe(v, device="d0")
    for v in (0.006, 0.008):
        hist.observe(v, device="d1")
    pooled = [0.002, 0.004, 0.006, 0.008]
    for q in (0.5, 0.999):
        assert hist.aggregate_percentile(q) == pytest.approx(
            float(np.percentile(pooled, q * 100))
        )


def test_aggregate_percentile_falls_back_when_any_series_degraded():
    hist = _histogram(exact_limit=3)
    for v in (0.002, 0.003, 0.004, 0.005):  # overflows: reservoir dropped
        hist.observe(v, device="d0")
    hist.observe(0.006, device="d1")  # still exact
    reference = _histogram(exact_limit=0)
    for v in (0.002, 0.003, 0.004, 0.005):
        reference.observe(v, device="d0")
    reference.observe(0.006, device="d1")
    assert hist.aggregate_percentile(0.5) == pytest.approx(
        reference.aggregate_percentile(0.5)
    )


def test_bound_histogram_feeds_the_reservoir():
    hist = _histogram(exact_limit=16)
    bound = hist.labels(device="d0")
    for v in (0.002, 0.9):
        bound.observe(v)
    assert hist.percentile(0.5, device="d0") == pytest.approx(0.451)


def test_exact_limit_rejects_negative():
    with pytest.raises(ValueError):
        _histogram(exact_limit=-1)
