"""Fast tests for the experiment runners (tiny corpora).

The benches exercise the default paths; these tests cover the variants —
fixed-dataset strong scaling, decompression corpora, and the Fig. 1 row
structure — at sizes that run in well under a second each.
"""

import pytest

from repro.analysis.figures import (
    DEFAULT_FIG6_SPEC,
    Fig1Row,
    _corpus_for,
    _input_bytes,
    fig6_linearity,
    run_fig1,
    run_fig6,
)
from repro.workloads import CorpusSpec

TINY = CorpusSpec(files=4, mean_file_bytes=24 * 1024, size_spread=0.1)


def test_fig1_rows_structure():
    rows = run_fig1((1, 2))
    assert [r.ssd_count for r in rows] == [1, 2]
    assert isinstance(rows[0], Fig1Row)
    assert rows[1].media_bandwidth_bps == 2 * rows[0].media_bandwidth_bps


def test_fig6_fixed_dataset_strong_scaling():
    """Without weak scaling the same dataset splits across devices — still
    monotone but allowed to be sub-linear."""
    results = run_fig6(
        app="grep", device_counts=(1, 2), spec=TINY,
        scale_dataset_with_devices=False,
    )
    tps = [tp for _, tp in results]
    assert tps[1] > tps[0]


def test_fig6_weak_scaling_near_linear_tiny():
    results = run_fig6(app="grep", device_counts=(1, 2), spec=TINY)
    _, _, r2 = fig6_linearity(results)
    assert r2 > 0.9


def test_corpus_for_decompression_apps():
    gz_books = _corpus_for("gunzip", TINY, functional=True)
    assert all(b.compression == "gzip" for b in gz_books)
    bz_books = _corpus_for("bunzip2", TINY, functional=True)
    assert all(b.compression == "bzip2" for b in bz_books)
    plain = _corpus_for("grep", TINY, functional=True)
    assert {b.compression for b in plain} == {"gzip", "bzip2"}  # staging irrelevant


def test_input_bytes_counts_the_right_side():
    books = _corpus_for("gunzip", TINY, functional=True)
    assert _input_bytes(books, "gunzip") == sum(b.compressed_size for b in books)
    assert _input_bytes(books, "grep") == sum(b.plain_size for b in books)
    assert _input_bytes(books, "gunzip") < _input_bytes(books, "grep")


def test_fig6_gunzip_runs_end_to_end():
    """Decompression scaling: compressed staging + .gz targets."""
    results = run_fig6(app="gunzip", device_counts=(1,), spec=TINY)
    assert results[0][1] > 0


def test_default_spec_sane():
    assert DEFAULT_FIG6_SPEC.files >= 4
    assert DEFAULT_FIG6_SPEC.mean_file_bytes >= 32 * 1024
