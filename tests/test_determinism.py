"""Reproducibility: identical seeds give bit-identical runs.

For a simulator this is a headline feature — every number in
EXPERIMENTS.md must be reproducible from ``(seed, model, workload)``.
"""

from repro.cluster import StorageFleet, StorageNode
from repro.faults import BreakerConfig, FaultInjector, FaultPlan, RetryPolicy
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec


def run_once(seed):
    books = BookCorpus(CorpusSpec(files=4, mean_file_bytes=32 * 1024)).generate()
    node = StorageNode.build(devices=2, seed=seed, device_capacity=24 * 1024 * 1024)
    sim = node.sim
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))
    assignments = [
        (device, Command(command_line=f"grep xylophone {book.name}"))
        for device, part in node.device_books(books).items()
        for book in part
    ]
    mark = node.meter.snapshot()

    def job():
        return (yield from node.client.gather(assignments))

    responses = sim.run(sim.process(job()))
    report = node.meter.window(mark)
    return {
        "finished_at": sim.now,
        "stdout": tuple(r.stdout for r in responses),
        "exec_seconds": tuple(r.execution_seconds for r in responses),
        "energy": report.total_j,
        "flash_ops": (
            node.compstors[0].flash.stats.reads,
            node.compstors[0].flash.stats.programs,
        ),
    }


def test_same_seed_bit_identical():
    a = run_once(seed=42)
    b = run_once(seed=42)
    assert a == b


def test_different_seed_keeps_functional_results():
    """Different seeds change the random streams (BER draws), but never the
    functional results.  Note the *timing* may coincide: at the default
    raw BER (~1e-6) a short run frequently draws zero bit errors under any
    seed, so identical finish times across seeds are legitimate."""
    a = run_once(seed=1)
    b = run_once(seed=2)
    assert a["stdout"] == b["stdout"]  # correctness is seed-independent
    assert a["flash_ops"] == b["flash_ops"]  # op counts too

    from repro.sim import Simulator

    # the underlying streams really do differ per seed
    assert Simulator(seed=1).rng("flash").random() != Simulator(seed=2).rng("flash").random()


def test_corpus_generation_independent_of_simulator():
    """The corpus derives from its own spec seed, not the simulator seed."""
    a = BookCorpus(CorpusSpec(files=2, seed=7)).generate()
    b = BookCorpus(CorpusSpec(files=2, seed=7)).generate()
    assert [x.plain for x in a] == [y.plain for y in b]


def run_chaos_once(seed):
    """A replicated fleet job under a fixed fault plan: crash + transients.

    Everything the run produces — the plan digest, the injector's applied
    log, every response status, the recovery accounting, the finish time —
    must be a pure function of the seed.
    """
    fleet = StorageFleet.build(
        nodes=2,
        devices_per_node=2,
        seed=seed,
        device_capacity=24 * 1024 * 1024,
        retry_policy=RetryPolicy(),
        breaker_config=BreakerConfig(),
    )
    sim = fleet.sim
    books = BookCorpus(CorpusSpec(files=6, mean_file_bytes=16 * 1024, seed=seed)).generate()
    sim.run(sim.process(fleet.stage_corpus(books, replicas=2)))
    ring = fleet.device_ring()
    plan = (
        FaultPlan(seed=seed)
        .kill_device(*ring[1], at=sim.now + 2e-4, recover_after=2e-3)
        .transient_window(*ring[2], at=sim.now, duration=1e-3, fraction=0.5)
    )
    injector = FaultInjector.for_fleet(fleet, plan).start()

    def job():
        return (yield from fleet.run_job(
            books, lambda b: Command(command_line=f"grep xylophone {b.name}")
        ))

    report = sim.run(sim.process(job()))
    return {
        "fingerprint": plan.fingerprint(),
        "applied": tuple(injector.applied),
        "finished_at": sim.now,
        "statuses": tuple(
            None if r is None else r.status.value for r in report.responses
        ),
        "stdout": tuple(None if r is None else r.stdout for r in report.responses),
        "accounting": (
            report.dispatched, report.completed, report.recovered, report.lost,
            report.retries, report.failovers, report.host_fallbacks,
        ),
    }


def test_chaos_same_seed_bit_identical():
    """Faults, retries, backoff jitter, failover — all replayable."""
    a = run_chaos_once(seed=5)
    b = run_chaos_once(seed=5)
    assert a == b
    assert a["accounting"][0] == sum(a["accounting"][1:3]) + len(a["accounting"][3])
