"""Datacenter fleet: many storage nodes, one coordinator.

The paper's closing scaling argument: "Considering a data center containing
hundreds of CompStor equipped storage nodes, there could be thousands of
concurrent minions, resulting in heavy parallelism at the storage unit
level."  :class:`StorageFleet` builds that two-level topology — a
coordinator fanning jobs out to per-node in-situ clients, each fanning out
to its local devices — inside one simulation.

At that scale device failure is routine, so the fleet also owns the
recovery story: :meth:`stage_corpus` can place ``replicas`` copies of each
book on consecutive devices of the fleet-wide ring, and :meth:`run_job`
degrades instead of raising — minions that die with their device are
rerouted to surviving replicas (or, as a last resort, executed host-side
when a host holds the data), and the returned :class:`JobReport` accounts
for every minion: ``completed + recovered + lost == dispatched``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterator, Sequence

from repro.cluster.node import StorageNode
from repro.faults.retry import BreakerConfig, CircuitBreaker, RetryPolicy
from repro.host.insitu import InSituError
from repro.obs.health import FleetHealth, HealthAggregator
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.proto.entities import Command, Response, ResponseStatus
from repro.sim import Simulator, Tracer
from repro.workloads import BookFile, partition_round_robin

__all__ = ["JobReport", "StorageFleet"]


@dataclass(slots=True)
class JobReport:
    """Degraded-mode accounting for one :meth:`StorageFleet.run_job`.

    ``responses`` is aligned with dispatch order; a ``None`` slot is a lost
    minion (no surviving replica, no host copy).  Unpacking as
    ``responses, wall = fleet.run_job(...)`` keeps working — the report
    iterates as the historical 2-tuple.
    """

    responses: list[Response | None]
    wall_seconds: float
    dispatched: int
    completed: int  # answered by their primary placement
    recovered: int  # answered by a surviving replica or the host
    lost: tuple[str, ...] = ()  # book names with no surviving copy
    retries: int = 0  # client-level resends during this job
    failovers: int = 0  # minions rerouted to a replica device
    host_fallbacks: int = 0  # minions executed host-side

    def __iter__(self) -> Iterator[Any]:
        return iter((self.responses, self.wall_seconds))

    @property
    def accounted(self) -> int:
        return self.completed + self.recovered + len(self.lost)

    @property
    def degraded(self) -> bool:
        return self.recovered > 0 or bool(self.lost) or self.retries > 0

    def rows(self) -> list[list[Any]]:
        """``[attribute, value]`` rows for table rendering."""
        return [
            ["dispatched", self.dispatched],
            ["completed (primary)", self.completed],
            ["recovered (failover)", self.recovered],
            ["lost", len(self.lost)],
            ["retries", self.retries],
            ["replica failovers", self.failovers],
            ["host fallbacks", self.host_fallbacks],
            ["wall clock", f"{self.wall_seconds * 1e3:.3f} ms"],
        ]


class StorageFleet:
    """A rack/row of storage nodes under one job coordinator."""

    def __init__(
        self,
        sim: Simulator,
        nodes: list[StorageNode],
        metrics: MetricsRegistry | None = None,
    ):
        if not nodes:
            raise ValueError("a fleet needs at least one node")
        self.sim = sim
        self.nodes = nodes
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._m_node_load = self.metrics.gauge(
            "cluster.node.active_minions", "in-flight minions per node, sampled per job"
        )
        self._m_failovers = self.metrics.counter(
            "cluster.failovers", "minions rerouted to a surviving replica"
        )
        self._m_host_fallbacks = self.metrics.counter(
            "cluster.host_fallbacks", "minions executed host-side (no replica survived)"
        )
        self._m_lost = self.metrics.counter(
            "cluster.minions.lost", "minions lost with no surviving copy of their data"
        )
        #: book name -> ordered replica targets (primary first)
        self._replica_map: dict[str, list[tuple[int, str]]] = {}
        self.failovers_total = 0
        self.host_fallbacks_total = 0
        self.lost_total = 0
        self.recovered_total = 0

    @classmethod
    def build(
        cls,
        nodes: int = 4,
        devices_per_node: int = 4,
        seed: int = 0,
        device_capacity: int = 32 * 1024 * 1024,
        store_data: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_config: BreakerConfig | None = None,
    ) -> "StorageFleet":
        """Thin wrapper over :func:`repro.config.factory.build_fleet` (the
        kwargs map one-to-one onto scenario fields)."""
        from repro.config.factory import build_fleet, scenario_for_node

        config = scenario_for_node(
            nodes=nodes,
            devices=devices_per_node,
            seed=seed,
            device_capacity=device_capacity,
            store_data=store_data,
            retry_policy=retry_policy,
            breaker_config=breaker_config,
        )
        return build_fleet(config, tracer=tracer, metrics=metrics)

    # -- topology -----------------------------------------------------------
    @property
    def total_devices(self) -> int:
        return sum(len(node.compstors) for node in self.nodes)

    def device_ring(self) -> list[tuple[int, str]]:
        """Every device as ``(node_index, device_name)``, in fleet order.

        Consecutive ring positions host consecutive replicas, so one dead
        device never takes both copies of a book with ``replicas >= 2``.
        """
        return [
            (node_index, ssd.name)
            for node_index, node in enumerate(self.nodes)
            for ssd in node.compstors
        ]

    def _ssd(self, node_index: int, device: str):
        return next(s for s in self.nodes[node_index].compstors if s.name == device)

    def describe(self) -> dict:
        return {
            "nodes": len(self.nodes),
            "devices": self.total_devices,
            "capacity_bytes": sum(
                ssd.capacity_bytes for node in self.nodes for ssd in node.compstors
            ),
        }

    # -- dataset ------------------------------------------------------------
    def stage_corpus(
        self,
        books: Sequence[BookFile],
        compressed: bool = False,
        replicas: int = 1,
    ) -> Generator:
        """Scatter books round-robin over nodes (each node scatters over its
        devices); all staging runs concurrently.

        ``replicas=k`` additionally writes each book to the ``k-1`` devices
        following its primary on the fleet-wide :meth:`device_ring`, and
        records the replica chains :meth:`run_job` reroutes along.

        Staging is additive: chains recorded by earlier :meth:`stage_corpus`
        calls survive, so a fleet can hold several corpora and still fail
        over books from any of them.  Restaging a book updates its chain.
        """
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        ring = self.device_ring()
        if replicas > len(ring):
            raise ValueError(f"replicas={replicas} exceeds {len(ring)} devices")
        placement = self.placement(books)
        ring_index = {target: i for i, target in enumerate(ring)}
        for target, dev_books in placement.items():
            base = ring_index[target]
            chain = [ring[(base + j) % len(ring)] for j in range(replicas)]
            for book in dev_books:
                self._replica_map[book.name] = chain
        if replicas == 1:
            # the historical single-copy path, bit-identical schedules
            parts = partition_round_robin(list(books), len(self.nodes))
            procs = [
                self.sim.process(node.stage_corpus(part, compressed=compressed))
                for node, part in zip(self.nodes, parts)
            ]
            yield self.sim.all_of(procs)
            return None
        per_device: dict[tuple[int, str], list[BookFile]] = {}
        for target, dev_books in sorted(placement.items()):
            base = ring_index[target]
            for j in range(replicas):
                replica_target = ring[(base + j) % len(ring)]
                per_device.setdefault(replica_target, []).extend(dev_books)
        procs = [
            self.sim.process(
                StorageNode._stage_books(self._ssd(ni, device).fs, dev_books, compressed),
                name=f"stage->n{ni}.{device}",
            )
            for (ni, device), dev_books in sorted(per_device.items())
        ]
        yield self.sim.all_of(procs)
        return None

    def placement(self, books: Sequence[BookFile]) -> dict[tuple[int, str], list[BookFile]]:
        """(node index, device name) -> books, matching :meth:`stage_corpus`."""
        out: dict[tuple[int, str], list[BookFile]] = {}
        parts = partition_round_robin(list(books), len(self.nodes))
        for node_index, (node, part) in enumerate(zip(self.nodes, parts)):
            for device, dev_books in node.device_books(part).items():
                out[(node_index, device)] = dev_books
        return out

    def replica_targets(self, book_name: str) -> list[tuple[int, str]]:
        """Replica chain recorded at staging time (primary first)."""
        return list(self._replica_map.get(book_name, []))

    # -- jobs ----------------------------------------------------------------
    def run_job(
        self,
        books: Sequence[BookFile],
        command_for: Callable[[BookFile], Command],
    ) -> Generator:
        """One minion per book, everywhere at once — surviving failures.

        Every failed delivery (dead device, open breaker, retry budget
        exhausted) is retried against the book's surviving replicas, then
        against a host that holds the data; only then is the minion counted
        lost.  Returns a :class:`JobReport` (iterates as the historical
        ``(responses, wall_seconds)`` pair).
        """
        start = self.sim.now
        retries_before = sum(node.client.retries for node in self.nodes)
        ordered_placement = sorted(self.placement(books).items())
        per_node_assignments: list[list[tuple[str, Command]]] = []
        flat_meta: list[tuple[int, str, BookFile]] = []
        for (node_index, device), dev_books in ordered_placement:
            while len(per_node_assignments) <= node_index:
                per_node_assignments.append([])
            per_node_assignments[node_index].extend(
                (device, command_for(book)) for book in dev_books
            )
            flat_meta.extend((node_index, device, book) for book in dev_books)
        if self.metrics.enabled:
            for node_index, assignments in enumerate(per_node_assignments):
                self._m_node_load.set(len(assignments), node=node_index)
        procs = [
            self.sim.process(node.client.gather(assignments, return_exceptions=True))
            for node, assignments in zip(self.nodes, per_node_assignments)
            if assignments
        ]
        results = yield self.sim.all_of(procs)
        outcomes = [r for proc in procs for r in results[proc]]

        responses: list[Response | None] = []
        completed = 0
        failed: list[tuple[int, tuple[int, str, BookFile]]] = []
        for slot, (outcome, meta) in enumerate(zip(outcomes, flat_meta)):
            if isinstance(outcome, InSituError):
                responses.append(None)
                failed.append((slot, meta))
            else:
                responses.append(outcome)
                completed += 1

        recovered = 0
        failovers = 0
        host_fallbacks = 0
        lost: list[str] = []
        if failed:
            fprocs = [
                self.sim.process(
                    self._failover_one(node_index, device, book, command_for),
                    name=f"failover->{book.name}",
                )
                for _, (node_index, device, book) in failed
            ]
            fresults = yield self.sim.all_of(fprocs)
            for (slot, (_, _, book)), proc in zip(failed, fprocs):
                response = fresults[proc]
                if response is None:
                    lost.append(book.name)
                    if self.metrics.enabled:
                        self._m_lost.inc(book=book.name)
                    continue
                responses[slot] = response
                recovered += 1
                if response.device == "host":
                    host_fallbacks += 1
                    if self.metrics.enabled:
                        self._m_host_fallbacks.inc()
                else:
                    failovers += 1
                    if self.metrics.enabled:
                        self._m_failovers.inc(device=response.device)

        self.failovers_total += failovers
        self.host_fallbacks_total += host_fallbacks
        self.lost_total += len(lost)
        self.recovered_total += recovered
        report = JobReport(
            responses=responses,
            wall_seconds=self.sim.now - start,
            dispatched=len(flat_meta),
            completed=completed,
            recovered=recovered,
            lost=tuple(lost),
            retries=sum(node.client.retries for node in self.nodes) - retries_before,
            failovers=failovers,
            host_fallbacks=host_fallbacks,
        )
        assert report.accounted == report.dispatched, "minion accounting must close"
        return report

    def serve_one(self, book: BookFile, command: Command) -> Generator:
        """Serve one request against ``book``'s primary placement.

        The single-request twin of :meth:`run_job`, built for the service
        frontend: primary delivery first, then the book's surviving
        replicas, then a host that holds the data.  Returns
        ``(response, path)`` with ``path`` one of ``"primary"``,
        ``"failover"``, ``"host"`` — or ``(None, "lost")`` when no copy
        survives.  Recovery counters and metrics update exactly as for a
        job-level reroute, so ``health()`` sees served traffic too.
        """
        chain = self._replica_map.get(book.name)
        if not chain:
            raise ValueError(f"book {book.name!r} was never staged on this fleet")
        node_index, device = chain[0]
        client = self.nodes[node_index].client
        try:
            minion = yield from client.send_minion(device, command)
        except InSituError:
            pass
        else:
            return minion.response, "primary"
        response = yield from self._failover_one(
            node_index, device, book, lambda _b: command
        )
        if response is None:
            self.lost_total += 1
            if self.metrics.enabled:
                self._m_lost.inc(book=book.name)
            return None, "lost"
        self.recovered_total += 1
        if response.device == "host":
            self.host_fallbacks_total += 1
            if self.metrics.enabled:
                self._m_host_fallbacks.inc()
            return response, "host"
        self.failovers_total += 1
        if self.metrics.enabled:
            self._m_failovers.inc(device=response.device)
        return response, "failover"

    def _failover_one(
        self,
        failed_node: int,
        failed_device: str,
        book: BookFile,
        command_for: Callable[[BookFile], Command],
    ) -> Generator:
        """Reroute one failed minion: surviving replicas, then the host."""
        for target in self._replica_map.get(book.name, []):
            if target == (failed_node, failed_device):
                continue
            node_index, device = target
            client = self.nodes[node_index].client
            faults = self._ssd(node_index, device).controller.faults
            if faults is not None and faults.crashed:
                continue  # known-dead replica: skip without wire traffic
            if client.breaker_state(device) == CircuitBreaker.OPEN:
                continue  # fenced off: the breaker says don't bother
            try:
                minion = yield from client.send_minion(device, command_for(book))
            except InSituError:
                continue
            return minion.response
        response = yield from self._host_fallback(book, command_for(book))
        return response

    def _host_fallback(self, book: BookFile, command: Command) -> Generator:
        """Execute the command on a host that holds the data, or give up.

        The paper's host-side baseline doubles as the degraded path: when
        no replica survives, a node whose host OS has the input files runs
        the command over the wire the conventional way.
        """
        needed = command.input_files if command.input_files else (book.name,)
        for node in self.nodes:
            os_ = node.host.os
            if os_ is None or any(not os_.fs.exists(f) for f in needed):
                continue
            try:
                if command.script:
                    results = yield from os_.run_script(command.script)
                    status = results[-1][1] if results else None
                else:
                    status, _ = yield from os_.run(command.command_line)
            except Exception:
                continue  # host execution failed; try another node
            if status is None:
                continue
            kind = ResponseStatus.OK if status.code == 0 else ResponseStatus.APP_ERROR
            return Response(
                status=kind,
                exit_code=status.code,
                stdout=status.stdout,
                detail=dict(status.detail),
                device="host",
            )
        return None

    # -- observability --------------------------------------------------------
    def telemetry(self, return_exceptions: bool = False) -> Generator:
        """Status of every device in the fleet, concurrently.

        With ``return_exceptions=True`` unreachable devices report their
        :class:`InSituError` instead of killing the poll.
        """
        procs = [
            self.sim.process(node.client.status_all(return_exceptions=return_exceptions))
            for node in self.nodes
        ]
        results = yield self.sim.all_of(procs)
        merged = {}
        for node_index, proc in enumerate(procs):
            for device, snap in results[proc].items():
                merged[(node_index, device)] = snap
        return merged

    def breakers_open(self) -> tuple[str, ...]:
        """``node<i>/<device>`` tags for every non-closed circuit breaker."""
        return tuple(
            f"node{node_index}/{device}"
            for node_index, node in enumerate(self.nodes)
            for device, state in sorted(node.client.breaker_states().items())
            if state != CircuitBreaker.CLOSED
        )

    def health(self, aggregator: HealthAggregator | None = None) -> Generator:
        """Poll every device and roll the fleet up into one report.

        Telemetry queries travel the ISC wire concurrently (they cost
        simulated time like any admin command); SMART pages are read
        straight off each controller.  Devices that don't answer — crashed,
        mid-recovery — are reported as unreachable rather than failing the
        poll, and fleet-level recovery counters (retries, failovers, lost
        minions, open breakers) are folded in, so degraded operation is
        visible in one place.

        Returns the :class:`FleetHealth` summary.
        """
        aggregator = aggregator if aggregator is not None else HealthAggregator()
        snapshots = yield from self.telemetry(return_exceptions=True)
        for (node_index, device), snap in sorted(snapshots.items()):
            if isinstance(snap, Exception):
                aggregator.observe_unreachable(node_index, device)
                continue
            ssd = self._ssd(node_index, device)
            aggregator.observe_device(
                node_index, device, snap, smart=ssd.controller.smart_log()
            )
        aggregator.observe_recovery(
            retries=sum(node.client.retries for node in self.nodes),
            failovers=self.failovers_total,
            host_fallbacks=self.host_fallbacks_total,
            lost_minions=self.lost_total,
            breakers_open=self.breakers_open(),
        )
        if self.metrics.enabled and "client.minion.round_trip_seconds" in self.metrics:
            aggregator.observe_latency_histogram(
                self.metrics["client.minion.round_trip_seconds"]
            )
        return aggregator.summary()

    def total_minions_served(self) -> int:
        return sum(ssd.agent.minions_served for node in self.nodes for ssd in node.compstors)
