"""Per-cell ID-allocation scopes.

Minion, query, OS-process, and NVMe-command IDs come from module-level
allocators (``repro.proto.entities``, ``repro.isos.process``,
``repro.nvme.commands``) that each dataclass resolves *at call time*
(``default_factory=lambda: next(_counter)``).  In one big simulation that
single stream is fine; with per-device cells it would make IDs depend on
how cells interleave — i.e. on the shard grouping and backend, exactly
what the equivalence suite forbids.

An :class:`IdScope` gives every cell its own counter set and swaps it into
the provider modules around each execution segment, so every ID a cell
allocates is a pure function of that cell's own history.  Counters are
plain objects (not ``itertools.count``) so a scope survives pickling if a
cell ever migrates, and so tests can inspect positions.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["IdScope"]


class _Counter:
    """An ``itertools.count`` clone with an inspectable position."""

    __slots__ = ("value",)

    def __init__(self, start: int):
        self.value = start

    def __iter__(self) -> "_Counter":
        return self

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value


class IdScope:
    """One cell's private minion/query/pid/cid allocation state."""

    __slots__ = ("minions", "queries", "pids", "cids")

    def __init__(self) -> None:
        # Starts mirror the fresh-process values reset_global_ids() restores.
        self.minions = _Counter(1)
        self.queries = _Counter(1)
        self.pids = _Counter(100)
        self.cids = _Counter(1)

    @contextmanager
    def active(self) -> Iterator[None]:
        """Route the global allocators through this scope for the duration."""
        import repro.isos.process as isos_process
        import repro.nvme.commands as nvme_commands
        import repro.proto.entities as proto_entities

        saved = (
            proto_entities._minion_ids,
            proto_entities._query_ids,
            isos_process._pid_counter,
            nvme_commands._cid_counter,
        )
        proto_entities._minion_ids = self.minions
        proto_entities._query_ids = self.queries
        isos_process._pid_counter = self.pids
        nvme_commands._cid_counter = self.cids
        try:
            yield
        finally:
            (
                proto_entities._minion_ids,
                proto_entities._query_ids,
                isos_process._pid_counter,
                nvme_commands._cid_counter,
            ) = saved
