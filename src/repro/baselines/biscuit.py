"""Biscuit-style shared-core in-storage computing.

Gu et al.'s Biscuit (ISCA'16) runs user tasks on ARM Cortex-R7 cores inside
the SSD controller — cores that also execute firmware.  The paper's Table I
criticism: "this approach results in a potential degradation impact on the
performance of the storage device".

:class:`BiscuitSSD` reproduces the architecture: a dual-R7-class cluster
serves *both* NVMe command processing (``firmware_cluster``) and ISC tasks
(the agent's OS runs on the same cluster).  Under concurrent compute, read
latency climbs — measured by the isolation ablation bench against CompStor,
whose dedicated ISPS shows no such cliff.
"""

from __future__ import annotations

from repro.apps import default_registry
from repro.cpu.core import CpuCluster, CpuSpec
from repro.ecc import EccConfig
from repro.flash import FlashGeometry
from repro.ftl import FtlConfig
from repro.isos.loader import ExecutableRegistry
from repro.isps import InSituProcessingSubsystem, IspsAgent
from repro.pcie.switch import PciePort
from repro.power import PowerMeter
from repro.sim import Simulator, Tracer
from repro.ssd.conventional import ConventionalSSD, small_geometry

__all__ = ["ARM_R7_DUAL", "BiscuitSSD"]

#: Controller-class real-time cores (Biscuit's hardware).  Narrow in-order
#: pipeline, no L2 to speak of, tuned for firmware not data processing.
ARM_R7_DUAL = CpuSpec(
    name="ARM Cortex-R7 dual @ 1.0 GHz (shared with firmware)",
    cores=2,
    freq_hz=1.0e9,
    ipc=0.9,
    p_active_core=0.25,
    p_idle=0.3,
    l1_kib=32,
    l2_kib=128,
    dram_gib=2,
)


class BiscuitSSD(ConventionalSSD):
    """ISC SSD whose compute cores are shared with the storage firmware."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "biscuit",
        geometry: FlashGeometry | None = None,
        port: PciePort | None = None,
        meter: PowerMeter | None = None,
        registry: ExecutableRegistry | None = None,
        store_data: bool = True,
        ftl_config: FtlConfig | None = None,
        ecc_config: EccConfig | None = None,
        tracer: Tracer | None = None,
        firmware_cycles: float = 15_000.0,
    ):
        # Build the shared cluster first so the controller can charge
        # firmware work to it.
        sink = meter.sink if meter is not None else None
        shared_cluster = CpuCluster(sim, ARM_R7_DUAL, name=f"{name}.cores", energy_sink=sink)
        super().__init__(
            sim,
            name=name,
            geometry=geometry or small_geometry(),
            port=port,
            meter=meter,
            store_data=store_data,
            ftl_config=ftl_config,
            ecc_config=ecc_config,
            tracer=tracer,
        )
        # rewire the front-end onto the shared cores
        self.controller.firmware_cluster = shared_cluster
        self.controller.firmware_cycles = firmware_cycles
        self.shared_cluster = shared_cluster
        # the ISC tasks run on the SAME cluster as the firmware
        self.isps = InSituProcessingSubsystem(
            sim,
            self.ftl,
            registry=(registry or default_registry()),
            name=f"{name}.isc",
            energy_sink=sink,
            tracer=tracer,
            cluster=shared_cluster,
        )
        self.agent = IspsAgent(sim, self.isps, device_name=name, tracer=tracer)
        self.controller.register_isc_handler(self.agent.handle)
        if meter is not None:
            meter.register_static(f"{name}.cores.static", ARM_R7_DUAL.p_idle)

    @property
    def fs(self):
        return self.isps.fs

    def describe(self) -> dict:
        info = super().describe()
        info["isc"] = True
        info["shared_cores"] = True
        return info
