"""ISPS hardware/OS assembly.

Table II: 64-bit quad-core ARM Cortex-A53 @ 1.5 GHz, 32 KB L1, 1 MB L2,
8 GB DDR4.  The subsystem owns a :class:`~repro.cpu.core.CpuCluster`, an
:class:`~repro.isos.os.EmbeddedOS` and a
:class:`~repro.isos.blockdev.FlashAccessDevice` with a *direct* path to the
drive's own FTL — no PCIe, no NVMe queueing.
"""

from __future__ import annotations

from typing import Callable

from repro.analysis.calibration import ARM_ISA
from repro.cpu.core import CpuCluster, CpuSpec
from repro.cpu.models import ARM_A53_QUAD, resolve_cpu
from repro.ftl import TranslationBackend
from repro.isos.blockdev import FlashAccessDevice
from repro.isos.filesystem import ExtentFileSystem
from repro.isos.loader import ExecutableRegistry
from repro.isos.os import EmbeddedOS
from repro.sim import Simulator, Tracer

__all__ = ["InSituProcessingSubsystem"]


class InSituProcessingSubsystem:
    """Dedicated in-storage computation hardware + embedded Linux."""

    def __init__(
        self,
        sim: Simulator,
        ftl: TranslationBackend,
        registry: ExecutableRegistry,
        spec: CpuSpec | str = ARM_A53_QUAD,
        name: str = "isps",
        energy_sink: Callable[[str, float], None] | None = None,
        tracer: Tracer | None = None,
        fs: ExtentFileSystem | None = None,
        cluster: CpuCluster | None = None,
    ):
        self.sim = sim
        self.name = name
        # ``spec`` accepts a registry name ("arm-a53-quad") so scenario
        # configs can address CPU models declaratively
        self.spec = cluster.spec if cluster is not None else resolve_cpu(spec)
        self.cluster = cluster if cluster is not None else CpuCluster(
            sim, self.spec, name=f"{name}.cpu", energy_sink=energy_sink
        )
        self.device = FlashAccessDevice(sim, ftl)
        self.fs = fs if fs is not None else ExtentFileSystem(sim, self.device)
        self.os = EmbeddedOS(
            sim,
            self.cluster,
            self.fs,
            registry,
            isa=ARM_ISA,
            name=f"{name}.linux",
            tracer=tracer,
        )

    def describe(self) -> dict:
        """Table II in data form."""
        return {
            "processor": self.spec.name,
            "cores": self.spec.cores,
            "freq_hz": self.spec.freq_hz,
            "l1_kib": self.spec.l1_kib,
            "l2_kib": self.spec.l2_kib,
            "dram_gib": self.spec.dram_gib,
        }
