"""Unit/integration tests for the NVMe front-end."""

import pytest

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer
from repro.nvme import IscPayload, NvmeCommand, NvmeController, Opcode, Status
from repro.pcie import PcieFabric
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=6, pages_per_block=8,
    page_size=2048,
)


def make_controller(sim=None, with_port=False, **ctrl_kw):
    sim = sim or Simulator()
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(sim, flash, ecc)
    port = None
    if with_port:
        fabric = PcieFabric(sim, endpoints=1)
        port = fabric.ports[0]
    ctrl = NvmeController(sim, ftl, port=port, **ctrl_kw)
    return sim, ctrl


def call(sim, ctrl, command, queue=0):
    return sim.run(sim.process(ctrl.queue(queue).call(command)))


def test_write_then_read_roundtrip():
    sim, ctrl = make_controller()
    w = call(sim, ctrl, NvmeCommand(opcode=Opcode.WRITE, slba=3, data=b"nvme-data"))
    assert w.ok
    r = call(sim, ctrl, NvmeCommand(opcode=Opcode.READ, slba=3))
    assert r.ok
    assert r.result == [b"nvme-data"]


def test_multi_page_write_splits_data():
    sim, ctrl = make_controller()
    page = GEO.page_size
    data = b"A" * page + b"B" * page
    call(sim, ctrl, NvmeCommand(opcode=Opcode.WRITE, slba=0, nlb=2, data=data))
    r = call(sim, ctrl, NvmeCommand(opcode=Opcode.READ, slba=0, nlb=2))
    assert r.result == [b"A" * page, b"B" * page]


def test_read_out_of_range_status():
    sim, ctrl = make_controller()
    bad = ctrl.ftl.logical_pages
    r = call(sim, ctrl, NvmeCommand(opcode=Opcode.READ, slba=bad))
    assert r.status == Status.LBA_OUT_OF_RANGE


def test_trim_deallocates():
    sim, ctrl = make_controller()
    call(sim, ctrl, NvmeCommand(opcode=Opcode.WRITE, slba=0, data=b"x"))
    call(sim, ctrl, NvmeCommand(opcode=Opcode.FLUSH))
    t = call(sim, ctrl, NvmeCommand(opcode=Opcode.DSM_TRIM, lbas=[0]))
    assert t.ok
    r = call(sim, ctrl, NvmeCommand(opcode=Opcode.READ, slba=0))
    assert r.result == [None]


def test_trim_out_of_range_rejected():
    sim, ctrl = make_controller()
    t = call(sim, ctrl, NvmeCommand(opcode=Opcode.DSM_TRIM, lbas=[10**9]))
    assert t.status == Status.LBA_OUT_OF_RANGE


def test_flush_is_write_barrier():
    sim, ctrl = make_controller()
    call(sim, ctrl, NvmeCommand(opcode=Opcode.WRITE, slba=1, data=b"durable"))
    f = call(sim, ctrl, NvmeCommand(opcode=Opcode.FLUSH))
    assert f.ok
    assert len(ctrl.ftl.write_buffer) == 0


def test_identify_reports_capacity_and_isc():
    sim, ctrl = make_controller()
    ident = call(sim, ctrl, NvmeCommand(opcode=Opcode.IDENTIFY)).result
    assert ident["logical_pages"] == ctrl.ftl.logical_pages
    assert ident["isc_capable"] is False


def test_vendor_command_without_handler_rejected():
    sim, ctrl = make_controller()
    c = call(sim, ctrl, NvmeCommand(opcode=Opcode.ISC_MINION, payload=IscPayload(body="job")))
    assert c.status == Status.INVALID_OPCODE


def test_vendor_command_dispatches_to_handler():
    sim, ctrl = make_controller()
    seen = []

    def handler(opcode, body):
        seen.append((opcode, body))
        yield sim.timeout(1e-3)
        return {"answer": body.upper()}

    ctrl.register_isc_handler(handler)
    c = call(sim, ctrl, NvmeCommand(opcode=Opcode.ISC_MINION, payload=IscPayload(body="job")))
    assert c.ok
    assert c.result == {"answer": "JOB"}
    assert seen == [(Opcode.ISC_MINION, "job")]
    assert ctrl.isc_commands == 1


def test_handler_exception_becomes_isc_failure():
    sim, ctrl = make_controller()

    def handler(opcode, body):
        yield sim.timeout(1e-6)
        raise RuntimeError("agent crashed")

    ctrl.register_isc_handler(handler)
    c = call(sim, ctrl, NvmeCommand(opcode=Opcode.ISC_QUERY, payload=IscPayload(body=None)))
    assert c.status == Status.ISC_FAILURE


def test_double_handler_registration_rejected():
    _, ctrl = make_controller()
    ctrl.register_isc_handler(lambda o, b: iter(()))
    with pytest.raises(RuntimeError):
        ctrl.register_isc_handler(lambda o, b: iter(()))


def test_vendor_payload_required():
    with pytest.raises(ValueError):
        NvmeCommand(opcode=Opcode.ISC_MINION)


def test_completion_latency_recorded():
    sim, ctrl = make_controller()
    c = call(sim, ctrl, NvmeCommand(opcode=Opcode.WRITE, slba=0, data=b"t"))
    assert c.latency > 0
    assert c.completed_at == sim.now


def test_concurrent_commands_respect_queue_depth():
    sim, ctrl = make_controller(queue_depth=2, workers_per_queue=1)
    results = []

    def client(i):
        comp = yield from ctrl.queue(0).call(
            NvmeCommand(opcode=Opcode.WRITE, slba=i, data=b"x")
        )
        results.append((i, comp.ok))

    for i in range(8):
        sim.process(client(i))
    sim.run()
    assert len(results) == 8
    assert all(ok for _, ok in results)


def test_dma_over_pcie_port_adds_transfer_time():
    sim_a, ctrl_a = make_controller(with_port=False)
    a = call(sim_a, ctrl_a, NvmeCommand(opcode=Opcode.READ, slba=0))

    sim_b, ctrl_b = make_controller(with_port=True)
    b = call(sim_b, ctrl_b, NvmeCommand(opcode=Opcode.READ, slba=0))
    assert b.latency > a.latency  # port DMA costs time


def test_raise_for_status():
    sim, ctrl = make_controller()
    from repro.nvme import NvmeError

    c = call(sim, ctrl, NvmeCommand(opcode=Opcode.READ, slba=10**9))
    with pytest.raises(NvmeError):
        c.raise_for_status()


def test_nlb_validation():
    with pytest.raises(ValueError):
        NvmeCommand(opcode=Opcode.READ, nlb=0)
    with pytest.raises(ValueError):
        NvmeCommand(opcode=Opcode.READ, slba=-1)


def test_get_log_page_smart():
    sim, ctrl = make_controller()
    call(sim, ctrl, NvmeCommand(opcode=Opcode.WRITE, slba=0, data=b"wear me"))
    call(sim, ctrl, NvmeCommand(opcode=Opcode.FLUSH))
    call(sim, ctrl, NvmeCommand(opcode=Opcode.READ, slba=0))
    smart = call(sim, ctrl, NvmeCommand(opcode=Opcode.GET_LOG_PAGE)).result
    assert smart["host_writes"] == 1
    assert smart["host_reads"] == 1
    assert smart["media_errors"] == 0
    assert smart["bad_blocks"] == 0
    assert 0 <= smart["percentage_used"] <= 100
    assert smart["available_spare"] > 0
    assert smart["latency"]["WRITE"]["count"] == 1
    assert smart["latency"]["READ"]["count"] == 1


def test_latency_stats_accumulate():
    sim, ctrl = make_controller()
    for i in range(5):
        call(sim, ctrl, NvmeCommand(opcode=Opcode.WRITE, slba=i, data=b"x"))
    stats = ctrl.latency_stats()
    assert stats["WRITE"]["count"] == 5
    assert 0 < stats["WRITE"]["mean"] <= stats["WRITE"]["max"]
