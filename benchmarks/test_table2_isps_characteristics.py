"""Table II — ISPS characteristics.

64-bit quad-core ARM Cortex-A53 @ 1.5 GHz, 32 KB I/D caches, 1 MB L2,
8 GB DDR4 @ 2133 MT/s.  Verified against the assembled device, not just
the constant table.
"""

from repro.analysis.experiments import format_series_table
from repro.cluster import StorageNode


def test_table2_isps_characteristics(benchmark):
    def build():
        node = StorageNode.build(devices=1, device_capacity=16 * 1024 * 1024)
        return node.compstors[0].isps.describe()

    info = benchmark.pedantic(build, rounds=1, iterations=1)

    print("\n" + format_series_table(
        "Table II — ISPS characteristics",
        ["property", "value"],
        [[k, str(v)] for k, v in info.items()],
    ))

    assert "Cortex-A53" in info["processor"]
    assert info["cores"] == 4
    assert info["freq_hz"] == 1.5e9
    assert info["l1_kib"] == 32
    assert info["l2_kib"] == 1024
    assert info["dram_gib"] == 8
