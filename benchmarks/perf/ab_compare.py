#!/usr/bin/env python
"""Interleaved A/B wall-clock measurement of the n8 scenario.

Measures whichever source tree ``PYTHONPATH`` points at and prints one
line: ``<label> <best wall ms>``.  Run it alternately against two trees
(old, new, old, new ...) so both see the same host conditions; see
``benchmarks/perf/README.md`` for the full protocol.

The n8 scenario is inlined (rather than imported from
``repro.analysis.perf``) so the script also runs against baseline trees
that predate the perf harness — it only needs ``StorageNode``, ``Command``
and ``BookCorpus``, which every revision has.

Usage::

    PYTHONPATH=/tmp/old/src python benchmarks/perf/ab_compare.py OLD [repeats]
    PYTHONPATH=src          python benchmarks/perf/ab_compare.py NEW [repeats]
"""

from __future__ import annotations

import sys
import time  # wall-clock on purpose: this measures the host, not the model

from repro.cluster.node import StorageNode
from repro.proto.entities import Command
from repro.workloads import BookCorpus, CorpusSpec

DEVICES = 8
FILES = 48  # 6 per device, matching the pinned n8 BenchScenario


def build():
    books = BookCorpus(
        CorpusSpec(files=FILES, mean_file_bytes=64 * 1024, size_spread=0.2, seed=1234)
    ).generate()
    node = StorageNode.build(
        devices=DEVICES, seed=1234, device_capacity=48 * 1024 * 1024
    )
    node.sim.run(node.sim.process(node.stage_corpus(books, compressed=False)))
    return node, books


def job(node, books):
    placement = node.device_books(books)
    gz = [
        (device, Command(command_line=f"gzip {book.name}"))
        for device, part in placement.items()
        for book in part
    ]
    gr = [
        (device, Command(command_line=f"grep xylophone {book.name}"))
        for device, part in placement.items()
        for book in part
    ]
    first = yield from node.client.gather(gz)
    second = yield from node.client.gather(gr)
    return first + second


def main(argv: list[str]) -> int:
    label = argv[0] if argv else "RUN"
    repeats = int(argv[1]) if len(argv) > 1 else 3
    best = float("inf")
    for _ in range(repeats):
        node, books = build()
        sim = node.sim
        t0 = time.perf_counter()
        responses = sim.run(sim.process(job(node, books)))
        wall = time.perf_counter() - t0
        assert len(responses) == FILES * 2
        best = min(best, wall)
    print(f"{label} {best * 1e3:.1f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
