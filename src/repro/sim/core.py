"""Core event loop: :class:`Simulator`, :class:`Event`, :class:`Process`.

Time is a float in **seconds**.  Sub-nanosecond resolution is plenty for the
device latencies modelled here (flash reads are ~60 us, PCIe transfers are
~us-scale); determinism comes from the stable ``(time, priority, seq)`` heap
ordering, not from integer time.
"""

from __future__ import annotations

import heapq
import itertools
import zlib
from collections.abc import Callable, Generator, Iterable
from typing import Any

import numpy as np

# Pre-bound heap functions: the scheduler calls these once per event, so
# skipping the module-attribute lookup is measurable at fleet scale.
_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]

#: Priority for ordinary events popped at the same timestamp.
NORMAL = 1
#: Priority used when resuming a process at the current time (runs first so
#: that chains of zero-delay events settle before time advances).
URGENT = 0


class SimulationError(Exception):
    """Raised for kernel misuse (double-trigger, run-without-work, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries whatever the interrupting party supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Events move through three states: *pending* (created), *triggered*
    (scheduled with a value, waiting in the queue) and *processed* (callbacks
    ran).  Waiting is expressed by a process ``yield``-ing the event.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_ok",
        "_triggered",
        "_processed",
        "_defused",
        "name",
    )

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self._defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError(f"value of {self!r} not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"value of {self!r} not yet available")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule(self, 0.0, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is raised inside every waiting process.  Failing an
        event nobody waits on raises at :meth:`Simulator.run` time so model
        bugs cannot vanish silently.
        """
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, 0.0, NORMAL)
        return self

    def _run_callbacks(self) -> None:
        # Hot path: one list swap, then direct dispatch.  The common case is
        # a single waiter, which the plain for-loop already handles without
        # extra allocation; the swap-to-None is what marks "processed" for
        # late waiters (see Process._resume).
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        for cb in callbacks:
            cb(self)
        if not self._ok and not self._defused:
            raise self._value

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay.

    ``daemon=True`` marks a housekeeping timer (background scrubbers,
    telemetry pollers): like daemon threads, daemon events never keep the
    simulation alive — an unbounded :meth:`Simulator.run` returns once only
    daemon events remain.
    """

    __slots__ = ("delay",)

    def __init__(
        self, sim: "Simulator", delay: float, value: Any = None, daemon: bool = False
    ):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        # Flattened Event.__init__: timeouts are the single most-created
        # object in any run (every latency model yields one), so the slots
        # are set directly and the name is static — the delay is readable
        # from the ``delay`` slot and shown by __repr__.
        self.sim = sim
        self.name = "timeout"
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self.delay = delay
        sim._schedule(self, delay, NORMAL, daemon)

    def __repr__(self) -> str:
        return f"<Timeout({self.delay:g}) at {id(self):#x}>"


class Initialize(Event):
    """Internal: kicks a newly created process at the current time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        self.sim = sim
        self.name = "init"
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        sim._schedule(self, 0.0, URGENT)


class Process(Event):
    """A running coroutine.  Also an event: fires when the coroutine ends.

    The wrapped generator yields events; the process suspends until the
    yielded event triggers, then resumes with the event's value (or the
    event's exception raised at the yield point).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        # Flattened Event.__init__: processes are created per page in the
        # streaming-app readahead loop.
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self._defused = False
        self._generator = generator
        self._target: Event | None = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self._triggered:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Deliver via a failed event so ordering stays queue-driven.
        hit = Event(self.sim, name="interrupt")
        hit._defused = True
        hit.callbacks = [self._resume_interrupt]
        hit._triggered = True
        hit._ok = False
        hit._value = Interrupt(cause)
        self.sim._schedule(hit, delay=0.0, priority=URGENT)

    # -- resumption -----------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if self._triggered:  # terminated between scheduling and delivery
            return
        # Unhook from whatever we were waiting on; the wait stays pending
        # and the process decides whether to re-wait.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._resume(event)

    def _resume(self, event: Event) -> None:
        # The inner interpreter loop: every yield in every model process
        # passes through here, so locals are bound once up front.
        sim = self.sim
        send = self._generator.send
        throw = self._generator.throw
        sim._active = self
        self._target = None
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = throw(event._value)
            except StopIteration as stop:
                self._triggered = True
                self._ok = True
                self._value = stop.value
                sim._schedule(self, 0.0, NORMAL)
                break
            except BaseException as exc:
                self._triggered = True
                self._ok = False
                self._value = exc
                sim._schedule(self, 0.0, NORMAL)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(sim, name="bad-yield")
                event._triggered = True
                event._ok = False
                event._value = exc
                continue
            if next_event.sim is not sim:
                raise SimulationError("cannot wait on an event from another simulator")
            callbacks = next_event.callbacks
            if callbacks is None:
                # Already processed: resume immediately with its outcome
                # (loop top sends the value or throws the exception).
                event = next_event
                continue
            callbacks.append(self._resume)
            self._target = next_event
            break
        sim._active = None


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` composite waits."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str = "condition"):
        super().__init__(sim, name=name)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("all events must belong to one simulator")
        self._pending = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                self._pending += 1
                ev.callbacks.append(self._check)
        if not self._triggered and self._pending == 0:
            # all were already processed but condition unmet → AnyOf with
            # zero matches cannot happen (any processed event matches);
            # AllOf handles it in _check.
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev._triggered and ev._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _fail_from(self, event: Event) -> None:
        event._defused = True
        if not self._triggered:
            self.fail(event._value)


class AllOf(Condition):
    """Fires when every constituent event has fired (or one fails)."""

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = tuple(events)
        self._remaining = len(events)
        super().__init__(sim, events, name="all_of")

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            self._fail_from(event)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as any constituent event fires (or fails)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            self._fail_from(event)
            return
        self.succeed(self._collect())


class Simulator:
    """The event loop.

    Parameters
    ----------
    seed:
        Master seed for all model randomness.  Component code obtains
        independent deterministic streams via :meth:`rng`.
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue: list[tuple[float, int, int, bool, Event]] = []
        self._seq = itertools.count()
        self._active: Process | None = None
        self._seed = seed
        self._rngs: dict[str, np.random.Generator] = {}
        self._live = 0  # scheduled non-daemon events
        #: Total events processed since construction (perf accounting).
        self.events_processed = 0

    # -- time -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        return self._active

    def rng(self, stream: str) -> np.random.Generator:
        """A named, deterministic random stream (stable across runs).

        The stream name is folded into the spawn key with :func:`zlib.crc32`
        — a *stable* hash.  Python's builtin ``hash(str)`` is salted per
        process (PYTHONHASHSEED), which would silently give every process
        its own random streams and break cross-run reproducibility.
        """
        gen = self._rngs.get(stream)
        if gen is None:
            root = np.random.SeedSequence(self._seed)
            child = np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=(zlib.crc32(stream.encode()) & 0x7FFFFFFF,),
            )
            gen = np.random.default_rng(child)
            self._rngs[stream] = gen
        return gen

    # -- event construction ----------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, daemon: bool = False) -> Timeout:
        return Timeout(self, delay, value, daemon=daemon)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(
        self, event: Event, delay: float, priority: int, daemon: bool = False
    ) -> None:
        _heappush(
            self._queue, (self._now + delay, priority, next(self._seq), daemon, event)
        )
        if not daemon:
            self._live += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def live_events(self) -> int:
        """Scheduled non-daemon events (what keeps :meth:`run` going)."""
        return self._live

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, daemon, event = _heappop(self._queue)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        if not daemon:
            self._live -= 1
        self._now = when
        self.events_processed += 1
        event._run_callbacks()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until live work drains, ``until`` seconds pass, or an event
        fires.

        Daemon events (background housekeeping timers) do not keep an
        unbounded run alive, but *are* processed inside a bounded
        ``run(until=<time>)`` window.  When ``until`` is an :class:`Event`,
        returns that event's value.
        """
        # The three dispatch loops below are step() inlined: pop, advance
        # time, run callbacks.  The per-event method call and the redundant
        # past-event guard (unreachable via _schedule, which never produces
        # a time below now) are what the inlining removes.  step() remains
        # for external single-step callers.
        queue = self._queue
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is None:
                return stop._value if stop._ok else self._raise(stop)
            flag: list[bool] = []
            stop.callbacks.append(lambda ev: flag.append(True))
            while queue and self._live > 0 and not flag:
                when, _prio, _seq, daemon, event = _heappop(queue)
                if not daemon:
                    self._live -= 1
                self._now = when
                self.events_processed += 1
                event._run_callbacks()
            if not flag:
                raise SimulationError(
                    f"live schedule drained before {stop!r} fired"
                )
            return stop._value if stop._ok else self._raise(stop)

        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        if horizon == float("inf"):
            while queue and self._live > 0:
                when, _prio, _seq, daemon, event = _heappop(queue)
                if not daemon:
                    self._live -= 1
                self._now = when
                self.events_processed += 1
                event._run_callbacks()
        else:
            while queue and queue[0][0] <= horizon:
                when, _prio, _seq, daemon, event = _heappop(queue)
                if not daemon:
                    self._live -= 1
                self._now = when
                self.events_processed += 1
                event._run_callbacks()
            self._now = horizon
        return None

    def run_window(self, horizon: float, stop_when_idle: bool = False) -> int:
        """Drain every event strictly before ``horizon``; return the count.

        The windowed twin of ``run(until=...)`` built for shard event loops
        (:mod:`repro.sim.shard`): the horizon is *exclusive* and the clock is
        **not** advanced to it — ``now`` stays at the last processed event, so
        a later window (or a cross-shard delivery landing inside the gap) can
        still schedule work between ``now`` and ``horizon``.  With
        ``stop_when_idle`` the drain also stops once no non-daemon events
        remain (the windowed equivalent of an unbounded ``run()``), leaving
        background housekeeping timers pending rather than spinning on them.
        """
        if horizon < self._now:
            raise ValueError(f"horizon={horizon} is in the past (now={self._now})")
        queue = self._queue
        count = 0
        while queue and queue[0][0] < horizon:
            if stop_when_idle and self._live == 0:
                break
            when, _prio, _seq, daemon, event = _heappop(queue)
            if not daemon:
                self._live -= 1
            self._now = when
            self.events_processed += 1
            event._run_callbacks()
            count += 1
        return count

    @staticmethod
    def _raise(event: Event) -> Any:
        raise event._value
