"""Object-oriented storage layer (extension).

The paper (Section II) discusses Seagate Kinetic drives — object stores
accessed by key rather than block address — and argues in-situ processing
is *orthogonal*: "a storage could be either in-situ processing or
object-oriented or both at the same time".  This package demonstrates the
"both" case: a key-value object interface layered over the in-storage
filesystem, plus an in-situ object-scan executable, so clients can GET/PUT
objects *and* push computation to them.
"""

from repro.objstore.store import ObjectMeta, ObjectStore, ObjectStoreError
from repro.objstore.apps import ObjScanApp

__all__ = ["ObjScanApp", "ObjectMeta", "ObjectStore", "ObjectStoreError"]
