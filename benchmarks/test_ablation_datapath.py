"""Ablation — the direct ISPS->flash data path vs the host's NVMe path.

DESIGN.md decision under test: the flash access device driver gives the
ISPS a lower-cost path to the media than the host's (NVMe command + queue +
PCIe DMA) path.  We scan the same file from both sides with the *same*
cycle cost disabled (cat, ~zero compute) so the measured gap is pure data
path.
"""

from repro.analysis.experiments import format_series_table, throughput_mb_s
from repro.cluster import StorageNode

FILE_BYTES = 4 * 1024 * 1024


def test_ablation_datapath(benchmark):
    def experiment():
        node = StorageNode.build(
            devices=1, device_capacity=32 * 1024 * 1024, with_baseline_ssd=True,
            store_data=False,
        )
        sim = node.sim
        ssd = node.compstors[0]
        host_fs = node.host.require_os().fs

        def stage():
            yield from ssd.fs.write_file("payload.bin", None, size=FILE_BYTES)
            yield from ssd.ftl.flush()
            yield from host_fs.write_file("payload.bin", None, size=FILE_BYTES)
            yield from node.baseline_ssd.ftl.flush()

        sim.run(sim.process(stage()))

        def in_situ():
            start = sim.now
            response = yield from node.client.run("compstor0", "sha1sum payload.bin")
            assert response.ok or response.exit_code == 0
            return sim.now - start

        device_seconds = sim.run(sim.process(in_situ()))

        def host_side():
            start = sim.now
            status, _ = yield from node.host.require_os().run("sha1sum payload.bin")
            assert status.code == 0
            return sim.now - start

        host_seconds = sim.run(sim.process(host_side()))
        return device_seconds, host_seconds

    device_seconds, host_seconds = benchmark.pedantic(experiment, rounds=1, iterations=1)

    device_tp = throughput_mb_s(FILE_BYTES, device_seconds)
    host_tp = throughput_mb_s(FILE_BYTES, host_seconds)
    print("\n" + format_series_table(
        "Ablation — same scan, two data paths",
        ["path", "seconds", "MB/s"],
        [
            ["ISPS direct (flash access driver)", device_seconds, device_tp],
            ["host (NVMe + PCIe)", host_seconds, host_tp],
        ],
    ))

    # Per-byte data-path cost must favour the in-situ side even though the
    # host CPU is faster: sha1 at 9 cpb on Xeon vs 28 cpb on A53 leaves the
    # scan IO-dominated, so the device's cheaper path shows through in
    # efficiency: compare data-path overhead = time - pure-compute time.
    from repro.analysis.calibration import ARM_ISA, XEON_ISA, cycles_for
    from repro.cpu import ARM_A53_QUAD, XEON_E5_2620_V4

    device_compute = cycles_for("sha1sum", ARM_ISA, FILE_BYTES) / ARM_A53_QUAD.freq_hz
    host_compute = cycles_for("sha1sum", XEON_ISA, FILE_BYTES) / XEON_E5_2620_V4.freq_hz
    device_path = device_seconds - device_compute
    host_path = host_seconds - host_compute
    print(f"data-path overhead: ISPS {device_path * 1e3:.2f} ms, "
          f"host {host_path * 1e3:.2f} ms")
    assert device_path < host_path
