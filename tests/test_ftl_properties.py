"""Property-based tests: the FTL against a dict oracle.

Hypothesis drives random sequences of write/read/trim/flush against the
FTL; a plain dict models the expected logical contents.  After every
sequence the FTL must agree with the oracle and its internal invariants
must hold — regardless of how much GC and scrubbing happened in between.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer, FtlConfig
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=1, planes_per_die=1, blocks_per_plane=6, pages_per_block=4,
    page_size=512,
)
LOGICAL = int(GEO.pages * (1 - 0.34))  # matches op_ratio below


def make_ftl():
    sim = Simulator(seed=1)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9))
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=512)))
    ftl = FlashTranslationLayer(
        sim, flash, ecc,
        config=FtlConfig(op_ratio=0.34, write_buffer_pages=4,
                         gc_low_watermark=1, gc_high_watermark=2),
    )
    return sim, ftl


ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, LOGICAL - 1), st.binary(min_size=1, max_size=16)),
        st.tuples(st.just("read"), st.integers(0, LOGICAL - 1), st.just(b"")),
        st.tuples(st.just("trim"), st.integers(0, LOGICAL - 1), st.just(b"")),
        st.tuples(st.just("flush"), st.just(0), st.just(b"")),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_ftl_agrees_with_dict_oracle(ops):
    sim, ftl = make_ftl()
    oracle: dict[int, bytes] = {}
    mismatches: list[tuple] = []

    def driver():
        for op, lpn, payload in ops:
            if op == "write":
                yield from ftl.write(lpn, payload)
                oracle[lpn] = payload
            elif op == "read":
                data = yield from ftl.read(lpn)
                expected = oracle.get(lpn)
                if data != expected:
                    mismatches.append((lpn, data, expected))
            elif op == "trim":
                yield from ftl.trim([lpn])
                oracle.pop(lpn, None)
            else:
                yield from ftl.flush()
        yield from ftl.flush()
        # final readback of the whole logical space
        for lpn in range(LOGICAL):
            data = yield from ftl.read(lpn)
            expected = oracle.get(lpn)
            if data != expected:
                mismatches.append((lpn, data, expected))

    sim.run(sim.process(driver()))
    assert mismatches == []
    ftl.page_map.check_invariants()
    assert ftl.page_map.mapped_logical_pages() == len(oracle)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    lpns=st.lists(st.integers(0, LOGICAL - 1), min_size=4, max_size=24),
    rounds=st.integers(1, 4),
)
def test_ftl_overwrite_churn_preserves_last_write(lpns, rounds):
    """Repeated overwrites of arbitrary pages always read back the latest
    value, and write amplification stays finite and sane."""
    sim, ftl = make_ftl()
    latest: dict[int, bytes] = {}

    def driver():
        for r in range(rounds):
            for i, lpn in enumerate(lpns):
                payload = f"r{r}i{i}".encode()
                yield from ftl.write(lpn, payload)
                latest[lpn] = payload
        yield from ftl.flush()
        out = {}
        for lpn in set(lpns):
            out[lpn] = yield from ftl.read(lpn)
        return out

    out = sim.run(sim.process(driver()))
    assert out == latest
    ftl.page_map.check_invariants()
    wa = ftl.write_amplification()
    assert wa == 0.0 or 1.0 <= wa < 4.0


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_concurrent_writers_agree_with_oracle(data):
    """Parallel writers to disjoint pages: all values land."""
    sim, ftl = make_ftl()
    lpns = data.draw(
        st.lists(st.integers(0, LOGICAL - 1), min_size=2, max_size=10, unique=True)
    )

    def writer(lpn, payload):
        yield from ftl.write(lpn, payload)

    def driver():
        procs = [
            sim.process(writer(lpn, f"v{lpn}".encode())) for lpn in lpns
        ]
        yield sim.all_of(procs)
        yield from ftl.flush()
        out = {}
        for lpn in lpns:
            out[lpn] = yield from ftl.read(lpn)
        return out

    out = sim.run(sim.process(driver()))
    assert out == {lpn: f"v{lpn}".encode() for lpn in lpns}
    ftl.page_map.check_invariants()
