"""Submission/completion queue pairs.

A :class:`QueuePair` couples a bounded submission queue with an unbounded
completion queue.  ``submit`` enqueues (blocking when the SQ is full —
doorbell back-pressure) and ``wait`` blocks until the matching completion
arrives.  ``call`` is the common submit-and-wait helper.
"""

from __future__ import annotations

from typing import Generator

from repro.nvme.commands import NvmeCommand, NvmeCompletion
from repro.sim import Simulator, Store

__all__ = ["QueuePair"]


class QueuePair:
    """One SQ/CQ pair."""

    def __init__(self, sim: Simulator, qid: int = 0, depth: int = 64, name: str = "qp"):
        if depth < 1:
            raise ValueError("queue depth must be >= 1")
        self.sim = sim
        self.qid = qid
        self.depth = depth
        self.name = name
        self.sq: Store = Store(sim, capacity=depth, name=f"{name}{qid}.sq")
        self.cq: Store = Store(sim, name=f"{name}{qid}.cq")
        self.submitted = 0
        self.completed = 0

    def submit(self, command: NvmeCommand) -> Generator:
        """Ring the doorbell; blocks while the SQ is full."""
        yield self.sq.put((self.sim.now, command))
        self.submitted += 1
        return None

    def fetch(self) -> Generator:
        """Controller side: next ``(submit_time, command)``."""
        item = yield self.sq.get()
        return item

    def post(self, completion: NvmeCompletion) -> Generator:
        """Controller side: deliver a completion."""
        yield self.cq.put(completion)
        self.completed += 1
        return None

    def wait(self, cid: int) -> Generator:
        """Host side: block until the completion for ``cid`` arrives."""
        completion = yield self.cq.get(filter=lambda c: c.cid == cid)
        return completion

    def call(self, command: NvmeCommand) -> Generator:
        """Submit and wait; returns the :class:`NvmeCompletion`."""
        yield from self.submit(command)
        completion = yield from self.wait(command.cid)
        return completion

    @property
    def outstanding(self) -> int:
        return self.submitted - self.completed
