"""Multi-tenant service frontend: the fleet as a storage cloud.

The paper's closing argument is a datacenter of CompStor nodes serving
"thousands of concurrent minions"; this package puts the missing *users*
in front of that fleet.  A :class:`ServiceFrontend` runs the full
admission -> schedule -> dispatch -> SLO pipeline inside one simulation:

- :mod:`repro.service.tokens` — per-tenant token buckets with full-bucket
  eviction, so millions of distinct tenant IDs cost state proportional to
  the *active* set, not the population;
- :mod:`repro.service.scheduler` — virtual-time weighted fair queuing
  across priority classes, with deterministic tie-breaking;
- :mod:`repro.service.traffic` — seeded open-loop arrival streams
  (Poisson, diurnal, bursty) over configurable tenant populations;
- :mod:`repro.service.slo` — p50/p99/p999 end-to-end latency, Jain's
  per-tenant fairness index, shed/violation accounting;
- :mod:`repro.service.frontend` — the pipeline itself, dispatching into
  :meth:`repro.cluster.fleet.StorageFleet.serve_one` (retries, breakers,
  replica failover all engaged);
- :mod:`repro.service.drill` — traffic cells as hermetic parallel-runner
  jobs (the ``python -m repro traffic`` verb).

Determinism contract: a traffic run is a pure function of its scenario
config — same seed + config digest means a byte-identical scorecard, in
process or across ``--workers N`` spawn workers.
"""

from repro.service.frontend import QueuedRequest, ServiceFrontend
from repro.service.overload import (
    AimdController,
    Brownout,
    CoDelController,
    RetryBudget,
)
from repro.service.scheduler import WeightedFairQueue
from repro.service.slo import SloReport, SloTracker, jain_index
from repro.service.tokens import TenantBuckets, TokenBucket
from repro.service.traffic import (
    Arrival,
    ClosedLoopDriver,
    TrafficGenerator,
    assign_class,
)

__all__ = [
    "AimdController",
    "Arrival",
    "Brownout",
    "ClosedLoopDriver",
    "CoDelController",
    "QueuedRequest",
    "RetryBudget",
    "ServiceFrontend",
    "SloReport",
    "SloTracker",
    "TenantBuckets",
    "TokenBucket",
    "TrafficGenerator",
    "WeightedFairQueue",
    "assign_class",
    "jain_index",
]
