"""The CompStor device assembly (paper Fig. 2).

A :class:`ConventionalSSD` storage stack plus:

- a dedicated :class:`~repro.isps.subsystem.InSituProcessingSubsystem`
  (quad A53 + 8 GB DRAM + embedded Linux) with a direct FTL path;
- the :class:`~repro.isps.agent.IspsAgent` daemon, registered as the NVMe
  controller's ISC handler so minions/queries tunnel over vendor opcodes.

The isolation claim is structural: storage IO runs on the controller's
queues/FTL resources; computation runs on the ISPS cluster.  Neither path
contains an ``if`` that throttles the other — any interference measured in
the ablation bench comes from genuinely shared resources (flash dies and
channel buses).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.calibration import DEVICE_DRAM_W
from repro.apps import default_registry
from repro.cpu.core import CpuSpec
from repro.cpu.models import ARM_A53_QUAD
from repro.ecc import EccConfig
from repro.flash import FlashGeometry
from repro.ftl import FtlConfig
from repro.isos.loader import ExecutableRegistry
from repro.isps import InSituProcessingSubsystem, IspsAgent
from repro.obs.metrics import MetricsRegistry
from repro.pcie.switch import PciePort
from repro.power import PowerMeter
from repro.sim import Simulator, Tracer
from repro.ssd.conventional import ConventionalSSD, small_geometry

if TYPE_CHECKING:  # pragma: no cover - annotation only (avoids a config cycle)
    from repro.config.schema import DeviceBackendConfig, NvmeConfig

__all__ = ["CompStorSSD", "PROTOTYPE_CAPACITY_BYTES", "prototype_geometry"]

#: The paper's prototype: a 24 TB NVMe SSD.
PROTOTYPE_CAPACITY_BYTES = 24 * 10**12


def prototype_geometry() -> FlashGeometry:
    """Full 24 TB prototype geometry (use analytic mode at this scale)."""
    return FlashGeometry().scaled(PROTOTYPE_CAPACITY_BYTES)


class CompStorSSD(ConventionalSSD):
    """In-situ processing SSD: conventional storage stack + ISPS + agent."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "compstor",
        geometry: FlashGeometry | None = None,
        port: PciePort | None = None,
        meter: PowerMeter | None = None,
        registry: ExecutableRegistry | None = None,
        store_data: bool = True,
        ftl_config: FtlConfig | None = None,
        ecc_config: EccConfig | None = None,
        nvme_config: "NvmeConfig | None" = None,
        device_config: "DeviceBackendConfig | None" = None,
        cpu_spec: CpuSpec | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        super().__init__(
            sim,
            name=name,
            geometry=geometry or small_geometry(),
            port=port,
            meter=meter,
            store_data=store_data,
            ftl_config=ftl_config,
            ecc_config=ecc_config,
            nvme_config=nvme_config,
            device_config=device_config,
            tracer=tracer,
            metrics=metrics,
        )
        sink = meter.sink if meter is not None else None
        spec = cpu_spec if cpu_spec is not None else ARM_A53_QUAD
        self.isps = InSituProcessingSubsystem(
            sim,
            self.ftl,
            registry=(registry or default_registry()),
            spec=spec,
            name=f"{name}.isps",
            energy_sink=sink,
            tracer=tracer,
        )
        self.agent = IspsAgent(
            sim, self.isps, device_name=name, tracer=tracer, metrics=metrics
        )
        self.controller.register_isc_handler(self.agent.handle)
        if meter is not None:
            meter.register_static(f"{name}.isps.static", spec.p_idle)
            meter.register_static(f"{name}.isps.dram", DEVICE_DRAM_W)

    @property
    def fs(self):
        """The in-storage filesystem (staging and assertions)."""
        return self.isps.fs

    def telemetry(self):
        return self.agent.telemetry()

    def describe(self) -> dict:
        info = super().describe()
        info["isc"] = True
        info["isps"] = self.isps.describe()
        return info
