"""NAND flash media model.

Models the raw storage substrate under the FTL:

- :mod:`repro.flash.geometry` — channel/die/plane/block/page addressing;
- :mod:`repro.flash.timing` — per-operation latencies and bus speeds;
- :mod:`repro.flash.energy` — per-operation energy costs;
- :mod:`repro.flash.errors` — raw bit-error-rate model (wear + retention);
- :mod:`repro.flash.package` — the behavioural model: dies and channel buses
  as simulation resources, page program/read and block erase operations with
  state and wear tracking.

The CompStor paper's Fig. 1 bandwidth argument (16 channels x 533 MB/s per
SSD, ~545 GB/s aggregate media bandwidth in a 64-SSD server) is a direct
consequence of this layer's geometry x bus-rate product.
"""

from repro.flash.energy import FlashEnergy
from repro.flash.errors import BitErrorModel
from repro.flash.geometry import FlashGeometry, PageAddress
from repro.flash.package import EraseFailure, FlashArray, FlashOpError, PageState
from repro.flash.timing import FlashTiming

__all__ = [
    "BitErrorModel",
    "EraseFailure",
    "FlashArray",
    "FlashEnergy",
    "FlashGeometry",
    "FlashOpError",
    "FlashTiming",
    "PageAddress",
    "PageState",
]
