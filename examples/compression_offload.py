#!/usr/bin/env python3
"""Offloaded compression: the paper's compute-bound workload (Figs. 7 / 8).

Compresses a book corpus with bzip2 two ways — in-situ on 1..N CompStors and
on the host Xeon — and prints the Fig. 7 aggregate-performance table plus
the gzip-family energy comparison.  Compression here is *functional*: real
bz2 streams, real output files on the device filesystem, real ratios.

Run:  python examples/compression_offload.py
"""

from repro.analysis.experiments import format_series_table
from repro.analysis.figures import DEFAULT_FIG8_SPEC, run_fig7, run_fig8
from repro.cluster import StorageNode
from repro.workloads import BookCorpus, CorpusSpec


def verify_functional_roundtrip() -> None:
    """In-situ bzip2 then bunzip2 restores the original bytes."""
    node = StorageNode.build(devices=1, device_capacity=32 * 1024 * 1024)
    sim = node.sim
    book = BookCorpus(CorpusSpec(files=1, mean_file_bytes=64 * 1024)).generate()[0]
    ssd = node.compstors[0]
    sim.run(sim.process(ssd.fs.write_file(book.name, book.plain)))

    def flow():
        r1 = yield from node.client.run("compstor0", f"bzip2 {book.name}")
        assert r1.ok, r1.stdout
        yield from ssd.fs.delete(book.name)
        r2 = yield from node.client.run("compstor0", f"bunzip2 {book.name}.bz2")
        assert r2.ok, r2.stdout
        restored = yield from ssd.fs.read_file(book.name)
        return r1.detail["ratio"], restored

    ratio, restored = sim.run(sim.process(flow()))
    assert restored == book.plain, "round trip corrupted the book!"
    print(f"functional check: bzip2 ratio {ratio:.3f}, "
          f"round-trip restored {len(restored)} bytes exactly\n")


def main() -> None:
    verify_functional_roundtrip()

    rows = run_fig7(device_counts=(1, 2, 4))
    print(format_series_table(
        "Fig. 7 — aggregated bzip2 throughput (host + N CompStors), MB/s",
        ["devices", "host", "CompStors", "aggregate"],
        [[r["devices"], r["host_mb_s"], r["compstor_mb_s"], r["aggregate_mb_s"]]
         for r in rows],
    ))
    print("\n(one quad-A53 device is far below the Xeon, as the paper notes;"
          "\n the device contribution grows linearly and becomes comparable at scale)\n")

    fig8 = run_fig8(apps=("gzip", "gunzip", "bzip2", "bunzip2"), spec=DEFAULT_FIG8_SPEC)
    print(format_series_table(
        "Fig. 8 — compression energy (J/GB), measured vs paper",
        ["app", "CompStor", "paper", "Xeon", "paper", "ratio", "paper ratio"],
        [[r.app, r.compstor_j_per_gb, r.paper_compstor, r.xeon_j_per_gb,
          r.paper_xeon, r.ratio, r.paper_ratio] for r in fig8],
    ))


if __name__ == "__main__":
    main()
