"""Ablation — where does in-situ processing win?

Sweeps the compute intensity (cycles per byte) of a synthetic scan and
compares one CompStor (4 weak cores, cheap data path) against the host
(8 strong cores, expensive data path) on completion time.  The expected
shape: in-situ wins at low intensity (IO-dominated), the host wins at high
intensity (compute-dominated) — the crossover is the design space the
paper's intro describes.
"""

from repro.analysis.calibration import ARM_ISA, CYCLES_PER_BYTE, XEON_ISA
from repro.analysis.experiments import format_series_table
from repro.apps.base import StreamingApp
from repro.cluster import StorageNode
from repro.isos.loader import ExitStatus

FILE_BYTES = 2 * 1024 * 1024
#: synthetic intensities, cycles per byte on the Xeon (ARM scaled by 2.6x,
#: the mid-range of the calibrated A53/Xeon gaps)
INTENSITIES = (1.0, 8.0, 64.0, 512.0)
ARM_FACTOR = 2.6


class SyntheticScan(StreamingApp):
    """A scan whose per-byte cost is configured via the calibration table."""

    name = "synthscan"

    def consume(self, ctx, chunk, take):
        pass

    def finish(self, ctx, path, total_bytes):
        return ExitStatus(code=0, stdout=str(total_bytes).encode())
        yield  # pragma: no cover - generator protocol


def run_point(cpb_xeon: float) -> tuple[float, float]:
    CYCLES_PER_BYTE["synthscan"] = {
        XEON_ISA: cpb_xeon,
        ARM_ISA: cpb_xeon * ARM_FACTOR,
    }
    # a x1 endpoint link models the Fig. 1 funnel: per-device media
    # bandwidth well above what the host can pull from the device
    node = StorageNode.build(
        devices=1, device_capacity=32 * 1024 * 1024, with_baseline_ssd=True,
        store_data=False, endpoint_lanes=1,
    )
    sim = node.sim
    app = SyntheticScan()
    node.compstors[0].isps.os.install_executable(app)
    node.host.require_os().install_executable(app)

    def stage():
        # 4 files so both sides can use all their parallelism
        for i in range(4):
            yield from node.compstors[0].fs.write_file(
                f"p{i}.bin", None, size=FILE_BYTES // 4
            )
            yield from node.host.require_os().fs.write_file(
                f"p{i}.bin", None, size=FILE_BYTES // 4
            )
        yield from node.compstors[0].ftl.flush()
        yield from node.baseline_ssd.ftl.flush()

    sim.run(sim.process(stage()))

    def in_situ():
        from repro.proto import Command

        start = sim.now
        responses = yield from node.client.gather(
            [("compstor0", Command(command_line=f"synthscan p{i}.bin")) for i in range(4)]
        )
        assert all(r.ok for r in responses)
        return sim.now - start

    device_seconds = sim.run(sim.process(in_situ()))

    def host_side():
        os_ = node.host.require_os()
        start = sim.now
        procs = [os_.spawn(f"synthscan p{i}.bin") for i in range(4)]
        for p in procs:
            yield from os_.wait(p)
        return sim.now - start

    host_seconds = sim.run(sim.process(host_side()))
    return device_seconds, host_seconds


def test_ablation_intensity_sweep(benchmark):
    def experiment():
        return {cpb: run_point(cpb) for cpb in INTENSITIES}

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)
    CYCLES_PER_BYTE.pop("synthscan", None)

    rows = []
    for cpb, (dev, host) in points.items():
        rows.append([cpb, dev * 1e3, host * 1e3, host / dev])
    print("\n" + format_series_table(
        "Ablation — in-situ vs host scan time by compute intensity",
        ["xeon cycles/B", "in-situ ms", "host ms", "host/in-situ"],
        rows,
    ))

    advantages = [host / dev for _, (dev, host) in sorted(points.items())]
    # the in-situ advantage shrinks monotonically as intensity grows...
    assert all(a >= b * 0.95 for a, b in zip(advantages, advantages[1:]))
    # ...IO-bound scans favour in-situ, compute-heavy scans favour the host
    assert advantages[0] > 1.0
    assert advantages[-1] < 1.0
