"""OS process bookkeeping."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.isos.loader import ExitStatus
from repro.sim.core import Process

__all__ = ["OsProcess", "ProcessState", "reset_ids"]

_pid_counter = itertools.count(100)


def reset_ids() -> None:
    """Restart PID allocation (fresh-process state; see proto.entities)."""
    global _pid_counter
    _pid_counter = itertools.count(100)


class ProcessState(Enum):
    RUNNING = "running"
    EXITED = "exited"
    FAILED = "failed"


@dataclass(slots=True)
class OsProcess:
    """One spawned command."""

    command: str
    sim_process: Process
    pid: int = field(default_factory=lambda: next(_pid_counter))
    started_at: float = 0.0
    finished_at: float | None = None
    state: ProcessState = ProcessState.RUNNING
    exit_status: ExitStatus | None = None
    error: BaseException | None = None

    @property
    def alive(self) -> bool:
        return self.state == ProcessState.RUNNING

    @property
    def runtime(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def summary(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "command": self.command,
            "state": self.state.value,
            "runtime": self.runtime,
            "exit_code": self.exit_status.code if self.exit_status else None,
        }
