"""Ablation — IO throughput vs queue depth (the canonical SSD curve).

Small random reads through the NVMe path: at QD 1 each read pays the full
serialized latency; deeper queues overlap die and channel accesses until
the media's internal parallelism saturates.  The model must reproduce the
rise-then-flatten curve every SSD datasheet shows.
"""

from repro.analysis.experiments import format_series_table
from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer
from repro.nvme import NvmeCommand, NvmeController, Opcode
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=4, dies_per_channel=2, planes_per_die=1, blocks_per_plane=8,
    pages_per_block=16, page_size=4096,
)
QUEUE_DEPTHS = (1, 2, 4, 8, 16, 32)
READS_PER_WORKER = 40


def measure_iops(queue_depth: int) -> float:
    sim = Simulator(seed=31)
    flash = FlashArray(sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9),
                       store_data=False)
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(sim, flash, ecc)
    ctrl = NvmeController(sim, ftl, workers_per_queue=64)
    rng = sim.rng("qd")
    logical = ftl.logical_pages

    def fill():
        for lpn in range(logical):
            yield from ftl.write(lpn, None)
        yield from ftl.flush()

    sim.run(sim.process(fill()))
    start = sim.now
    total_reads = queue_depth * READS_PER_WORKER

    def worker(lpns):
        for lpn in lpns:
            completion = yield from ctrl.queue(0).call(
                NvmeCommand(opcode=Opcode.READ, slba=int(lpn))
            )
            assert completion.ok

    procs = [
        sim.process(worker(rng.integers(0, logical, size=READS_PER_WORKER)))
        for _ in range(queue_depth)
    ]
    sim.run(sim.all_of(procs))
    return total_reads / (sim.now - start)


def test_ablation_queue_depth(benchmark):
    def experiment():
        return {qd: measure_iops(qd) for qd in QUEUE_DEPTHS}

    iops = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print("\n" + format_series_table(
        "Ablation — 4K random read IOPS vs queue depth",
        ["QD", "IOPS", "scaling vs QD1"],
        [[qd, iops[qd], iops[qd] / iops[1]] for qd in QUEUE_DEPTHS],
    ))

    # rises with queue depth...
    assert iops[4] > 2.0 * iops[1]
    assert iops[8] > iops[4]
    # ...and saturates near the media's parallelism (8 dies): going from
    # QD16 to QD32 buys little
    assert iops[32] < 1.3 * iops[16]
    # saturated throughput exceeds 6x QD1 (8 dies minus bus overlap)
    assert iops[32] > 5.0 * iops[1]
