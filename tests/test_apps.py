"""Unit tests for the application suite (run on an embedded OS instance)."""

import bz2
import zlib

import pytest

from repro.analysis.calibration import ARM_ISA, CYCLES_PER_BYTE, XEON_ISA, cycles_for
from repro.apps import default_registry
from repro.cpu import ARM_A53_QUAD, CpuCluster
from repro.ecc import CodewordLayout, EccConfig, EccEngine
from repro.flash import BitErrorModel, FlashArray, FlashGeometry
from repro.ftl import FlashTranslationLayer
from repro.isos import EmbeddedOS, ExtentFileSystem, FlashAccessDevice
from repro.sim import Simulator

GEO = FlashGeometry(
    channels=2, dies_per_channel=2, planes_per_die=1, blocks_per_plane=24, pages_per_block=16,
    page_size=4096,
)

TEXT = (b"the quick brown fox jumps over the lazy dog\n" b"pack my box with five dozen jugs\n") * 300


def make_os(store_data=True):
    sim = Simulator()
    flash = FlashArray(
        sim, geometry=GEO, error_model=BitErrorModel(rber0=1e-9), store_data=store_data
    )
    ecc = EccEngine(sim, EccConfig(layout=CodewordLayout(data_bytes=2048)))
    ftl = FlashTranslationLayer(sim, flash, ecc)
    fs = ExtentFileSystem(sim, FlashAccessDevice(sim, ftl))
    os_ = EmbeddedOS(sim, CpuCluster(sim, ARM_A53_QUAD), fs, default_registry(), isa=ARM_ISA)
    return sim, os_


def drive(sim, gen):
    return sim.run(sim.process(gen))


def put_file(sim, os_, name, data=None, size=None):
    drive(sim, os_.fs.write_file(name, data, size))


# -- compression ------------------------------------------------------------

def test_gzip_produces_decompressible_output():
    sim, os_ = make_os()
    put_file(sim, os_, "book.txt", TEXT)
    status, _ = drive(sim, os_.run("gzip book.txt"))
    assert status.code == 0
    blob = drive(sim, os_.fs.read_file("book.txt.gz"))
    assert zlib.decompress(blob) == TEXT
    assert status.detail["ratio"] < 0.5  # text compresses well


def test_gunzip_round_trip():
    sim, os_ = make_os()
    put_file(sim, os_, "book.txt", TEXT)
    drive(sim, os_.run("gzip book.txt"))
    drive(sim, os_.fs.delete("book.txt"))
    status, _ = drive(sim, os_.run("gunzip book.txt.gz"))
    assert status.code == 0
    assert drive(sim, os_.fs.read_file("book.txt")) == TEXT


def test_bzip2_round_trip():
    sim, os_ = make_os()
    put_file(sim, os_, "book.txt", TEXT)
    status, _ = drive(sim, os_.run("bzip2 book.txt"))
    blob = drive(sim, os_.fs.read_file("book.txt.bz2"))
    assert bz2.decompress(blob) == TEXT
    drive(sim, os_.fs.delete("book.txt"))
    status, _ = drive(sim, os_.run("bunzip2 book.txt.bz2"))
    assert status.code == 0
    assert drive(sim, os_.fs.read_file("book.txt")) == TEXT


def test_bzip2_beats_gzip_on_real_text():
    """On Zipfian (English-like) text, bzip2 compresses tighter than gzip."""
    from repro.workloads import BookCorpus, CorpusSpec

    book = BookCorpus(CorpusSpec(files=1, mean_file_bytes=96 * 1024)).generate()[0]
    sim, os_ = make_os()
    put_file(sim, os_, "a.txt", book.plain)
    put_file(sim, os_, "b.txt", book.plain)
    gz, _ = drive(sim, os_.run("gzip a.txt"))
    bz, _ = drive(sim, os_.run("bzip2 b.txt"))
    assert bz.detail["output_bytes"] < gz.detail["output_bytes"]


def test_compress_missing_file_fails():
    sim, os_ = make_os()
    status, _ = drive(sim, os_.run("gzip nothing.txt"))
    assert status.code == 1


def test_analytic_mode_compression_allocates_by_ratio():
    sim, os_ = make_os(store_data=False)
    size = 20 * GEO.page_size
    put_file(sim, os_, "ghost.txt", None, size=size)
    status, _ = drive(sim, os_.run("gzip ghost.txt"))
    assert status.code == 0
    out = os_.fs.stat("ghost.txt.gz")
    assert out.size == pytest.approx(size * 0.36, rel=0.01)


# -- search ----------------------------------------------------------------

def test_grep_counts_matching_lines():
    sim, os_ = make_os()
    put_file(sim, os_, "hay.txt", b"fox here\nno animal\nfox again\n")
    status, _ = drive(sim, os_.run("grep fox hay.txt"))
    assert status.code == 0
    assert status.stdout == b"2"


def test_grep_no_match_exit_code_1():
    sim, os_ = make_os()
    put_file(sim, os_, "hay.txt", b"nothing to see\n")
    status, _ = drive(sim, os_.run("grep unicorn hay.txt"))
    assert status.code == 1
    assert status.stdout == b"0"


def test_grep_case_insensitive_flag():
    sim, os_ = make_os()
    put_file(sim, os_, "hay.txt", b"FOX\nfox\nFoX\n")
    exact, _ = drive(sim, os_.run("grep fox hay.txt"))
    loose, _ = drive(sim, os_.run("grep -i fox hay.txt"))
    assert exact.detail["matches"] == 1
    assert loose.detail["matches"] == 3


def test_grep_pattern_across_page_boundary():
    """A match must not be lost when its line spans two pages."""
    sim, os_ = make_os()
    filler = b"x" * (GEO.page_size - 3)
    data = filler + b"needle is split here\n"
    put_file(sim, os_, "span.txt", data)
    status, _ = drive(sim, os_.run("grep needle span.txt"))
    assert status.detail["matches"] == 1


def test_grep_usage_error():
    sim, os_ = make_os()
    status, _ = drive(sim, os_.run("grep onlypattern"))
    assert status.code == 2


def test_gawk_counts_matches_and_fields():
    sim, os_ = make_os()
    put_file(sim, os_, "t.txt", b"a b c\nneedle x\ny needle z\n")
    status, _ = drive(sim, os_.run("gawk needle t.txt"))
    matches, fields = status.stdout.split()
    assert int(matches) == 2
    assert int(fields) == 8


# -- text utilities --------------------------------------------------------------

def test_wc_counts():
    sim, os_ = make_os()
    put_file(sim, os_, "w.txt", b"one two three\nfour five\n")
    status, _ = drive(sim, os_.run("wc w.txt"))
    lines, words, nbytes, _name = status.stdout.split()
    assert (int(lines), int(words)) == (2, 5)
    assert int(nbytes) == 24


def test_wc_word_spanning_pages_counted_once():
    sim, os_ = make_os()
    data = b"a" * (GEO.page_size + 10) + b" end\n"
    put_file(sim, os_, "span.txt", data)
    status, _ = drive(sim, os_.run("wc span.txt"))
    _, words, _, _ = status.stdout.split()
    assert int(words) == 2


def test_sha1sum_matches_hashlib():
    import hashlib

    sim, os_ = make_os()
    put_file(sim, os_, "h.txt", TEXT)
    status, _ = drive(sim, os_.run("sha1sum h.txt"))
    assert status.stdout.split()[0].decode() == hashlib.sha1(TEXT).hexdigest()
    # functional mode: a real digest, no analytic marker
    assert "analytic" not in status.detail
    assert status.detail["bytes"] == len(TEXT)


def test_sha1sum_analytic_mode_is_marked_not_empty_file():
    """Regression: with no payload flowing (analytic device) sha1sum used
    to emit the same empty stdout an empty file produces; the detail
    marker lets scorecards tell the two apart."""
    sim, os_ = make_os(store_data=False)
    put_file(sim, os_, "ghost.txt", None, size=4096)
    status, _ = drive(sim, os_.run("sha1sum ghost.txt"))
    assert status.code == 0
    assert status.stdout == b""
    assert status.detail == {"analytic": True, "bytes": 4096}


def test_ls_lists_files_with_sizes():
    sim, os_ = make_os()
    put_file(sim, os_, "z.txt", b"zz")
    status, _ = drive(sim, os_.run("ls"))
    assert b"z.txt" in status.stdout


def test_pipeline_gunzip_grep():
    """The paper's flagship flexibility: shell pipelines in-storage."""
    sim, os_ = make_os()
    put_file(sim, os_, "hay.txt", b"the fox line\nboring line\n")
    drive(sim, os_.run("gzip hay.txt"))
    # decompress then search the decompressed file
    status, _ = drive(sim, os_.run("cat hay.txt | grep fox"))
    assert status.code == 2  # grep via stdin unsupported -> usage error is honest
    # the supported form: gunzip writes the file, grep scans it
    results = drive(sim, os_.run_script("gunzip hay.txt.gz; grep fox hay.txt"))
    assert results[-1][1].detail["matches"] == 1


# -- cost model -------------------------------------------------------------------

def test_apps_charge_calibrated_cycles():
    sim, os_ = make_os()
    put_file(sim, os_, "c.txt", TEXT)
    before = os_.cluster.cycles_executed
    drive(sim, os_.run("grep fox c.txt"))
    charged = os_.cluster.cycles_executed - before
    expected = cycles_for("grep", ARM_ISA, len(TEXT))
    assert charged >= expected  # app cycles + nothing less
    assert charged <= expected * 1.05  # and no mysterious extras


def test_calibration_tables_cover_all_apps():
    registry = default_registry()
    for name in registry.installed():
        assert name in CYCLES_PER_BYTE, f"no calibration for {name}"
        assert CYCLES_PER_BYTE[name][ARM_ISA] > CYCLES_PER_BYTE[name][XEON_ISA]


def test_cycles_for_validation():
    with pytest.raises(KeyError):
        cycles_for("unknown-app", ARM_ISA, 10)
    with pytest.raises(ValueError):
        cycles_for("grep", ARM_ISA, -1)


def test_filter_emits_matching_lines():
    sim, os_ = make_os()
    put_file(sim, os_, "hay.txt", b"fox one\nno match\nfox two\n")
    status, _ = drive(sim, os_.run("filter fox hay.txt"))
    assert status.code == 0
    assert status.stdout == b"fox one\nfox two"
    assert status.detail["matches"] == 2
    assert 0 < status.detail["selectivity"] < 1


def test_filter_no_match_exit_1():
    sim, os_ = make_os()
    put_file(sim, os_, "hay.txt", b"nothing here\n")
    status, _ = drive(sim, os_.run("filter unicorn hay.txt"))
    assert status.code == 1
    assert status.stdout == b""
    assert status.detail["bytes_emitted"] == 0


def test_filter_case_insensitive():
    sim, os_ = make_os()
    put_file(sim, os_, "hay.txt", b"FOX loud\nfox quiet\n")
    status, _ = drive(sim, os_.run("filter -i fox hay.txt"))
    assert status.detail["matches"] == 2


# -- head / tail / uniq ----------------------------------------------------------

def test_head_returns_first_lines():
    sim, os_ = make_os()
    put_file(sim, os_, "h.txt", b"l1\nl2\nl3\nl4\nl5\n")
    status, _ = drive(sim, os_.run("head -n 3 h.txt"))
    assert status.stdout == b"l1\nl2\nl3"


def test_head_early_exit_skips_pages():
    """head must not read the whole file (the in-storage sampling use case)."""
    sim, os_ = make_os()
    big = b"line\n" * 50000  # many pages
    put_file(sim, os_, "big.txt", big)
    total_pages = os_.fs.page_count("big.txt")
    status, _ = drive(sim, os_.run("head -n 5 big.txt"))
    assert status.detail["pages_read"] <= 2
    assert total_pages > 10


def test_head_default_ten_lines():
    sim, os_ = make_os()
    put_file(sim, os_, "h.txt", b"\n".join(b"l%d" % i for i in range(20)))
    status, _ = drive(sim, os_.run("head h.txt"))
    assert status.stdout.count(b"\n") == 9  # 10 lines


def test_tail_returns_last_lines():
    sim, os_ = make_os()
    put_file(sim, os_, "t.txt", b"a\nb\nc\nd\ne\n")
    status, _ = drive(sim, os_.run("tail -n 2 t.txt"))
    assert status.stdout == b"d\ne"


def test_tail_across_page_boundaries():
    sim, os_ = make_os()
    data = b"\n".join(b"line%05d" % i for i in range(3000)) + b"\n"
    put_file(sim, os_, "t.txt", data)
    status, _ = drive(sim, os_.run("tail -n 3 t.txt"))
    assert status.stdout == b"line02997\nline02998\nline02999"


def test_uniq_collapses_adjacent_duplicates():
    sim, os_ = make_os()
    put_file(sim, os_, "u.txt", b"a\na\nb\na\nb\nb\nb\n")
    status, _ = drive(sim, os_.run("uniq u.txt"))
    assert status.stdout == b"a\nb\na\nb"
    assert status.detail["duplicates"] == 3


def test_uniq_duplicate_spanning_pages():
    sim, os_ = make_os()
    line = b"same-line-content\n"
    put_file(sim, os_, "u.txt", line * 2000)  # spans several pages
    status, _ = drive(sim, os_.run("uniq u.txt"))
    assert status.detail["unique"] == 1
    assert status.detail["duplicates"] == 1999


def test_head_usage_error():
    sim, os_ = make_os()
    put_file(sim, os_, "h.txt", b"x\n")
    status, _ = drive(sim, os_.run("head -n notanumber h.txt"))
    assert status.code == 2


def test_sort_orders_lines_and_writes_output():
    sim, os_ = make_os()
    put_file(sim, os_, "s.txt", b"cherry\napple\nbanana\n")
    status, _ = drive(sim, os_.run("sort s.txt"))
    assert status.code == 0
    assert drive(sim, os_.fs.read_file("s.txt.sorted")) == b"apple\nbanana\ncherry\n"
    assert status.detail["lines"] == 3


def test_sort_then_uniq_script():
    """The in-storage `sort; uniq` workflow over scattered duplicates."""
    sim, os_ = make_os()
    put_file(sim, os_, "d.txt", b"b\na\nb\nc\na\n")
    results = drive(sim, os_.run_script("sort d.txt; uniq d.txt.sorted"))
    final = results[-1][1]
    assert final.stdout == b"a\nb\nc"
    assert final.detail["duplicates"] == 2
