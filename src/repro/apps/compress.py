"""Compression / decompression applications (gzip, bzip2 families).

Functional mode really compresses with :mod:`zlib` / :mod:`bz2` (streamed
through compressor objects, page at a time), so compression ratios in the
experiments are genuine properties of the synthetic corpus.  Analytic mode
allocates output using the calibrated ratio without moving bytes.

Cycle costs are charged per *input* byte, matching how the paper normalises
Fig. 8 per gigabyte of data.

Because every experiment is deterministic, the same corpus is compressed
again on every rerun of a sweep (parameter studies, best-of-N benchmarks,
repeated tests).  The codec output for a given input is a pure function, so
it is memoized process-wide: inputs below ``_MEMO_LIMIT`` are buffered and
looked up by content digest at ``finish`` time, and only a cache miss pays
the real codec cost.  One-shot and page-streamed compression produce
byte-identical output for both zlib and bz2 (their compressor objects
buffer internally; output depends only on the total input), so the cache is
invisible to schedules, traces and golden digests.
"""

from __future__ import annotations

import bz2
import hashlib
import zlib
from typing import Generator

from repro.analysis.calibration import ANALYTIC_COMPRESSION_RATIO
from repro.apps.base import StreamingApp
from repro.isos.loader import ExecContext, ExitStatus

__all__ = ["Bunzip2App", "Bzip2App", "GunzipApp", "GzipApp", "clear_payload_cache"]

#: content-digest -> compressed blob, shared by all app instances.  FIFO
#: eviction; sized for sweep corpora (hundreds of files), not archives.
_BLOB_CACHE: dict[tuple[str, bytes], bytes] = {}
_BLOB_CACHE_MAX = 1024

#: Inputs larger than this stream straight through the codec (no buffering,
#: no memoization) so memory stays bounded for pathological file sizes.
_MEMO_LIMIT = 8 * 1024 * 1024


def clear_payload_cache() -> None:
    """Drop memoized codec outputs (for cold-cache measurements/tests)."""
    _BLOB_CACHE.clear()


class _CompressApp(StreamingApp):
    """Shared body for gzip/bzip2 compressors."""

    suffix = ".z"
    family = "zlib"

    def begin(self, ctx: ExecContext) -> None:
        self._out: list[bytes] = []
        self._pending: list[bytes] | None = []  # buffered input (memo path)
        self._pending_size = 0
        self._compressor = None  # created on spill only
        self._analytic = False

    def _make_compressor(self):
        if self.family == "zlib":
            return zlib.compressobj(6)
        return bz2.BZ2Compressor(9)

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        pending = self._pending
        if pending is not None:
            pending.append(chunk)
            self._pending_size += len(chunk)
            if self._pending_size > _MEMO_LIMIT:
                self._spill()
        else:
            self._out.append(self._compressor.compress(chunk))

    def _spill(self) -> None:
        """Input too large to memoize: switch to plain streaming."""
        self._compressor = self._make_compressor()
        compress = self._compressor.compress
        self._out.extend(compress(chunk) for chunk in self._pending)
        self._pending = None

    def _memoized_blob(self) -> bytes:
        data = b"".join(self._pending)
        key = (self.family, hashlib.sha256(data).digest())
        blob = _BLOB_CACHE.get(key)
        if blob is None:
            compressor = self._make_compressor()
            blob = compressor.compress(data) + compressor.flush()
            if len(_BLOB_CACHE) >= _BLOB_CACHE_MAX:
                del _BLOB_CACHE[next(iter(_BLOB_CACHE))]
            _BLOB_CACHE[key] = blob
        return blob

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        out_name = path + self.suffix
        if self._analytic:
            out_size = max(1, int(total_bytes * ANALYTIC_COMPRESSION_RATIO[self.name]))
            yield from ctx.write_file(out_name, None, size=out_size)
        else:
            if self._pending is not None:
                blob = self._memoized_blob()
            else:
                self._out.append(self._compressor.flush())
                blob = b"".join(self._out)
            out_size = len(blob)
            yield from ctx.write_file(out_name, blob)
        ratio = out_size / total_bytes if total_bytes else 0.0
        return ExitStatus(
            code=0,
            stdout=out_name.encode(),
            detail={"input_bytes": total_bytes, "output_bytes": out_size, "ratio": ratio},
        )


class GzipApp(_CompressApp):
    """``gzip FILE`` -> FILE.gz (original kept, like ``gzip -k``)."""

    name = "gzip"
    suffix = ".gz"
    family = "zlib"


class Bzip2App(_CompressApp):
    """``bzip2 FILE`` -> FILE.bz2 (original kept)."""

    name = "bzip2"
    suffix = ".bz2"
    family = "bz2"


class _DecompressApp(StreamingApp):
    """Shared body for gunzip/bunzip2."""

    suffix = ".z"
    family = "zlib"

    def begin(self, ctx: ExecContext) -> None:
        self._out: list[bytes] = []
        self._decompressor = (
            zlib.decompressobj() if self.family == "zlib" else bz2.BZ2Decompressor()
        )
        self._analytic = False

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        self._out.append(self._decompressor.decompress(chunk))

    def output_name(self, path: str) -> str:
        if path.endswith(self.suffix):
            return path[: -len(self.suffix)]
        return path + ".out"

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        out_name = self.output_name(path)
        if self._analytic:
            ratio = ANALYTIC_COMPRESSION_RATIO[self.compress_name]
            out_size = max(1, int(total_bytes / ratio))
            yield from ctx.write_file(out_name, None, size=out_size)
        else:
            blob = b"".join(self._out)
            out_size = len(blob)
            yield from ctx.write_file(out_name, blob)
        return ExitStatus(
            code=0,
            stdout=out_name.encode(),
            detail={"input_bytes": total_bytes, "output_bytes": out_size},
        )

    compress_name = "gzip"


class GunzipApp(_DecompressApp):
    """``gunzip FILE.gz`` -> FILE."""

    name = "gunzip"
    suffix = ".gz"
    family = "zlib"
    compress_name = "gzip"


class Bunzip2App(_DecompressApp):
    """``bunzip2 FILE.bz2`` -> FILE."""

    name = "bunzip2"
    suffix = ".bz2"
    family = "bz2"
    compress_name = "bzip2"
