"""Traffic cells: one seeded serving run as a hermetic, cacheable job.

``run_traffic_cell`` is the parallel-runner target behind the ``traffic``
CLI verb and the matrix builder — module-path addressable, JSON-in /
JSON-out, hermetic (the scenario dict is the entire input), so the result
cache can replay a cell from its payload digest and ``--workers N``
produces byte-identical scorecards.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

from repro.config.codec import scenario_from_dict, to_dict
from repro.config.schema import (
    ClosedLoopConfig,
    ScenarioConfig,
    ServiceConfig,
    TrafficConfig,
)

__all__ = [
    "closed_loop_scenario",
    "run_closedloop_cell",
    "run_metastable_cell",
    "run_traffic_cell",
    "service_scenario",
]


def service_scenario(config: ScenarioConfig, mix: str | None = None) -> ScenarioConfig:
    """A scenario with its service layer engaged (defaults filled in) and,
    optionally, the traffic pattern overridden to ``mix``."""
    service = config.service if config.service is not None else ServiceConfig()
    traffic = config.traffic if config.traffic is not None else TrafficConfig()
    if mix is not None:
        traffic = replace(traffic, pattern=mix)
    return replace(config, service=service, traffic=traffic)


def run_traffic_cell(
    scenario: Mapping[str, Any] | None = None, mix: str | None = None
) -> dict:
    """Stage, arm faults, serve the whole arrival stream, return the
    scorecard payload (a plain JSON dict; see
    :meth:`repro.service.slo.SloReport.to_payload`)."""
    from repro.config.factory import build_corpus, build_fault_plan, build_fleet
    from repro.config.presets import preset
    from repro.faults import FaultInjector
    from repro.service.frontend import ServiceFrontend

    config = (
        scenario_from_dict(scenario) if scenario is not None else preset("traffic-smoke")
    )
    config = service_scenario(config, mix=mix)
    fleet = build_fleet(config)
    sim = fleet.sim
    books = build_corpus(config)
    sim.run(sim.process(fleet.stage_corpus(books, replicas=config.fleet.replicas)))
    if config.faults.any:
        plan = build_fault_plan(config, fleet.device_ring(), base_time=sim.now)
        FaultInjector.for_fleet(fleet, plan).start()
    # the objstore write mix rides along only when the scenario asks for it
    store = None
    if config.objstore is not None and config.objstore.write_fraction > 0.0:
        from repro.objstore.dedup import DedupObjectStore

        store = DedupObjectStore(
            fleet, params=config.objstore.params(), replicas=config.objstore.replicas
        )
    frontend = ServiceFrontend(
        fleet, config.service, config.traffic, books,
        overload=config.overload, objstore=store, objstore_config=config.objstore,
    )
    report = sim.run(sim.process(frontend.run()))
    if store is not None:
        report = replace(report, objstore=store.stats.to_payload())
    return report.to_payload()


def closed_loop_scenario(config: ScenarioConfig) -> ScenarioConfig:
    """A scenario with its service and closed-loop sections engaged."""
    service = config.service if config.service is not None else ServiceConfig()
    closed = config.closed_loop if config.closed_loop is not None else ClosedLoopConfig()
    return replace(config, service=service, closed_loop=closed)


def run_closedloop_cell(
    scenario: Mapping[str, Any] | None = None, defenses: bool = True
) -> dict:
    """One closed-loop serving run: sessions with think time and
    retries-on-shed over the staged fleet, faults armed.

    ``defenses`` arms the scenario's overload section (retry budget, CoDel,
    brownout, AIMD); with ``defenses=False`` the *same* scenario — same
    digest, same seed, same fault trigger — runs with the fixed queue-full
    check and fixed concurrency, the counterfactual the metastable drill
    scores against.
    """
    from repro.config.factory import build_corpus, build_fault_plan, build_fleet
    from repro.config.presets import preset
    from repro.faults import FaultInjector
    from repro.service.frontend import ServiceFrontend

    config = (
        scenario_from_dict(scenario)
        if scenario is not None
        else preset("traffic-closedloop")
    )
    config = closed_loop_scenario(config)
    fleet = build_fleet(config)
    sim = fleet.sim
    books = build_corpus(config)
    sim.run(sim.process(fleet.stage_corpus(books, replicas=config.fleet.replicas)))
    if config.faults.any:
        plan = build_fault_plan(config, fleet.device_ring(), base_time=sim.now)
        FaultInjector.for_fleet(fleet, plan).start()
    frontend = ServiceFrontend(
        fleet,
        config.service,
        None,
        books,
        closed_loop=config.closed_loop,
        overload=config.overload if defenses else None,
    )
    report = sim.run(sim.process(frontend.run()))
    payload = report.to_payload()
    payload["defenses"] = bool(defenses)
    return payload


def run_metastable_cell(
    scenario: Mapping[str, Any] | None = None, defenses: bool = True
) -> dict:
    """The metastable drill: a closed-loop cell scored for recovery.

    The fault plan's transient window is the *trigger*; goodput (fresh
    completions per window, clients still waiting) is compared before the
    trigger and after it clears.  ``recovered`` means some window starting
    within ``recovery_ms`` of the fault clearing reached ``recovery_bar``
    of the pre-trigger per-window goodput; ``sustained_degradation`` means
    every window from that deadline to the end of the run stayed below the
    bar — the signature of a metastable failure the defenses prevent.
    """
    from repro.config.presets import preset

    config = (
        scenario_from_dict(scenario) if scenario is not None else preset("metastable")
    )
    config = closed_loop_scenario(config)
    payload = run_closedloop_cell(scenario=to_dict(config), defenses=defenses)

    closed = config.closed_loop
    window_s = closed.goodput_window_ms / 1e3
    windows = payload["goodput"]["windows"]
    # Fault times are ms relative to the armed plan's base time (staging
    # completion), which is also when serving — and window 0 — starts.
    events = config.faults.events
    if not events:
        raise ValueError("metastable drill needs at least one fault event")
    trigger_s = min(e.at_ms for e in events) / 1e3
    clear_s = max(e.at_ms + (e.duration_ms or 0.0) for e in events) / 1e3
    pre = [
        count
        for index, count in enumerate(windows)
        if (index + 1) * window_s <= trigger_s
    ]
    pre_rate = sum(pre) / len(pre) if pre else 0.0
    bar = closed.recovery_bar * pre_rate
    deadline_s = clear_s + closed.recovery_ms / 1e3
    recovered_after_ms: float | None = None
    for index, count in enumerate(windows):
        start = index * window_s
        if start < clear_s or start > deadline_s:
            continue
        if count >= bar:
            recovered_after_ms = (start - clear_s) * 1e3
            break
    # Tail windows must lie fully inside the drive: after ``duration_ms``
    # the sessions stop issuing and the residual queue drains, and that
    # drain burst would read as a spurious "recovery".
    duration_s = closed.duration_ms / 1e3
    tail = [
        count
        for index, count in enumerate(windows)
        if index * window_s >= deadline_s and (index + 1) * window_s <= duration_s
    ]
    payload["metastable"] = {
        "trigger_ms": round(trigger_s * 1e3, 6),
        "clear_ms": round(clear_s * 1e3, 6),
        "pre_goodput_per_window": round(pre_rate, 6),
        "bar": round(bar, 6),
        "recovered": recovered_after_ms is not None,
        "recovered_after_ms": (
            None if recovered_after_ms is None else round(recovered_after_ms, 6)
        ),
        "sustained_degradation": bool(tail) and all(count < bar for count in tail),
    }
    return payload
