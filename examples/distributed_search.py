#!/usr/bin/env python3
"""Distributed in-situ search across a book corpus (the paper's IO-bound
workload, Figs. 6 and 8).

Generates a synthetic book corpus, distributes it round-robin over N
CompStors, then:

1. searches every book in-situ (one concurrent minion per book) and checks
   the match counts against the corpus's known needle injections;
2. repeats the search on the host (data pulled over NVMe/PCIe to the Xeon);
3. prints throughput for 1..N devices (Fig. 6 shape) and the energy per
   gigabyte for both platforms (Fig. 8 shape).

Run:  python examples/distributed_search.py
"""

from repro.analysis.experiments import format_series_table, throughput_mb_s
from repro.baselines import HostOnlyRunner
from repro.cluster import StorageNode
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec

SPEC = CorpusSpec(files=12, mean_file_bytes=128 * 1024, size_spread=0.3)


def in_situ_search(devices: int, books) -> tuple[float, int, float]:
    """Returns (throughput MB/s, total matches, device J/GB)."""
    node = StorageNode.build(devices=devices, device_capacity=48 * 1024 * 1024)
    sim = node.sim
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))

    assignments = [
        (device, Command(command_line=f"grep {SPEC.needle} {book.name}"))
        for device, part in node.device_books(books).items()
        for book in part
    ]
    mark = node.meter.snapshot()

    def experiment():
        start = sim.now
        responses = yield from node.client.gather(assignments)
        return responses, sim.now - start

    responses, seconds = sim.run(sim.process(experiment()))
    report = node.meter.window(mark)
    total_bytes = sum(b.plain_size for b in books)
    matches = sum(int(r.stdout) for r in responses if r.stdout)
    device_prefixes = [f"compstor{i}" for i in range(devices)]
    j_per_gb = report.subset(device_prefixes) / (total_bytes / 1e9)
    return throughput_mb_s(total_bytes, seconds), matches, j_per_gb


def host_search(books) -> tuple[float, int, float]:
    node = StorageNode.build(devices=1, device_capacity=48 * 1024 * 1024,
                             with_baseline_ssd=True)
    sim = node.sim
    sim.run(sim.process(node.stage_corpus(books, compressed=False, include_host=True)))
    runner = HostOnlyRunner(node)
    mark = node.meter.snapshot()

    def experiment():
        return (
            yield from runner.run_many(
                [f"grep {SPEC.needle} {book.name}" for book in books]
            )
        )

    statuses, seconds = sim.run(sim.process(experiment()))
    report = node.meter.window(mark)
    total_bytes = sum(b.plain_size for b in books)
    matches = sum(int(s.stdout) for s in statuses if s.stdout)
    j_per_gb = report.subset(["host", "baseline-ssd", "fabric"]) / (total_bytes / 1e9)
    return throughput_mb_s(total_bytes, seconds), matches, j_per_gb


def main() -> None:
    books = BookCorpus(SPEC).generate()
    expected = sum(b.needle_count for b in books)
    total_mb = sum(b.plain_size for b in books) / 1e6
    print(f"corpus: {len(books)} books, {total_mb:.1f} MB plain text, "
          f"{expected} injected needles\n")

    rows = []
    for devices in (1, 2, 4):
        tp, matches, j_per_gb = in_situ_search(devices, books)
        assert matches >= expected, "in-situ search missed needles"
        rows.append([f"{devices} CompStor(s)", tp, j_per_gb])

    host_tp, host_matches, host_j = host_search(books)
    assert host_matches >= expected, "host search missed needles"
    rows.append(["host Xeon", host_tp, host_j])

    print(format_series_table(
        "grep: in-situ scaling vs host (Fig. 6 / Fig. 8 shapes)",
        ["platform", "throughput MB/s", "energy J/GB"],
        rows,
    ))
    device_j = rows[0][2]
    print(f"\nenergy advantage at 1 device: {host_j / device_j:.1f}x "
          f"(paper reports ~3.3x for search)")


if __name__ == "__main__":
    main()
