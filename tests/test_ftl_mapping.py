"""Unit + property tests for the page map invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import FlashGeometry
from repro.ftl.mapping import UNMAPPED, PageMap

GEO = FlashGeometry(
    channels=1, dies_per_channel=2, planes_per_die=1, blocks_per_plane=4, pages_per_block=4,
    page_size=512,
)


def make_map(logical=24):
    return PageMap(GEO, logical)


def test_initially_unmapped():
    pm = make_map()
    assert not pm.is_mapped(0)
    assert pm.lookup(5) == UNMAPPED
    assert pm.mapped_logical_pages() == 0


def test_bind_and_lookup():
    pm = make_map()
    assert pm.bind(3, 10) == UNMAPPED
    assert pm.lookup(3) == 10
    assert pm.reverse(10) == 3
    assert pm.valid_pages_in_block(10 // GEO.pages_per_block) == 1


def test_rebind_invalidates_old_copy():
    pm = make_map()
    pm.bind(3, 10)
    old = pm.bind(3, 20)
    assert old == 10
    assert pm.reverse(10) == UNMAPPED
    assert pm.lookup(3) == 20
    assert pm.valid_pages_in_block(10 // GEO.pages_per_block) == 0
    assert pm.valid_pages_in_block(20 // GEO.pages_per_block) == 1


def test_bind_occupied_ppn_rejected():
    pm = make_map()
    pm.bind(1, 10)
    with pytest.raises(ValueError, match="already holds"):
        pm.bind(2, 10)


def test_unbind_trim():
    pm = make_map()
    pm.bind(7, 12)
    assert pm.unbind(7) == 12
    assert pm.lookup(7) == UNMAPPED
    assert pm.reverse(12) == UNMAPPED
    assert pm.unbind(7) == UNMAPPED  # idempotent


def test_valid_lpns_in_block():
    pm = make_map()
    block = 2
    base = block * GEO.pages_per_block
    pm.bind(0, base + 0)
    pm.bind(9, base + 2)
    assert sorted(pm.valid_lpns_in_block(block)) == [0, 9]


def test_release_block_requires_empty():
    pm = make_map()
    pm.bind(0, 0)
    with pytest.raises(ValueError, match="valid pages"):
        pm.release_block(0)
    pm.unbind(0)
    pm.release_block(0)  # no raise


def test_bounds_checking():
    pm = make_map(logical=8)
    with pytest.raises(ValueError):
        pm.lookup(8)
    with pytest.raises(ValueError):
        pm.bind(0, GEO.pages)
    with pytest.raises(ValueError):
        PageMap(GEO, 0)
    with pytest.raises(ValueError):
        PageMap(GEO, GEO.pages + 1)


@settings(max_examples=60)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("bind"), st.integers(0, 23), st.integers(0, GEO.pages - 1)),
            st.tuples(st.just("unbind"), st.integers(0, 23), st.just(0)),
        ),
        max_size=60,
    )
)
def test_invariants_hold_under_random_ops(ops):
    """L2P/P2L stay mutually consistent and valid counts never drift."""
    pm = make_map()
    for op, lpn, ppn in ops:
        if op == "bind":
            if pm.reverse(ppn) != UNMAPPED:
                continue  # physical page occupied; FTL would never do this
            pm.bind(lpn, ppn)
        else:
            pm.unbind(lpn)
    pm.check_invariants()
    assert (pm.valid_count >= 0).all()
    assert pm.valid_count.sum() == pm.mapped_logical_pages()
