"""Traffic cells: one seeded serving run as a hermetic, cacheable job.

``run_traffic_cell`` is the parallel-runner target behind the ``traffic``
CLI verb and the matrix builder — module-path addressable, JSON-in /
JSON-out, hermetic (the scenario dict is the entire input), so the result
cache can replay a cell from its payload digest and ``--workers N``
produces byte-identical scorecards.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Mapping

from repro.config.codec import scenario_from_dict
from repro.config.schema import ScenarioConfig, ServiceConfig, TrafficConfig

__all__ = ["run_traffic_cell", "service_scenario"]


def service_scenario(config: ScenarioConfig, mix: str | None = None) -> ScenarioConfig:
    """A scenario with its service layer engaged (defaults filled in) and,
    optionally, the traffic pattern overridden to ``mix``."""
    service = config.service if config.service is not None else ServiceConfig()
    traffic = config.traffic if config.traffic is not None else TrafficConfig()
    if mix is not None:
        traffic = replace(traffic, pattern=mix)
    return replace(config, service=service, traffic=traffic)


def run_traffic_cell(
    scenario: Mapping[str, Any] | None = None, mix: str | None = None
) -> dict:
    """Stage, arm faults, serve the whole arrival stream, return the
    scorecard payload (a plain JSON dict; see
    :meth:`repro.service.slo.SloReport.to_payload`)."""
    from repro.config.factory import build_corpus, build_fault_plan, build_fleet
    from repro.config.presets import preset
    from repro.faults import FaultInjector
    from repro.service.frontend import ServiceFrontend

    config = (
        scenario_from_dict(scenario) if scenario is not None else preset("traffic-smoke")
    )
    config = service_scenario(config, mix=mix)
    fleet = build_fleet(config)
    sim = fleet.sim
    books = build_corpus(config)
    sim.run(sim.process(fleet.stage_corpus(books, replicas=config.fleet.replicas)))
    if config.faults.any:
        plan = build_fault_plan(config, fleet.device_ring(), base_time=sim.now)
        FaultInjector.for_fleet(fleet, plan).start()
    frontend = ServiceFrontend(fleet, config.service, config.traffic, books)
    report = sim.run(sim.process(frontend.run()))
    return report.to_payload()
