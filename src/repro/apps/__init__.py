"""Off-loadable applications.

The paper's evaluation suite — gzip/gunzip/bzip2/bunzip2 (compute-intensive)
and grep/gawk (IO-intensive) — plus a few extra shell utilities that
demonstrate the "any Linux command runs in-place" claim.

Every app is *functional* (really transforms bytes, via zlib/bz2/pattern
matching) and *timed* (charges calibrated cycles-per-byte on the executing
ISA).  The same object runs unmodified on the host and inside CompStor —
only the :class:`~repro.isos.loader.ExecContext` differs.
"""

from repro.apps.compress import Bunzip2App, Bzip2App, GunzipApp, GzipApp
from repro.apps.moretext import HeadApp, TailApp, UniqApp
from repro.apps.registry import default_registry
from repro.apps.search import FilterApp, GawkApp, GrepApp
from repro.apps.textutils import CatApp, EchoApp, LsApp, Sha1SumApp, WcApp

__all__ = [
    "Bunzip2App",
    "Bzip2App",
    "CatApp",
    "EchoApp",
    "FilterApp",
    "GawkApp",
    "GrepApp",
    "GunzipApp",
    "GzipApp",
    "HeadApp",
    "LsApp",
    "Sha1SumApp",
    "TailApp",
    "UniqApp",
    "WcApp",
    "default_registry",
]
