"""Error-correction engine for the SSD controller.

A BCH-style block code model: each flash page is split into codewords with a
fixed correction capability ``t``; decode latency grows with the number of
errors actually corrected, and codewords with more than ``t`` errors are
uncorrectable (the controller then fails the read — in a real drive RAID-like
recovery would kick in; here the FTL surfaces an I/O error).
"""

from repro.ecc.engine import CodewordLayout, EccConfig, EccEngine, UncorrectableError

__all__ = ["CodewordLayout", "EccConfig", "EccEngine", "UncorrectableError"]
