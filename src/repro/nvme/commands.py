"""NVMe command set.

Standard IO opcodes plus the vendor-specific range (0xC0+) CompStor uses to
tunnel in-storage-computation traffic.  LBAs address logical pages (the
FTL's unit); ``nlb`` counts pages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

__all__ = [
    "IscPayload", "NvmeCommand", "NvmeCompletion", "NvmeError", "Opcode",
    "Status", "reset_ids",
]

_cid_counter = itertools.count(1)


def reset_ids() -> None:
    """Restart CID allocation (fresh-process state; see proto.entities)."""
    global _cid_counter
    _cid_counter = itertools.count(1)


class Opcode(IntEnum):
    """Command opcodes (IO queue unless noted)."""

    FLUSH = 0x00
    WRITE = 0x01
    READ = 0x02
    DSM_TRIM = 0x09  # dataset management / deallocate
    IDENTIFY = 0x06  # admin
    GET_LOG_PAGE = 0x02 + 0x100  # admin (offset to avoid clashing with READ)
    # Vendor-specific in-storage computation (CompStor)
    ISC_MINION = 0xC0  # deliver a minion; completion carries the response
    ISC_QUERY = 0xC1  # admin/telemetry query
    ISC_LOAD = 0xC2  # dynamic task loading: push an executable image

    @property
    def is_vendor(self) -> bool:
        return 0xC0 <= self.value < 0x100

    @property
    def is_admin(self) -> bool:
        return self in (Opcode.IDENTIFY, Opcode.GET_LOG_PAGE)


class Status(IntEnum):
    SUCCESS = 0x0
    INVALID_OPCODE = 0x1
    INVALID_FIELD = 0x2
    LBA_OUT_OF_RANGE = 0x80
    MEDIA_ERROR = 0x81
    CAPACITY_EXCEEDED = 0x82
    DEVICE_UNAVAILABLE = 0x83  # controller crashed/unreachable (retryable)
    TRANSIENT = 0x84  # injected transient transport failure (retryable)
    ISC_FAILURE = 0xC0
    ISC_AGENT_DOWN = 0xC2  # ISPS agent daemon down, restart pending (retryable)


class NvmeError(Exception):
    """Raised on the host side when a completion carries a failure status."""

    def __init__(self, completion: "NvmeCompletion"):
        super().__init__(f"NVMe command {completion.cid} failed: {completion.status.name}")
        self.completion = completion


@dataclass(frozen=True, slots=True)
class IscPayload:
    """Opaque carrier for vendor commands (minion/query/executable image).

    ``nbytes`` drives the PCIe transfer size; ``body`` is the semantic
    content handed to the ISC handler.
    """

    body: Any
    nbytes: int = 256

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")


@dataclass(slots=True)
class NvmeCommand:
    """One submission queue entry."""

    opcode: Opcode
    nsid: int = 1
    slba: int = 0
    nlb: int = 1
    data: bytes | None = None  # write payload
    payload: IscPayload | None = None  # vendor payload
    lbas: list[int] | None = None  # DSM/TRIM ranges
    cid: int = field(default_factory=lambda: next(_cid_counter))

    def __post_init__(self) -> None:
        if self.nlb < 1:
            raise ValueError("nlb must be >= 1")
        if self.slba < 0:
            raise ValueError("slba must be non-negative")
        if self.opcode.is_vendor and self.payload is None:
            raise ValueError(f"{self.opcode.name} requires a payload")

    @property
    def transfer_bytes_to_device(self) -> int:
        """Host->device data size (for DMA accounting)."""
        if self.opcode == Opcode.WRITE:
            return len(self.data or b"")
        if self.opcode.is_vendor and self.payload is not None:
            return self.payload.nbytes
        return 0


@dataclass(frozen=True, slots=True)
class NvmeCompletion:
    """One completion queue entry."""

    cid: int
    status: Status
    result: Any = None
    submitted_at: float = 0.0
    completed_at: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == Status.SUCCESS

    @property
    def latency(self) -> float:
        return self.completed_at - self.submitted_at

    def raise_for_status(self) -> "NvmeCompletion":
        if not self.ok:
            raise NvmeError(self)
        return self
