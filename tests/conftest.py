"""Shared test configuration.

Hypothesis runs derandomized so the whole suite — including the
property-based tests — is reproducible run to run, matching the simulator's
own determinism guarantees.

Every test also starts from fresh-process ID-allocation state (minion IDs,
PIDs, NVMe CIDs): the allocators are process-global, so without the reset a
test's observable IDs — and anything hashed over them, like the golden
schedule digests — would depend on suite order.
"""

import pytest
from hypothesis import HealthCheck, settings

from repro.testing import reset_global_ids

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _fresh_global_ids():
    reset_global_ids()


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the parallel runner's result cache at a per-test directory.

    Keeps tests from reading (or polluting) the developer's real
    ``.repro-cache`` — cache-hit behaviour is only observable when a test
    writes the cache itself.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
