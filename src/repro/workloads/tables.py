"""Synthetic CSV tables for query-pushdown workloads.

Generates deterministic comma-separated tables with numeric columns, plus a
ground-truth evaluator so tests can assert the in-situ ``selectq`` results
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CsvTable", "TableSpec"]


@dataclass(frozen=True, slots=True)
class TableSpec:
    """Shape of a generated table."""

    rows: int = 1000
    columns: int = 4
    value_range: tuple[float, float] = (0.0, 1000.0)
    integer: bool = False
    seed: int = 77

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise ValueError("rows and columns must be >= 1")
        lo, hi = self.value_range
        if hi <= lo:
            raise ValueError("value_range must be increasing")


class CsvTable:
    """A generated table: bytes for staging + array for ground truth."""

    def __init__(self, spec: TableSpec | None = None):
        self.spec = spec or TableSpec()
        rng = np.random.default_rng(self.spec.seed)
        lo, hi = self.spec.value_range
        values = rng.uniform(lo, hi, size=(self.spec.rows, self.spec.columns))
        if self.spec.integer:
            values = np.floor(values)
        self.values = values

    def to_csv_bytes(self) -> bytes:
        """Render the table (no header; selectq addresses columns by index)."""
        fmt = "%.0f" if self.spec.integer else "%.4f"
        lines = [
            ",".join(fmt % v for v in row).encode() for row in self.values
        ]
        return b"\n".join(lines) + b"\n"

    # -- ground truth ----------------------------------------------------------
    def expected_selection(
        self, where_col: int, op: str, value: float, agg_col: int
    ) -> dict:
        """What selectq must report for this table."""
        import operator

        ops = {
            "eq": operator.eq, "ne": operator.ne, "lt": operator.lt,
            "le": operator.le, "gt": operator.gt, "ge": operator.ge,
        }
        column = self.parsed_column(where_col)
        mask = ops[op](column, value)
        agg = self.parsed_column(agg_col)[mask]
        return {
            "count": int(mask.sum()),
            "sum": float(agg.sum()) if mask.any() else 0.0,
            "min": float(agg.min()) if mask.any() else None,
            "max": float(agg.max()) if mask.any() else None,
        }

    def parsed_column(self, index: int) -> np.ndarray:
        """The column exactly as selectq parses it (post-formatting)."""
        fmt = "%.0f" if self.spec.integer else "%.4f"
        return np.array([float(fmt % v) for v in self.values[:, index]])
