"""Tiny importable job targets for runner self-tests and spawn smoke.

Real experiment targets build whole simulated systems; these exist so the
runner's own tests (ordering, caching, failure policy, cross-process
equivalence) can exercise the pool without paying for a simulation.
"""

from __future__ import annotations

import hashlib

__all__ = ["boom", "digest_stream", "echo", "ping"]


def ping(value: int = 0) -> dict:
    """Deterministic round-trip payload."""
    return {"value": value, "squared": value * value}


def echo(value=None) -> dict:
    """Returns its argument unchanged (canonicalisation tests)."""
    return {"pong": value}


def digest_stream(seed: int, length: int = 64) -> dict:
    """A seeded pseudo-random byte stream's digest: any divergence between
    in-process and spawn-worker execution shows up as a digest mismatch."""
    state = hashlib.sha256(str(seed).encode()).digest()
    out = bytearray()
    while len(out) < length:
        state = hashlib.sha256(state).digest()
        out.extend(state)
    return {"seed": seed, "digest": hashlib.sha256(bytes(out[:length])).hexdigest()}


def boom(message: str = "intentional failure") -> None:
    """Always raises (failure-policy tests)."""
    raise RuntimeError(message)
