#!/usr/bin/env python3
"""Distributed map-reduce over CompStors (the Hadoop/Spark motif).

The paper's introduction frames in-situ processing as pushing the
"move computation to data" paradigm of MapReduce/Spark to its limit.  This
example runs the canonical wordcount that way:

- **map**: a dynamically-loaded executable runs *inside every drive*,
  counting words in its locally-stored shard of the corpus and emitting a
  compact partial histogram (JSON over the minion response);
- **reduce**: the host merges the partial histograms.

Only kilobytes of histogram cross the PCIe bus instead of megabytes of
text — the entire point of the architecture.

Run:  python examples/mapreduce_wordcount.py
"""

import json
from collections import Counter

from repro.analysis.calibration import CYCLES_PER_BYTE
from repro.apps.base import charge
from repro.cluster import StorageNode
from repro.isos.loader import ExitStatus
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec

CYCLES_PER_BYTE.setdefault("mapcount", {"xeon": 18.0, "arm-a53": 50.0})

TOP_K = 50


class MapCountApp:
    """``mapcount FILE...`` — emit a JSON histogram of the top words."""

    name = "mapcount"

    def run(self, ctx):
        counts: Counter = Counter()
        for path in ctx.args:
            carry = b""
            stream = ctx.stream_pages(path)
            while not stream.exhausted:
                chunk, take = yield from stream.next_page()
                yield from charge(ctx, self.name, take)
                if chunk is None:
                    continue
                words = (carry + chunk).split()
                carry = words.pop() if chunk and not chunk.endswith((b" ", b"\n")) else b""
                counts.update(w.decode("latin-1") for w in words)
            if carry:
                counts.update([carry.decode("latin-1")])
        partial = dict(counts.most_common(TOP_K))
        return ExitStatus(
            code=0,
            stdout=json.dumps(partial).encode(),
            detail={"unique_words": len(counts), "total_words": sum(counts.values())},
        )


def main() -> None:
    node = StorageNode.build(devices=3, device_capacity=48 * 1024 * 1024)
    sim = node.sim
    books = BookCorpus(CorpusSpec(files=9, mean_file_bytes=96 * 1024)).generate()
    sim.run(sim.process(node.stage_corpus(books, compressed=False)))
    placement = node.device_books(books)
    corpus_bytes = sum(b.plain_size for b in books)

    def job():
        # ship the map executable to every drive at runtime
        yield from node.client.load_executable_everywhere(MapCountApp())

        # map phase: one minion per device, scanning that device's shard
        assignments = [
            (device, Command(command_line="mapcount " + " ".join(b.name for b in part)))
            for device, part in placement.items()
        ]
        start = sim.now
        responses = yield from node.client.gather(assignments)
        map_seconds = sim.now - start

        # reduce phase: merge partial histograms on the host
        merged: Counter = Counter()
        wire_bytes = 0
        total_words = 0
        for response in responses:
            assert response.ok
            merged.update(Counter(json.loads(response.stdout)))
            wire_bytes += len(response.stdout)
            total_words += response.detail["total_words"]

        print(f"corpus: {len(books)} books, {corpus_bytes / 1e6:.1f} MB across "
              f"{len(node.compstors)} CompStors")
        print(f"map phase: {map_seconds * 1e3:.1f} ms simulated, "
              f"{total_words} words counted in-situ")
        print(f"data over PCIe: {wire_bytes / 1024:.1f} KiB of histograms "
              f"(vs {corpus_bytes / 1e6:.1f} MB of raw text — "
              f"{corpus_bytes / wire_bytes:.0f}x reduction)")
        print("\ntop 10 words:")
        for word, count in merged.most_common(10):
            print(f"   {word:12s} {count}")

    sim.run(sim.process(job()))


if __name__ == "__main__":
    main()
