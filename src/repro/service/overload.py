"""Overload-control primitives: retry budget, CoDel, brownout, AIMD.

Four small, pure state machines the adaptive frontend composes.  None of
them owns a clock or a process — time is passed in, so every decision is a
deterministic function of the observation sequence, the same contract the
token buckets in :mod:`repro.service.tokens` keep.

The division of labour under overload:

- :class:`RetryBudget` caps the *composition* of traffic: retries can
  never exceed a configured fraction of fresh admissions, so a shed wave
  cannot amplify itself into a retry storm;
- :class:`Brownout` caps *who* gets in as the queue fills: lowest-weight
  classes shed first, preserving headroom for gold traffic;
- :class:`CoDelController` bounds *standing queue delay* at dispatch: a
  request that sat past the sojourn target for a full control interval is
  dropped rather than served stale (the metastable failure mode is exactly
  "everything served is already abandoned");
- :class:`AimdController` adapts *service capacity*: dispatch concurrency
  climbs additively while queue wait is high and backs off
  multiplicatively when the queue runs dry.
"""

from __future__ import annotations

import math

__all__ = [
    "AimdController",
    "Brownout",
    "CoDelController",
    "RetryBudget",
]

#: Slack applied to token/threshold comparisons so float accumulation
#: error can never flip a decision exact arithmetic would have allowed.
_EPSILON = 1e-9


class RetryBudget:
    """Token-based fleet-wide retry budget.

    Every *fresh* admission earns ``ratio`` tokens (capped at ``burst``);
    every retry spends one.  The budget starts full so an isolated retry
    is always honoured — the cap binds only when retries approach the
    configured fraction of fresh traffic.  Conservation holds by
    construction: ``requested == admitted + rejected``.
    """

    __slots__ = ("ratio", "burst", "tokens", "requested", "admitted", "rejected")

    def __init__(self, ratio: float, burst: float):
        if ratio < 0:
            raise ValueError("ratio must be >= 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.ratio = ratio
        self.burst = burst
        self.tokens = burst
        self.requested = 0
        self.admitted = 0
        self.rejected = 0

    def earn(self) -> None:
        """Credit the budget for one fresh (non-retry) admission."""
        self.tokens = min(self.burst, self.tokens + self.ratio)

    def try_spend(self) -> bool:
        """Charge one retry against the budget, or refuse it."""
        self.requested += 1
        if self.tokens + _EPSILON >= 1.0:
            self.tokens -= 1.0
            self.admitted += 1
            return True
        self.rejected += 1
        return False


class Brownout:
    """Priority-ordered admission shedding on queue depth.

    ``class_order`` lists class names lowest priority first.  Each class
    gets a queue-depth fraction at which it sheds; every step up halves
    the remaining headroom (``start`` = 0.5 over gold/silver/bronze puts
    bronze at 50% depth and silver at 75%), and the *highest* class never
    browns out — the bounded queue itself is its backstop.  ``start >= 1``
    disables every threshold.
    """

    __slots__ = ("thresholds",)

    def __init__(self, class_order: tuple[str, ...], start: float):
        if start <= 0:
            raise ValueError("start must be positive")
        self.thresholds: dict[str, float] = {}
        for rank, name in enumerate(class_order[:-1]):
            self.thresholds[name] = 1.0 - (1.0 - start) * 0.5**rank

    def sheds(self, class_name: str, depth: int, capacity: int) -> bool:
        """Should an arrival of ``class_name`` be shed at this depth?"""
        threshold = self.thresholds.get(class_name)
        if threshold is None or threshold >= 1.0:
            return False
        return depth >= threshold * capacity - _EPSILON


class CoDelController:
    """CoDel's drop-at-dequeue control law on queue sojourn time.

    ``on_dequeue(now, sojourn)`` returns True when the just-dequeued
    request should be dropped.  Sojourn below ``target`` resets the
    controller (bursts pass untouched); once sojourn has stayed above
    target for a full ``interval`` the controller enters its dropping
    state and drops at ``interval / sqrt(count)`` spacing — the classic
    square-root control law that tightens pressure while the standing
    queue persists.
    """

    __slots__ = ("target", "interval", "first_above", "dropping",
                 "drop_next", "count", "drops")

    def __init__(self, target: float, interval: float):
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self.first_above: float | None = None
        self.dropping = False
        self.drop_next = 0.0
        self.count = 0
        self.drops = 0

    def on_dequeue(self, now: float, sojourn: float) -> bool:
        if sojourn < self.target:
            self.first_above = None
            self.dropping = False
            return False
        if self.first_above is None:
            self.first_above = now + self.interval
            return False
        if not self.dropping:
            if now < self.first_above:
                return False
            self.dropping = True
            self.count = 1
        elif now < self.drop_next:
            return False
        else:
            self.count += 1
        self.drops += 1
        self.drop_next = now + self.interval / math.sqrt(self.count)
        return True


class AimdController:
    """Additive-increase / multiplicative-decrease concurrency governor.

    ``update(queue_wait)`` is called once per control interval with the
    queue wait measured over that interval: wait above ``high`` adds one
    dispatch slot, wait below ``low`` multiplies the allowance by
    ``decrease`` (ceiling, so the floor is reachable but never crossed).
    The returned allowance is always within ``[floor, ceiling]``.
    """

    __slots__ = ("low", "high", "decrease", "floor", "ceiling",
                 "allowed", "increases", "decreases", "peak")

    def __init__(self, low: float, high: float, decrease: float,
                 floor: int, ceiling: int, initial: int):
        if low < 0 or high <= 0 or low > high:
            raise ValueError("need 0 <= low <= high, high > 0")
        if not 0.0 < decrease < 1.0:
            raise ValueError("decrease must be in (0, 1)")
        if floor < 1 or ceiling < floor:
            raise ValueError("need 1 <= floor <= ceiling")
        self.low = low
        self.high = high
        self.decrease = decrease
        self.floor = floor
        self.ceiling = ceiling
        self.allowed = min(max(initial, floor), ceiling)
        self.increases = 0
        self.decreases = 0
        self.peak = self.allowed

    def update(self, queue_wait: float) -> int:
        if queue_wait > self.high:
            if self.allowed < self.ceiling:
                self.allowed += 1
                self.increases += 1
                if self.allowed > self.peak:
                    self.peak = self.allowed
        elif queue_wait < self.low:
            shrunk = max(self.floor, math.ceil(self.allowed * self.decrease))
            if shrunk < self.allowed:
                self.allowed = shrunk
                self.decreases += 1
        return self.allowed
