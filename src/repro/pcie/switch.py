"""PCIe switch + root complex topology.

``PcieFabric`` assembles the paper's Fig. 2 arrangement::

    host CPU == root complex ==(uplink x16)== switch ==(x4)== endpoint 0
                                                    ==(x4)== endpoint 1
                                                    ...

A host<->endpoint transfer crosses that endpoint's downlink *and* the shared
uplink, so per-endpoint bandwidth is capped by its own link while aggregate
traffic is capped by the uplink — the bandwidth funnel of Fig. 1.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.pcie.link import Direction, LinkParams, PcieGen, PcieLink
from repro.sim import Simulator

__all__ = ["PcieFabric", "PciePort", "PcieSwitch", "RootComplex"]


class PciePort:
    """An endpoint attachment point: the downlink plus a route upward."""

    def __init__(self, fabric: "PcieFabric", index: int, downlink: PcieLink):
        self.fabric = fabric
        self.index = index
        self.downlink = downlink

    def to_host(self, nbytes: int) -> Generator:
        """Endpoint -> host DMA (upstream)."""
        yield from self.downlink.transfer(nbytes, Direction.RX)
        yield from self.fabric.uplink.transfer(nbytes, Direction.RX)
        return None

    def from_host(self, nbytes: int) -> Generator:
        """Host -> endpoint DMA (downstream)."""
        yield from self.fabric.uplink.transfer(nbytes, Direction.TX)
        yield from self.downlink.transfer(nbytes, Direction.TX)
        return None

    @property
    def bandwidth(self) -> float:
        """Effective one-direction bandwidth of the whole path."""
        return min(self.downlink.bandwidth, self.fabric.uplink.bandwidth)


class RootComplex:
    """Marker for the host side of the fabric (owns the uplink)."""

    def __init__(self, uplink: PcieLink):
        self.uplink = uplink


class PcieSwitch:
    """Fan-out stage: holds the downlinks."""

    def __init__(self, downlinks: list[PcieLink]):
        self.downlinks = downlinks


class PcieFabric:
    """Host root complex + switch + N endpoint ports.

    Parameters follow the paper's numbers by default: a x16 Gen3 uplink
    (~16 GB/s raw, ~13.7 GB/s effective) and x4 Gen3 endpoint links
    (~2 GB/s class, matching "2.0 GB/s per SSD").
    """

    def __init__(
        self,
        sim: Simulator,
        endpoints: int,
        uplink_lanes: int = 16,
        endpoint_lanes: int = 4,
        gen: PcieGen = PcieGen.GEN3,
        name: str = "fabric",
        energy_sink: Callable[[str, float], None] | None = None,
    ):
        if endpoints < 1:
            raise ValueError("endpoints must be >= 1")
        self.sim = sim
        self.name = name
        self.uplink = PcieLink(
            sim,
            LinkParams(gen=gen, lanes=uplink_lanes),
            name=f"{name}.uplink",
            energy_sink=energy_sink,
        )
        self.root_complex = RootComplex(self.uplink)
        downlinks = [
            PcieLink(
                sim,
                LinkParams(gen=gen, lanes=endpoint_lanes),
                name=f"{name}.down{i}",
                energy_sink=energy_sink,
            )
            for i in range(endpoints)
        ]
        self.switch = PcieSwitch(downlinks)
        self.ports = [PciePort(self, i, link) for i, link in enumerate(downlinks)]

    def __len__(self) -> int:
        return len(self.ports)

    @property
    def host_ingest_bandwidth(self) -> float:
        """Host-side ceiling for data arriving from all endpoints."""
        return self.uplink.bandwidth

    @property
    def aggregate_endpoint_bandwidth(self) -> float:
        """Sum of per-endpoint link bandwidths (pre-uplink funnel)."""
        return sum(link.bandwidth for link in self.switch.downlinks)

    def mismatch_factor(self, media_bandwidth_per_endpoint: float) -> float:
        """Paper Fig. 1: aggregate media bandwidth / host ingest ceiling."""
        if media_bandwidth_per_endpoint <= 0:
            raise ValueError("media bandwidth must be positive")
        return len(self.ports) * media_bandwidth_per_endpoint / self.host_ingest_bandwidth
