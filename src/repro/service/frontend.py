"""The service pipeline: admission -> schedule -> dispatch -> SLO.

:class:`ServiceFrontend` glues the pieces together inside one simulation:

1. **Admission.**  Each open-loop arrival is classed (stable tenant hash),
   charged against its per-tenant token bucket (shed ``rate_limited``),
   and checked against the bounded queue (shed ``queue_full``).
2. **Scheduling.**  Admitted requests enter the weighted fair queue under
   their priority class.
3. **Dispatch.**  ``concurrency`` worker processes pull from the WFQ and
   drive :meth:`StorageFleet.serve_one` — retries, circuit breakers, and
   replica failover all engaged, so a fault drill under sustained traffic
   exercises the whole recovery stack under contention.
4. **SLO.**  Every outcome lands in the :class:`SloTracker`; ``run()``
   returns the frozen :class:`SloReport` scorecard.

Determinism: arrivals are materialised up front from the traffic seed,
admission is pure bookkeeping, the WFQ breaks ties by push order, and the
simulator's event order is stable — so the scorecard is a pure function of
the scenario config.
"""

from __future__ import annotations

from typing import Callable, Generator, Sequence

from repro.cluster.fleet import StorageFleet
from repro.config.schema import ServiceConfig, TrafficConfig
from repro.proto.entities import Command
from repro.service.scheduler import WeightedFairQueue
from repro.service.slo import SloReport, SloTracker
from repro.service.tokens import TenantBuckets
from repro.service.traffic import Arrival, TrafficGenerator, assign_class
from repro.workloads import BookFile

__all__ = ["ServiceFrontend"]

#: Arrivals between token-bucket eviction sweeps (state-bound housekeeping).
EVICT_EVERY = 64


def _default_command(book: BookFile, tenant: int) -> Command:
    return Command(command_line=f"grep xylophone {book.name}")


class ServiceFrontend:
    """One multi-tenant serving session over a staged fleet."""

    def __init__(
        self,
        fleet: StorageFleet,
        service: ServiceConfig,
        traffic: TrafficConfig,
        books: Sequence[BookFile],
        command_for: Callable[[BookFile, int], Command] = _default_command,
    ):
        if not books:
            raise ValueError("serving needs at least one staged book")
        self.fleet = fleet
        self.sim = fleet.sim
        self.service = service
        self.traffic = traffic
        self.books = list(books)
        self.command_for = command_for
        self.tracker = SloTracker(
            service.classes,
            fleet.metrics if fleet.metrics.enabled else None,
        )
        self.buckets = TenantBuckets()
        self._classes = {c.name: c for c in service.classes}
        self._queue = WeightedFairQueue({c.name: c.weight for c in service.classes})
        self._arrivals_done = False
        self._signal = None

    # -- wiring ---------------------------------------------------------------

    def _wait_signal(self):
        """The shared work-available event (recreated after each trigger)."""
        if self._signal is None or self._signal.triggered:
            self._signal = self.sim.event("service.kick")
        return self._signal

    def _kick(self) -> None:
        if self._signal is not None and not self._signal.triggered:
            self._signal.succeed()

    # -- admission -------------------------------------------------------------

    def _admit(self, arrival: Arrival) -> None:
        cls = self._classes[assign_class(arrival.tenant, self.service.classes)]
        self.tracker.on_arrival(cls.name)
        now = self.sim.now
        if not self.buckets.allow(arrival.tenant, cls.rate, cls.burst, now):
            self.tracker.on_shed(cls.name, "rate_limited")
            return
        if len(self._queue) >= self.service.queue_depth:
            self.tracker.on_shed(cls.name, "queue_full")
            return
        self._queue.push(cls.name, (arrival.tenant, now))
        self.tracker.on_queue_depth(len(self._queue))
        self._kick()

    def _arrivals(self) -> Generator:
        start = self.sim.now
        stream = TrafficGenerator(self.traffic).arrivals()
        for index, arrival in enumerate(stream):
            target = start + arrival.time
            if target > self.sim.now:
                yield self.sim.timeout(target - self.sim.now)
            self._admit(arrival)
            if (index + 1) % EVICT_EVERY == 0:
                self.buckets.evict_restorable(self.sim.now)
        self._arrivals_done = True
        self._kick()

    # -- dispatch --------------------------------------------------------------

    def _worker(self) -> Generator:
        while True:
            if self._queue:
                class_name, (tenant, admitted_at) = self._queue.pop()
                self.tracker.on_queue_depth(len(self._queue))
                wait = self.sim.now - admitted_at
                book = self.books[tenant % len(self.books)]
                response, path = yield from self.fleet.serve_one(
                    book, self.command_for(book, tenant)
                )
                if response is None:
                    self.tracker.on_lost(class_name)
                else:
                    self.tracker.on_complete(
                        class_name, tenant, self.sim.now - admitted_at, wait, path
                    )
            elif self._arrivals_done:
                return
            else:
                yield self._wait_signal()

    # -- the run ---------------------------------------------------------------

    def run(self) -> Generator:
        """Serve the whole configured arrival stream; returns the
        :class:`SloReport` scorecard."""
        sim = self.sim
        procs = [
            sim.process(self._worker(), name=f"service.worker{i}")
            for i in range(self.service.concurrency)
        ]
        procs.append(sim.process(self._arrivals(), name="service.arrivals"))
        yield sim.all_of(procs)
        return self.tracker.report(
            self.traffic.pattern, peak_buckets=self.buckets.peak_buckets
        )
