"""Fleet-level weak scaling — the paper's closing claim.

"Considering a data center containing hundreds of CompStor equipped storage
nodes, there could be thousands of concurrent minions, resulting in heavy
parallelism at the storage unit level."  This bench grows the fleet with a
fixed per-node dataset and checks aggregate throughput scales with node
count, with hundreds of concurrent minions in flight.
"""

from repro.analysis.experiments import format_series_table, linear_fit, throughput_mb_s
from repro.cluster import StorageFleet
from repro.proto import Command
from repro.workloads import BookCorpus, CorpusSpec

NODE_COUNTS = (1, 2, 4)
BOOKS_PER_NODE = 16
DEVICES_PER_NODE = 2


def run_fleet(nodes: int) -> tuple[float, int]:
    books = BookCorpus(
        CorpusSpec(files=BOOKS_PER_NODE * nodes, mean_file_bytes=32 * 1024,
                   size_spread=0.1)
    ).generate()
    fleet = StorageFleet.build(
        nodes=nodes, devices_per_node=DEVICES_PER_NODE,
        device_capacity=24 * 1024 * 1024,
    )
    fleet.sim.run(fleet.sim.process(fleet.stage_corpus(books)))

    def job():
        return (
            yield from fleet.run_job(
                books, lambda b: Command(command_line=f"gawk xylophone {b.name}")
            )
        )

    responses, wall = fleet.sim.run(fleet.sim.process(job()))
    assert len(responses) == len(books)
    assert all(r is not None and r.exit_code == 0 for r in responses)
    total_bytes = sum(b.plain_size for b in books)
    return throughput_mb_s(total_bytes, wall), len(books)


def test_fleet_scaling(benchmark):
    def experiment():
        return {n: run_fleet(n) for n in NODE_COUNTS}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = [[n, minions, tp] for n, (tp, minions) in sorted(results.items())]
    print("\n" + format_series_table(
        "Fleet weak scaling — gawk across nodes (concurrent minions)",
        ["nodes", "concurrent minions", "aggregate MB/s"],
        rows,
    ))

    xs = [n for n, _ in sorted(results.items())]
    ys = [results[n][0] for n in xs]
    slope, _, r2 = linear_fit(xs, ys)
    assert slope > 0
    assert r2 > 0.97, f"fleet scaling not linear: r^2={r2}"
    # doubling the fleet delivers at least ~1.5x aggregate throughput
    assert results[2][0] > 1.5 * results[1][0]
    assert results[4][0] > 1.5 * results[2][0]
