"""Free-block pool and write frontiers.

The allocator keeps one **write frontier** (active block + next page) per
die and per stream, so host writes and GC relocations stripe across dies and
never share a block — the standard hot/cold separation that keeps GC cheap.
Dynamic wear leveling happens here: when a frontier needs a fresh block, the
lowest-P/E free block on that die is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.geometry import BlockAddress, FlashGeometry, PageAddress
from repro.flash.package import FlashArray

__all__ = ["BlockAllocator", "Frontier", "OutOfSpaceError"]


class OutOfSpaceError(Exception):
    """No free block available on any die for the requesting stream."""


@dataclass(slots=True)
class Frontier:
    """An open block being filled sequentially."""

    block_index: int | None = None
    next_page: int = 0


class BlockAllocator:
    """Tracks free blocks per die and hands out pages to streams.

    Streams are small integers (``HOST = 0``, ``GC = 1``); each
    ``(stream, die)`` pair owns an independent frontier.
    """

    HOST = 0
    GC = 1

    def __init__(self, flash: FlashArray, streams: int = 2, gc_reserve: int = 1):
        """``gc_reserve`` free blocks are claimable only by the GC stream —
        the classic reservation that guarantees the collector can always
        relocate a victim's valid pages and never deadlocks against host
        writes."""
        if streams < 1:
            raise ValueError("streams must be >= 1")
        if gc_reserve < 0:
            raise ValueError("gc_reserve must be >= 0")
        self.flash = flash
        self.geometry: FlashGeometry = flash.geometry
        self.streams = streams
        self.gc_reserve = gc_reserve
        geo = self.geometry
        self._blocks_per_die = geo.planes_per_die * geo.blocks_per_plane
        # free[die] = set of block indices on that die
        self.free: list[set[int]] = [set() for _ in range(geo.dies)]
        for index in range(geo.blocks):
            self.free[self._die_of_block(index)].add(index)
        self.frontiers: dict[tuple[int, int], Frontier] = {
            (stream, die): Frontier() for stream in range(streams) for die in range(geo.dies)
        }
        self._next_die = [0] * streams  # round-robin pointer per stream
        self.retired: set[int] = set()  # grown bad blocks, never reused

    # -- geometry helpers ------------------------------------------------------
    def _die_of_block(self, block_index: int) -> int:
        return block_index // self._blocks_per_die

    def block_address(self, block_index: int) -> BlockAddress:
        return self.geometry.block_address(block_index)

    @property
    def free_blocks(self) -> int:
        return sum(len(pool) for pool in self.free)

    def free_blocks_on_die(self, die: int) -> int:
        return len(self.free[die])

    # -- allocation ---------------------------------------------------------
    def _open_block(self, stream: int, die: int) -> int:
        """Pick the lowest-P/E free block on ``die`` (dynamic wear leveling).

        Non-GC streams may not dip into the GC reserve."""
        pool = self.free[die]
        if not pool:
            raise OutOfSpaceError(f"die {die} has no free blocks")
        if stream != self.GC and self.free_blocks <= self.gc_reserve:
            raise OutOfSpaceError(
                f"only the GC reserve ({self.gc_reserve} blocks) remains"
            )
        pe = self.flash.pe_cycles
        best = min(pool, key=lambda b: (int(pe[b]), b))
        pool.remove(best)
        return best

    def allocate_on_die(self, stream: int, die: int) -> PageAddress:
        """Next physical page for ``stream`` on a specific die.

        Synchronous (no simulation time): the caller serialises allocations
        per ``(stream, die)`` and programs pages in allocation order, which
        satisfies NAND's in-order-within-block rule.
        """
        if not 0 <= stream < self.streams:
            raise ValueError(f"unknown stream {stream}")
        if not 0 <= die < self.geometry.dies:
            raise ValueError(f"unknown die {die}")
        geo = self.geometry
        frontier = self.frontiers[(stream, die)]
        if frontier.block_index is None or frontier.next_page >= geo.pages_per_block:
            frontier.block_index = self._open_block(stream, die)
            frontier.next_page = 0
        page = frontier.next_page
        frontier.next_page += 1
        return self.block_address(frontier.block_index).page(page)

    def allocate_page(self, stream: int) -> PageAddress:
        """Next physical page for ``stream``, rotating across dies."""
        geo = self.geometry
        dies = geo.dies
        start = self._next_die[stream]
        last_error: OutOfSpaceError | None = None
        for offset in range(dies):
            die = (start + offset) % dies
            try:
                addr = self.allocate_on_die(stream, die)
            except OutOfSpaceError as exc:
                last_error = exc
                continue
            self._next_die[stream] = (die + 1) % dies
            return addr
        raise OutOfSpaceError("no free blocks on any die") from last_error

    def release_block(self, block_index: int) -> None:
        """Return an erased block to the free pool.

        A *full* frontier still pointing at this block is reset (the erase
        reclaimed it); releasing a partially-filled frontier is a bug.
        """
        die = self._die_of_block(block_index)
        if block_index in self.free[die]:
            raise ValueError(f"block {block_index} already free")
        for frontier in self.frontiers.values():
            if frontier.block_index == block_index:
                if frontier.next_page < self.geometry.pages_per_block:
                    raise ValueError(f"block {block_index} is an open frontier")
                frontier.block_index = None
                frontier.next_page = 0
        self.free[die].add(block_index)

    def mark_in_use(self, block_index: int) -> None:
        """Recovery: pull a block out of the free pool without opening it.

        Used when rebuilding state after a power cut — any block with
        programmed pages is in use (fully or partially; partial blocks are
        treated as closed and left to GC)."""
        die = self._die_of_block(block_index)
        self.free[die].discard(block_index)

    def retire_block(self, block_index: int) -> None:
        """Permanently remove a grown bad block from service."""
        die = self._die_of_block(block_index)
        if block_index in self.free[die]:
            raise ValueError(f"cannot retire free block {block_index}; allocate it out first")
        for frontier in self.frontiers.values():
            if frontier.block_index == block_index:
                frontier.block_index = None
                frontier.next_page = 0
        self.retired.add(block_index)

    def open_blocks(self) -> set[int]:
        """Blocks serving as frontiers with space remaining.  A completely
        filled frontier block is *closed* — it is a legitimate GC victim."""
        per_block = self.geometry.pages_per_block
        return {
            f.block_index
            for f in self.frontiers.values()
            if f.block_index is not None and f.next_page < per_block
        }

    def frontier_space(self, stream: int) -> int:
        """Erased pages remaining across ``stream``'s open frontiers."""
        per_block = self.geometry.pages_per_block
        return sum(
            per_block - f.next_page
            for (s, _die), f in self.frontiers.items()
            if s == stream and f.block_index is not None and f.next_page < per_block
        )

    def closed_blocks(self) -> list[int]:
        """Blocks that are neither free, open, nor retired (GC candidates)."""
        free_all = set().union(*self.free) if self.free else set()
        open_all = self.open_blocks()
        return [
            index
            for index in range(self.geometry.blocks)
            if index not in free_all
            and index not in open_all
            and index not in self.retired
        ]

    # -- wear statistics -------------------------------------------------------
    def wear_spread(self) -> tuple[int, int, float]:
        """(min, max, mean) P/E cycles over all blocks."""
        pe = self.flash.pe_cycles
        return int(pe.min()), int(pe.max()), float(np.mean(pe))
