"""Embedded OS model ("in-storage operating system").

CompStor's headline capability is running a full Linux inside the SSD so
unmodified executables and shell commands run in-place.  This package
models the OS services those claims rest on:

- :mod:`repro.isos.blockdev` — block devices: the **flash access device
  driver** (direct, low-latency ISPS->FTL path) and an NVMe-attached device
  (the host's view, paying the PCIe toll);
- :mod:`repro.isos.filesystem` — an extent filesystem over a block device;
- :mod:`repro.isos.loader` — the executable registry (dynamic task loading);
- :mod:`repro.isos.shell` — command-line parsing, pipelines, scripts;
- :mod:`repro.isos.process` / :mod:`repro.isos.os` — processes and the OS
  facade (spawn/wait/ps, telemetry).
"""

from repro.isos.blockdev import BlockDevice, FlashAccessDevice, NvmeBlockDevice
from repro.isos.filesystem import ExtentFileSystem, FsError
from repro.isos.loader import ExecContext, Executable, ExecutableRegistry
from repro.isos.os import EmbeddedOS
from repro.isos.process import OsProcess, ProcessState
from repro.isos.shell import ShellError, parse_command_line, split_pipeline

__all__ = [
    "BlockDevice",
    "EmbeddedOS",
    "ExecContext",
    "Executable",
    "ExecutableRegistry",
    "ExtentFileSystem",
    "FlashAccessDevice",
    "FsError",
    "NvmeBlockDevice",
    "OsProcess",
    "ProcessState",
    "ShellError",
    "parse_command_line",
    "split_pipeline",
]
