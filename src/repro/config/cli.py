"""The ``python -m repro config`` verb, and scenario flags for other verbs.

``config`` is the introspection surface of the scenario layer::

    python -m repro config presets                  # registry + digests
    python -m repro config show fig6 --set fleet.nodes=2
    python -m repro config show --digest sha256...  # not supported: see diff
    python -m repro config diff smoke fig6
    python -m repro config digest                   # all presets, golden form

``add_scenario_args`` / ``scenario_from_args`` give the experiment verbs a
uniform ``--preset`` / ``--set`` surface; the resulting scenario's digest
is printed in each scorecard header so any run can be reproduced from its
output alone (``config show <preset> --set ...`` reprints the exact
configuration behind a digest).
"""

from __future__ import annotations

import argparse
import json

from repro.config.codec import canonical_json, config_digest, flatten, to_dict
from repro.config.presets import PRESETS, preset, preset_names
from repro.config.schema import ScenarioConfig

__all__ = [
    "add_config_subparser",
    "add_scenario_args",
    "scenario_from_args",
]


# -- scenario flags on experiment verbs -------------------------------------


def add_scenario_args(
    parser: argparse.ArgumentParser, default_preset: str | None = None
) -> None:
    """Attach ``--preset`` / ``--set`` to an experiment verb."""
    parser.add_argument(
        "--preset", default=default_preset, choices=sorted(preset_names()),
        help="scenario preset to start from"
        + (f" (default: {default_preset})" if default_preset else ""),
    )
    parser.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="PATH=VALUE",
        help="override one scenario field by dotted path (repeatable), "
             "e.g. --set fleet.nodes=8 --set ftl.gc_threshold=0.2",
    )


def scenario_from_args(args: argparse.Namespace) -> ScenarioConfig | None:
    """The scenario an experiment verb should run, or None for legacy flags.

    Overrides without a preset start from ``paper-prototype``.
    """
    overrides = tuple(getattr(args, "overrides", ()) or ())
    name = getattr(args, "preset", None)
    if name is None:
        if not overrides:
            return None
        name = "paper-prototype"
    return preset(name, overrides)


def scenario_header(config: ScenarioConfig) -> str:
    """The one-line scorecard header identifying the scenario."""
    return f"# scenario {config.name} digest={config_digest(config)}"


# -- the config verb --------------------------------------------------------


def _resolve(args: argparse.Namespace, name: str) -> ScenarioConfig:
    return preset(name, tuple(getattr(args, "overrides", ()) or ()))


def _cmd_show(args: argparse.Namespace) -> None:
    config = _resolve(args, args.preset_name)
    if args.flat:
        for key, value in sorted(flatten(config).items()):
            print(f"{key} = {value!r}")
    elif args.canonical:
        print(canonical_json(to_dict(config)))
    else:
        print(json.dumps(to_dict(config), indent=2, sort_keys=True))
    print(scenario_header(config))


def _cmd_digest(args: argparse.Namespace) -> None:
    """``<digest>  <preset>`` lines — the golden-file format CI diffs."""
    names = args.preset_name or sorted(preset_names())
    unknown = [n for n in names if n not in PRESETS]
    if unknown:
        raise SystemExit(
            f"unknown presets {unknown}; have {sorted(preset_names())}"
        )
    for name in names:
        config = _resolve(args, name)
        print(f"{config_digest(config)}  {name}")


def _cmd_diff(args: argparse.Namespace) -> None:
    """Flat field-by-field diff of two scenarios (overrides apply to B)."""
    a = preset(args.a)
    b = _resolve(args, args.b)
    flat_a, flat_b = flatten(a), flatten(b)
    changed = False
    for key in sorted(set(flat_a) | set(flat_b)):
        va, vb = flat_a.get(key, "<absent>"), flat_b.get(key, "<absent>")
        if va != vb:
            changed = True
            print(f"{key}: {va!r} -> {vb!r}")
    if not changed:
        print("no differences (identical digests)")


def _cmd_presets(_args: argparse.Namespace) -> None:
    from repro.analysis.experiments import format_series_table

    rows = []
    for name in sorted(preset_names()):
        config = preset(name)
        fleet = config.fleet
        rows.append([
            name,
            f"{fleet.nodes}x{fleet.devices_per_node}",
            f"{config.flash.capacity_bytes // (1024 * 1024)} MiB",
            f"{config.corpus.files}x{config.corpus.mean_file_bytes // 1024} KiB",
            len(config.faults.events) + config.faults.random,
            config_digest(config)[:12],
        ])
    print(format_series_table(
        "scenario presets",
        ["preset", "fleet", "device", "corpus", "faults", "digest[:12]"],
        rows,
    ))


def add_config_subparser(sub) -> None:
    """Register the ``config`` verb on the main CLI's subparsers."""
    p = sub.add_parser("config", help="inspect scenario presets and digests")
    csub = p.add_subparsers(dest="config_command", required=True)

    s = csub.add_parser("show", help="print one scenario as JSON (+digest)")
    s.add_argument("preset_name", nargs="?", default="paper-prototype",
                   choices=sorted(preset_names()))
    s.add_argument("--set", dest="overrides", action="append", default=[],
                   metavar="PATH=VALUE")
    s.add_argument("--flat", action="store_true",
                   help="dotted-path view instead of nested JSON")
    s.add_argument("--canonical", action="store_true",
                   help="the exact canonical JSON line the digest hashes")
    s.set_defaults(func=_cmd_show)

    s = csub.add_parser("digest", help="sha256 digests (golden-file format)")
    s.add_argument("preset_name", nargs="*",
                   help="presets to digest (default: all)")
    s.add_argument("--set", dest="overrides", action="append", default=[],
                   metavar="PATH=VALUE")
    s.set_defaults(func=_cmd_digest)

    s = csub.add_parser("diff", help="field-by-field diff of two scenarios")
    s.add_argument("a", choices=sorted(preset_names()))
    s.add_argument("b", choices=sorted(preset_names()))
    s.add_argument("--set", dest="overrides", action="append", default=[],
                   metavar="PATH=VALUE", help="overrides applied to B")
    s.set_defaults(func=_cmd_diff)

    s = csub.add_parser("presets", help="table of the preset registry")
    s.set_defaults(func=_cmd_presets)
