"""Fig. 6 — performance scales linearly with the number of CompStors.

The paper's weak-scaling experiment: fixed input per device, 1..N devices,
aggregate throughput grows linearly.  We regenerate the series for an
IO-bound app (grep) and a compute-bound app (gzip) and fit a line.
"""

import pytest

from repro.analysis.experiments import format_series_table
from repro.analysis.figures import fig6_linearity, run_fig6

DEVICE_COUNTS = (1, 2, 4)


@pytest.mark.parametrize("app", ["grep", "gawk", "gzip", "bzip2"])
def test_fig6_linear_scaling(benchmark, app):
    results = benchmark.pedantic(
        run_fig6, kwargs={"app": app, "device_counts": DEVICE_COUNTS},
        rounds=1, iterations=1,
    )
    slope, intercept, r2 = fig6_linearity(results)

    print("\n" + format_series_table(
        f"Fig. 6 — {app} throughput vs device count",
        ["devices", "MB/s"],
        [[n, tp] for n, tp in results],
    ) + f"\nfit: slope={slope:.2f} MB/s/device, r^2={r2:.4f}")

    # linear in device count, with a meaningful slope
    assert r2 > 0.98, f"{app} scaling is not linear: r^2={r2}"
    assert slope > 0
    # doubling devices must deliver at least ~1.7x (paper: linear)
    tp = dict(results)
    assert tp[2] / tp[1] > 1.7
    assert tp[4] / tp[2] > 1.7
    # and the intercept is small relative to the single-device throughput
    assert abs(intercept) < 0.35 * tp[1] + 1.0
