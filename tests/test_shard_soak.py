"""The 100k-request deterministic soak (ROADMAP scale item), marked slow.

One ``traffic-soak`` run pushes 100,000 seeded Poisson arrivals through
the sharded engine — roughly 1.2M simulated events — long enough to
surface slow state leaks (queue residue, ID drift, horizon creep) that
the short pinned drills never see.  The test asserts:

- the scorecard digest is **identical across shard counts** (2 vs the
  preset's 4), so grouping independence holds at soak scale, not just on
  smoke-sized scenarios;
- request conservation: ``admitted + shed == offered == 100_000`` and
  ``completed + lost == admitted`` per class and in aggregate;
- message conservation at the boundary (nothing in flight at the end);
- a ``--workers 4`` cached replay through the parallel runner returns
  byte-identical payloads with ``executed == 0`` (the soak caches like
  any matrix cell).

Excluded from the default run by the ``slow`` marker (`addopts` carries
``-m 'not slow'``); CI runs it as a separate non-blocking job::

    PYTHONPATH=src python -m pytest -q -m slow tests/test_shard_soak.py
"""

from __future__ import annotations

import pytest

from repro.config.codec import to_dict
from repro.config.presets import preset

pytestmark = pytest.mark.slow

REQUESTS = 100_000


def _totals(scorecard: dict) -> dict[str, int]:
    return {
        key: sum(cls[key] for cls in scorecard["classes"].values())
        for key in ("offered", "admitted", "shed", "completed", "lost")
    }


def test_soak_digest_stable_across_shards_and_workers() -> None:
    from repro.obs import MetricsRegistry
    from repro.parallel import ResultCache, run_jobs, shard_jobs

    payload = to_dict(preset("traffic-soak"))
    specs = shard_jobs(payload, shard_counts=(2, 4))
    cache = ResultCache()

    report = run_jobs(specs, workers=1, cache=cache, metrics=MetricsRegistry())
    values = report.values()
    assert len(values) == 2

    digests = [value["result"]["digest"] for value in values]
    assert digests[0] == digests[1], "soak digest depends on shard count"

    for value in values:
        result = value["result"]
        totals = _totals(result["scorecard"])
        assert totals["offered"] == REQUESTS
        assert totals["admitted"] + totals["shed"] == totals["offered"]
        assert totals["completed"] + totals["lost"] == totals["admitted"]
        for cls in result["scorecard"]["classes"].values():
            assert cls["admitted"] + cls["shed"] == cls["offered"]
            assert cls["completed"] + cls["lost"] == cls["admitted"]
        messages = result["messages"]
        assert messages["sent"] == messages["delivered"]
        assert messages["in_flight"] == 0
        # The soak actually serves: a nontrivial slice completes.
        assert totals["completed"] > REQUESTS // 10

    replay = run_jobs(specs, workers=4, cache=cache, metrics=MetricsRegistry())
    assert replay.executed == 0, "cached soak replay recomputed cells"
    assert replay.values() == values, "cached replay diverged byte-for-byte"
