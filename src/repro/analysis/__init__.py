"""Calibration constants, experiment harness and report formatting."""

from repro.analysis.calibration import (
    ARM_ISA,
    CYCLES_PER_BYTE,
    PAPER_FIG8_J_PER_GB,
    XEON_ISA,
    cycles_for,
)
from repro.analysis.experiments import (
    linear_fit,
    format_series_table,
    throughput_mb_s,
)

__all__ = [
    "ARM_ISA",
    "CYCLES_PER_BYTE",
    "PAPER_FIG8_J_PER_GB",
    "XEON_ISA",
    "cycles_for",
    "format_series_table",
    "linear_fit",
    "throughput_mb_s",
]
