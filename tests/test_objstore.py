"""Tests for the Kinetic-style object store and in-situ object scanning."""

import pytest

from repro.cluster import StorageNode
from repro.objstore import ObjectStore, ObjectStoreError, ObjScanApp
from repro.objstore.store import VersionMismatchError


def make_store():
    node = StorageNode.build(devices=1, device_capacity=16 * 1024 * 1024)
    store = ObjectStore(node.compstors[0].fs)
    return node, store


def drive(node, gen):
    return node.sim.run(node.sim.process(gen))


def test_invalid_keys_rejected():
    node, store = make_store()
    for bad in ("photos/cat", "", "x" * 200, "nul\x00"):
        with pytest.raises(ObjectStoreError):
            drive(node, store.put(bad, b"payload"))


def test_put_get_simple_key():
    node, store = make_store()
    meta = drive(node, store.put("cat", b"meow-bytes", tags={"type": "jpg"}))
    assert meta.version == 1
    assert meta.size == 10

    def get():
        return (yield from store.get("cat"))

    data, got_meta = drive(node, get())
    assert data == b"meow-bytes"
    assert got_meta.tags == {"type": "jpg"}


def test_version_increments_on_overwrite():
    node, store = make_store()
    drive(node, store.put("k", b"v1"))
    meta = drive(node, store.put("k", b"v2"))
    assert meta.version == 2

    def get():
        return (yield from store.get("k"))

    data, _ = drive(node, get())
    assert data == b"v2"


def test_compare_and_swap():
    node, store = make_store()
    drive(node, store.put("k", b"v1"))
    with pytest.raises(VersionMismatchError):
        drive(node, store.put("k", b"v2", expect_version=7))
    drive(node, store.put("k", b"v2", expect_version=1))
    with pytest.raises(VersionMismatchError):
        drive(node, store.put("fresh", b"x", expect_version=3))  # must not exist
    drive(node, store.put("fresh", b"x", expect_version=0))


def test_delete_and_missing_key():
    node, store = make_store()
    drive(node, store.put("k", b"v"))
    drive(node, store.delete("k"))
    assert not store.exists("k")
    with pytest.raises(ObjectStoreError, match="no such object"):
        drive(node, store.delete("k"))
    with pytest.raises(ObjectStoreError, match="no such object"):
        node.sim.run(node.sim.process(store.get("k")))


def test_get_key_range_is_ordered():
    node, store = make_store()
    for key in ("beta", "alpha", "delta", "gamma"):
        drive(node, store.put(key, b"x"))
    assert store.get_key_range() == ["alpha", "beta", "delta", "gamma"]
    assert store.get_key_range(start="b", end="f") == ["beta", "delta"]
    assert store.get_key_range(limit=2) == ["alpha", "beta"]


def test_checksum_catches_corruption():
    node, store = make_store()
    drive(node, store.put("k", b"precious"))
    # corrupt the backing file behind the store's back
    drive(node, store.fs.write_file("obj.k", b"tampered!"))

    def get():
        return (yield from store.get("k"))

    with pytest.raises(ObjectStoreError, match="checksum"):
        drive(node, get())


def test_persist_and_load():
    node, store = make_store()
    drive(node, store.put("a", b"1", tags={"t": "x"}))
    drive(node, store.put("b", b"22"))
    drive(node, store.persist())
    reborn = ObjectStore(store.fs)
    drive(node, reborn.load())
    assert reborn.get_key_range() == ["a", "b"]
    assert reborn.head("a").tags == {"t": "x"}

    def get():
        return (yield from reborn.get("b"))

    data, meta = drive(node, get())
    assert data == b"22"
    assert meta.version == 1


def test_in_situ_object_scan():
    """Objects + in-situ processing, combined: objscan runs inside the SSD."""
    node, store = make_store()
    drive(node, store.put("doc1", b"the fox is here\nfox again\n"))
    drive(node, store.put("doc2", b"no animals\n"))
    node.compstors[0].isps.os.install_executable(ObjScanApp())

    def flow():
        return (yield from node.client.run("compstor0", "objscan fox doc1 doc2"))

    response = drive(node, flow())
    assert response.ok
    assert response.stdout == b"doc1:2 doc2:0"
    assert response.detail["total_matches"] == 2


def test_objscan_missing_object():
    node, store = make_store()
    node.compstors[0].isps.os.install_executable(ObjScanApp())

    def flow():
        return (yield from node.client.run("compstor0", "objscan x ghost"))

    response = drive(node, flow())
    assert response.exit_code == 1
    assert b"no such object" in response.stdout


def test_objscan_pattern_across_pages():
    node, store = make_store()
    page = node.compstors[0].fs.page_size
    blob = b"a" * (page - 3) + b"needle" + b"b" * 50
    drive(node, store.put("span", blob))
    node.compstors[0].isps.os.install_executable(ObjScanApp())

    def flow():
        return (yield from node.client.run("compstor0", "objscan needle span"))

    response = drive(node, flow())
    assert response.stdout == b"span:1"


def test_total_bytes_and_head():
    node, store = make_store()
    drive(node, store.put("a", b"12345"))
    drive(node, store.put("b", b"678"))
    assert store.total_bytes() == 8
    assert store.head("a").size == 5
    with pytest.raises(ObjectStoreError):
        store.head("zzz")


# -- property-based: store vs dict oracle -----------------------------------------

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

KEYS = ("k1", "k2", "k3")


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.sampled_from(KEYS), st.binary(min_size=1, max_size=64)),
            st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just(b"")),
        ),
        min_size=1,
        max_size=25,
    )
)
def test_object_store_matches_dict_oracle(ops):
    node, store = make_store()
    oracle: dict[str, bytes] = {}
    versions: dict[str, int] = {}

    def driver():
        for op, key, payload in ops:
            if op == "put":
                meta = yield from store.put(key, payload)
                oracle[key] = payload
                versions[key] = versions.get(key, 0) + 1
                assert meta.version == versions[key]
            else:
                if key in oracle:
                    yield from store.delete(key)
                    oracle.pop(key)
                    versions.pop(key, None)  # versions restart after delete
                else:
                    try:
                        yield from store.delete(key)
                        raise AssertionError("delete of missing key succeeded")
                    except ObjectStoreError:
                        pass
        # final check
        assert store.get_key_range() == sorted(oracle)
        for key, expected in oracle.items():
            data, meta = yield from store.get(key)
            assert data == expected
            assert meta.size == len(expected)

    drive(node, driver())
