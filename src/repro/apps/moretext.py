"""More coreutils: head, tail, uniq.

Further witnesses for the "any Linux shell command runs in-place" claim,
and useful stages for in-storage script pipelines (e.g. ``head`` to sample
a shard before deciding to run the full scan).
"""

from __future__ import annotations

from typing import Generator

from repro.analysis.calibration import ARM_ISA, CYCLES_PER_BYTE, XEON_ISA
from repro.apps.base import StreamingApp, UsageError
from repro.isos.loader import ExecContext, ExitStatus

__all__ = ["HeadApp", "SortApp", "TailApp", "UniqApp"]

CYCLES_PER_BYTE.setdefault("head", {XEON_ISA: 2.0, ARM_ISA: 6.0})
CYCLES_PER_BYTE.setdefault("tail", {XEON_ISA: 2.0, ARM_ISA: 6.0})
CYCLES_PER_BYTE.setdefault("uniq", {XEON_ISA: 8.0, ARM_ISA: 22.0})


def _line_count_arg(ctx: ExecContext, default: int = 10) -> int:
    """Parse ``-n N`` (or the bare default)."""
    args = ctx.args
    if "-n" in args:
        index = args.index("-n")
        try:
            return int(args[index + 1])
        except (IndexError, ValueError) as exc:
            raise UsageError("-n needs an integer") from exc
    return default


class HeadApp(StreamingApp):
    """``head [-n N] FILE`` — first N lines.

    Streaming with early exit: once N lines are buffered the remaining
    pages are not read at all, so ``head`` on a huge shard is cheap — the
    point of running it in-storage before committing to a full scan.
    """

    name = "head"

    def input_file(self, ctx: ExecContext) -> str:
        positional = [a for a in ctx.args if not a.startswith("-") and not a.isdigit()]
        if not positional:
            raise UsageError("head: missing input file")
        return positional[-1]

    def run(self, ctx: ExecContext) -> Generator:
        from repro.apps.base import charge

        try:
            path = self.input_file(ctx)
            want = _line_count_arg(ctx)
        except UsageError as exc:
            return ExitStatus(code=2, stdout=str(exc).encode())
        if not ctx.fs.exists(path):
            return ExitStatus(code=1, stdout=f"head: {path}: no such file".encode())
        lines: list[bytes] = []
        carry = b""
        stream = ctx.stream_pages(path)
        while not stream.exhausted and len(lines) < want:
            chunk, take = yield from stream.next_page()
            yield from charge(ctx, self.name, take)
            if chunk is None:
                continue
            parts = (carry + chunk).split(b"\n")
            carry = parts.pop()
            lines.extend(parts)
        if carry and len(lines) < want:
            lines.append(carry)
        out = b"\n".join(lines[:want])
        return ExitStatus(
            code=0, stdout=out,
            detail={"lines": min(want, len(lines)), "pages_read": stream.index},
        )


class TailApp(StreamingApp):
    """``tail [-n N] FILE`` — last N lines (full scan; tail has no index)."""

    name = "tail"

    def input_file(self, ctx: ExecContext) -> str:
        positional = [a for a in ctx.args if not a.startswith("-") and not a.isdigit()]
        if not positional:
            raise UsageError("tail: missing input file")
        return positional[-1]

    def begin(self, ctx: ExecContext) -> None:
        self.want = _line_count_arg(ctx)
        self._ring: list[bytes] = []
        self._carry = b""
        self._analytic = False

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        parts = (self._carry + chunk).split(b"\n")
        self._carry = parts.pop()
        self._ring.extend(parts)
        if len(self._ring) > self.want:
            del self._ring[: len(self._ring) - self.want]

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        if self._carry:
            self._ring.append(self._carry)
        out = b"" if self._analytic else b"\n".join(self._ring[-self.want:])
        return ExitStatus(code=0, stdout=out, detail={"lines": len(self._ring)})
        yield  # pragma: no cover - generator protocol


class UniqApp(StreamingApp):
    """``uniq FILE`` — collapse adjacent duplicate lines, count them."""

    name = "uniq"

    def begin(self, ctx: ExecContext) -> None:
        self._carry = b""
        self._previous: bytes | None = None
        self._out: list[bytes] = []
        self.duplicates = 0
        self._analytic = False

    def _feed(self, line: bytes) -> None:
        if line == self._previous:
            self.duplicates += 1
            return
        self._previous = line
        self._out.append(line)

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        parts = (self._carry + chunk).split(b"\n")
        self._carry = parts.pop()
        for line in parts:
            self._feed(line)

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        if self._carry:
            self._feed(self._carry)
        stdout = b"" if self._analytic else b"\n".join(self._out)
        return ExitStatus(
            code=0, stdout=stdout,
            detail={"unique": len(self._out), "duplicates": self.duplicates},
        )
        yield  # pragma: no cover - generator protocol


CYCLES_PER_BYTE.setdefault("sort", {XEON_ISA: 40.0, ARM_ISA: 110.0})


class SortApp(StreamingApp):
    """``sort FILE`` — sort lines; writes FILE.sorted and prints the count.

    Unlike the streaming scanners, sort must materialise the whole file
    (true of real ``sort`` too, up to its spill threshold); the cycle cost
    reflects comparison-heavy work.
    """

    name = "sort"

    def begin(self, ctx: ExecContext) -> None:
        self._carry = b""
        self._lines: list[bytes] = []
        self._analytic = False

    def consume(self, ctx: ExecContext, chunk: bytes | None, take: int) -> None:
        if chunk is None:
            self._analytic = True
            return
        parts = (self._carry + chunk).split(b"\n")
        self._carry = parts.pop()
        self._lines.extend(parts)

    def finish(self, ctx: ExecContext, path: str, total_bytes: int) -> Generator:
        if self._carry:
            self._lines.append(self._carry)
        out_name = path + ".sorted"
        if self._analytic:
            yield from ctx.write_file(out_name, None, size=total_bytes)
            return ExitStatus(code=0, stdout=b"", detail={"analytic": True})
        self._lines.sort()
        blob = b"\n".join(self._lines)
        if blob:
            blob += b"\n"
        yield from ctx.write_file(out_name, blob)
        return ExitStatus(
            code=0,
            stdout=out_name.encode(),
            detail={"lines": len(self._lines), "output_bytes": len(blob)},
        )
