"""Table I — comparison of in-storage computation related work.

Regenerates the capability matrix and *measures* two of its claims against
the executable baselines: Biscuit-style shared cores degrade storage under
compute (CompStor does not), and FPGA baselines cannot load new tasks at
runtime (CompStor can, in microseconds)."""

from repro.analysis.experiments import format_series_table
from repro.baselines import SYSTEMS, table1_rows


def test_table1_feature_matrix(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)

    print("\n" + format_series_table(
        "Table I — in-storage computation systems",
        ["system", "prototype", "dyn. loading", "library", "OS flexibility"],
        rows,
    ))

    assert len(rows) == 8
    full_feature = [s for s in SYSTEMS if s.all_features]
    assert [s.system for s in full_feature] == ["CompStor"]
    # the published critiques, as data
    biscuit = next(s for s in SYSTEMS if "Biscuit" in s.system)
    assert biscuit.dynamic_task_loading and not biscuit.os_level_flexibility
    bluedbm = next(s for s in SYSTEMS if "BlueDBM" in s.system)
    assert not bluedbm.dynamic_task_loading
    compstor = next(s for s in SYSTEMS if s.system == "CompStor")
    assert "24TB" in compstor.prototype and "A53" in compstor.prototype


def test_table1_loading_gap_is_measurable(benchmark):
    """CompStor loads a new task ~7 orders of magnitude faster than an FPGA
    platform can synthesise one."""
    from repro.baselines import FpgaAcceleratedSSD
    from repro.baselines.fpga import FpgaKernel
    from repro.cluster import StorageNode
    from repro.isos.loader import ExitStatus

    class NewTask:
        name = "fresh-analytics"

        def run(self, ctx):
            yield from ctx.compute(1e3)
            return ExitStatus(code=0, stdout=b"ok")

    def measure():
        node = StorageNode.build(devices=1, device_capacity=16 * 1024 * 1024)

        def load():
            t0 = node.sim.now
            yield from node.client.load_executable("compstor0", NewTask())
            return node.sim.now - t0

        compstor_seconds = node.sim.run(node.sim.process(load()))

        from repro.sim import Simulator
        from repro.ssd.conventional import small_geometry

        sim2 = Simulator()
        fpga = FpgaAcceleratedSSD(sim2, geometry=small_geometry(16 * 1024 * 1024))

        def synth():
            t0 = sim2.now
            yield from fpga.synthesize_kernel(FpgaKernel("fresh-analytics", 1e9))
            return sim2.now - t0

        fpga_seconds = sim2.run(sim2.process(synth()))
        return compstor_seconds, fpga_seconds

    compstor_seconds, fpga_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\ndynamic load: CompStor {compstor_seconds * 1e3:.3f} ms "
          f"vs FPGA synthesis {fpga_seconds:.0f} s "
          f"({fpga_seconds / compstor_seconds:.0f}x)")
    assert compstor_seconds < 0.1
    assert fpga_seconds / compstor_seconds > 1e5
