"""Per-tenant token buckets with bounded state.

A classic refill-on-access token bucket, plus the table trick that makes
"millions of distinct tenant IDs" affordable: a bucket whose elapsed
refill would restore it to capacity is *indistinguishable from a fresh
bucket*, so the table drops it.  State is therefore proportional to the
set of tenants currently above their sustained rate — not to the tenant
population, and not to the total number of tenants ever seen.

Everything here is pure and clocked externally (time is passed in), so
admission decisions are a deterministic function of the arrival stream.
"""

from __future__ import annotations

__all__ = ["TenantBuckets", "TokenBucket"]

#: Slack applied to token comparisons so float refill error can never flip
#: an admission decision that exact arithmetic would have allowed.
_EPSILON = 1e-9


class TokenBucket:
    """One refill-on-access token bucket (``rate`` tokens/sec, ``capacity`` cap)."""

    __slots__ = ("rate", "capacity", "tokens", "updated")

    def __init__(self, rate: float, capacity: float, now: float = 0.0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity  # a fresh bucket is full
        self.updated = now

    def refill(self, now: float) -> None:
        # Clamp, never rewind: a caller handing in an earlier timestamp
        # (out-of-order bookkeeping, clock skew between subsystems) must not
        # move ``updated`` backwards — the next on-time refill would credit
        # the same elapsed span twice, granting phantom tokens.
        if now > self.updated:
            self.tokens = min(self.capacity, self.tokens + (now - self.updated) * self.rate)
            self.updated = now

    def try_take(self, now: float, cost: float = 1.0) -> bool:
        """Admit (and charge) one request, or refuse without charging."""
        self.refill(now)
        if self.tokens + _EPSILON >= cost:
            self.tokens -= cost
            return True
        return False

    def restorable_at(self, now: float) -> bool:
        """Would refilling at ``now`` restore this bucket to capacity?

        A restorable bucket carries no information a fresh one would not,
        which is exactly the eviction criterion :class:`TenantBuckets` uses.
        """
        return self.tokens + (now - self.updated) * self.rate + _EPSILON >= self.capacity


class TenantBuckets:
    """Lazily-created per-tenant buckets; full buckets are evictable.

    ``allow`` is the only admission entry point: it creates the tenant's
    bucket on first sight (full, so a quiet tenant's first burst is always
    admitted) and charges it.  ``evict_restorable`` drops every bucket
    whose state a fresh bucket would reproduce — calling it at any
    frequency (or never) cannot change any admission decision, which the
    property tests assert.
    """

    def __init__(self) -> None:
        self._buckets: dict[int, TokenBucket] = {}
        #: High-water mark of live buckets — the state-bound evidence the
        #: traffic scorecard reports against the tenant population size.
        self.peak_buckets = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._buckets)

    def allow(
        self, tenant: int, rate: float, capacity: float, now: float, cost: float = 1.0
    ) -> bool:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(rate, capacity, now)
            self._buckets[tenant] = bucket
            if len(self._buckets) > self.peak_buckets:
                self.peak_buckets = len(self._buckets)
        return bucket.try_take(now, cost)

    def evict_restorable(self, now: float) -> int:
        """Drop every bucket a refill at ``now`` would restore to capacity."""
        dead = [
            tenant
            for tenant, bucket in self._buckets.items()
            if bucket.restorable_at(now)
        ]
        for tenant in dead:
            del self._buckets[tenant]
        self.evictions += len(dead)
        return len(dead)
