"""Fig. 7 — aggregated system performance for compression using bzip2.

The paper distributes the input between the host and N CompStors and
measures each side separately: the host contribution is flat, the CompStor
contribution grows linearly, and the whole system's throughput is their sum
("in-situ processing adds comparable processing power to the whole system").
"""

from repro.analysis.experiments import format_series_table, linear_fit
from repro.analysis.figures import run_fig7

DEVICE_COUNTS = (1, 2, 4)


def test_fig7_aggregate_performance(benchmark):
    rows = benchmark.pedantic(
        run_fig7, kwargs={"device_counts": DEVICE_COUNTS}, rounds=1, iterations=1
    )

    print("\n" + format_series_table(
        "Fig. 7 — bzip2 throughput, host + N CompStors (MB/s)",
        ["devices", "host", "CompStors", "aggregate"],
        [[r["devices"], r["host_mb_s"], r["compstor_mb_s"], r["aggregate_mb_s"]]
         for r in rows],
    ))

    host = rows[0]["host_mb_s"]
    # host contribution is measured once and is constant across N
    assert all(r["host_mb_s"] == host for r in rows)
    # a single quad-A53 device is well below the 8-core Xeon (paper:
    # "obviously, the performance of one CompStor ... is lower")
    assert rows[0]["compstor_mb_s"] < 0.5 * host
    # the device contribution scales linearly
    _, _, r2 = linear_fit(
        [r["devices"] for r in rows], [r["compstor_mb_s"] for r in rows]
    )
    assert r2 > 0.98
    # aggregate = host + devices, strictly increasing with N
    for r in rows:
        assert r["aggregate_mb_s"] == r["host_mb_s"] + r["compstor_mb_s"]
    aggregates = [r["aggregate_mb_s"] for r in rows]
    assert aggregates == sorted(aggregates)
    # extrapolated crossover: devices match the host at a plausible count
    per_device = rows[0]["compstor_mb_s"]
    crossover = host / per_device
    assert 4 < crossover < 40, f"crossover at {crossover:.1f} devices is implausible"
