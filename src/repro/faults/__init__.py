"""Deterministic fault injection and the recovery policy vocabulary.

At fleet scale device failure is the common case, not the exception — the
paper's scaling argument (hundreds of CompStor nodes, thousands of
concurrent minions) only holds if the host stack survives losing drives
mid-job.  This package supplies both halves of proving that:

- the *chaos* side — :class:`FaultPlan` (a pure, seed-driven schedule of
  device crashes, agent crashes, transient NVMe windows and limping
  devices) and :class:`FaultInjector` (executes a plan against live
  devices on simulation time);
- the *recovery* side — :class:`RetryPolicy` and :class:`CircuitBreaker`,
  consumed by :class:`~repro.host.insitu.InSituClient` and the fleet's
  failover path.

Everything is deterministic: plans are pure functions of their seed, fault
RNG draws come from dedicated simulator streams, and retry jitter is only
drawn when a retry happens — so a fault-free run is bit-identical to a
build without this package.
"""

from repro.faults.state import AgentFaultState, AgentUnavailable, DeviceFaultState
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.retry import (
    BreakerConfig,
    CircuitBreaker,
    RetryPolicy,
    completion_retryable,
    response_retryable,
)
from repro.faults.injector import FaultInjector

__all__ = [
    "AgentFaultState",
    "AgentUnavailable",
    "BreakerConfig",
    "CircuitBreaker",
    "DeviceFaultState",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "RetryPolicy",
    "completion_retryable",
    "response_retryable",
]
